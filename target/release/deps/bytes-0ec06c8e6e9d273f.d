/root/repo/target/release/deps/bytes-0ec06c8e6e9d273f.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-0ec06c8e6e9d273f.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-0ec06c8e6e9d273f.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
