/root/repo/target/release/deps/tables-2653215a96c93402.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-2653215a96c93402: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
