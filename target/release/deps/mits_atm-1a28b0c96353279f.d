/root/repo/target/release/deps/mits_atm-1a28b0c96353279f.d: crates/atm/src/lib.rs crates/atm/src/aal5.rs crates/atm/src/cell.rs crates/atm/src/fault.rs crates/atm/src/link.rs crates/atm/src/network.rs crates/atm/src/traffic.rs crates/atm/src/transport.rs

/root/repo/target/release/deps/libmits_atm-1a28b0c96353279f.rlib: crates/atm/src/lib.rs crates/atm/src/aal5.rs crates/atm/src/cell.rs crates/atm/src/fault.rs crates/atm/src/link.rs crates/atm/src/network.rs crates/atm/src/traffic.rs crates/atm/src/transport.rs

/root/repo/target/release/deps/libmits_atm-1a28b0c96353279f.rmeta: crates/atm/src/lib.rs crates/atm/src/aal5.rs crates/atm/src/cell.rs crates/atm/src/fault.rs crates/atm/src/link.rs crates/atm/src/network.rs crates/atm/src/traffic.rs crates/atm/src/transport.rs

crates/atm/src/lib.rs:
crates/atm/src/aal5.rs:
crates/atm/src/cell.rs:
crates/atm/src/fault.rs:
crates/atm/src/link.rs:
crates/atm/src/network.rs:
crates/atm/src/traffic.rs:
crates/atm/src/transport.rs:
