/root/repo/target/release/deps/mits_media-a55e63dc7decc83b.d: crates/media/src/lib.rs crates/media/src/codec.rs crates/media/src/format.rs crates/media/src/mci.rs crates/media/src/object.rs crates/media/src/producer.rs

/root/repo/target/release/deps/libmits_media-a55e63dc7decc83b.rlib: crates/media/src/lib.rs crates/media/src/codec.rs crates/media/src/format.rs crates/media/src/mci.rs crates/media/src/object.rs crates/media/src/producer.rs

/root/repo/target/release/deps/libmits_media-a55e63dc7decc83b.rmeta: crates/media/src/lib.rs crates/media/src/codec.rs crates/media/src/format.rs crates/media/src/mci.rs crates/media/src/object.rs crates/media/src/producer.rs

crates/media/src/lib.rs:
crates/media/src/codec.rs:
crates/media/src/format.rs:
crates/media/src/mci.rs:
crates/media/src/object.rs:
crates/media/src/producer.rs:
