/root/repo/target/release/deps/mits_school-91c14e1cfb1c6ac6.d: crates/school/src/lib.rs crates/school/src/billing.rs crates/school/src/bulletin.rs crates/school/src/discussion.rs crates/school/src/exercise.rs crates/school/src/facilitator.rs crates/school/src/records.rs

/root/repo/target/release/deps/libmits_school-91c14e1cfb1c6ac6.rlib: crates/school/src/lib.rs crates/school/src/billing.rs crates/school/src/bulletin.rs crates/school/src/discussion.rs crates/school/src/exercise.rs crates/school/src/facilitator.rs crates/school/src/records.rs

/root/repo/target/release/deps/libmits_school-91c14e1cfb1c6ac6.rmeta: crates/school/src/lib.rs crates/school/src/billing.rs crates/school/src/bulletin.rs crates/school/src/discussion.rs crates/school/src/exercise.rs crates/school/src/facilitator.rs crates/school/src/records.rs

crates/school/src/lib.rs:
crates/school/src/billing.rs:
crates/school/src/bulletin.rs:
crates/school/src/discussion.rs:
crates/school/src/exercise.rs:
crates/school/src/facilitator.rs:
crates/school/src/records.rs:
