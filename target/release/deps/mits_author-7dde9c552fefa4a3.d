/root/repo/target/release/deps/mits_author-7dde9c552fefa4a3.d: crates/author/src/lib.rs crates/author/src/compile.rs crates/author/src/courseware_lib.rs crates/author/src/editor.rs crates/author/src/hyperdoc.rs crates/author/src/imd.rs crates/author/src/teaching.rs

/root/repo/target/release/deps/libmits_author-7dde9c552fefa4a3.rlib: crates/author/src/lib.rs crates/author/src/compile.rs crates/author/src/courseware_lib.rs crates/author/src/editor.rs crates/author/src/hyperdoc.rs crates/author/src/imd.rs crates/author/src/teaching.rs

/root/repo/target/release/deps/libmits_author-7dde9c552fefa4a3.rmeta: crates/author/src/lib.rs crates/author/src/compile.rs crates/author/src/courseware_lib.rs crates/author/src/editor.rs crates/author/src/hyperdoc.rs crates/author/src/imd.rs crates/author/src/teaching.rs

crates/author/src/lib.rs:
crates/author/src/compile.rs:
crates/author/src/courseware_lib.rs:
crates/author/src/editor.rs:
crates/author/src/hyperdoc.rs:
crates/author/src/imd.rs:
crates/author/src/teaching.rs:
