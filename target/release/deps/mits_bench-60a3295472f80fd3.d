/root/repo/target/release/deps/mits_bench-60a3295472f80fd3.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmits_bench-60a3295472f80fd3.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmits_bench-60a3295472f80fd3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
