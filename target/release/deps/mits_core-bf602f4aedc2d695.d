/root/repo/target/release/deps/mits_core-bf602f4aedc2d695.d: crates/core/src/lib.rs crates/core/src/cod.rs crates/core/src/models.rs crates/core/src/stack.rs crates/core/src/stream.rs crates/core/src/system.rs

/root/repo/target/release/deps/libmits_core-bf602f4aedc2d695.rlib: crates/core/src/lib.rs crates/core/src/cod.rs crates/core/src/models.rs crates/core/src/stack.rs crates/core/src/stream.rs crates/core/src/system.rs

/root/repo/target/release/deps/libmits_core-bf602f4aedc2d695.rmeta: crates/core/src/lib.rs crates/core/src/cod.rs crates/core/src/models.rs crates/core/src/stack.rs crates/core/src/stream.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/cod.rs:
crates/core/src/models.rs:
crates/core/src/stack.rs:
crates/core/src/stream.rs:
crates/core/src/system.rs:
