/root/repo/target/release/deps/mits_db-148b74cc8c2a73e5.d: crates/db/src/lib.rs crates/db/src/client.rs crates/db/src/index.rs crates/db/src/protocol.rs crates/db/src/server.rs crates/db/src/snapshot.rs crates/db/src/store.rs crates/db/src/wal.rs

/root/repo/target/release/deps/libmits_db-148b74cc8c2a73e5.rlib: crates/db/src/lib.rs crates/db/src/client.rs crates/db/src/index.rs crates/db/src/protocol.rs crates/db/src/server.rs crates/db/src/snapshot.rs crates/db/src/store.rs crates/db/src/wal.rs

/root/repo/target/release/deps/libmits_db-148b74cc8c2a73e5.rmeta: crates/db/src/lib.rs crates/db/src/client.rs crates/db/src/index.rs crates/db/src/protocol.rs crates/db/src/server.rs crates/db/src/snapshot.rs crates/db/src/store.rs crates/db/src/wal.rs

crates/db/src/lib.rs:
crates/db/src/client.rs:
crates/db/src/index.rs:
crates/db/src/protocol.rs:
crates/db/src/server.rs:
crates/db/src/snapshot.rs:
crates/db/src/store.rs:
crates/db/src/wal.rs:
