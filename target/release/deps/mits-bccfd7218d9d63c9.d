/root/repo/target/release/deps/mits-bccfd7218d9d63c9.d: crates/mits/src/lib.rs

/root/repo/target/release/deps/libmits-bccfd7218d9d63c9.rlib: crates/mits/src/lib.rs

/root/repo/target/release/deps/libmits-bccfd7218d9d63c9.rmeta: crates/mits/src/lib.rs

crates/mits/src/lib.rs:
