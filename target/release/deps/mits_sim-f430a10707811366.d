/root/repo/target/release/deps/mits_sim-f430a10707811366.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libmits_sim-f430a10707811366.rlib: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libmits_sim-f430a10707811366.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
