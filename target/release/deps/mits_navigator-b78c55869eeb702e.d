/root/repo/target/release/deps/mits_navigator-b78c55869eeb702e.d: crates/navigator/src/lib.rs crates/navigator/src/bookmarks.rs crates/navigator/src/library.rs crates/navigator/src/presentation.rs crates/navigator/src/screens.rs

/root/repo/target/release/deps/libmits_navigator-b78c55869eeb702e.rlib: crates/navigator/src/lib.rs crates/navigator/src/bookmarks.rs crates/navigator/src/library.rs crates/navigator/src/presentation.rs crates/navigator/src/screens.rs

/root/repo/target/release/deps/libmits_navigator-b78c55869eeb702e.rmeta: crates/navigator/src/lib.rs crates/navigator/src/bookmarks.rs crates/navigator/src/library.rs crates/navigator/src/presentation.rs crates/navigator/src/screens.rs

crates/navigator/src/lib.rs:
crates/navigator/src/bookmarks.rs:
crates/navigator/src/library.rs:
crates/navigator/src/presentation.rs:
crates/navigator/src/screens.rs:
