/root/repo/target/release/examples/teleschool_session-ba0408948bcaceba.d: crates/mits/../../examples/teleschool_session.rs

/root/repo/target/release/examples/teleschool_session-ba0408948bcaceba: crates/mits/../../examples/teleschool_session.rs

crates/mits/../../examples/teleschool_session.rs:
