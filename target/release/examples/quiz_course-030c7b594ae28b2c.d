/root/repo/target/release/examples/quiz_course-030c7b594ae28b2c.d: crates/mits/../../examples/quiz_course.rs

/root/repo/target/release/examples/quiz_course-030c7b594ae28b2c: crates/mits/../../examples/quiz_course.rs

crates/mits/../../examples/quiz_course.rs:
