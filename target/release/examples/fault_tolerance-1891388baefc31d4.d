/root/repo/target/release/examples/fault_tolerance-1891388baefc31d4.d: crates/mits/../../examples/fault_tolerance.rs

/root/repo/target/release/examples/fault_tolerance-1891388baefc31d4: crates/mits/../../examples/fault_tolerance.rs

crates/mits/../../examples/fault_tolerance.rs:
