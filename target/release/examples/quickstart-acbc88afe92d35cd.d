/root/repo/target/release/examples/quickstart-acbc88afe92d35cd.d: crates/mits/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-acbc88afe92d35cd: crates/mits/../../examples/quickstart.rs

crates/mits/../../examples/quickstart.rs:
