/root/repo/target/release/examples/atm_course-42521046714c6fd0.d: crates/mits/../../examples/atm_course.rs

/root/repo/target/release/examples/atm_course-42521046714c6fd0: crates/mits/../../examples/atm_course.rs

crates/mits/../../examples/atm_course.rs:
