/root/repo/target/release/examples/facilitator_comparison-89ff142a818f7c4c.d: crates/mits/../../examples/facilitator_comparison.rs

/root/repo/target/release/examples/facilitator_comparison-89ff142a818f7c4c: crates/mits/../../examples/facilitator_comparison.rs

crates/mits/../../examples/facilitator_comparison.rs:
