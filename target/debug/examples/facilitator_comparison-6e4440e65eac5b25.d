/root/repo/target/debug/examples/facilitator_comparison-6e4440e65eac5b25.d: crates/mits/../../examples/facilitator_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libfacilitator_comparison-6e4440e65eac5b25.rmeta: crates/mits/../../examples/facilitator_comparison.rs Cargo.toml

crates/mits/../../examples/facilitator_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
