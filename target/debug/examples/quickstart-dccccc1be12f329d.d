/root/repo/target/debug/examples/quickstart-dccccc1be12f329d.d: crates/mits/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-dccccc1be12f329d: crates/mits/../../examples/quickstart.rs

crates/mits/../../examples/quickstart.rs:
