/root/repo/target/debug/examples/facilitator_comparison-6e1bd793ba05bf4b.d: crates/mits/../../examples/facilitator_comparison.rs

/root/repo/target/debug/examples/facilitator_comparison-6e1bd793ba05bf4b: crates/mits/../../examples/facilitator_comparison.rs

crates/mits/../../examples/facilitator_comparison.rs:
