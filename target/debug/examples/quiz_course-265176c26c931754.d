/root/repo/target/debug/examples/quiz_course-265176c26c931754.d: crates/mits/../../examples/quiz_course.rs Cargo.toml

/root/repo/target/debug/examples/libquiz_course-265176c26c931754.rmeta: crates/mits/../../examples/quiz_course.rs Cargo.toml

crates/mits/../../examples/quiz_course.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
