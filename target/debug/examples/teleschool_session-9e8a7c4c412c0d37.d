/root/repo/target/debug/examples/teleschool_session-9e8a7c4c412c0d37.d: crates/mits/../../examples/teleschool_session.rs Cargo.toml

/root/repo/target/debug/examples/libteleschool_session-9e8a7c4c412c0d37.rmeta: crates/mits/../../examples/teleschool_session.rs Cargo.toml

crates/mits/../../examples/teleschool_session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
