/root/repo/target/debug/examples/atm_course-58c4e5a35bcf4f66.d: crates/mits/../../examples/atm_course.rs Cargo.toml

/root/repo/target/debug/examples/libatm_course-58c4e5a35bcf4f66.rmeta: crates/mits/../../examples/atm_course.rs Cargo.toml

crates/mits/../../examples/atm_course.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
