/root/repo/target/debug/examples/quickstart-b8649a8ba45a3ff9.d: crates/mits/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-b8649a8ba45a3ff9.rmeta: crates/mits/../../examples/quickstart.rs Cargo.toml

crates/mits/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
