/root/repo/target/debug/examples/quiz_course-425dbfe144d845b3.d: crates/mits/../../examples/quiz_course.rs

/root/repo/target/debug/examples/libquiz_course-425dbfe144d845b3.rmeta: crates/mits/../../examples/quiz_course.rs

crates/mits/../../examples/quiz_course.rs:
