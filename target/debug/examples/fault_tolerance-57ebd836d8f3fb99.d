/root/repo/target/debug/examples/fault_tolerance-57ebd836d8f3fb99.d: crates/mits/../../examples/fault_tolerance.rs Cargo.toml

/root/repo/target/debug/examples/libfault_tolerance-57ebd836d8f3fb99.rmeta: crates/mits/../../examples/fault_tolerance.rs Cargo.toml

crates/mits/../../examples/fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
