/root/repo/target/debug/examples/fault_tolerance-06f4c62bd6c06e5e.d: crates/mits/../../examples/fault_tolerance.rs

/root/repo/target/debug/examples/fault_tolerance-06f4c62bd6c06e5e: crates/mits/../../examples/fault_tolerance.rs

crates/mits/../../examples/fault_tolerance.rs:
