/root/repo/target/debug/examples/teleschool_session-31bab9d0f25e02d3.d: crates/mits/../../examples/teleschool_session.rs

/root/repo/target/debug/examples/teleschool_session-31bab9d0f25e02d3: crates/mits/../../examples/teleschool_session.rs

crates/mits/../../examples/teleschool_session.rs:
