/root/repo/target/debug/examples/atm_course-78bd26bc52fd2c7b.d: crates/mits/../../examples/atm_course.rs

/root/repo/target/debug/examples/atm_course-78bd26bc52fd2c7b: crates/mits/../../examples/atm_course.rs

crates/mits/../../examples/atm_course.rs:
