/root/repo/target/debug/examples/quiz_course-056a977ff3c91c87.d: crates/mits/../../examples/quiz_course.rs

/root/repo/target/debug/examples/quiz_course-056a977ff3c91c87: crates/mits/../../examples/quiz_course.rs

crates/mits/../../examples/quiz_course.rs:
