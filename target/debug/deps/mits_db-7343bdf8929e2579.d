/root/repo/target/debug/deps/mits_db-7343bdf8929e2579.d: crates/db/src/lib.rs crates/db/src/client.rs crates/db/src/index.rs crates/db/src/protocol.rs crates/db/src/server.rs crates/db/src/snapshot.rs crates/db/src/store.rs crates/db/src/wal.rs Cargo.toml

/root/repo/target/debug/deps/libmits_db-7343bdf8929e2579.rmeta: crates/db/src/lib.rs crates/db/src/client.rs crates/db/src/index.rs crates/db/src/protocol.rs crates/db/src/server.rs crates/db/src/snapshot.rs crates/db/src/store.rs crates/db/src/wal.rs Cargo.toml

crates/db/src/lib.rs:
crates/db/src/client.rs:
crates/db/src/index.rs:
crates/db/src/protocol.rs:
crates/db/src/server.rs:
crates/db/src/snapshot.rs:
crates/db/src/store.rs:
crates/db/src/wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
