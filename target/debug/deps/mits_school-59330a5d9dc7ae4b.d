/root/repo/target/debug/deps/mits_school-59330a5d9dc7ae4b.d: crates/school/src/lib.rs crates/school/src/billing.rs crates/school/src/bulletin.rs crates/school/src/discussion.rs crates/school/src/exercise.rs crates/school/src/facilitator.rs crates/school/src/records.rs Cargo.toml

/root/repo/target/debug/deps/libmits_school-59330a5d9dc7ae4b.rmeta: crates/school/src/lib.rs crates/school/src/billing.rs crates/school/src/bulletin.rs crates/school/src/discussion.rs crates/school/src/exercise.rs crates/school/src/facilitator.rs crates/school/src/records.rs Cargo.toml

crates/school/src/lib.rs:
crates/school/src/billing.rs:
crates/school/src/bulletin.rs:
crates/school/src/discussion.rs:
crates/school/src/exercise.rs:
crates/school/src/facilitator.rs:
crates/school/src/records.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
