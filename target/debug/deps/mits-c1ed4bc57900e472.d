/root/repo/target/debug/deps/mits-c1ed4bc57900e472.d: crates/mits/src/lib.rs

/root/repo/target/debug/deps/libmits-c1ed4bc57900e472.rlib: crates/mits/src/lib.rs

/root/repo/target/debug/deps/libmits-c1ed4bc57900e472.rmeta: crates/mits/src/lib.rs

crates/mits/src/lib.rs:
