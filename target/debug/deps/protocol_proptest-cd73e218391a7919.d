/root/repo/target/debug/deps/protocol_proptest-cd73e218391a7919.d: crates/db/tests/protocol_proptest.rs

/root/repo/target/debug/deps/protocol_proptest-cd73e218391a7919: crates/db/tests/protocol_proptest.rs

crates/db/tests/protocol_proptest.rs:
