/root/repo/target/debug/deps/interchange-5efbe138ee07ce3c.d: crates/mits/../../tests/interchange.rs Cargo.toml

/root/repo/target/debug/deps/libinterchange-5efbe138ee07ce3c.rmeta: crates/mits/../../tests/interchange.rs Cargo.toml

crates/mits/../../tests/interchange.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
