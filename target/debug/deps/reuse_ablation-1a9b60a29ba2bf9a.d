/root/repo/target/debug/deps/reuse_ablation-1a9b60a29ba2bf9a.d: crates/bench/benches/reuse_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libreuse_ablation-1a9b60a29ba2bf9a.rmeta: crates/bench/benches/reuse_ablation.rs Cargo.toml

crates/bench/benches/reuse_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
