/root/repo/target/debug/deps/codec_proptest-7a27a73f045a5650.d: crates/mheg/tests/codec_proptest.rs

/root/repo/target/debug/deps/codec_proptest-7a27a73f045a5650: crates/mheg/tests/codec_proptest.rs

crates/mheg/tests/codec_proptest.rs:
