/root/repo/target/debug/deps/mits_mheg-888e3aaac20aa5e7.d: crates/mheg/src/lib.rs crates/mheg/src/action.rs crates/mheg/src/class.rs crates/mheg/src/codec/mod.rs crates/mheg/src/codec/node.rs crates/mheg/src/codec/sgml.rs crates/mheg/src/codec/tlv.rs crates/mheg/src/codec/tree.rs crates/mheg/src/descriptor.rs crates/mheg/src/engine.rs crates/mheg/src/ids.rs crates/mheg/src/library.rs crates/mheg/src/link.rs crates/mheg/src/object.rs crates/mheg/src/runtime.rs crates/mheg/src/script.rs crates/mheg/src/sync.rs crates/mheg/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libmits_mheg-888e3aaac20aa5e7.rmeta: crates/mheg/src/lib.rs crates/mheg/src/action.rs crates/mheg/src/class.rs crates/mheg/src/codec/mod.rs crates/mheg/src/codec/node.rs crates/mheg/src/codec/sgml.rs crates/mheg/src/codec/tlv.rs crates/mheg/src/codec/tree.rs crates/mheg/src/descriptor.rs crates/mheg/src/engine.rs crates/mheg/src/ids.rs crates/mheg/src/library.rs crates/mheg/src/link.rs crates/mheg/src/object.rs crates/mheg/src/runtime.rs crates/mheg/src/script.rs crates/mheg/src/sync.rs crates/mheg/src/value.rs Cargo.toml

crates/mheg/src/lib.rs:
crates/mheg/src/action.rs:
crates/mheg/src/class.rs:
crates/mheg/src/codec/mod.rs:
crates/mheg/src/codec/node.rs:
crates/mheg/src/codec/sgml.rs:
crates/mheg/src/codec/tlv.rs:
crates/mheg/src/codec/tree.rs:
crates/mheg/src/descriptor.rs:
crates/mheg/src/engine.rs:
crates/mheg/src/ids.rs:
crates/mheg/src/library.rs:
crates/mheg/src/link.rs:
crates/mheg/src/object.rs:
crates/mheg/src/runtime.rs:
crates/mheg/src/script.rs:
crates/mheg/src/sync.rs:
crates/mheg/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
