/root/repo/target/debug/deps/codec_proptest-5901b5d99344c016.d: crates/mheg/tests/codec_proptest.rs Cargo.toml

/root/repo/target/debug/deps/libcodec_proptest-5901b5d99344c016.rmeta: crates/mheg/tests/codec_proptest.rs Cargo.toml

crates/mheg/tests/codec_proptest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
