/root/repo/target/debug/deps/mits_sim-75e1653a7029f714.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/mits_sim-75e1653a7029f714: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
