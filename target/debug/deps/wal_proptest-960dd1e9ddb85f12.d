/root/repo/target/debug/deps/wal_proptest-960dd1e9ddb85f12.d: crates/db/tests/wal_proptest.rs Cargo.toml

/root/repo/target/debug/deps/libwal_proptest-960dd1e9ddb85f12.rmeta: crates/db/tests/wal_proptest.rs Cargo.toml

crates/db/tests/wal_proptest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
