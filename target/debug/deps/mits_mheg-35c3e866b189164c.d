/root/repo/target/debug/deps/mits_mheg-35c3e866b189164c.d: crates/mheg/src/lib.rs crates/mheg/src/action.rs crates/mheg/src/class.rs crates/mheg/src/codec/mod.rs crates/mheg/src/codec/node.rs crates/mheg/src/codec/sgml.rs crates/mheg/src/codec/tlv.rs crates/mheg/src/codec/tree.rs crates/mheg/src/descriptor.rs crates/mheg/src/engine.rs crates/mheg/src/ids.rs crates/mheg/src/library.rs crates/mheg/src/link.rs crates/mheg/src/object.rs crates/mheg/src/runtime.rs crates/mheg/src/script.rs crates/mheg/src/sync.rs crates/mheg/src/value.rs

/root/repo/target/debug/deps/mits_mheg-35c3e866b189164c: crates/mheg/src/lib.rs crates/mheg/src/action.rs crates/mheg/src/class.rs crates/mheg/src/codec/mod.rs crates/mheg/src/codec/node.rs crates/mheg/src/codec/sgml.rs crates/mheg/src/codec/tlv.rs crates/mheg/src/codec/tree.rs crates/mheg/src/descriptor.rs crates/mheg/src/engine.rs crates/mheg/src/ids.rs crates/mheg/src/library.rs crates/mheg/src/link.rs crates/mheg/src/object.rs crates/mheg/src/runtime.rs crates/mheg/src/script.rs crates/mheg/src/sync.rs crates/mheg/src/value.rs

crates/mheg/src/lib.rs:
crates/mheg/src/action.rs:
crates/mheg/src/class.rs:
crates/mheg/src/codec/mod.rs:
crates/mheg/src/codec/node.rs:
crates/mheg/src/codec/sgml.rs:
crates/mheg/src/codec/tlv.rs:
crates/mheg/src/codec/tree.rs:
crates/mheg/src/descriptor.rs:
crates/mheg/src/engine.rs:
crates/mheg/src/ids.rs:
crates/mheg/src/library.rs:
crates/mheg/src/link.rs:
crates/mheg/src/object.rs:
crates/mheg/src/runtime.rs:
crates/mheg/src/script.rs:
crates/mheg/src/sync.rs:
crates/mheg/src/value.rs:
