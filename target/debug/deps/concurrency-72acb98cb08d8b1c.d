/root/repo/target/debug/deps/concurrency-72acb98cb08d8b1c.d: crates/mits/../../tests/concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency-72acb98cb08d8b1c.rmeta: crates/mits/../../tests/concurrency.rs Cargo.toml

crates/mits/../../tests/concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
