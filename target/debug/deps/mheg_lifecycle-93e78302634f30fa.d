/root/repo/target/debug/deps/mheg_lifecycle-93e78302634f30fa.d: crates/bench/benches/mheg_lifecycle.rs

/root/repo/target/debug/deps/mheg_lifecycle-93e78302634f30fa: crates/bench/benches/mheg_lifecycle.rs

crates/bench/benches/mheg_lifecycle.rs:
