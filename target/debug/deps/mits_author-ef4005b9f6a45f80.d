/root/repo/target/debug/deps/mits_author-ef4005b9f6a45f80.d: crates/author/src/lib.rs crates/author/src/compile.rs crates/author/src/courseware_lib.rs crates/author/src/editor.rs crates/author/src/hyperdoc.rs crates/author/src/imd.rs crates/author/src/teaching.rs

/root/repo/target/debug/deps/mits_author-ef4005b9f6a45f80: crates/author/src/lib.rs crates/author/src/compile.rs crates/author/src/courseware_lib.rs crates/author/src/editor.rs crates/author/src/hyperdoc.rs crates/author/src/imd.rs crates/author/src/teaching.rs

crates/author/src/lib.rs:
crates/author/src/compile.rs:
crates/author/src/courseware_lib.rs:
crates/author/src/editor.rs:
crates/author/src/hyperdoc.rs:
crates/author/src/imd.rs:
crates/author/src/teaching.rs:
