/root/repo/target/debug/deps/mits_author-ce1f4b8688773682.d: crates/author/src/lib.rs crates/author/src/compile.rs crates/author/src/courseware_lib.rs crates/author/src/editor.rs crates/author/src/hyperdoc.rs crates/author/src/imd.rs crates/author/src/teaching.rs

/root/repo/target/debug/deps/libmits_author-ce1f4b8688773682.rlib: crates/author/src/lib.rs crates/author/src/compile.rs crates/author/src/courseware_lib.rs crates/author/src/editor.rs crates/author/src/hyperdoc.rs crates/author/src/imd.rs crates/author/src/teaching.rs

/root/repo/target/debug/deps/libmits_author-ce1f4b8688773682.rmeta: crates/author/src/lib.rs crates/author/src/compile.rs crates/author/src/courseware_lib.rs crates/author/src/editor.rs crates/author/src/hyperdoc.rs crates/author/src/imd.rs crates/author/src/teaching.rs

crates/author/src/lib.rs:
crates/author/src/compile.rs:
crates/author/src/courseware_lib.rs:
crates/author/src/editor.rs:
crates/author/src/hyperdoc.rs:
crates/author/src/imd.rs:
crates/author/src/teaching.rs:
