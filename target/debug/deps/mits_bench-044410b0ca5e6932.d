/root/repo/target/debug/deps/mits_bench-044410b0ca5e6932.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmits_bench-044410b0ca5e6932.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
