/root/repo/target/debug/deps/mheg_lifecycle-03e87d11dca78650.d: crates/bench/benches/mheg_lifecycle.rs Cargo.toml

/root/repo/target/debug/deps/libmheg_lifecycle-03e87d11dca78650.rmeta: crates/bench/benches/mheg_lifecycle.rs Cargo.toml

crates/bench/benches/mheg_lifecycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
