/root/repo/target/debug/deps/client_server-bd3108f8a6c0d859.d: crates/bench/benches/client_server.rs

/root/repo/target/debug/deps/client_server-bd3108f8a6c0d859: crates/bench/benches/client_server.rs

crates/bench/benches/client_server.rs:
