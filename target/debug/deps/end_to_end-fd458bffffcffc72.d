/root/repo/target/debug/deps/end_to_end-fd458bffffcffc72.d: crates/mits/../../tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-fd458bffffcffc72.rmeta: crates/mits/../../tests/end_to_end.rs Cargo.toml

crates/mits/../../tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
