/root/repo/target/debug/deps/atm_proptest-ded9917d0e648161.d: crates/atm/tests/atm_proptest.rs Cargo.toml

/root/repo/target/debug/deps/libatm_proptest-ded9917d0e648161.rmeta: crates/atm/tests/atm_proptest.rs Cargo.toml

crates/atm/tests/atm_proptest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
