/root/repo/target/debug/deps/bytes-f779291ea16028ed.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-f779291ea16028ed.rlib: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-f779291ea16028ed.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
