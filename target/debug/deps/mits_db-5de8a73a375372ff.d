/root/repo/target/debug/deps/mits_db-5de8a73a375372ff.d: crates/db/src/lib.rs crates/db/src/client.rs crates/db/src/index.rs crates/db/src/protocol.rs crates/db/src/server.rs crates/db/src/snapshot.rs crates/db/src/store.rs crates/db/src/wal.rs Cargo.toml

/root/repo/target/debug/deps/libmits_db-5de8a73a375372ff.rmeta: crates/db/src/lib.rs crates/db/src/client.rs crates/db/src/index.rs crates/db/src/protocol.rs crates/db/src/server.rs crates/db/src/snapshot.rs crates/db/src/store.rs crates/db/src/wal.rs Cargo.toml

crates/db/src/lib.rs:
crates/db/src/client.rs:
crates/db/src/index.rs:
crates/db/src/protocol.rs:
crates/db/src/server.rs:
crates/db/src/snapshot.rs:
crates/db/src/store.rs:
crates/db/src/wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
