/root/repo/target/debug/deps/networks-02c31b168b482ba2.d: crates/bench/benches/networks.rs

/root/repo/target/debug/deps/networks-02c31b168b482ba2: crates/bench/benches/networks.rs

crates/bench/benches/networks.rs:
