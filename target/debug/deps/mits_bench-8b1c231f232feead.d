/root/repo/target/debug/deps/mits_bench-8b1c231f232feead.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmits_bench-8b1c231f232feead.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmits_bench-8b1c231f232feead.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
