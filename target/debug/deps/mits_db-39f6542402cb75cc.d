/root/repo/target/debug/deps/mits_db-39f6542402cb75cc.d: crates/db/src/lib.rs crates/db/src/client.rs crates/db/src/index.rs crates/db/src/protocol.rs crates/db/src/server.rs crates/db/src/snapshot.rs crates/db/src/store.rs crates/db/src/wal.rs

/root/repo/target/debug/deps/mits_db-39f6542402cb75cc: crates/db/src/lib.rs crates/db/src/client.rs crates/db/src/index.rs crates/db/src/protocol.rs crates/db/src/server.rs crates/db/src/snapshot.rs crates/db/src/store.rs crates/db/src/wal.rs

crates/db/src/lib.rs:
crates/db/src/client.rs:
crates/db/src/index.rs:
crates/db/src/protocol.rs:
crates/db/src/server.rs:
crates/db/src/snapshot.rs:
crates/db/src/store.rs:
crates/db/src/wal.rs:
