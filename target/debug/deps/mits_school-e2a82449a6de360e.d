/root/repo/target/debug/deps/mits_school-e2a82449a6de360e.d: crates/school/src/lib.rs crates/school/src/billing.rs crates/school/src/bulletin.rs crates/school/src/discussion.rs crates/school/src/exercise.rs crates/school/src/facilitator.rs crates/school/src/records.rs Cargo.toml

/root/repo/target/debug/deps/libmits_school-e2a82449a6de360e.rmeta: crates/school/src/lib.rs crates/school/src/billing.rs crates/school/src/bulletin.rs crates/school/src/discussion.rs crates/school/src/exercise.rs crates/school/src/facilitator.rs crates/school/src/records.rs Cargo.toml

crates/school/src/lib.rs:
crates/school/src/billing.rs:
crates/school/src/bulletin.rs:
crates/school/src/discussion.rs:
crates/school/src/exercise.rs:
crates/school/src/facilitator.rs:
crates/school/src/records.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
