/root/repo/target/debug/deps/mits-9f3df0de48d060aa.d: crates/mits/src/lib.rs

/root/repo/target/debug/deps/libmits-9f3df0de48d060aa.rmeta: crates/mits/src/lib.rs

crates/mits/src/lib.rs:
