/root/repo/target/debug/deps/mits_db-2dcf89198ac6e4eb.d: crates/db/src/lib.rs crates/db/src/client.rs crates/db/src/index.rs crates/db/src/protocol.rs crates/db/src/server.rs crates/db/src/snapshot.rs crates/db/src/store.rs crates/db/src/wal.rs

/root/repo/target/debug/deps/libmits_db-2dcf89198ac6e4eb.rlib: crates/db/src/lib.rs crates/db/src/client.rs crates/db/src/index.rs crates/db/src/protocol.rs crates/db/src/server.rs crates/db/src/snapshot.rs crates/db/src/store.rs crates/db/src/wal.rs

/root/repo/target/debug/deps/libmits_db-2dcf89198ac6e4eb.rmeta: crates/db/src/lib.rs crates/db/src/client.rs crates/db/src/index.rs crates/db/src/protocol.rs crates/db/src/server.rs crates/db/src/snapshot.rs crates/db/src/store.rs crates/db/src/wal.rs

crates/db/src/lib.rs:
crates/db/src/client.rs:
crates/db/src/index.rs:
crates/db/src/protocol.rs:
crates/db/src/server.rs:
crates/db/src/snapshot.rs:
crates/db/src/store.rs:
crates/db/src/wal.rs:
