/root/repo/target/debug/deps/wal_proptest-a2364d7fa8400c44.d: crates/db/tests/wal_proptest.rs

/root/repo/target/debug/deps/wal_proptest-a2364d7fa8400c44: crates/db/tests/wal_proptest.rs

crates/db/tests/wal_proptest.rs:
