/root/repo/target/debug/deps/pipeline-59c973f901ac3bcf.d: crates/bench/benches/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-59c973f901ac3bcf.rmeta: crates/bench/benches/pipeline.rs Cargo.toml

crates/bench/benches/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
