/root/repo/target/debug/deps/concurrency-120f64f9f6d09095.d: crates/mits/../../tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-120f64f9f6d09095: crates/mits/../../tests/concurrency.rs

crates/mits/../../tests/concurrency.rs:
