/root/repo/target/debug/deps/mits_media-6fe100111dd31b0f.d: crates/media/src/lib.rs crates/media/src/codec.rs crates/media/src/format.rs crates/media/src/mci.rs crates/media/src/object.rs crates/media/src/producer.rs

/root/repo/target/debug/deps/mits_media-6fe100111dd31b0f: crates/media/src/lib.rs crates/media/src/codec.rs crates/media/src/format.rs crates/media/src/mci.rs crates/media/src/object.rs crates/media/src/producer.rs

crates/media/src/lib.rs:
crates/media/src/codec.rs:
crates/media/src/format.rs:
crates/media/src/mci.rs:
crates/media/src/object.rs:
crates/media/src/producer.rs:
