/root/repo/target/debug/deps/mits_media-e7cd392a88fb9758.d: crates/media/src/lib.rs crates/media/src/codec.rs crates/media/src/format.rs crates/media/src/mci.rs crates/media/src/object.rs crates/media/src/producer.rs

/root/repo/target/debug/deps/libmits_media-e7cd392a88fb9758.rmeta: crates/media/src/lib.rs crates/media/src/codec.rs crates/media/src/format.rs crates/media/src/mci.rs crates/media/src/object.rs crates/media/src/producer.rs

crates/media/src/lib.rs:
crates/media/src/codec.rs:
crates/media/src/format.rs:
crates/media/src/mci.rs:
crates/media/src/object.rs:
crates/media/src/producer.rs:
