/root/repo/target/debug/deps/durability-d127d710e449921a.d: crates/mits/../../tests/durability.rs Cargo.toml

/root/repo/target/debug/deps/libdurability-d127d710e449921a.rmeta: crates/mits/../../tests/durability.rs Cargo.toml

crates/mits/../../tests/durability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
