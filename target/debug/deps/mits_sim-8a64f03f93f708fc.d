/root/repo/target/debug/deps/mits_sim-8a64f03f93f708fc.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libmits_sim-8a64f03f93f708fc.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
