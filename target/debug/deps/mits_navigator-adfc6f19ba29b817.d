/root/repo/target/debug/deps/mits_navigator-adfc6f19ba29b817.d: crates/navigator/src/lib.rs crates/navigator/src/bookmarks.rs crates/navigator/src/library.rs crates/navigator/src/presentation.rs crates/navigator/src/screens.rs Cargo.toml

/root/repo/target/debug/deps/libmits_navigator-adfc6f19ba29b817.rmeta: crates/navigator/src/lib.rs crates/navigator/src/bookmarks.rs crates/navigator/src/library.rs crates/navigator/src/presentation.rs crates/navigator/src/screens.rs Cargo.toml

crates/navigator/src/lib.rs:
crates/navigator/src/bookmarks.rs:
crates/navigator/src/library.rs:
crates/navigator/src/presentation.rs:
crates/navigator/src/screens.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
