/root/repo/target/debug/deps/mits_bench-707e2ce45c8d0dbb.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmits_bench-707e2ce45c8d0dbb.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
