/root/repo/target/debug/deps/networks-c3e3a91689179f4b.d: crates/bench/benches/networks.rs Cargo.toml

/root/repo/target/debug/deps/libnetworks-c3e3a91689179f4b.rmeta: crates/bench/benches/networks.rs Cargo.toml

crates/bench/benches/networks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
