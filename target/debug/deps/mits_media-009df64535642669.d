/root/repo/target/debug/deps/mits_media-009df64535642669.d: crates/media/src/lib.rs crates/media/src/codec.rs crates/media/src/format.rs crates/media/src/mci.rs crates/media/src/object.rs crates/media/src/producer.rs

/root/repo/target/debug/deps/libmits_media-009df64535642669.rlib: crates/media/src/lib.rs crates/media/src/codec.rs crates/media/src/format.rs crates/media/src/mci.rs crates/media/src/object.rs crates/media/src/producer.rs

/root/repo/target/debug/deps/libmits_media-009df64535642669.rmeta: crates/media/src/lib.rs crates/media/src/codec.rs crates/media/src/format.rs crates/media/src/mci.rs crates/media/src/object.rs crates/media/src/producer.rs

crates/media/src/lib.rs:
crates/media/src/codec.rs:
crates/media/src/format.rs:
crates/media/src/mci.rs:
crates/media/src/object.rs:
crates/media/src/producer.rs:
