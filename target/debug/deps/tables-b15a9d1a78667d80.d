/root/repo/target/debug/deps/tables-b15a9d1a78667d80.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-b15a9d1a78667d80: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
