/root/repo/target/debug/deps/interchange-71e61a113a54e76c.d: crates/mits/../../tests/interchange.rs

/root/repo/target/debug/deps/interchange-71e61a113a54e76c: crates/mits/../../tests/interchange.rs

crates/mits/../../tests/interchange.rs:
