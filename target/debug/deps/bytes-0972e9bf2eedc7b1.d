/root/repo/target/debug/deps/bytes-0972e9bf2eedc7b1.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-0972e9bf2eedc7b1.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
