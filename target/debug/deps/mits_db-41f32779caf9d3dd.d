/root/repo/target/debug/deps/mits_db-41f32779caf9d3dd.d: crates/db/src/lib.rs crates/db/src/client.rs crates/db/src/index.rs crates/db/src/protocol.rs crates/db/src/server.rs crates/db/src/store.rs

/root/repo/target/debug/deps/libmits_db-41f32779caf9d3dd.rmeta: crates/db/src/lib.rs crates/db/src/client.rs crates/db/src/index.rs crates/db/src/protocol.rs crates/db/src/server.rs crates/db/src/store.rs

crates/db/src/lib.rs:
crates/db/src/client.rs:
crates/db/src/index.rs:
crates/db/src/protocol.rs:
crates/db/src/server.rs:
crates/db/src/store.rs:
