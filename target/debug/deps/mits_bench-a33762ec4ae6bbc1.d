/root/repo/target/debug/deps/mits_bench-a33762ec4ae6bbc1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mits_bench-a33762ec4ae6bbc1: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
