/root/repo/target/debug/deps/end_to_end-3874faa724e2a943.d: crates/mits/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3874faa724e2a943: crates/mits/../../tests/end_to_end.rs

crates/mits/../../tests/end_to_end.rs:
