/root/repo/target/debug/deps/mits-ac317a89667ced4a.d: crates/mits/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmits-ac317a89667ced4a.rmeta: crates/mits/src/lib.rs Cargo.toml

crates/mits/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
