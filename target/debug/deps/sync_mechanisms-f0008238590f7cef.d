/root/repo/target/debug/deps/sync_mechanisms-f0008238590f7cef.d: crates/bench/benches/sync_mechanisms.rs

/root/repo/target/debug/deps/sync_mechanisms-f0008238590f7cef: crates/bench/benches/sync_mechanisms.rs

crates/bench/benches/sync_mechanisms.rs:
