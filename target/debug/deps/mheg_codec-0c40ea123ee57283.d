/root/repo/target/debug/deps/mheg_codec-0c40ea123ee57283.d: crates/bench/benches/mheg_codec.rs

/root/repo/target/debug/deps/mheg_codec-0c40ea123ee57283: crates/bench/benches/mheg_codec.rs

crates/bench/benches/mheg_codec.rs:
