/root/repo/target/debug/deps/mits_atm-445856863f04ffe1.d: crates/atm/src/lib.rs crates/atm/src/aal5.rs crates/atm/src/cell.rs crates/atm/src/fault.rs crates/atm/src/link.rs crates/atm/src/network.rs crates/atm/src/traffic.rs crates/atm/src/transport.rs Cargo.toml

/root/repo/target/debug/deps/libmits_atm-445856863f04ffe1.rmeta: crates/atm/src/lib.rs crates/atm/src/aal5.rs crates/atm/src/cell.rs crates/atm/src/fault.rs crates/atm/src/link.rs crates/atm/src/network.rs crates/atm/src/traffic.rs crates/atm/src/transport.rs Cargo.toml

crates/atm/src/lib.rs:
crates/atm/src/aal5.rs:
crates/atm/src/cell.rs:
crates/atm/src/fault.rs:
crates/atm/src/link.rs:
crates/atm/src/network.rs:
crates/atm/src/traffic.rs:
crates/atm/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
