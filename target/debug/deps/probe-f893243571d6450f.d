/root/repo/target/debug/deps/probe-f893243571d6450f.d: crates/atm/tests/probe.rs

/root/repo/target/debug/deps/probe-f893243571d6450f: crates/atm/tests/probe.rs

crates/atm/tests/probe.rs:
