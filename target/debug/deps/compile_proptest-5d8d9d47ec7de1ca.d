/root/repo/target/debug/deps/compile_proptest-5d8d9d47ec7de1ca.d: crates/author/tests/compile_proptest.rs Cargo.toml

/root/repo/target/debug/deps/libcompile_proptest-5d8d9d47ec7de1ca.rmeta: crates/author/tests/compile_proptest.rs Cargo.toml

crates/author/tests/compile_proptest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
