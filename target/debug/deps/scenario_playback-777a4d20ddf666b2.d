/root/repo/target/debug/deps/scenario_playback-777a4d20ddf666b2.d: crates/bench/benches/scenario_playback.rs

/root/repo/target/debug/deps/scenario_playback-777a4d20ddf666b2: crates/bench/benches/scenario_playback.rs

crates/bench/benches/scenario_playback.rs:
