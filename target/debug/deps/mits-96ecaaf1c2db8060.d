/root/repo/target/debug/deps/mits-96ecaaf1c2db8060.d: crates/mits/src/lib.rs

/root/repo/target/debug/deps/mits-96ecaaf1c2db8060: crates/mits/src/lib.rs

crates/mits/src/lib.rs:
