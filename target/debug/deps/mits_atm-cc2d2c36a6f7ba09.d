/root/repo/target/debug/deps/mits_atm-cc2d2c36a6f7ba09.d: crates/atm/src/lib.rs crates/atm/src/aal5.rs crates/atm/src/cell.rs crates/atm/src/fault.rs crates/atm/src/link.rs crates/atm/src/network.rs crates/atm/src/traffic.rs crates/atm/src/transport.rs

/root/repo/target/debug/deps/mits_atm-cc2d2c36a6f7ba09: crates/atm/src/lib.rs crates/atm/src/aal5.rs crates/atm/src/cell.rs crates/atm/src/fault.rs crates/atm/src/link.rs crates/atm/src/network.rs crates/atm/src/traffic.rs crates/atm/src/transport.rs

crates/atm/src/lib.rs:
crates/atm/src/aal5.rs:
crates/atm/src/cell.rs:
crates/atm/src/fault.rs:
crates/atm/src/link.rs:
crates/atm/src/network.rs:
crates/atm/src/traffic.rs:
crates/atm/src/transport.rs:
