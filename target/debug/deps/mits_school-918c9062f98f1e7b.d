/root/repo/target/debug/deps/mits_school-918c9062f98f1e7b.d: crates/school/src/lib.rs crates/school/src/billing.rs crates/school/src/bulletin.rs crates/school/src/discussion.rs crates/school/src/exercise.rs crates/school/src/facilitator.rs crates/school/src/records.rs

/root/repo/target/debug/deps/mits_school-918c9062f98f1e7b: crates/school/src/lib.rs crates/school/src/billing.rs crates/school/src/bulletin.rs crates/school/src/discussion.rs crates/school/src/exercise.rs crates/school/src/facilitator.rs crates/school/src/records.rs

crates/school/src/lib.rs:
crates/school/src/billing.rs:
crates/school/src/bulletin.rs:
crates/school/src/discussion.rs:
crates/school/src/exercise.rs:
crates/school/src/facilitator.rs:
crates/school/src/records.rs:
