/root/repo/target/debug/deps/reuse_ablation-7b61e365b0af5353.d: crates/bench/benches/reuse_ablation.rs

/root/repo/target/debug/deps/reuse_ablation-7b61e365b0af5353: crates/bench/benches/reuse_ablation.rs

crates/bench/benches/reuse_ablation.rs:
