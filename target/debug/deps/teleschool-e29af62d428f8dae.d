/root/repo/target/debug/deps/teleschool-e29af62d428f8dae.d: crates/mits/../../tests/teleschool.rs Cargo.toml

/root/repo/target/debug/deps/libteleschool-e29af62d428f8dae.rmeta: crates/mits/../../tests/teleschool.rs Cargo.toml

crates/mits/../../tests/teleschool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
