/root/repo/target/debug/deps/mits_core-b110a8332f914b67.d: crates/core/src/lib.rs crates/core/src/cod.rs crates/core/src/models.rs crates/core/src/stack.rs crates/core/src/stream.rs crates/core/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libmits_core-b110a8332f914b67.rmeta: crates/core/src/lib.rs crates/core/src/cod.rs crates/core/src/models.rs crates/core/src/stack.rs crates/core/src/stream.rs crates/core/src/system.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cod.rs:
crates/core/src/models.rs:
crates/core/src/stack.rs:
crates/core/src/stream.rs:
crates/core/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
