/root/repo/target/debug/deps/mits_sim-51a8629c6f75c8e5.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libmits_sim-51a8629c6f75c8e5.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
