/root/repo/target/debug/deps/sync_mechanisms-fa247ed38b4f20d8.d: crates/bench/benches/sync_mechanisms.rs Cargo.toml

/root/repo/target/debug/deps/libsync_mechanisms-fa247ed38b4f20d8.rmeta: crates/bench/benches/sync_mechanisms.rs Cargo.toml

crates/bench/benches/sync_mechanisms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
