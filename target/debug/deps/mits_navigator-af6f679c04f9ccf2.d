/root/repo/target/debug/deps/mits_navigator-af6f679c04f9ccf2.d: crates/navigator/src/lib.rs crates/navigator/src/bookmarks.rs crates/navigator/src/library.rs crates/navigator/src/presentation.rs crates/navigator/src/screens.rs

/root/repo/target/debug/deps/mits_navigator-af6f679c04f9ccf2: crates/navigator/src/lib.rs crates/navigator/src/bookmarks.rs crates/navigator/src/library.rs crates/navigator/src/presentation.rs crates/navigator/src/screens.rs

crates/navigator/src/lib.rs:
crates/navigator/src/bookmarks.rs:
crates/navigator/src/library.rs:
crates/navigator/src/presentation.rs:
crates/navigator/src/screens.rs:
