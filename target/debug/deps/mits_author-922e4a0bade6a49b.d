/root/repo/target/debug/deps/mits_author-922e4a0bade6a49b.d: crates/author/src/lib.rs crates/author/src/compile.rs crates/author/src/courseware_lib.rs crates/author/src/editor.rs crates/author/src/hyperdoc.rs crates/author/src/imd.rs crates/author/src/teaching.rs Cargo.toml

/root/repo/target/debug/deps/libmits_author-922e4a0bade6a49b.rmeta: crates/author/src/lib.rs crates/author/src/compile.rs crates/author/src/courseware_lib.rs crates/author/src/editor.rs crates/author/src/hyperdoc.rs crates/author/src/imd.rs crates/author/src/teaching.rs Cargo.toml

crates/author/src/lib.rs:
crates/author/src/compile.rs:
crates/author/src/courseware_lib.rs:
crates/author/src/editor.rs:
crates/author/src/hyperdoc.rs:
crates/author/src/imd.rs:
crates/author/src/teaching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
