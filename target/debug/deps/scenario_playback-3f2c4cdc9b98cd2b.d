/root/repo/target/debug/deps/scenario_playback-3f2c4cdc9b98cd2b.d: crates/bench/benches/scenario_playback.rs Cargo.toml

/root/repo/target/debug/deps/libscenario_playback-3f2c4cdc9b98cd2b.rmeta: crates/bench/benches/scenario_playback.rs Cargo.toml

crates/bench/benches/scenario_playback.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
