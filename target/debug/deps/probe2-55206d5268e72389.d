/root/repo/target/debug/deps/probe2-55206d5268e72389.d: crates/atm/tests/probe2.rs

/root/repo/target/debug/deps/probe2-55206d5268e72389: crates/atm/tests/probe2.rs

crates/atm/tests/probe2.rs:
