/root/repo/target/debug/deps/compile_proptest-e98dc932bcc4f670.d: crates/author/tests/compile_proptest.rs

/root/repo/target/debug/deps/compile_proptest-e98dc932bcc4f670: crates/author/tests/compile_proptest.rs

crates/author/tests/compile_proptest.rs:
