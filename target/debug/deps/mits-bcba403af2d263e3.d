/root/repo/target/debug/deps/mits-bcba403af2d263e3.d: crates/mits/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmits-bcba403af2d263e3.rmeta: crates/mits/src/lib.rs Cargo.toml

crates/mits/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
