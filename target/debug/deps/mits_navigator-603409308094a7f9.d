/root/repo/target/debug/deps/mits_navigator-603409308094a7f9.d: crates/navigator/src/lib.rs crates/navigator/src/bookmarks.rs crates/navigator/src/library.rs crates/navigator/src/presentation.rs crates/navigator/src/screens.rs

/root/repo/target/debug/deps/libmits_navigator-603409308094a7f9.rmeta: crates/navigator/src/lib.rs crates/navigator/src/bookmarks.rs crates/navigator/src/library.rs crates/navigator/src/presentation.rs crates/navigator/src/screens.rs

crates/navigator/src/lib.rs:
crates/navigator/src/bookmarks.rs:
crates/navigator/src/library.rs:
crates/navigator/src/presentation.rs:
crates/navigator/src/screens.rs:
