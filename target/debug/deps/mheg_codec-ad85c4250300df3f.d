/root/repo/target/debug/deps/mheg_codec-ad85c4250300df3f.d: crates/bench/benches/mheg_codec.rs Cargo.toml

/root/repo/target/debug/deps/libmheg_codec-ad85c4250300df3f.rmeta: crates/bench/benches/mheg_codec.rs Cargo.toml

crates/bench/benches/mheg_codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
