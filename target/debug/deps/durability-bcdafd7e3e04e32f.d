/root/repo/target/debug/deps/durability-bcdafd7e3e04e32f.d: crates/mits/../../tests/durability.rs

/root/repo/target/debug/deps/durability-bcdafd7e3e04e32f: crates/mits/../../tests/durability.rs

crates/mits/../../tests/durability.rs:
