/root/repo/target/debug/deps/client_server-4755e92616b3a2ce.d: crates/bench/benches/client_server.rs Cargo.toml

/root/repo/target/debug/deps/libclient_server-4755e92616b3a2ce.rmeta: crates/bench/benches/client_server.rs Cargo.toml

crates/bench/benches/client_server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
