/root/repo/target/debug/deps/atm_proptest-3a97b003073df5b6.d: crates/atm/tests/atm_proptest.rs

/root/repo/target/debug/deps/atm_proptest-3a97b003073df5b6: crates/atm/tests/atm_proptest.rs

crates/atm/tests/atm_proptest.rs:
