/root/repo/target/debug/deps/sim_proptest-508205d9c497eea6.d: crates/sim/tests/sim_proptest.rs Cargo.toml

/root/repo/target/debug/deps/libsim_proptest-508205d9c497eea6.rmeta: crates/sim/tests/sim_proptest.rs Cargo.toml

crates/sim/tests/sim_proptest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
