/root/repo/target/debug/deps/mits_author-2efe4a020f4040c0.d: crates/author/src/lib.rs crates/author/src/compile.rs crates/author/src/courseware_lib.rs crates/author/src/editor.rs crates/author/src/hyperdoc.rs crates/author/src/imd.rs crates/author/src/teaching.rs

/root/repo/target/debug/deps/libmits_author-2efe4a020f4040c0.rmeta: crates/author/src/lib.rs crates/author/src/compile.rs crates/author/src/courseware_lib.rs crates/author/src/editor.rs crates/author/src/hyperdoc.rs crates/author/src/imd.rs crates/author/src/teaching.rs

crates/author/src/lib.rs:
crates/author/src/compile.rs:
crates/author/src/courseware_lib.rs:
crates/author/src/editor.rs:
crates/author/src/hyperdoc.rs:
crates/author/src/imd.rs:
crates/author/src/teaching.rs:
