/root/repo/target/debug/deps/mits_navigator-7d40740432e43993.d: crates/navigator/src/lib.rs crates/navigator/src/bookmarks.rs crates/navigator/src/library.rs crates/navigator/src/presentation.rs crates/navigator/src/screens.rs Cargo.toml

/root/repo/target/debug/deps/libmits_navigator-7d40740432e43993.rmeta: crates/navigator/src/lib.rs crates/navigator/src/bookmarks.rs crates/navigator/src/library.rs crates/navigator/src/presentation.rs crates/navigator/src/screens.rs Cargo.toml

crates/navigator/src/lib.rs:
crates/navigator/src/bookmarks.rs:
crates/navigator/src/library.rs:
crates/navigator/src/presentation.rs:
crates/navigator/src/screens.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
