/root/repo/target/debug/deps/media_codecs-55ef7572ff782c04.d: crates/bench/benches/media_codecs.rs Cargo.toml

/root/repo/target/debug/deps/libmedia_codecs-55ef7572ff782c04.rmeta: crates/bench/benches/media_codecs.rs Cargo.toml

crates/bench/benches/media_codecs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
