/root/repo/target/debug/deps/pipeline-513b72551cf45980.d: crates/bench/benches/pipeline.rs

/root/repo/target/debug/deps/pipeline-513b72551cf45980: crates/bench/benches/pipeline.rs

crates/bench/benches/pipeline.rs:
