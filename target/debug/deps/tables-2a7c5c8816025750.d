/root/repo/target/debug/deps/tables-2a7c5c8816025750.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-2a7c5c8816025750: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
