/root/repo/target/debug/deps/tables-db2648366fa50d0e.d: crates/bench/src/bin/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtables-db2648366fa50d0e.rmeta: crates/bench/src/bin/tables.rs Cargo.toml

crates/bench/src/bin/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
