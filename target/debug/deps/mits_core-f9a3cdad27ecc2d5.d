/root/repo/target/debug/deps/mits_core-f9a3cdad27ecc2d5.d: crates/core/src/lib.rs crates/core/src/cod.rs crates/core/src/models.rs crates/core/src/stack.rs crates/core/src/stream.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libmits_core-f9a3cdad27ecc2d5.rlib: crates/core/src/lib.rs crates/core/src/cod.rs crates/core/src/models.rs crates/core/src/stack.rs crates/core/src/stream.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libmits_core-f9a3cdad27ecc2d5.rmeta: crates/core/src/lib.rs crates/core/src/cod.rs crates/core/src/models.rs crates/core/src/stack.rs crates/core/src/stream.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/cod.rs:
crates/core/src/models.rs:
crates/core/src/stack.rs:
crates/core/src/stream.rs:
crates/core/src/system.rs:
