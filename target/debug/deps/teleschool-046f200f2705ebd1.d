/root/repo/target/debug/deps/teleschool-046f200f2705ebd1.d: crates/mits/../../tests/teleschool.rs

/root/repo/target/debug/deps/teleschool-046f200f2705ebd1: crates/mits/../../tests/teleschool.rs

crates/mits/../../tests/teleschool.rs:
