/root/repo/target/debug/deps/mits_media-027fc2f56c78bd40.d: crates/media/src/lib.rs crates/media/src/codec.rs crates/media/src/format.rs crates/media/src/mci.rs crates/media/src/object.rs crates/media/src/producer.rs Cargo.toml

/root/repo/target/debug/deps/libmits_media-027fc2f56c78bd40.rmeta: crates/media/src/lib.rs crates/media/src/codec.rs crates/media/src/format.rs crates/media/src/mci.rs crates/media/src/object.rs crates/media/src/producer.rs Cargo.toml

crates/media/src/lib.rs:
crates/media/src/codec.rs:
crates/media/src/format.rs:
crates/media/src/mci.rs:
crates/media/src/object.rs:
crates/media/src/producer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
