/root/repo/target/debug/deps/mits_atm-6875bece8e21512b.d: crates/atm/src/lib.rs crates/atm/src/aal5.rs crates/atm/src/cell.rs crates/atm/src/fault.rs crates/atm/src/link.rs crates/atm/src/network.rs crates/atm/src/traffic.rs crates/atm/src/transport.rs

/root/repo/target/debug/deps/libmits_atm-6875bece8e21512b.rlib: crates/atm/src/lib.rs crates/atm/src/aal5.rs crates/atm/src/cell.rs crates/atm/src/fault.rs crates/atm/src/link.rs crates/atm/src/network.rs crates/atm/src/traffic.rs crates/atm/src/transport.rs

/root/repo/target/debug/deps/libmits_atm-6875bece8e21512b.rmeta: crates/atm/src/lib.rs crates/atm/src/aal5.rs crates/atm/src/cell.rs crates/atm/src/fault.rs crates/atm/src/link.rs crates/atm/src/network.rs crates/atm/src/traffic.rs crates/atm/src/transport.rs

crates/atm/src/lib.rs:
crates/atm/src/aal5.rs:
crates/atm/src/cell.rs:
crates/atm/src/fault.rs:
crates/atm/src/link.rs:
crates/atm/src/network.rs:
crates/atm/src/traffic.rs:
crates/atm/src/transport.rs:
