/root/repo/target/debug/deps/mits_core-1df3297a13aa8846.d: crates/core/src/lib.rs crates/core/src/cod.rs crates/core/src/models.rs crates/core/src/stack.rs crates/core/src/stream.rs crates/core/src/system.rs

/root/repo/target/debug/deps/mits_core-1df3297a13aa8846: crates/core/src/lib.rs crates/core/src/cod.rs crates/core/src/models.rs crates/core/src/stack.rs crates/core/src/stream.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/cod.rs:
crates/core/src/models.rs:
crates/core/src/stack.rs:
crates/core/src/stream.rs:
crates/core/src/system.rs:
