/root/repo/target/debug/deps/mits_navigator-9fa6c8028b3c4b67.d: crates/navigator/src/lib.rs crates/navigator/src/bookmarks.rs crates/navigator/src/library.rs crates/navigator/src/presentation.rs crates/navigator/src/screens.rs

/root/repo/target/debug/deps/libmits_navigator-9fa6c8028b3c4b67.rlib: crates/navigator/src/lib.rs crates/navigator/src/bookmarks.rs crates/navigator/src/library.rs crates/navigator/src/presentation.rs crates/navigator/src/screens.rs

/root/repo/target/debug/deps/libmits_navigator-9fa6c8028b3c4b67.rmeta: crates/navigator/src/lib.rs crates/navigator/src/bookmarks.rs crates/navigator/src/library.rs crates/navigator/src/presentation.rs crates/navigator/src/screens.rs

crates/navigator/src/lib.rs:
crates/navigator/src/bookmarks.rs:
crates/navigator/src/library.rs:
crates/navigator/src/presentation.rs:
crates/navigator/src/screens.rs:
