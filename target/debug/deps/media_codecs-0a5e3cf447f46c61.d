/root/repo/target/debug/deps/media_codecs-0a5e3cf447f46c61.d: crates/bench/benches/media_codecs.rs

/root/repo/target/debug/deps/media_codecs-0a5e3cf447f46c61: crates/bench/benches/media_codecs.rs

crates/bench/benches/media_codecs.rs:
