/root/repo/target/debug/deps/sim_proptest-84a1a7ee1db80074.d: crates/sim/tests/sim_proptest.rs

/root/repo/target/debug/deps/sim_proptest-84a1a7ee1db80074: crates/sim/tests/sim_proptest.rs

crates/sim/tests/sim_proptest.rs:
