/root/repo/target/debug/deps/protocol_proptest-5c644832e6713963.d: crates/db/tests/protocol_proptest.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_proptest-5c644832e6713963.rmeta: crates/db/tests/protocol_proptest.rs Cargo.toml

crates/db/tests/protocol_proptest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
