/root/repo/target/debug/deps/mits_school-5fb80b1057e7c087.d: crates/school/src/lib.rs crates/school/src/billing.rs crates/school/src/bulletin.rs crates/school/src/discussion.rs crates/school/src/exercise.rs crates/school/src/facilitator.rs crates/school/src/records.rs

/root/repo/target/debug/deps/libmits_school-5fb80b1057e7c087.rlib: crates/school/src/lib.rs crates/school/src/billing.rs crates/school/src/bulletin.rs crates/school/src/discussion.rs crates/school/src/exercise.rs crates/school/src/facilitator.rs crates/school/src/records.rs

/root/repo/target/debug/deps/libmits_school-5fb80b1057e7c087.rmeta: crates/school/src/lib.rs crates/school/src/billing.rs crates/school/src/bulletin.rs crates/school/src/discussion.rs crates/school/src/exercise.rs crates/school/src/facilitator.rs crates/school/src/records.rs

crates/school/src/lib.rs:
crates/school/src/billing.rs:
crates/school/src/bulletin.rs:
crates/school/src/discussion.rs:
crates/school/src/exercise.rs:
crates/school/src/facilitator.rs:
crates/school/src/records.rs:
