#!/usr/bin/env bash
# The full local gate: what CI runs, in the order that fails fastest.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q

# Determinism gate: the observability example's trace must reproduce the
# checked-in golden byte for byte (same seed => same spans, same times).
trace="$(mktemp)"
trap 'rm -f "$trace"' EXIT
cargo run -q --release -p mits --example observability -- --trace-out "$trace" >/dev/null
diff -u tests/golden/observability_trace.jsonl "$trace"
echo "observability trace matches golden"
