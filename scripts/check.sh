#!/usr/bin/env bash
# The full local gate: what CI runs, in the order that fails fastest.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q
