#!/usr/bin/env bash
# The full local gate: what CI runs, in the order that fails fastest.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q
cargo bench --no-run

# Determinism gate: the observability example's trace must reproduce the
# checked-in golden byte for byte (same seed => same spans, same times).
trace="$(mktemp)"
trap 'rm -f "$trace"' EXIT
cargo run -q --release -p mits --example observability -- --trace-out "$trace" >/dev/null
diff -u tests/golden/observability_trace.jsonl "$trace"
echo "observability trace matches golden"

# Campus smoke: a small parallel campus run must produce a well-formed,
# non-empty BENCH_campus.json (written to a temp path so the checked-in
# full-size numbers stay put).
campus_json="$(mktemp)"
trap 'rm -f "$trace" "$campus_json"' EXIT
MITS_CAMPUS_STUDENTS=6 MITS_CAMPUS_THREADS=2 MITS_CAMPUS_CLIPS=2 \
  MITS_CAMPUS_OUT="$campus_json" \
  cargo run -q --release -p mits-bench --bin tables -- --exp campus >/dev/null
python3 - "$campus_json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
for key in ("students", "digest", "digest_match_1_vs_n_threads",
            "metrics_match_1_vs_n_threads", "traces_sampled", "slo_breaches",
            "bytes_simulated", "students_per_sec", "fetch200k_speedup",
            "host_cores", "max_concurrent", "peak_rss_mb"):
    assert key in d, f"BENCH_campus.json missing {key}"
assert d["students"] > 0 and d["bytes_simulated"] > 0, "empty campus run"
assert d["digest_match_1_vs_n_threads"] is True, "campus digest diverged"
assert d["metrics_match_1_vs_n_threads"] is True, "campus metrics rollup diverged"
assert d["max_concurrent"] >= 1, "admission window must be recorded"
PY
echo "campus bench json well-formed"

# Media-path smoke: the per-stage throughput table must emit every stage
# the flame profiler attributes time to, the CRC tiers must all be live,
# and the train fast path must actually beat the per-cell scheduler.
media_json="$(mktemp)"
trap 'rm -f "$trace" "$campus_json" "$media_json"' EXIT
MITS_MEDIA_OUT="$media_json" \
  cargo run -q --release -p mits-bench --bin tables -- --exp media >/dev/null
python3 - "$media_json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
for key in ("crc_hw_accelerated", "crc_slice8_mbps", "crc_slice16_mbps",
            "crc_dispatch_mbps", "segment_mbps", "reassemble_mbps",
            "net_train_mbps", "net_per_cell_mbps", "train_speedup",
            "fetch200k_kbps"):
    assert key in d, f"BENCH_media.json missing {key}"
    if key != "crc_hw_accelerated":
        assert d[key] > 0, f"BENCH_media.json {key} not positive: {d[key]}"
assert d["train_speedup"] > 1.0, (
    f"cell trains slower than per-cell dispatch: {d['train_speedup']}")
PY
echo "media bench json well-formed, train fast path engaged"

# API gate: the deprecated run_campus/CampusConfig shim must not be used
# in-repo outside its own definition and equivalence test.
if grep -rn --include='*.rs' -E 'run_campus\(|CampusConfig::' crates tests examples \
    | grep -v 'crates/core/src/campus.rs'; then
  echo "deprecated campus shim used outside crates/core/src/campus.rs" >&2
  exit 1
fi
echo "no deprecated campus API usage in-repo"

# SLO smoke: a small zero-fault campus must emit valid verdict JSON with
# zero breaches (warn tiers are informational; a breach here means the
# default objectives or the campus telemetry regressed).
slo_json="$(mktemp)"
trap 'rm -f "$trace" "$campus_json" "$slo_json"' EXIT
MITS_SLO_STUDENTS=8 MITS_SLO_THREADS=2 MITS_SLO_CLIPS=2 \
  MITS_SLO_OUT="$slo_json" \
  cargo run -q --release -p mits-bench --bin tables -- --exp slo >/dev/null
python3 - "$slo_json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["slos"], "no SLO verdicts emitted"
for o in d["slos"]:
    for key in ("name", "observed", "warn", "breach", "verdict"):
        assert key in o, f"SLO verdict missing {key}"
    assert o["verdict"] in ("pass", "warn", "breach"), o
assert d["breaches"] == 0, f"zero-fault campus breached SLOs: {d}"
PY
echo "slo verdicts valid, zero breaches"

# Fault-storm smoke: a seeded storm against one shard of the partitioned
# store must stay inside its blast radius (healthy sessions clean and
# byte-identical to the calm twin, zero SLO breaches), replay
# deterministically under its seed, and the flash-crowd edge tier must
# bound origin load by misses + invalidations.
shards_json="$(mktemp)"
trap 'rm -f "$trace" "$campus_json" "$slo_json" "$shards_json"' EXIT
MITS_SHARDS=3 MITS_SHARDS_STUDENTS=6 MITS_SHARDS_CLIP_BYTES=100000 \
  MITS_SHARDS_OUT="$shards_json" \
  cargo run -q --release -p mits-bench --bin tables -- --exp shards >/dev/null
python3 - "$shards_json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
for key in ("shards", "victim_shard", "students", "sessions_on_victim",
            "degraded_on_victim", "healthy_clean", "healthy_digest_match",
            "storm_deterministic", "slo_breaches", "flash_clients",
            "origin_no_cache", "origin_with_cache", "cache_hit_rate",
            "origin_bound_ok", "edge_hits", "edge_misses",
            "edge_invalidations"):
    assert key in d, f"BENCH_shards.json missing {key}"
assert d["healthy_clean"] is True, "storm leaked past the victim shard"
assert d["healthy_digest_match"] is True, "healthy sessions diverged from the calm twin"
assert d["storm_deterministic"] is True, "storm not deterministic under its seed"
assert d["slo_breaches"] == 0, f"fault-storm SLOs breached: {d}"
assert d["degraded_on_victim"] == d["sessions_on_victim"], "storm missed its victim"
assert d["origin_bound_ok"] is True, "edge cache failed to bound origin load"
assert d["origin_with_cache"] < d["origin_no_cache"], "edge cache absorbed nothing"
assert 0.0 < d["cache_hit_rate"] <= 1.0, d["cache_hit_rate"]
PY
echo "fault-storm smoke passed: blast radius contained, storm deterministic"

# Forensics smoke: the same seeded storm, fed to the campus as an
# injected fault schedule, must auto-produce a forensic bundle with a
# valid-JSON causal chain that names the injected fault on the victim
# shard; the calm twin must produce no bundles; the timeline and the
# bundles must be byte-identical serial vs parallel.
forensics_json="$(mktemp)"
trap 'rm -f "$trace" "$campus_json" "$slo_json" "$shards_json" "$forensics_json"' EXIT
MITS_FORENSICS_SHARDS=3 MITS_FORENSICS_STUDENTS=6 \
  MITS_FORENSICS_CLIP_BYTES=100000 MITS_FORENSICS_OUT="$forensics_json" \
  cargo run -q --release -p mits-bench --bin tables -- --exp forensics >/dev/null
python3 - "$forensics_json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
for key in ("shards", "victim_shard", "students", "storm_bundles",
            "calm_bundles", "forensics_match_1_vs_n_threads",
            "chain_names_victim", "exemplar_trace_resolvable",
            "timeline", "bundles"):
    assert key in d, f"BENCH_forensics.json missing {key}"
victim = d["victim_shard"]
assert d["storm_bundles"] >= 1, "storm produced no forensic bundle"
assert d["calm_bundles"] == 0, "calm twin produced a forensic bundle"
assert d["forensics_match_1_vs_n_threads"] is True, \
    "forensics not thread-count invariant"
assert d["chain_names_victim"] is True, "causal chain missed the victim"
assert d["exemplar_trace_resolvable"] is True, \
    "bundle exemplar points at an unsampled trace"
tl = d["timeline"]
assert tl["v"] == 1 and tl["window_us"] > 0 and tl["windows"], tl
for b in d["bundles"]:
    chain = b["chain"]
    assert chain, "bundle has an empty causal chain"
    assert chain[0]["stage"] == "fault", chain[0]
    assert f"shard {victim}" in chain[0]["label"], chain[0]
    sus = b["suspect"]
    assert sus and sus["shard"] == victim, sus
    assert sus["label"] == f"fault_storm.shard{victim}", sus
    assert b["window"]["start_us"] <= sus["onset_us"] < b["window"]["end_us"], b
PY
echo "forensics smoke passed: bundle names the injected fault, calm twin clean"

# Replay smoke: the same storm again, then extract the victim session
# from the incident bundle's replay handle and re-run it solo at max
# instrumentation. The faithfulness proof (digest checkpoints layer for
# layer) and the breach reproduction must hold, and the weathermap must
# parse and cover every hop on the victim's route.
replay_json="$(mktemp)"
trap 'rm -f "$trace" "$campus_json" "$slo_json" "$shards_json" "$forensics_json" "$replay_json"' EXIT
MITS_FORENSICS_SHARDS=3 MITS_FORENSICS_STUDENTS=6 \
  MITS_FORENSICS_CLIP_BYTES=100000 MITS_REPLAY_OUT="$replay_json" \
  cargo run -q --release -p mits-bench --bin tables -- --exp replay >/dev/null
python3 - "$replay_json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
for key in ("shards", "victim_shard", "students", "student", "session_seed",
            "digest", "digest_match", "breach_reproduced", "handle_agrees",
            "bundle", "route", "weathermap"):
    assert key in d, f"BENCH_replay.json missing {key}"
assert d["digest_match"] is True, "replay diverged from the campus digest"
assert d["breach_reproduced"] is True, "replay failed to reproduce the breach"
assert d["handle_agrees"] is True, "forensic replay handle seed disagrees"
assert d["student"] % d["shards"] == d["victim_shard"], \
    "replayed a student off the victim shard"
b = d["bundle"]
assert b["t"] == "replay" and b["v"] == 1, b
assert b["digest"] == d["digest"] and b["layers"], "bundle lost its checkpoints"
assert b["layers"][-1]["digest"] == b["digest"], \
    "layer trace does not fold to the digest"
assert b["faults"], "fault-schedule slice missing from the bundle"
wm = d["weathermap"]
assert wm["t"] == "weathermap" and wm["v"] == 1 and wm["window_us"] > 0, wm
hops = {(h["from"], h["to"]) for h in d["route"]}
assert hops, "victim route is empty"
covered = {(l["from"], l["to"]) for l in wm["links"]}
assert hops <= covered, f"weathermap misses hops: {hops - covered}"
for l in wm["links"]:
    assert l["windows"], f"link {l['from']}->{l['to']} has no telemetry windows"
PY
echo "replay smoke passed: victim reproduced under proof, weathermap covers the route"

# Bench regression gate: re-run the campus at the committed baseline's
# own size and fail on a >25% drop in students/s throughput. Wall-clock
# is noisy, so the tolerance is deliberately loose; a real regression
# (like losing the zero-copy path) blows way past it.
gate_json="$(mktemp)"
trap 'rm -f "$trace" "$campus_json" "$slo_json" "$shards_json" "$forensics_json" "$replay_json" "$gate_json"' EXIT
baseline_students="$(python3 -c 'import json;print(json.load(open("BENCH_campus.json"))["students"])')"
baseline_threads="$(python3 -c 'import json;print(json.load(open("BENCH_campus.json"))["threads"])')"
baseline_clips="$(python3 -c 'import json;print(json.load(open("BENCH_campus.json"))["clips_per_student"])')"
MITS_CAMPUS_STUDENTS="$baseline_students" MITS_CAMPUS_THREADS="$baseline_threads" \
  MITS_CAMPUS_CLIPS="$baseline_clips" MITS_CAMPUS_OUT="$gate_json" \
  cargo run -q --release -p mits-bench --bin tables -- --exp campus >/dev/null
python3 - BENCH_campus.json "$gate_json" <<'PY'
import json, sys
base = json.load(open(sys.argv[1]))
now = json.load(open(sys.argv[2]))
floor = 0.75 * base["students_per_sec"]
assert now["students_per_sec"] >= floor, (
    f"campus throughput regressed >25%: {now['students_per_sec']:.2f} students/s "
    f"vs baseline {base['students_per_sec']:.2f} (floor {floor:.2f})")
assert now["digest"] == base["digest"], (
    f"campus digest changed: {now['digest']} vs baseline {base['digest']} "
    "(simulation behaviour drifted; regenerate BENCH_campus.json deliberately)")
# Media-path ratchet: the 200 KB fetch rides the cell-train fast path;
# losing it (silent expansion, CRC dispatch fallback) costs integer
# factors, so a 15% tolerance only absorbs wall-clock noise.
fetch_floor = 0.85 * base["fetch200k_kbps_now"]
assert now["fetch200k_kbps_now"] >= fetch_floor, (
    f"200KB fetch regressed >15%: {now['fetch200k_kbps_now']:.1f} KB/s "
    f"vs baseline {base['fetch200k_kbps_now']:.1f} (floor {fetch_floor:.1f})")
# Threads must not lose. The committed baseline records the claim; the
# fresh run re-proves it with a core-aware floor: on a multi-core host
# the worker pool must genuinely win (>= 1.0); on a single core the
# parallel leg can only tie, so allow scheduler noise down to 0.85.
assert base["speedup_n_over_1"] >= 1.0, (
    f"committed baseline records threads losing: {base['speedup_n_over_1']}")
speedup_floor = 1.0 if now["host_cores"] > 1 else 0.85
assert now["speedup_n_over_1"] >= speedup_floor, (
    f"threads lose: speedup {now['speedup_n_over_1']:.3f} "
    f"< floor {speedup_floor} on {now['host_cores']} core(s)")
print(f"throughput {now['students_per_sec']:.2f} students/s "
      f">= floor {floor:.2f} (baseline {base['students_per_sec']:.2f}); "
      f"speedup {now['speedup_n_over_1']:.3f} >= {speedup_floor}")
PY
echo "campus bench regression gate passed"
