#!/usr/bin/env bash
# The full local gate: what CI runs, in the order that fails fastest.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q
cargo bench --no-run

# Determinism gate: the observability example's trace must reproduce the
# checked-in golden byte for byte (same seed => same spans, same times).
trace="$(mktemp)"
trap 'rm -f "$trace"' EXIT
cargo run -q --release -p mits --example observability -- --trace-out "$trace" >/dev/null
diff -u tests/golden/observability_trace.jsonl "$trace"
echo "observability trace matches golden"

# Campus smoke: a small parallel campus run must produce a well-formed,
# non-empty BENCH_campus.json (written to a temp path so the checked-in
# full-size numbers stay put).
campus_json="$(mktemp)"
trap 'rm -f "$trace" "$campus_json"' EXIT
MITS_CAMPUS_STUDENTS=6 MITS_CAMPUS_THREADS=2 MITS_CAMPUS_CLIPS=2 \
  MITS_CAMPUS_OUT="$campus_json" \
  cargo run -q --release -p mits-bench --bin tables -- --exp campus >/dev/null
python3 - "$campus_json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
for key in ("students", "digest", "digest_match_1_vs_n_threads",
            "bytes_simulated", "students_per_sec", "fetch200k_speedup"):
    assert key in d, f"BENCH_campus.json missing {key}"
assert d["students"] > 0 and d["bytes_simulated"] > 0, "empty campus run"
assert d["digest_match_1_vs_n_threads"] is True, "campus digest diverged"
PY
echo "campus bench json well-formed"
