//! Property tests: every representable MHEG object round-trips through
//! both interchange encodings, and decoding never panics on arbitrary
//! bytes. These pin the form (a) ↔ form (b) boundary of the object life
//! cycle (Fig 2.4) against regressions.

use bytes::Bytes;
use mits_media::{MediaFormat, MediaId, VideoDims};
use mits_mheg::action::{ActionEntry, ElementaryAction, TargetRef, ValueAttribute};
use mits_mheg::descriptor::ResourceNeed;
use mits_mheg::ids::{MhegId, ObjectInfo, RtId};
use mits_mheg::link::{Comparison, Condition, StatusKind};
use mits_mheg::object::*;
use mits_mheg::sync::{AtomicRelation, SyncMechanism, SyncSpec};
use mits_mheg::value::GenericValue;
use mits_mheg::{decode_object, encode_object, WireFormat};
use mits_sim::SimDuration;
use proptest::prelude::*;

fn arb_id() -> impl Strategy<Value = MhegId> {
    (0u32..1000, 0u64..100_000).prop_map(|(a, n)| MhegId::new(a, n))
}

fn arb_target() -> impl Strategy<Value = TargetRef> {
    prop_oneof![
        arb_id().prop_map(TargetRef::Model),
        (0u64..10_000).prop_map(|n| TargetRef::Rt(RtId(n))),
    ]
}

fn arb_value() -> impl Strategy<Value = GenericValue> {
    prop_oneof![
        any::<i64>().prop_map(GenericValue::Int),
        any::<bool>().prop_map(GenericValue::Bool),
        // Strings exercise escaping: markup metacharacters included.
        "[ -~<>&\"]{0,40}".prop_map(GenericValue::Str),
        any::<i64>().prop_map(GenericValue::Milli),
    ]
}

fn arb_format() -> impl Strategy<Value = MediaFormat> {
    prop::sample::select(MediaFormat::ALL.to_vec())
}

fn arb_duration() -> impl Strategy<Value = SimDuration> {
    (0u64..10_000_000_000).prop_map(SimDuration::from_micros)
}

fn arb_info() -> impl Strategy<Value = ObjectInfo> {
    (
        "[ -~]{0,30}",
        "[ -~]{0,15}",
        any::<u32>(),
        "[ -~]{0,12}",
        prop::collection::vec("[a-z]{1,10}", 0..4),
    )
        .prop_map(|(name, owner, version, date, keywords)| ObjectInfo {
            name,
            owner,
            version,
            date,
            keywords,
        })
}

fn arb_action() -> impl Strategy<Value = ElementaryAction> {
    prop_oneof![
        Just(ElementaryAction::Prepare),
        Just(ElementaryAction::Destroy),
        Just(ElementaryAction::New),
        Just(ElementaryAction::DeleteRt),
        Just(ElementaryAction::Run),
        Just(ElementaryAction::Stop),
        (any::<i32>(), any::<i32>()).prop_map(|(x, y)| ElementaryAction::SetPosition { x, y }),
        any::<bool>().prop_map(ElementaryAction::SetVisibility),
        (any::<u32>(), any::<u32>()).prop_map(|(w, h)| ElementaryAction::SetSize { w, h }),
        any::<i64>().prop_map(ElementaryAction::SetSpeed),
        any::<i64>().prop_map(ElementaryAction::SetVolume),
        Just(ElementaryAction::Activate),
        Just(ElementaryAction::Deactivate),
        any::<bool>().prop_map(ElementaryAction::SetInteraction),
        arb_value().prop_map(ElementaryAction::SetData),
        (any::<u32>(), any::<bool>()).prop_map(|(stream_id, enabled)| {
            ElementaryAction::SetStreamEnabled { stream_id, enabled }
        }),
        prop::sample::select(vec![
            ValueAttribute::Position,
            ValueAttribute::Size,
            ValueAttribute::Speed,
            ValueAttribute::Volume,
            ValueAttribute::Visibility,
            ValueAttribute::State,
            ValueAttribute::Data,
        ])
        .prop_map(ElementaryAction::GetValue),
    ]
}

fn arb_entry() -> impl Strategy<Value = ActionEntry> {
    (
        arb_target(),
        arb_duration(),
        prop::collection::vec(arb_action(), 0..5),
    )
        .prop_map(|(target, delay, actions)| ActionEntry {
            target,
            delay,
            actions,
        })
}

fn arb_condition() -> impl Strategy<Value = Condition> {
    (
        arb_target(),
        prop::sample::select(vec![
            StatusKind::RunState,
            StatusKind::Selection,
            StatusKind::Preparation,
            StatusKind::Data,
            StatusKind::Visibility,
            StatusKind::Completion,
        ]),
        prop::sample::select(vec![
            Comparison::Eq,
            Comparison::Ne,
            Comparison::Lt,
            Comparison::Le,
            Comparison::Gt,
            Comparison::Ge,
        ]),
        arb_value(),
    )
        .prop_map(|(source, status, cmp, value)| Condition {
            source,
            status,
            cmp,
            value,
        })
}

fn arb_content() -> impl Strategy<Value = ContentBody> {
    let data = prop_oneof![
        (0u64..100_000).prop_map(|m| ContentData::Referenced(MediaId(m))),
        prop::collection::vec(any::<u8>(), 0..200)
            .prop_map(|v| ContentData::Inline(Bytes::from(v))),
        arb_value().prop_map(ContentData::Value),
    ];
    (
        data,
        arb_format(),
        (0u32..4000, 0u32..4000),
        arb_duration(),
        any::<i64>(),
        (any::<i32>(), any::<i32>()),
    )
        .prop_map(|(data, format, (w, h), dur, vol, pos)| ContentBody {
            data,
            format,
            original_size: VideoDims::new(w, h),
            original_duration: dur,
            original_volume: vol,
            original_position: pos,
        })
}

fn arb_sync() -> impl Strategy<Value = SyncSpec> {
    prop_oneof![
        (arb_target(), arb_target(), any::<bool>()).prop_map(|(a, b, serial)| {
            SyncSpec::new(SyncMechanism::Atomic {
                a,
                b,
                relation: if serial {
                    AtomicRelation::Serial
                } else {
                    AtomicRelation::Parallel
                },
            })
        }),
        (arb_target(), arb_duration(), arb_target(), arb_duration())
            .prop_map(|(a, t1, b, t2)| SyncSpec::new(SyncMechanism::Elementary { a, t1, b, t2 })),
        (arb_target(), arb_duration(), prop::option::of(any::<u32>())).prop_map(
            |(target, period, repetitions)| SyncSpec::new(SyncMechanism::Cyclic {
                target,
                period,
                repetitions,
            })
        ),
        prop::collection::vec(arb_target(), 0..5)
            .prop_map(|sequence| SyncSpec::new(SyncMechanism::Chained { sequence })),
    ]
}

fn arb_need() -> impl Strategy<Value = ResourceNeed> {
    prop_oneof![
        arb_format().prop_map(ResourceNeed::Decoder),
        any::<u64>().prop_map(ResourceNeed::Bandwidth),
        (0u32..5000, 0u32..5000).prop_map(|(w, h)| ResourceNeed::Display(VideoDims::new(w, h))),
        Just(ResourceNeed::AudioOutput),
        any::<u64>().prop_map(ResourceNeed::CacheBytes),
    ]
}

fn arb_body() -> impl Strategy<Value = ObjectBody> {
    prop_oneof![
        arb_content().prop_map(ObjectBody::Content),
        (
            arb_content(),
            prop::collection::vec(
                (any::<u32>(), arb_format(), any::<bool>()).prop_map(
                    |(stream_id, format, enabled)| {
                        StreamDesc {
                            stream_id,
                            format,
                            enabled,
                        }
                    }
                ),
                0..4
            )
        )
            .prop_map(|(base, streams)| ObjectBody::MultiplexedContent { base, streams }),
        (
            prop::collection::vec(arb_id(), 0..5),
            prop::collection::vec(arb_entry(), 0..3),
            prop::collection::vec(arb_sync(), 0..3),
        )
            .prop_map(|(components, on_start, sync)| ObjectBody::Composite(
                CompositeBody {
                    components,
                    on_start,
                    sync,
                }
            )),
        (
            arb_condition(),
            prop::collection::vec(arb_condition(), 0..3),
            prop_oneof![
                arb_id().prop_map(LinkEffect::ActionRef),
                prop::collection::vec(arb_entry(), 0..3).prop_map(LinkEffect::Inline),
            ],
        )
            .prop_map(|(trigger, additional, effect)| ObjectBody::Link(LinkBody {
                trigger,
                additional,
                effect,
            })),
        prop::collection::vec(arb_entry(), 0..4)
            .prop_map(|entries| ObjectBody::Action(ActionBody { entries })),
        ("[a-z-]{1,12}", "[ -~]{0,60}")
            .prop_map(|(language, source)| ObjectBody::Script(ScriptBody { language, source })),
        prop::collection::vec(arb_id(), 0..6)
            .prop_map(|objects| ObjectBody::Container(ContainerBody { objects })),
        (
            prop::collection::vec(arb_id(), 0..3),
            prop::collection::vec(arb_need(), 0..5),
            "[ -~]{0,40}",
        )
            .prop_map(|(describes, needs, readme)| ObjectBody::Descriptor(
                DescriptorBody {
                    describes,
                    needs,
                    readme,
                }
            )),
    ]
}

fn arb_object() -> impl Strategy<Value = MhegObject> {
    (arb_id(), arb_info(), arb_body()).prop_map(|(id, info, body)| MhegObject::new(id, info, body))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tlv_round_trip(obj in arb_object()) {
        let wire = encode_object(&obj, WireFormat::Tlv);
        let back = decode_object(&wire, WireFormat::Tlv).expect("decode");
        prop_assert_eq!(back, obj);
    }

    #[test]
    fn sgml_round_trip(obj in arb_object()) {
        let wire = encode_object(&obj, WireFormat::Sgml);
        let back = decode_object(&wire, WireFormat::Sgml).expect("decode");
        prop_assert_eq!(back, obj);
    }

    #[test]
    fn sgml_output_is_utf8_text(obj in arb_object()) {
        let wire = encode_object(&obj, WireFormat::Sgml);
        prop_assert!(std::str::from_utf8(&wire).is_ok());
    }

    #[test]
    fn decoder_never_panics_on_noise(data in prop::collection::vec(any::<u8>(), 0..512)) {
        // Result may be Ok only if the noise happens to be a valid object
        // (astronomically unlikely); it must never panic.
        let _ = decode_object(&data, WireFormat::Tlv);
        let _ = decode_object(&data, WireFormat::Sgml);
    }

    #[test]
    fn decoder_never_panics_on_truncated_valid(obj in arb_object(), frac in 0.0f64..1.0) {
        let wire = encode_object(&obj, WireFormat::Tlv);
        let cut = (wire.len() as f64 * frac) as usize;
        let _ = decode_object(&wire[..cut], WireFormat::Tlv);
    }
}
