//! Descriptor-based resource negotiation (§2.2.2, §2.3.2, §3.1.2.2).
//!
//! "Information of resources required to present the encoded data can be
//! coded into a descriptor object and transmitted to the presentation
//! environment before the real content objects are transmitted. This can
//! facilitate a correspondence between the resources required ... and the
//! resources available ... Descriptor objects can also perform a
//! negotiation between the source of the MHEG objects and the presentation
//! environment."
//!
//! A [`ResourceNeed`] states what presenting an object requires; a
//! [`SystemCapabilities`] describes a presentation site; [`Negotiation`]
//! decides accept / degrade / reject before any bulk content moves —
//! exactly the "minimal resources" benefit the paper credits MHEG with.

use mits_media::{MediaFormat, MediaKind, VideoDims};
use serde::{Deserialize, Serialize};

/// One resource requirement carried by a descriptor object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResourceNeed {
    /// A decoder for this coding method must exist.
    Decoder(MediaFormat),
    /// Sustained network bandwidth in bits/s for streamed presentation.
    Bandwidth(u64),
    /// Display at least this large.
    Display(VideoDims),
    /// Audio output channel.
    AudioOutput,
    /// Free content-cache space in bytes.
    CacheBytes(u64),
}

/// Capabilities of a presentation site (the navigator host).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemCapabilities {
    /// Decoders installed (the OLE-player registry of §5.2.2).
    pub decoders: Vec<MediaFormat>,
    /// Access-link bandwidth in bits/s.
    pub bandwidth: u64,
    /// Display size.
    pub display: VideoDims,
    /// Audio hardware present.
    pub audio: bool,
    /// Free cache in bytes.
    pub cache_bytes: u64,
}

impl SystemCapabilities {
    /// A mid-90s multimedia PC on the given access link — the paper's
    /// reference client (§5.1.2).
    pub fn multimedia_pc(bandwidth: u64) -> Self {
        SystemCapabilities {
            decoders: MediaFormat::ALL.to_vec(),
            bandwidth,
            display: VideoDims::new(800, 600),
            audio: true,
            cache_bytes: 64 * 1024 * 1024,
        }
    }

    /// A text-only terminal, for negotiation tests.
    pub fn text_terminal(bandwidth: u64) -> Self {
        SystemCapabilities {
            decoders: vec![MediaFormat::Ascii, MediaFormat::Html],
            bandwidth,
            display: VideoDims::new(640, 480),
            audio: false,
            cache_bytes: 1024 * 1024,
        }
    }
}

/// Outcome of negotiating one need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NeedOutcome {
    /// Fully satisfiable.
    Satisfied,
    /// Satisfiable in degraded form (e.g. lower rate); carries a note.
    Degraded(String),
    /// Not satisfiable.
    Unsatisfied(String),
}

/// Result of a full negotiation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Negotiation {
    /// Per-need outcomes, in need order.
    pub outcomes: Vec<NeedOutcome>,
}

impl Negotiation {
    /// Negotiate `needs` against `caps`.
    pub fn run(needs: &[ResourceNeed], caps: &SystemCapabilities) -> Self {
        let outcomes = needs
            .iter()
            .map(|need| match need {
                ResourceNeed::Decoder(f) => {
                    if caps.decoders.contains(f) {
                        NeedOutcome::Satisfied
                    } else {
                        NeedOutcome::Unsatisfied(format!("no {f} decoder"))
                    }
                }
                ResourceNeed::Bandwidth(bps) => {
                    if caps.bandwidth >= *bps {
                        NeedOutcome::Satisfied
                    } else if caps.bandwidth * 2 >= *bps {
                        // Within 2×: stream at reduced quality / prefetch.
                        NeedOutcome::Degraded(format!(
                            "need {bps} b/s, have {} b/s: prefetch or degrade",
                            caps.bandwidth
                        ))
                    } else {
                        NeedOutcome::Unsatisfied(format!(
                            "need {bps} b/s, have {} b/s",
                            caps.bandwidth
                        ))
                    }
                }
                ResourceNeed::Display(d) => {
                    if caps.display.width >= d.width && caps.display.height >= d.height {
                        NeedOutcome::Satisfied
                    } else {
                        NeedOutcome::Degraded(format!("scale {d} onto {}", caps.display))
                    }
                }
                ResourceNeed::AudioOutput => {
                    if caps.audio {
                        NeedOutcome::Satisfied
                    } else {
                        NeedOutcome::Unsatisfied("no audio hardware".into())
                    }
                }
                ResourceNeed::CacheBytes(n) => {
                    if caps.cache_bytes >= *n {
                        NeedOutcome::Satisfied
                    } else {
                        NeedOutcome::Unsatisfied(format!(
                            "need {n} cache bytes, have {}",
                            caps.cache_bytes
                        ))
                    }
                }
            })
            .collect();
        Negotiation { outcomes }
    }

    /// Everything satisfied outright.
    pub fn accepted(&self) -> bool {
        self.outcomes.iter().all(|o| *o == NeedOutcome::Satisfied)
    }

    /// Presentable, possibly degraded.
    pub fn presentable(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| !matches!(o, NeedOutcome::Unsatisfied(_)))
    }

    /// Human-readable summary for the "readme" channel.
    pub fn summary(&self) -> String {
        if self.accepted() {
            "accepted".to_string()
        } else if self.presentable() {
            let notes: Vec<&str> = self
                .outcomes
                .iter()
                .filter_map(|o| match o {
                    NeedOutcome::Degraded(s) => Some(s.as_str()),
                    _ => None,
                })
                .collect();
            format!("degraded: {}", notes.join("; "))
        } else {
            let notes: Vec<&str> = self
                .outcomes
                .iter()
                .filter_map(|o| match o {
                    NeedOutcome::Unsatisfied(s) => Some(s.as_str()),
                    _ => None,
                })
                .collect();
            format!("rejected: {}", notes.join("; "))
        }
    }
}

/// Derive the needs for presenting media of `kind`/`format` streamed at
/// `bit_rate` on a `dims` canvas — the helper the courseware compiler uses
/// to fill descriptor objects.
pub fn needs_for_media(
    format: MediaFormat,
    bit_rate: Option<u64>,
    dims: VideoDims,
) -> Vec<ResourceNeed> {
    let mut needs = vec![ResourceNeed::Decoder(format)];
    if let Some(r) = bit_rate {
        needs.push(ResourceNeed::Bandwidth(r));
    }
    match format.kind() {
        MediaKind::Audio => needs.push(ResourceNeed::AudioOutput),
        MediaKind::Video => {
            needs.push(ResourceNeed::Display(dims));
            // MPEG system streams carry audio too.
            needs.push(ResourceNeed::AudioOutput);
        }
        _ if dims.pixels() > 0 => needs.push(ResourceNeed::Display(dims)),
        _ => {}
    }
    needs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_accepts_mpeg_at_atm_rates() {
        let caps = SystemCapabilities::multimedia_pc(155_000_000);
        let needs = needs_for_media(MediaFormat::Mpeg, Some(1_500_000), VideoDims::new(320, 240));
        let n = Negotiation::run(&needs, &caps);
        assert!(n.accepted(), "{}", n.summary());
    }

    #[test]
    fn modem_rejects_mpeg() {
        let caps = SystemCapabilities::multimedia_pc(28_800);
        let needs = needs_for_media(MediaFormat::Mpeg, Some(1_500_000), VideoDims::new(320, 240));
        let n = Negotiation::run(&needs, &caps);
        assert!(!n.presentable());
        assert!(n.summary().starts_with("rejected"));
    }

    #[test]
    fn near_rate_degrades_not_rejects() {
        // Capability within 2× of the need → degraded.
        let caps = SystemCapabilities::multimedia_pc(1_000_000);
        let n = Negotiation::run(&[ResourceNeed::Bandwidth(1_500_000)], &caps);
        assert!(!n.accepted());
        assert!(n.presentable());
        assert!(n.summary().starts_with("degraded"));
    }

    #[test]
    fn text_terminal_lacks_decoders_and_audio() {
        let caps = SystemCapabilities::text_terminal(128_000);
        let needs = needs_for_media(MediaFormat::Wav, Some(90_112), VideoDims::default());
        let n = Negotiation::run(&needs, &caps);
        assert!(!n.presentable());
        // Both the decoder and the audio hardware are missing.
        let unsat = n
            .outcomes
            .iter()
            .filter(|o| matches!(o, NeedOutcome::Unsatisfied(_)))
            .count();
        assert_eq!(unsat, 2);
    }

    #[test]
    fn oversized_display_degrades() {
        let caps = SystemCapabilities::multimedia_pc(155_000_000);
        let n = Negotiation::run(&[ResourceNeed::Display(VideoDims::new(1920, 1080))], &caps);
        assert!(n.presentable());
        assert!(!n.accepted());
    }

    #[test]
    fn needs_for_text_are_minimal() {
        let needs = needs_for_media(MediaFormat::Html, None, VideoDims::default());
        assert_eq!(needs, vec![ResourceNeed::Decoder(MediaFormat::Html)]);
    }

    #[test]
    fn cache_need() {
        let mut caps = SystemCapabilities::multimedia_pc(155_000_000);
        caps.cache_bytes = 10;
        let n = Negotiation::run(&[ResourceNeed::CacheBytes(100)], &caps);
        assert!(!n.presentable());
    }
}
