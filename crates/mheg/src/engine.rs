//! The MHEG engine (§3.4: "a set of software modules designed ... to
//! encode, decode, handle or interpret the MHEG objects").
//!
//! One engine instance lives at each presentation site. The using
//! application (the courseware navigator) feeds it decoded form-(b)
//! objects, asks for run-time objects, advances the virtual clock, and
//! injects user input; the engine fires links, applies elementary actions,
//! and emits [`PresentationEvent`]s that the application renders.
//!
//! Determinism contract: given the same object set, the same clock
//! advances and the same input sequence, the engine produces the same
//! event log — this is what makes every experiment in `EXPERIMENTS.md`
//! reproducible.
//!
//! ## Target resolution
//!
//! Authors write links and actions against *model* ids. At run time the
//! engine resolves `TargetRef::Model(id)` to the most recently created
//! run-time object of that model; presentation actions on a model with no
//! live run-time object implicitly create one (`new` + the action), which
//! keeps hand-authored courseware concise. Events are matched against
//! conditions through both the run-time id and its model id.

use crate::action::{ActionEntry, ElementaryAction, TargetRef, ValueAttribute};
use crate::codec::{decode_object, CodecError, WireFormat};
use crate::ids::{MhegId, RtId};
use crate::link::{Condition, StatusKind};
use crate::object::{ContentBody, LinkBody, LinkEffect, MhegObject, ObjectBody};
use crate::runtime::{RtKind, RtObject, RtState, Socket, SocketKind};
use crate::sync::CyclicTask;
use crate::value::GenericValue;
use mits_sim::{SimDuration, SimTime};
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Cap on cascaded link firings from a single stimulus; a cycle of links
/// (button → run → link → run …) beyond this depth is reported as an
/// error rather than looping forever.
pub const MAX_CASCADE: usize = 256;

/// Errors from engine operations.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Referenced model object is not in the engine's pool.
    UnknownObject(MhegId),
    /// Referenced run-time object does not exist.
    UnknownRt(RtId),
    /// `new` applied to a non-model class (link, action, container,
    /// descriptor).
    NotAModel(MhegId),
    /// Decode failure when ingesting wire form.
    Codec(CodecError),
    /// Link cascade exceeded [`MAX_CASCADE`].
    CascadeOverflow,
    /// Action applied to an incompatible target (e.g. `Activate` on
    /// content).
    BadTarget(String),
    /// A script failed to parse or evaluate.
    Script(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownObject(id) => write!(f, "unknown object {id}"),
            EngineError::UnknownRt(id) => write!(f, "unknown run-time object {id}"),
            EngineError::NotAModel(id) => write!(f, "{id} is not a model object"),
            EngineError::Codec(e) => write!(f, "codec: {e}"),
            EngineError::CascadeOverflow => write!(f, "link cascade exceeded {MAX_CASCADE}"),
            EngineError::BadTarget(s) => write!(f, "bad target: {s}"),
            EngineError::Script(s) => write!(f, "script: {s}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CodecError> for EngineError {
    fn from(e: CodecError) -> Self {
        EngineError::Codec(e)
    }
}

/// Events the engine emits toward the using application.
#[derive(Debug, Clone, PartialEq)]
pub enum PresentationEvent {
    /// A model object became available (prepared).
    Prepared(MhegId),
    /// A run-time object was created from a model.
    Created {
        /// The new run-time object.
        rt: RtId,
        /// Its model.
        model: MhegId,
    },
    /// A run-time object started running at `at`.
    Started {
        /// The object.
        rt: RtId,
        /// Start instant.
        at: SimTime,
    },
    /// A run-time object stopped (explicitly) at `at`.
    Stopped {
        /// The object.
        rt: RtId,
        /// Stop instant.
        at: SimTime,
    },
    /// A time-based run-time object reached the end of its medium.
    Completed {
        /// The object.
        rt: RtId,
        /// Completion instant.
        at: SimTime,
    },
    /// An attribute changed (position/size/speed/volume/visibility/
    /// interaction/data).
    AttributeChanged {
        /// The object.
        rt: RtId,
        /// Attribute name.
        attr: &'static str,
    },
    /// Reply to a Getting-Value action.
    ValueReport {
        /// The queried object.
        rt: RtId,
        /// Queried attribute.
        attr: ValueAttribute,
        /// The value read.
        value: GenericValue,
    },
    /// A link fired.
    LinkFired {
        /// The link object (None for links lowered from sync specs).
        link: Option<MhegId>,
        /// Firing instant.
        at: SimTime,
    },
    /// A run-time object was deleted.
    Deleted(RtId),
    /// A script instance was activated/deactivated.
    ScriptActivation {
        /// The script run-time object.
        rt: RtId,
        /// New activation state.
        active: bool,
    },
}

/// Counters for the experiment tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Objects ingested into the form-(b) pool.
    pub ingested: u64,
    /// Run-time objects created.
    pub rt_created: u64,
    /// Links fired.
    pub links_fired: u64,
    /// Elementary actions applied.
    pub actions_applied: u64,
    /// Presentation events emitted.
    pub events_emitted: u64,
}

impl EngineStats {
    /// Snapshot the counters into `reg` under `prefix` (e.g. `mheg`).
    pub fn export_metrics(&self, reg: &mits_sim::MetricsRegistry, prefix: &str) {
        reg.counter_set(&format!("{prefix}.ingested"), self.ingested);
        reg.counter_set(&format!("{prefix}.rt_created"), self.rt_created);
        reg.counter_set(&format!("{prefix}.links_fired"), self.links_fired);
        reg.counter_set(&format!("{prefix}.actions_applied"), self.actions_applied);
        reg.counter_set(&format!("{prefix}.events_emitted"), self.events_emitted);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkOrigin {
    /// From an interchanged link object.
    Object(MhegId),
    /// Lowered from a composite's sync specs; owned by that composite rt.
    Sync(RtId),
}

#[derive(Debug, Clone)]
struct ActiveLink {
    origin: LinkOrigin,
    body: LinkBody,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TimerKind {
    /// Run a (possibly delayed) action entry.
    Action(ActionEntry),
    /// Completion check for a running rt; `generation` guards staleness.
    Completion { rt: RtId, generation: u64 },
    /// Cyclic re-run.
    Cyclic { index: usize },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Timer {
    at: SimTime,
    seq: u64,
    kind: TimerKind,
}

impl Ord for Timer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on (at, seq).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone)]
struct CyclicState {
    task: CyclicTask,
    owner: RtId,
    active: bool,
}

/// Internal status-change event (carries both addressing forms).
#[derive(Debug, Clone)]
struct InternalEvent {
    rt: RtId,
    model: MhegId,
    status: StatusKind,
    value: GenericValue,
}

/// The MHEG engine.
pub struct MhegEngine {
    objects: HashMap<MhegId, MhegObject>,
    prepared: HashMap<MhegId, bool>,
    rt: HashMap<RtId, RtObject>,
    model_rt: HashMap<MhegId, RtId>,
    generations: HashMap<RtId, u64>,
    links: Vec<ActiveLink>,
    cyclic: Vec<CyclicState>,
    timers: BinaryHeap<Timer>,
    timer_seq: u64,
    next_rt: u64,
    now: SimTime,
    out: Vec<PresentationEvent>,
    /// Statistics.
    pub stats: EngineStats,
}

impl Default for MhegEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl MhegEngine {
    /// An empty engine with the clock at zero.
    pub fn new() -> Self {
        MhegEngine {
            objects: HashMap::new(),
            prepared: HashMap::new(),
            rt: HashMap::new(),
            model_rt: HashMap::new(),
            generations: HashMap::new(),
            links: Vec::new(),
            cyclic: Vec::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            next_rt: 1,
            now: SimTime::ZERO,
            out: Vec::new(),
            stats: EngineStats::default(),
        }
    }

    /// Current engine clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Drain the pending presentation events.
    pub fn take_events(&mut self) -> Vec<PresentationEvent> {
        std::mem::take(&mut self.out)
    }

    /// Look at a run-time object.
    pub fn rt(&self, id: RtId) -> Option<&RtObject> {
        self.rt.get(&id)
    }

    /// Look at a form-(b) object.
    pub fn object(&self, id: MhegId) -> Option<&MhegObject> {
        self.objects.get(&id)
    }

    /// The run-time object most recently created from `model`.
    pub fn rt_of_model(&self, model: MhegId) -> Option<RtId> {
        self.model_rt.get(&model).copied()
    }

    /// Number of live run-time objects.
    pub fn rt_count(&self) -> usize {
        self.rt.len()
    }

    // ---------- life cycle: form (a) → (b) → (c) ----------

    /// Ingest a decoded form-(b) object. Link objects become active
    /// immediately; everything else waits for `prepare` / `new`.
    pub fn ingest(&mut self, obj: MhegObject) {
        self.stats.ingested += 1;
        if let ObjectBody::Link(body) = &obj.body {
            self.links.push(ActiveLink {
                origin: LinkOrigin::Object(obj.id),
                body: body.clone(),
            });
        }
        self.objects.insert(obj.id, obj);
    }

    /// Decode an interchanged form-(a) stream and ingest it.
    pub fn ingest_wire(&mut self, data: &[u8], format: WireFormat) -> Result<MhegId, EngineError> {
        let obj = decode_object(data, format)?;
        let id = obj.id;
        self.ingest(obj);
        Ok(id)
    }

    /// Prepare a model object (availability, resource checks upstream).
    pub fn prepare(&mut self, id: MhegId) -> Result<(), EngineError> {
        if !self.objects.contains_key(&id) {
            return Err(EngineError::UnknownObject(id));
        }
        self.prepared.insert(id, true);
        self.emit(PresentationEvent::Prepared(id));
        Ok(())
    }

    /// Whether a model object is prepared.
    pub fn is_prepared(&self, id: MhegId) -> bool {
        self.prepared.get(&id).copied().unwrap_or(false)
    }

    /// Create a run-time object from a model object (`new`).
    ///
    /// Composites recursively create run-time objects for their
    /// components and plug them into sockets; components that are
    /// themselves composites become structural sockets.
    pub fn new_rt(&mut self, model: MhegId) -> Result<RtId, EngineError> {
        let obj = self
            .objects
            .get(&model)
            .ok_or(EngineError::UnknownObject(model))?
            .clone();
        if !obj.is_model() {
            return Err(EngineError::NotAModel(model));
        }
        let kind = match &obj.body {
            ObjectBody::Content(c) => Self::content_kind(c, &[]),
            ObjectBody::MultiplexedContent { base, streams } => {
                let enabled: Vec<u32> = streams
                    .iter()
                    .filter(|s| s.enabled)
                    .map(|s| s.stream_id)
                    .collect();
                Self::content_kind(base, &enabled)
            }
            ObjectBody::Script { .. } => RtKind::Script { active: false },
            ObjectBody::Composite(c) => {
                // Recursively instantiate components.
                let mut sockets = Vec::with_capacity(c.components.len());
                for comp in &c.components {
                    let child = self.new_rt(*comp)?;
                    let plugged = if self
                        .rt
                        .get(&child)
                        .is_some_and(|r| matches!(r.kind, RtKind::Composite { .. }))
                    {
                        SocketKind::Structural(child)
                    } else {
                        SocketKind::Presentable(child)
                    };
                    sockets.push(Socket {
                        model: *comp,
                        plugged,
                    });
                }
                RtKind::Composite { sockets }
            }
            _ => return Err(EngineError::NotAModel(model)),
        };
        let id = RtId(self.next_rt);
        self.next_rt += 1;
        let mut rt = RtObject::new(id, model, kind);
        // Content rt inherits original presentation parameters; a
        // Generic-Value content seeds the data slot with its stored value
        // (Fig 4.5b: "a value may be stored in the data").
        if let ObjectBody::Content(c) | ObjectBody::MultiplexedContent { base: c, .. } = &obj.body {
            rt.attrs.position = c.original_position;
            rt.attrs.size = (c.original_size.width, c.original_size.height);
            rt.attrs.volume = c.original_volume;
            if let crate::object::ContentData::Value(v) = &c.data {
                rt.attrs.data = v.clone();
            }
        }
        self.rt.insert(id, rt);
        self.model_rt.insert(model, id);
        self.generations.insert(id, 0);
        self.stats.rt_created += 1;
        self.emit(PresentationEvent::Created { rt: id, model });
        Ok(id)
    }

    fn content_kind(c: &ContentBody, enabled: &[u32]) -> RtKind {
        RtKind::Content {
            format: c.format,
            duration: c.original_duration,
            enabled_streams: enabled.to_vec(),
        }
    }

    /// Delete a run-time object (`delete`). Deleting a composite deletes
    /// its socket components and unregisters its sync artefacts.
    pub fn delete_rt(&mut self, id: RtId) -> Result<(), EngineError> {
        let rt = self.rt.remove(&id).ok_or(EngineError::UnknownRt(id))?;
        if let RtKind::Composite { sockets } = &rt.kind {
            for s in sockets {
                match s.plugged {
                    SocketKind::Presentable(c) | SocketKind::Structural(c) => {
                        // Ignore already-deleted children.
                        let _ = self.delete_rt(c);
                    }
                    SocketKind::Empty => {}
                }
            }
        }
        self.links.retain(|l| l.origin != LinkOrigin::Sync(id));
        for c in &mut self.cyclic {
            if c.owner == id {
                c.active = false;
            }
        }
        if self.model_rt.get(&rt.model) == Some(&id) {
            self.model_rt.remove(&rt.model);
        }
        self.generations.remove(&id);
        self.emit(PresentationEvent::Deleted(id));
        Ok(())
    }

    // ---------- clock ----------

    /// Advance the engine clock to `to`, firing due timers in order.
    pub fn advance(&mut self, to: SimTime) -> Result<(), EngineError> {
        assert!(to >= self.now, "engine clock cannot go backwards");
        while let Some(t) = self.timers.peek() {
            if t.at > to {
                break;
            }
            let timer = self.timers.pop().expect("peeked timer vanished");
            self.now = timer.at;
            match timer.kind {
                TimerKind::Action(entry) => self.apply_entry_now(&entry)?,
                TimerKind::Completion { rt, generation } => {
                    self.handle_completion(rt, generation)?;
                }
                TimerKind::Cyclic { index } => self.handle_cyclic(index)?,
            }
        }
        self.now = to;
        Ok(())
    }

    fn schedule(&mut self, at: SimTime, kind: TimerKind) {
        let seq = self.timer_seq;
        self.timer_seq += 1;
        self.timers.push(Timer { at, seq, kind });
    }

    // ---------- user interaction ----------

    /// The user selected (clicked) a run-time object. Ignored unless the
    /// object currently has interaction enabled — this is the MHEG
    /// "generic selection behaviour".
    pub fn user_select(&mut self, id: RtId) -> Result<bool, EngineError> {
        let rt = self.rt.get(&id).ok_or(EngineError::UnknownRt(id))?;
        if !rt.attrs.interactive {
            return Ok(false);
        }
        let ev = InternalEvent {
            rt: id,
            model: rt.model,
            status: StatusKind::Selection,
            value: GenericValue::Bool(true),
        };
        self.process_events(vec![ev])?;
        Ok(true)
    }

    /// The user typed data into an interactible (entry fields of §4.4.2).
    pub fn user_input(&mut self, id: RtId, data: GenericValue) -> Result<bool, EngineError> {
        let rt = self.rt.get_mut(&id).ok_or(EngineError::UnknownRt(id))?;
        if !rt.attrs.interactive {
            return Ok(false);
        }
        rt.attrs.data = data.clone();
        let model = rt.model;
        self.emit(PresentationEvent::AttributeChanged {
            rt: id,
            attr: "data",
        });
        let ev = InternalEvent {
            rt: id,
            model,
            status: StatusKind::Data,
            value: data,
        };
        self.process_events(vec![ev])?;
        Ok(true)
    }

    // ---------- actions ----------

    /// Apply an action entry (public face: immediate, honouring its delay
    /// relative to *now*).
    pub fn apply_entry(&mut self, entry: &ActionEntry) -> Result<(), EngineError> {
        if entry.delay.is_zero() {
            self.apply_entry_now(entry)
        } else {
            self.schedule(
                self.now + entry.delay,
                TimerKind::Action(ActionEntry {
                    target: entry.target,
                    delay: SimDuration::ZERO,
                    actions: entry.actions.clone(),
                }),
            );
            Ok(())
        }
    }

    fn apply_entry_now(&mut self, entry: &ActionEntry) -> Result<(), EngineError> {
        let mut events = Vec::new();
        for action in &entry.actions {
            self.apply_action(entry.target, action, &mut events)?;
        }
        self.process_events(events)
    }

    /// Resolve a target to a live rt, implicitly creating one for model
    /// targets when a presentation action needs it.
    fn resolve_rt(&mut self, target: TargetRef, create: bool) -> Result<RtId, EngineError> {
        match target {
            TargetRef::Rt(id) => {
                if self.rt.contains_key(&id) {
                    Ok(id)
                } else {
                    Err(EngineError::UnknownRt(id))
                }
            }
            TargetRef::Model(m) => {
                if let Some(id) = self.model_rt.get(&m) {
                    return Ok(*id);
                }
                if create {
                    self.new_rt(m)
                } else {
                    Err(EngineError::UnknownObject(m))
                }
            }
        }
    }

    fn apply_action(
        &mut self,
        target: TargetRef,
        action: &ElementaryAction,
        events: &mut Vec<InternalEvent>,
    ) -> Result<(), EngineError> {
        use ElementaryAction::*;
        self.stats.actions_applied += 1;
        match action {
            Prepare => {
                let id = match target {
                    TargetRef::Model(m) => m,
                    TargetRef::Rt(_) => {
                        return Err(EngineError::BadTarget(
                            "prepare needs a model target".into(),
                        ))
                    }
                };
                self.prepare(id)?;
                events.push(InternalEvent {
                    rt: RtId(0),
                    model: id,
                    status: StatusKind::Preparation,
                    value: GenericValue::Bool(true),
                });
            }
            Destroy => {
                let id = match target {
                    TargetRef::Model(m) => m,
                    TargetRef::Rt(_) => {
                        return Err(EngineError::BadTarget(
                            "destroy needs a model target".into(),
                        ))
                    }
                };
                self.prepared.insert(id, false);
            }
            New => {
                let id = match target {
                    TargetRef::Model(m) => m,
                    TargetRef::Rt(_) => {
                        return Err(EngineError::BadTarget("new needs a model target".into()))
                    }
                };
                self.new_rt(id)?;
            }
            DeleteRt => {
                let id = self.resolve_rt(target, false)?;
                self.delete_rt(id)?;
            }
            Run => {
                let id = self.resolve_rt(target, true)?;
                self.run_rt(id, events)?;
            }
            Stop => {
                // Stopping a model with no live run-time object is a no-op
                // (compiled timelines may schedule stops past a scene's
                // life); stopping a dangling RtId is still an error.
                match target {
                    TargetRef::Model(m) if !self.model_rt.contains_key(&m) => {}
                    _ => {
                        let id = self.resolve_rt(target, false)?;
                        self.stop_rt(id, events, false)?;
                    }
                }
            }
            SetPosition { x, y } => {
                let id = self.resolve_rt(target, true)?;
                let rt = self.rt.get_mut(&id).expect("resolved");
                rt.attrs.position = (*x, *y);
                self.emit(PresentationEvent::AttributeChanged {
                    rt: id,
                    attr: "position",
                });
            }
            SetVisibility(v) => {
                let id = self.resolve_rt(target, true)?;
                let rt = self.rt.get_mut(&id).expect("resolved");
                if rt.attrs.visible != *v {
                    rt.attrs.visible = *v;
                    let model = rt.model;
                    self.emit(PresentationEvent::AttributeChanged {
                        rt: id,
                        attr: "visibility",
                    });
                    events.push(InternalEvent {
                        rt: id,
                        model,
                        status: StatusKind::Visibility,
                        value: GenericValue::Bool(*v),
                    });
                }
            }
            SetSize { w, h } => {
                let id = self.resolve_rt(target, true)?;
                self.rt.get_mut(&id).expect("resolved").attrs.size = (*w, *h);
                self.emit(PresentationEvent::AttributeChanged {
                    rt: id,
                    attr: "size",
                });
            }
            SetSpeed(s) => {
                let id = self.resolve_rt(target, true)?;
                let rt = self.rt.get_mut(&id).expect("resolved");
                // Re-anchor progress so the speed change applies from now.
                if rt.state == RtState::Running {
                    let now = self.now;
                    rt.accumulated = rt.progress(now);
                    rt.started_at = now;
                }
                rt.attrs.speed = *s;
                self.emit(PresentationEvent::AttributeChanged {
                    rt: id,
                    attr: "speed",
                });
                // Reschedule completion under the new speed.
                self.reschedule_completion(id);
            }
            SetVolume(v) => {
                let id = self.resolve_rt(target, true)?;
                self.rt.get_mut(&id).expect("resolved").attrs.volume = *v;
                self.emit(PresentationEvent::AttributeChanged {
                    rt: id,
                    attr: "volume",
                });
            }
            Activate | Deactivate => {
                let id = self.resolve_rt(target, true)?;
                let is_script = matches!(
                    self.rt.get(&id).map(|r| &r.kind),
                    Some(RtKind::Script { .. })
                );
                if !is_script {
                    return Err(EngineError::BadTarget(
                        "activate/deactivate applies to scripts".into(),
                    ));
                }
                let activating = matches!(action, Activate);
                if activating {
                    // Part-III support: activation evaluates the script's
                    // `mits-expr` source against the data slots of
                    // like-named run-time objects and stores the result in
                    // the script instance's own data slot.
                    let model = self.rt.get(&id).expect("checked").model;
                    let source = match self.objects.get(&model).map(|o| &o.body) {
                        Some(ObjectBody::Script(s)) if s.language == "mits-expr" => {
                            Some(s.source.clone())
                        }
                        _ => None,
                    };
                    if let Some(src) = source {
                        let vars = self.data_slots_by_name();
                        let result = crate::script::run(&src, &|name| vars.get(name).cloned())
                            .map_err(|e| EngineError::Script(e.to_string()))?;
                        let rt = self.rt.get_mut(&id).expect("checked");
                        rt.attrs.data = result.clone();
                        let script_model = rt.model;
                        self.emit(PresentationEvent::AttributeChanged {
                            rt: id,
                            attr: "data",
                        });
                        events.push(InternalEvent {
                            rt: id,
                            model: script_model,
                            status: StatusKind::Data,
                            value: result,
                        });
                    }
                }
                if let Some(RtKind::Script { active }) = self.rt.get_mut(&id).map(|r| &mut r.kind) {
                    *active = activating;
                }
                self.emit(PresentationEvent::ScriptActivation {
                    rt: id,
                    active: activating,
                });
            }
            SetInteraction(v) => {
                let id = self.resolve_rt(target, true)?;
                self.rt.get_mut(&id).expect("resolved").attrs.interactive = *v;
                self.emit(PresentationEvent::AttributeChanged {
                    rt: id,
                    attr: "interaction",
                });
            }
            SetData(value) => {
                let id = self.resolve_rt(target, true)?;
                let rt = self.rt.get_mut(&id).expect("resolved");
                rt.attrs.data = value.clone();
                let model = rt.model;
                self.emit(PresentationEvent::AttributeChanged {
                    rt: id,
                    attr: "data",
                });
                events.push(InternalEvent {
                    rt: id,
                    model,
                    status: StatusKind::Data,
                    value: value.clone(),
                });
            }
            SetStreamEnabled { stream_id, enabled } => {
                let id = self.resolve_rt(target, true)?;
                let rt = self.rt.get_mut(&id).expect("resolved");
                match &mut rt.kind {
                    RtKind::Content {
                        enabled_streams, ..
                    } => {
                        if *enabled {
                            if !enabled_streams.contains(stream_id) {
                                enabled_streams.push(*stream_id);
                                enabled_streams.sort_unstable();
                            }
                        } else {
                            enabled_streams.retain(|s| s != stream_id);
                        }
                        self.emit(PresentationEvent::AttributeChanged {
                            rt: id,
                            attr: "streams",
                        });
                    }
                    _ => {
                        return Err(EngineError::BadTarget(
                            "stream control applies to content objects".into(),
                        ))
                    }
                }
            }
            GetValue(attr) => {
                let id = self.resolve_rt(target, false)?;
                let rt = self.rt.get(&id).expect("resolved");
                let value = match attr {
                    ValueAttribute::Position => GenericValue::Int(rt.attrs.position.0 as i64),
                    ValueAttribute::Size => GenericValue::Int(rt.attrs.size.0 as i64),
                    ValueAttribute::Speed => GenericValue::Milli(rt.attrs.speed),
                    ValueAttribute::Volume => GenericValue::Milli(rt.attrs.volume),
                    ValueAttribute::Visibility => GenericValue::Bool(rt.attrs.visible),
                    ValueAttribute::State => GenericValue::Str(rt.state.as_str().into()),
                    ValueAttribute::Data => rt.attrs.data.clone(),
                };
                self.emit(PresentationEvent::ValueReport {
                    rt: id,
                    attr: *attr,
                    value,
                });
            }
        }
        Ok(())
    }

    fn run_rt(&mut self, id: RtId, events: &mut Vec<InternalEvent>) -> Result<(), EngineError> {
        let now = self.now;
        let rt = self.rt.get_mut(&id).ok_or(EngineError::UnknownRt(id))?;
        if rt.state == RtState::Running {
            return Ok(());
        }
        // A re-run restarts from the beginning (MHEG run semantics);
        // resume is modelled by speed/stop bookkeeping upstream.
        rt.accumulated = SimDuration::ZERO;
        rt.start(now);
        let model = rt.model;
        let generation = {
            let g = self.generations.entry(id).or_insert(0);
            *g += 1;
            *g
        };
        self.emit(PresentationEvent::Started { rt: id, at: now });
        events.push(InternalEvent {
            rt: id,
            model,
            status: StatusKind::RunState,
            value: GenericValue::Str("running".into()),
        });
        // Schedule completion for time-based content.
        if let Some(done) = self.rt.get(&id).and_then(|r| r.completion_time()) {
            self.schedule(done, TimerKind::Completion { rt: id, generation });
        }
        // Composites: execute start-up actions and lower sync specs.
        let composite_body = match &self.rt.get(&id).expect("exists").kind {
            RtKind::Composite { .. } => {
                match &self.objects.get(&model).expect("model exists").body {
                    ObjectBody::Composite(c) => Some(c.clone()),
                    _ => None,
                }
            }
            _ => None,
        };
        if let Some(body) = composite_body {
            // A re-run must not leave duplicate sync artefacts behind.
            self.links.retain(|l| l.origin != LinkOrigin::Sync(id));
            for c in &mut self.cyclic {
                if c.owner == id {
                    c.active = false;
                }
            }
            for entry in &body.on_start {
                self.apply_entry(entry)?;
            }
            for spec in &body.sync {
                let lowered = spec.lower();
                for (offset, entry) in lowered.timed {
                    if offset.is_zero() {
                        // Zero-offset starts happen synchronously with the
                        // composite's own start (atomic-parallel semantics).
                        self.apply_entry(&entry)?;
                    } else {
                        self.schedule(now + offset, TimerKind::Action(entry));
                    }
                }
                for link in lowered.links {
                    self.links.push(ActiveLink {
                        origin: LinkOrigin::Sync(id),
                        body: link,
                    });
                }
                for task in lowered.cyclic {
                    let index = self.cyclic.len();
                    self.cyclic.push(CyclicState {
                        task: task.clone(),
                        owner: id,
                        active: true,
                    });
                    self.schedule(now, TimerKind::Cyclic { index });
                }
            }
        }
        Ok(())
    }

    fn stop_rt(
        &mut self,
        id: RtId,
        events: &mut Vec<InternalEvent>,
        completed: bool,
    ) -> Result<(), EngineError> {
        let now = self.now;
        let rt = self.rt.get_mut(&id).ok_or(EngineError::UnknownRt(id))?;
        if rt.state != RtState::Running {
            return Ok(());
        }
        rt.stop(now);
        let model = rt.model;
        *self.generations.entry(id).or_insert(0) += 1;
        if completed {
            self.emit(PresentationEvent::Completed { rt: id, at: now });
            events.push(InternalEvent {
                rt: id,
                model,
                status: StatusKind::Completion,
                value: GenericValue::Bool(true),
            });
        } else {
            self.emit(PresentationEvent::Stopped { rt: id, at: now });
        }
        events.push(InternalEvent {
            rt: id,
            model,
            status: StatusKind::RunState,
            value: GenericValue::Str("stopped".into()),
        });
        // Stopping a composite deactivates its cyclic tasks and stops its
        // socket components — a stopped scene takes its presentation (and
        // its buttons) off the screen.
        if let Some(RtKind::Composite { sockets }) = self.rt.get(&id).map(|r| r.kind.clone()) {
            for c in &mut self.cyclic {
                if c.owner == id {
                    c.active = false;
                }
            }
            for s in &sockets {
                match s.plugged {
                    SocketKind::Presentable(child) | SocketKind::Structural(child) => {
                        self.stop_rt(child, events, false)?;
                        if let Some(rt) = self.rt.get_mut(&child) {
                            rt.attrs.interactive = false;
                        }
                    }
                    SocketKind::Empty => {}
                }
            }
        }
        Ok(())
    }

    fn reschedule_completion(&mut self, id: RtId) {
        if let Some(done) = self.rt.get(&id).and_then(|r| r.completion_time()) {
            let generation = *self.generations.get(&id).unwrap_or(&0);
            self.schedule(done, TimerKind::Completion { rt: id, generation });
        }
    }

    fn handle_completion(&mut self, id: RtId, generation: u64) -> Result<(), EngineError> {
        // Stale if the object restarted/stopped since this timer was set.
        if self.generations.get(&id) != Some(&generation) {
            return Ok(());
        }
        let Some(rt) = self.rt.get(&id) else {
            return Ok(());
        };
        if rt.state != RtState::Running {
            return Ok(());
        }
        // Verify the medium has actually elapsed (speed changes reschedule,
        // but a slower speed leaves the old timer early → re-arm).
        if let Some(done) = rt.completion_time() {
            if done > self.now {
                self.schedule(done, TimerKind::Completion { rt: id, generation });
                return Ok(());
            }
        }
        let mut events = Vec::new();
        self.stop_rt(id, &mut events, true)?;
        self.process_events(events)
    }

    fn handle_cyclic(&mut self, index: usize) -> Result<(), EngineError> {
        let Some(state) = self.cyclic.get_mut(index) else {
            return Ok(());
        };
        if !state.active {
            return Ok(());
        }
        if let Some(0) = state.task.remaining {
            state.active = false;
            return Ok(());
        }
        if let Some(r) = &mut state.task.remaining {
            *r -= 1;
        }
        let target = state.task.target;
        let period = state.task.period;
        // Re-arm before running so a Run failure doesn't wedge the cycle.
        self.schedule(self.now + period, TimerKind::Cyclic { index });
        let entry = ActionEntry::now(target, vec![ElementaryAction::Run]);
        self.apply_entry_now(&entry)
    }

    /// Snapshot of every live run-time object's data slot, keyed by its
    /// model object's name — the variable environment for scripts.
    fn data_slots_by_name(&self) -> HashMap<String, GenericValue> {
        let mut vars = HashMap::new();
        for rt in self.rt.values() {
            if let Some(obj) = self.objects.get(&rt.model) {
                vars.insert(obj.info.name.clone(), rt.attrs.data.clone());
            }
        }
        vars
    }

    // ---------- link processing ----------

    fn emit(&mut self, ev: PresentationEvent) {
        self.stats.events_emitted += 1;
        self.out.push(ev);
    }

    /// Current value of a status for additional-condition evaluation.
    fn query_status(&self, target: TargetRef, status: StatusKind) -> GenericValue {
        let rt = match target {
            TargetRef::Rt(id) => self.rt.get(&id),
            TargetRef::Model(m) => self.model_rt.get(&m).and_then(|id| self.rt.get(id)),
        };
        match status {
            StatusKind::RunState => GenericValue::Str(
                rt.map(|r| r.state.as_str())
                    .unwrap_or("inactive")
                    .to_string(),
            ),
            StatusKind::Visibility => GenericValue::Bool(rt.is_some_and(|r| r.attrs.visible)),
            StatusKind::Data => rt
                .map(|r| r.attrs.data.clone())
                .unwrap_or(GenericValue::Int(0)),
            StatusKind::Preparation => {
                let prepared = match target {
                    TargetRef::Model(m) => self.is_prepared(m),
                    TargetRef::Rt(_) => rt.is_some(),
                };
                GenericValue::Bool(prepared)
            }
            // Pulses: current value is always false.
            StatusKind::Selection | StatusKind::Completion => GenericValue::Bool(false),
        }
    }

    fn condition_matches_event(&self, cond: &Condition, ev: &InternalEvent) -> bool {
        let addressed = match cond.source {
            TargetRef::Rt(id) => id == ev.rt,
            TargetRef::Model(m) => m == ev.model,
        };
        addressed && cond.status == ev.status && cond.cmp.eval(&ev.value, &cond.value)
    }

    fn additional_hold(&self, conds: &[Condition]) -> bool {
        conds.iter().all(|c| {
            let current = self.query_status(c.source, c.status);
            c.cmp.eval(&current, &c.value)
        })
    }

    /// Feed internal status events through the link table until quiescent.
    fn process_events(&mut self, seed: Vec<InternalEvent>) -> Result<(), EngineError> {
        let mut queue: VecDeque<InternalEvent> = seed.into();
        let mut depth = 0usize;
        while let Some(ev) = queue.pop_front() {
            depth += 1;
            if depth > MAX_CASCADE {
                return Err(EngineError::CascadeOverflow);
            }
            // Collect fired effects first (borrow discipline), then apply.
            let mut fired: Vec<(Option<MhegId>, LinkEffect)> = Vec::new();
            for link in &self.links {
                if self.condition_matches_event(&link.body.trigger, &ev)
                    && self.additional_hold(&link.body.additional)
                {
                    let id = match link.origin {
                        LinkOrigin::Object(id) => Some(id),
                        LinkOrigin::Sync(_) => None,
                    };
                    fired.push((id, link.body.effect.clone()));
                }
            }
            for (link_id, effect) in fired {
                self.stats.links_fired += 1;
                self.emit(PresentationEvent::LinkFired {
                    link: link_id,
                    at: self.now,
                });
                let entries = match effect {
                    LinkEffect::Inline(e) => e,
                    LinkEffect::ActionRef(aid) => match self.objects.get(&aid).map(|o| &o.body) {
                        Some(ObjectBody::Action(a)) => a.entries.clone(),
                        _ => return Err(EngineError::UnknownObject(aid)),
                    },
                };
                for entry in &entries {
                    if entry.delay.is_zero() {
                        // Inline execution: collect its events into the queue.
                        let mut sub = Vec::new();
                        for action in &entry.actions {
                            self.apply_action(entry.target, action, &mut sub)?;
                        }
                        queue.extend(sub);
                    } else {
                        self.apply_entry(entry)?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::ClassLibrary;
    use crate::value::GenericValue;
    use bytes::Bytes;
    use mits_media::{MediaFormat, MediaId, MediaObject, VideoDims};

    fn clip(id: u64, secs: u64) -> MediaObject {
        MediaObject::new(
            MediaId(id),
            format!("clip{id}.mpg"),
            MediaFormat::Mpeg,
            SimDuration::from_secs(secs),
            VideoDims::new(320, 240),
            Bytes::from_static(b"x"),
        )
    }

    /// Engine pre-loaded with one 5 s video and one button.
    fn engine_with_video_and_button() -> (MhegEngine, MhegId, MhegId) {
        let mut lib = ClassLibrary::new(1);
        let video = lib.media_content(&clip(1, 5), (0, 0));
        let button = lib.value_content("stop-btn", GenericValue::Bool(false));
        let mut eng = MhegEngine::new();
        for o in lib.into_objects() {
            eng.ingest(o);
        }
        (eng, video, button)
    }

    #[test]
    fn lifecycle_prepare_new_run_complete() {
        let (mut eng, video, _) = engine_with_video_and_button();
        eng.prepare(video).unwrap();
        assert!(eng.is_prepared(video));
        let rt = eng.new_rt(video).unwrap();
        assert_eq!(eng.rt(rt).unwrap().state, RtState::Inactive);
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(rt),
            vec![ElementaryAction::Run],
        ))
        .unwrap();
        assert_eq!(eng.rt(rt).unwrap().state, RtState::Running);
        // Advance past the 5 s duration: auto-completes.
        eng.advance(SimTime::from_secs(6)).unwrap();
        assert_eq!(eng.rt(rt).unwrap().state, RtState::Stopped);
        let events = eng.take_events();
        assert!(events.iter().any(|e| matches!(e,
            PresentationEvent::Completed { rt: r, at } if *r == rt && *at == SimTime::from_secs(5))));
    }

    #[test]
    fn new_on_non_model_rejected() {
        let mut lib = ClassLibrary::new(1);
        let a = lib.action("a", vec![]);
        let mut eng = MhegEngine::new();
        for o in lib.into_objects() {
            eng.ingest(o);
        }
        assert_eq!(eng.new_rt(a), Err(EngineError::NotAModel(a)));
    }

    #[test]
    fn run_on_model_target_implicitly_creates_rt() {
        let (mut eng, video, _) = engine_with_video_and_button();
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Model(video),
            vec![ElementaryAction::Run],
        ))
        .unwrap();
        let rt = eng.rt_of_model(video).expect("rt auto-created");
        assert_eq!(eng.rt(rt).unwrap().state, RtState::Running);
    }

    #[test]
    fn button_link_stops_video() {
        // The paper's push-button example: audio plays when a button is
        // activated — here inverted: the stop button stops the video.
        let mut lib = ClassLibrary::new(1);
        let video = lib.media_content(&clip(1, 60), (0, 0));
        let button = lib.value_content("stop", GenericValue::Bool(false));
        lib.link(
            "on-stop",
            Condition::selected(TargetRef::Model(button)),
            vec![],
            vec![ActionEntry::now(
                TargetRef::Model(video),
                vec![ElementaryAction::Stop],
            )],
        );
        let mut eng = MhegEngine::new();
        for o in lib.into_objects() {
            eng.ingest(o);
        }
        let v_rt = eng.new_rt(video).unwrap();
        let b_rt = eng.new_rt(button).unwrap();
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(v_rt),
            vec![ElementaryAction::Run],
        ))
        .unwrap();
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(b_rt),
            vec![ElementaryAction::SetInteraction(true)],
        ))
        .unwrap();
        eng.advance(SimTime::from_secs(10)).unwrap();
        assert!(eng.user_select(b_rt).unwrap());
        assert_eq!(eng.rt(v_rt).unwrap().state, RtState::Stopped);
        assert_eq!(eng.stats.links_fired, 1);
    }

    #[test]
    fn selection_ignored_when_interaction_disabled() {
        let (mut eng, _, button) = engine_with_video_and_button();
        let b_rt = eng.new_rt(button).unwrap();
        assert!(!eng.user_select(b_rt).unwrap(), "not interactive yet");
        assert_eq!(eng.stats.links_fired, 0);
    }

    #[test]
    fn completion_link_chains_presentations() {
        // "When the audio has finished, display the image" (§2.2.2.3).
        let mut lib = ClassLibrary::new(1);
        let audio = lib.media_content(
            &MediaObject::new(
                MediaId(1),
                "speech.wav",
                MediaFormat::Wav,
                SimDuration::from_secs(3),
                VideoDims::default(),
                Bytes::from_static(b"a"),
            ),
            (0, 0),
        );
        let image = lib.media_content(
            &MediaObject::new(
                MediaId(2),
                "pic.gif",
                MediaFormat::Gif,
                SimDuration::ZERO,
                VideoDims::new(100, 100),
                Bytes::from_static(b"i"),
            ),
            (0, 0),
        );
        lib.link(
            "audio-then-image",
            Condition::completed(TargetRef::Model(audio)),
            vec![],
            vec![ActionEntry::now(
                TargetRef::Model(image),
                vec![ElementaryAction::Run],
            )],
        );
        let mut eng = MhegEngine::new();
        for o in lib.into_objects() {
            eng.ingest(o);
        }
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Model(audio),
            vec![ElementaryAction::Run],
        ))
        .unwrap();
        eng.advance(SimTime::from_secs(2)).unwrap();
        assert!(eng.rt_of_model(image).is_none(), "image not yet shown");
        eng.advance(SimTime::from_secs(4)).unwrap();
        let img_rt = eng.rt_of_model(image).expect("image created by link");
        assert_eq!(eng.rt(img_rt).unwrap().state, RtState::Running);
    }

    #[test]
    fn additional_conditions_gate_firing() {
        let mut lib = ClassLibrary::new(1);
        let video = lib.media_content(&clip(1, 60), (0, 0));
        let button = lib.value_content("btn", GenericValue::Bool(false));
        let gate = lib.value_content("gate", GenericValue::Int(0));
        lib.link(
            "guarded",
            Condition::selected(TargetRef::Model(button)),
            vec![Condition::equals(
                TargetRef::Model(gate),
                StatusKind::Data,
                GenericValue::Int(1),
            )],
            vec![ActionEntry::now(
                TargetRef::Model(video),
                vec![ElementaryAction::Run],
            )],
        );
        let mut eng = MhegEngine::new();
        for o in lib.into_objects() {
            eng.ingest(o);
        }
        let b_rt = eng.new_rt(button).unwrap();
        let g_rt = eng.new_rt(gate).unwrap();
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(b_rt),
            vec![ElementaryAction::SetInteraction(true)],
        ))
        .unwrap();
        eng.user_select(b_rt).unwrap();
        assert!(eng.rt_of_model(video).is_none(), "gate closed");
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(g_rt),
            vec![ElementaryAction::SetData(GenericValue::Int(1))],
        ))
        .unwrap();
        eng.user_select(b_rt).unwrap();
        assert!(eng.rt_of_model(video).is_some(), "gate open");
    }

    #[test]
    fn delayed_actions_fire_on_advance() {
        let (mut eng, video, _) = engine_with_video_and_button();
        eng.apply_entry(&ActionEntry::after(
            TargetRef::Model(video),
            SimDuration::from_secs(2),
            vec![ElementaryAction::Run],
        ))
        .unwrap();
        eng.advance(SimTime::from_secs(1)).unwrap();
        assert!(eng.rt_of_model(video).is_none());
        eng.advance(SimTime::from_secs(3)).unwrap();
        let rt = eng.rt_of_model(video).unwrap();
        assert_eq!(eng.rt(rt).unwrap().started_at, SimTime::from_secs(2));
    }

    #[test]
    fn composite_runs_components_via_sync() {
        use crate::sync::{SyncMechanism, SyncSpec};
        let mut lib = ClassLibrary::new(1);
        let a = lib.media_content(&clip(1, 2), (0, 0));
        let b = lib.media_content(&clip(2, 2), (0, 0));
        let scene = lib.composite(
            "scene",
            vec![a, b],
            vec![],
            vec![SyncSpec::new(SyncMechanism::Chained {
                sequence: vec![TargetRef::Model(a), TargetRef::Model(b)],
            })],
        );
        let mut eng = MhegEngine::new();
        for o in lib.into_objects() {
            eng.ingest(o);
        }
        let scene_rt = eng.new_rt(scene).unwrap();
        assert_eq!(eng.rt(scene_rt).unwrap().sockets().unwrap().len(), 2);
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(scene_rt),
            vec![ElementaryAction::Run],
        ))
        .unwrap();
        // a runs immediately; b after a completes at t=2.
        let a_rt = eng.rt_of_model(a).unwrap();
        assert_eq!(eng.rt(a_rt).unwrap().state, RtState::Running);
        eng.advance(SimTime::from_secs(1)).unwrap();
        let b_state = eng.rt_of_model(b).map(|r| eng.rt(r).unwrap().state);
        assert_ne!(b_state, Some(RtState::Running), "b waits for a");
        eng.advance(SimTime::from_secs(3)).unwrap();
        let b_rt = eng.rt_of_model(b).expect("b started by chain");
        assert_eq!(eng.rt(b_rt).unwrap().state, RtState::Running);
        // b completes at 2+2=4 < 5.
        eng.advance(SimTime::from_secs(5)).unwrap();
        assert_eq!(eng.rt(b_rt).unwrap().state, RtState::Stopped);
    }

    #[test]
    fn cyclic_sync_repeats_bounded() {
        use crate::sync::{SyncMechanism, SyncSpec};
        let mut lib = ClassLibrary::new(1);
        let a = lib.media_content(&clip(1, 1), (0, 0));
        let scene = lib.composite(
            "loop",
            vec![a],
            vec![],
            vec![SyncSpec::new(SyncMechanism::Cyclic {
                target: TargetRef::Model(a),
                period: SimDuration::from_secs(2),
                repetitions: Some(3),
            })],
        );
        let mut eng = MhegEngine::new();
        for o in lib.into_objects() {
            eng.ingest(o);
        }
        let rt = eng.new_rt(scene).unwrap();
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(rt),
            vec![ElementaryAction::Run],
        ))
        .unwrap();
        eng.advance(SimTime::from_secs(10)).unwrap();
        let starts = eng
            .take_events()
            .iter()
            .filter(|e| {
                matches!(e, PresentationEvent::Started { rt: r, .. }
                    if Some(*r) == eng.rt_of_model(a))
            })
            .count();
        assert_eq!(starts, 3, "exactly three repetitions");
    }

    #[test]
    fn speed_change_rescales_completion() {
        let (mut eng, video, _) = engine_with_video_and_button();
        let rt = eng.new_rt(video).unwrap();
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(rt),
            vec![ElementaryAction::Run],
        ))
        .unwrap();
        // At t=1 switch to double speed: remaining 4 s of media plays in 2 s.
        eng.advance(SimTime::from_secs(1)).unwrap();
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(rt),
            vec![ElementaryAction::SetSpeed(2000)],
        ))
        .unwrap();
        eng.advance(SimTime::from_secs(10)).unwrap();
        let completed_at = eng.take_events().iter().find_map(|e| match e {
            PresentationEvent::Completed { rt: r, at } if *r == rt => Some(*at),
            _ => None,
        });
        assert_eq!(completed_at, Some(SimTime::from_secs(3)), "1 s + 4 s/2");
    }

    #[test]
    fn get_value_reports() {
        let (mut eng, video, _) = engine_with_video_and_button();
        let rt = eng.new_rt(video).unwrap();
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(rt),
            vec![ElementaryAction::GetValue(ValueAttribute::State)],
        ))
        .unwrap();
        let events = eng.take_events();
        assert!(events.iter().any(|e| matches!(e,
            PresentationEvent::ValueReport { rt: r, attr: ValueAttribute::State, value }
                if *r == rt && *value == GenericValue::Str("inactive".into()))));
    }

    #[test]
    fn delete_composite_deletes_children_and_sync_links() {
        use crate::sync::{AtomicRelation, SyncMechanism, SyncSpec};
        let mut lib = ClassLibrary::new(1);
        let a = lib.media_content(&clip(1, 2), (0, 0));
        let b = lib.media_content(&clip(2, 2), (0, 0));
        let scene = lib.composite(
            "scene",
            vec![a, b],
            vec![],
            vec![SyncSpec::new(SyncMechanism::Atomic {
                a: TargetRef::Model(a),
                b: TargetRef::Model(b),
                relation: AtomicRelation::Serial,
            })],
        );
        let mut eng = MhegEngine::new();
        for o in lib.into_objects() {
            eng.ingest(o);
        }
        let rt = eng.new_rt(scene).unwrap();
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(rt),
            vec![ElementaryAction::Run],
        ))
        .unwrap();
        let before = eng.rt_count();
        assert_eq!(before, 3, "composite + two children");
        eng.delete_rt(rt).unwrap();
        assert_eq!(eng.rt_count(), 0);
        assert!(eng.links.iter().all(|l| l.origin != LinkOrigin::Sync(rt)));
    }

    #[test]
    fn cascade_overflow_detected() {
        // Two links ping-ponging visibility forever.
        let mut lib = ClassLibrary::new(1);
        let x = lib.value_content("x", GenericValue::Int(0));
        lib.link(
            "on",
            Condition::equals(TargetRef::Model(x), StatusKind::Visibility, true),
            vec![],
            vec![ActionEntry::now(
                TargetRef::Model(x),
                vec![ElementaryAction::SetVisibility(false)],
            )],
        );
        lib.link(
            "off",
            Condition::equals(TargetRef::Model(x), StatusKind::Visibility, false),
            vec![],
            vec![ActionEntry::now(
                TargetRef::Model(x),
                vec![ElementaryAction::SetVisibility(true)],
            )],
        );
        let mut eng = MhegEngine::new();
        for o in lib.into_objects() {
            eng.ingest(o);
        }
        let rt = eng.new_rt(x).unwrap();
        let result = eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(rt),
            vec![ElementaryAction::SetVisibility(false)],
        ));
        assert_eq!(result, Err(EngineError::CascadeOverflow));
    }

    #[test]
    fn ingest_wire_round_trip() {
        let mut lib = ClassLibrary::new(1);
        let v = lib.media_content(&clip(1, 5), (0, 0));
        let obj = lib.get(v).unwrap().clone();
        let wire = crate::codec::encode_object(&obj, WireFormat::Tlv);
        let mut eng = MhegEngine::new();
        let id = eng.ingest_wire(&wire, WireFormat::Tlv).unwrap();
        assert_eq!(id, v);
        assert_eq!(eng.object(v), Some(&obj));
        assert!(eng.ingest_wire(b"garbage", WireFormat::Tlv).is_err());
    }

    #[test]
    fn script_activation_evaluates_quiz_expression() {
        let mut lib = ClassLibrary::new(1);
        let score = lib.value_content("score", GenericValue::Int(0));
        let attempts = lib.value_content("attempts", GenericValue::Int(0));
        let quiz = lib.script("quiz-pass", "mits-expr", "score > 60 && attempts < 3");
        let mut eng = MhegEngine::new();
        for o in lib.into_objects() {
            eng.ingest(o);
        }
        let score_rt = eng.new_rt(score).unwrap();
        let attempts_rt = eng.new_rt(attempts).unwrap();
        let quiz_rt = eng.new_rt(quiz).unwrap();
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(score_rt),
            vec![ElementaryAction::SetData(GenericValue::Int(72))],
        ))
        .unwrap();
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(attempts_rt),
            vec![ElementaryAction::SetData(GenericValue::Int(2))],
        ))
        .unwrap();
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(quiz_rt),
            vec![ElementaryAction::Activate],
        ))
        .unwrap();
        assert_eq!(
            eng.rt(quiz_rt).unwrap().attrs.data,
            GenericValue::Bool(true)
        );
        // Failing score re-evaluates to false.
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(score_rt),
            vec![ElementaryAction::SetData(GenericValue::Int(40))],
        ))
        .unwrap();
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(quiz_rt),
            vec![ElementaryAction::Activate],
        ))
        .unwrap();
        assert_eq!(
            eng.rt(quiz_rt).unwrap().attrs.data,
            GenericValue::Bool(false)
        );
    }

    #[test]
    fn script_result_can_fire_links() {
        // Link: when the quiz script's data becomes true, run the reward.
        let mut lib = ClassLibrary::new(1);
        let score = lib.value_content("score", GenericValue::Int(99));
        let reward = lib.media_content(&clip(5, 2), (0, 0));
        let quiz = lib.script("gate", "mits-expr", "score > 60");
        lib.link(
            "pass-link",
            Condition::equals(TargetRef::Model(quiz), StatusKind::Data, true),
            vec![],
            vec![ActionEntry::now(
                TargetRef::Model(reward),
                vec![ElementaryAction::Run],
            )],
        );
        let mut eng = MhegEngine::new();
        for o in lib.into_objects() {
            eng.ingest(o);
        }
        eng.new_rt(score).unwrap();
        let quiz_rt = eng.new_rt(quiz).unwrap();
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(quiz_rt),
            vec![ElementaryAction::Activate],
        ))
        .unwrap();
        let reward_rt = eng.rt_of_model(reward).expect("reward launched by script");
        assert_eq!(eng.rt(reward_rt).unwrap().state, RtState::Running);
    }

    #[test]
    fn bad_script_reports_error() {
        let mut lib = ClassLibrary::new(1);
        let broken = lib.script("broken", "mits-expr", "1 +");
        let mut eng = MhegEngine::new();
        for o in lib.into_objects() {
            eng.ingest(o);
        }
        let rt = eng.new_rt(broken).unwrap();
        let err = eng
            .apply_entry(&ActionEntry::now(
                TargetRef::Rt(rt),
                vec![ElementaryAction::Activate],
            ))
            .unwrap_err();
        assert!(matches!(err, EngineError::Script(_)));
    }

    #[test]
    fn stream_toggle_on_multiplexed_content() {
        use crate::object::StreamDesc;
        let mut lib = ClassLibrary::new(1);
        let media = clip(9, 10);
        let mux = lib.multiplexed_content(
            &media,
            vec![
                StreamDesc {
                    stream_id: 1,
                    format: MediaFormat::Mpeg,
                    enabled: true,
                },
                StreamDesc {
                    stream_id: 2,
                    format: MediaFormat::Wav,
                    enabled: true,
                },
            ],
        );
        let mut eng = MhegEngine::new();
        for o in lib.into_objects() {
            eng.ingest(o);
        }
        let rt = eng.new_rt(mux).unwrap();
        let streams = |eng: &MhegEngine| match &eng.rt(rt).unwrap().kind {
            RtKind::Content {
                enabled_streams, ..
            } => enabled_streams.clone(),
            _ => panic!("not content"),
        };
        assert_eq!(streams(&eng), vec![1, 2]);
        // "Turn audio off in an MPEG system stream."
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(rt),
            vec![ElementaryAction::SetStreamEnabled {
                stream_id: 2,
                enabled: false,
            }],
        ))
        .unwrap();
        assert_eq!(streams(&eng), vec![1]);
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(rt),
            vec![ElementaryAction::SetStreamEnabled {
                stream_id: 2,
                enabled: true,
            }],
        ))
        .unwrap();
        assert_eq!(streams(&eng), vec![1, 2]);
        // Idempotent re-enable.
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(rt),
            vec![ElementaryAction::SetStreamEnabled {
                stream_id: 2,
                enabled: true,
            }],
        ))
        .unwrap();
        assert_eq!(streams(&eng), vec![1, 2]);
        // Stream control on a non-content target errors.
        let script = {
            let mut lib2 = ClassLibrary::new(2);
            let s = lib2.script("s", "mits-expr", "1");
            let objs = lib2.into_objects();
            for o in objs {
                eng.ingest(o);
            }
            s
        };
        let s_rt = eng.new_rt(script).unwrap();
        assert!(matches!(
            eng.apply_entry(&ActionEntry::now(
                TargetRef::Rt(s_rt),
                vec![ElementaryAction::SetStreamEnabled {
                    stream_id: 1,
                    enabled: false
                }],
            )),
            Err(EngineError::BadTarget(_))
        ));
    }

    #[test]
    fn stats_count_activity() {
        let (mut eng, video, _) = engine_with_video_and_button();
        eng.prepare(video).unwrap();
        let rt = eng.new_rt(video).unwrap();
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Rt(rt),
            vec![ElementaryAction::Run],
        ))
        .unwrap();
        assert_eq!(eng.stats.ingested, 2);
        assert_eq!(eng.stats.rt_created, 1);
        assert_eq!(eng.stats.actions_applied, 1);
        assert!(eng.stats.events_emitted >= 3);
    }
}
