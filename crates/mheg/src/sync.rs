//! The four MHEG synchronization mechanisms (§2.2.2.3, Figure 2.6).
//!
//! 1. **Atomic** — two components of a composite related serially or in
//!    parallel (Fig 2.6a).
//! 2. **Elementary** — two components with explicit offsets T1, T2 from
//!    composite start (Fig 2.6b).
//! 3. **Cyclic** — repetitive presentation of one object, synchronized to
//!    a periodic event such as a clock tick.
//! 4. **Chained** — basic objects chained into a sequence, each starting
//!    when its predecessor completes.
//!
//! A [`SyncSpec`] attached to a composite is *lowered* into the engine's
//! three primitives: timed action entries, conditional links, and native
//! cyclic tasks. The lowering is what the courseware compiler in
//! `mits-author` relies on, and what experiment F2.6 measures.

use crate::action::{ActionEntry, ElementaryAction, TargetRef};
use crate::link::Condition;
use crate::object::{LinkBody, LinkEffect};
use mits_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Serial vs parallel relation of an atomic synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AtomicRelation {
    /// Both components start together.
    Parallel,
    /// The second starts when the first completes.
    Serial,
}

/// One synchronization mechanism instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SyncMechanism {
    /// Two components, serial or parallel (Fig 2.6a).
    Atomic {
        /// First component.
        a: TargetRef,
        /// Second component.
        b: TargetRef,
        /// Their relation.
        relation: AtomicRelation,
    },
    /// Two components with start offsets from composite start (Fig 2.6b).
    Elementary {
        /// First component.
        a: TargetRef,
        /// Start offset of `a`.
        t1: SimDuration,
        /// Second component.
        b: TargetRef,
        /// Start offset of `b`.
        t2: SimDuration,
    },
    /// Repetitive presentation of `target` every `period`, `repetitions`
    /// times (`None` = until stopped).
    Cyclic {
        /// The repeated component.
        target: TargetRef,
        /// Repetition period.
        period: SimDuration,
        /// Bounded repetition count.
        repetitions: Option<u32>,
    },
    /// Each component starts when its predecessor completes; the first
    /// starts at composite start.
    Chained {
        /// The ordered chain.
        sequence: Vec<TargetRef>,
    },
}

/// A synchronization attached to a composite object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncSpec {
    /// The mechanism.
    pub mechanism: SyncMechanism,
}

/// A cyclic task the engine manages natively: re-run `target` every
/// `period` until `remaining` reaches zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CyclicTask {
    /// The repeated component.
    pub target: TargetRef,
    /// Repetition period.
    pub period: SimDuration,
    /// Remaining runs (`None` = unbounded).
    pub remaining: Option<u32>,
}

/// Result of lowering a [`SyncSpec`] to engine primitives.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoweredSync {
    /// Run actions scheduled at offsets from composite start.
    pub timed: Vec<(SimDuration, ActionEntry)>,
    /// Completion-triggered links (serial/chained relations).
    pub links: Vec<LinkBody>,
    /// Native cyclic tasks.
    pub cyclic: Vec<CyclicTask>,
}

impl SyncSpec {
    /// Wrap a mechanism.
    pub fn new(mechanism: SyncMechanism) -> Self {
        SyncSpec { mechanism }
    }

    /// Lower to engine primitives.
    pub fn lower(&self) -> LoweredSync {
        let mut out = LoweredSync::default();
        match &self.mechanism {
            SyncMechanism::Atomic { a, b, relation } => match relation {
                AtomicRelation::Parallel => {
                    out.timed.push((
                        SimDuration::ZERO,
                        ActionEntry::now(*a, vec![ElementaryAction::Run]),
                    ));
                    out.timed.push((
                        SimDuration::ZERO,
                        ActionEntry::now(*b, vec![ElementaryAction::Run]),
                    ));
                }
                AtomicRelation::Serial => {
                    out.timed.push((
                        SimDuration::ZERO,
                        ActionEntry::now(*a, vec![ElementaryAction::Run]),
                    ));
                    out.links.push(LinkBody {
                        trigger: Condition::completed(*a),
                        additional: Vec::new(),
                        effect: LinkEffect::Inline(vec![ActionEntry::now(
                            *b,
                            vec![ElementaryAction::Run],
                        )]),
                    });
                }
            },
            SyncMechanism::Elementary { a, t1, b, t2 } => {
                out.timed
                    .push((*t1, ActionEntry::now(*a, vec![ElementaryAction::Run])));
                out.timed
                    .push((*t2, ActionEntry::now(*b, vec![ElementaryAction::Run])));
            }
            SyncMechanism::Cyclic {
                target,
                period,
                repetitions,
            } => {
                out.cyclic.push(CyclicTask {
                    target: *target,
                    period: *period,
                    remaining: *repetitions,
                });
            }
            SyncMechanism::Chained { sequence } => {
                if let Some(first) = sequence.first() {
                    out.timed.push((
                        SimDuration::ZERO,
                        ActionEntry::now(*first, vec![ElementaryAction::Run]),
                    ));
                }
                for pair in sequence.windows(2) {
                    out.links.push(LinkBody {
                        trigger: Condition::completed(pair[0]),
                        additional: Vec::new(),
                        effect: LinkEffect::Inline(vec![ActionEntry::now(
                            pair[1],
                            vec![ElementaryAction::Run],
                        )]),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RtId;

    fn rt(n: u64) -> TargetRef {
        TargetRef::Rt(RtId(n))
    }

    #[test]
    fn atomic_parallel_lowers_to_two_immediate_runs() {
        let l = SyncSpec::new(SyncMechanism::Atomic {
            a: rt(1),
            b: rt(2),
            relation: AtomicRelation::Parallel,
        })
        .lower();
        assert_eq!(l.timed.len(), 2);
        assert!(l.links.is_empty());
        assert!(l.timed.iter().all(|(d, _)| d.is_zero()));
    }

    #[test]
    fn atomic_serial_lowers_to_run_plus_completion_link() {
        let l = SyncSpec::new(SyncMechanism::Atomic {
            a: rt(1),
            b: rt(2),
            relation: AtomicRelation::Serial,
        })
        .lower();
        assert_eq!(l.timed.len(), 1);
        assert_eq!(l.links.len(), 1);
        assert_eq!(l.links[0].trigger, Condition::completed(rt(1)));
        match &l.links[0].effect {
            LinkEffect::Inline(entries) => {
                assert_eq!(entries[0].target, rt(2));
                assert_eq!(entries[0].actions, vec![ElementaryAction::Run]);
            }
            other => panic!("unexpected effect {other:?}"),
        }
    }

    #[test]
    fn elementary_lowers_to_offset_runs() {
        let l = SyncSpec::new(SyncMechanism::Elementary {
            a: rt(1),
            t1: SimDuration::from_secs(1),
            b: rt(2),
            t2: SimDuration::from_secs(3),
        })
        .lower();
        assert_eq!(l.timed.len(), 2);
        assert_eq!(l.timed[0].0, SimDuration::from_secs(1));
        assert_eq!(l.timed[1].0, SimDuration::from_secs(3));
    }

    #[test]
    fn cyclic_lowers_to_native_task() {
        let l = SyncSpec::new(SyncMechanism::Cyclic {
            target: rt(7),
            period: SimDuration::from_millis(500),
            repetitions: Some(4),
        })
        .lower();
        assert!(l.timed.is_empty());
        assert_eq!(l.cyclic.len(), 1);
        assert_eq!(l.cyclic[0].remaining, Some(4));
    }

    #[test]
    fn chained_lowers_to_first_run_plus_n_minus_1_links() {
        let l = SyncSpec::new(SyncMechanism::Chained {
            sequence: vec![rt(1), rt(2), rt(3), rt(4)],
        })
        .lower();
        assert_eq!(l.timed.len(), 1);
        assert_eq!(l.links.len(), 3);
        assert_eq!(l.links[2].trigger, Condition::completed(rt(3)));
    }

    #[test]
    fn chained_empty_sequence_is_noop() {
        let l = SyncSpec::new(SyncMechanism::Chained { sequence: vec![] }).lower();
        assert_eq!(l, LoweredSync::default());
    }
}
