//! # mits-mheg — an MHEG object system in the style of ISO/IEC 13522-1
//!
//! MITS chose MHEG over HyTime as its information-interchange scheme
//! (§3.1.2.2): final-form, real-time, interactive, object-oriented. This
//! crate reproduces everything Chapter 2 and Chapter 4 of the paper use:
//!
//! * The **eight object classes** — Content, Multiplexed Content,
//!   Composite, Link, Action, Script, Container, Descriptor — with the
//!   common identification attributes and the extended class hierarchy of
//!   Figure 4.5 ([`class`], [`object`], [`library`]).
//! * The **object life cycle** of Figure 2.4 — form (a) interchanged
//!   encoding, form (b) decoded engine-internal objects, form (c) run-time
//!   objects created with `new` and destroyed with `delete`
//!   ([`codec`], [`runtime`], [`engine`]).
//! * **Links and actions** — trigger + additional conditions, elementary
//!   actions grouped into Preparation / Creation / Presentation /
//!   Activation / Interaction / Getting-Value / Rendition ([`link`],
//!   [`action`]).
//! * The **four synchronization mechanisms** of §2.2.2.3 — atomic,
//!   elementary, cyclic, chained — plus conditional synchronization
//!   ([`sync`]).
//! * **Interchange** — containers grouping object sets and descriptors
//!   carrying resource needs for capability negotiation before transfer
//!   ([`descriptor`]), with two wire formats: a compact TLV binary codec
//!   (the ASN.1 role) and an SGML-like textual codec (§2.2.2, Figure 2.9).
//!
//! The [`engine::MhegEngine`] is deliberately synchronous and clock-driven:
//! the courseware navigator advances virtual time and injects user input;
//! the engine fires links, mutates run-time objects, and emits presentation
//! events the using application renders.

pub mod action;
pub mod class;
pub mod codec;
pub mod descriptor;
pub mod engine;
pub mod ids;
pub mod library;
pub mod link;
pub mod object;
pub mod runtime;
pub mod script;
pub mod sync;
pub mod value;

pub use action::{ActionGroup, ElementaryAction, TargetRef};
pub use class::ClassKind;
pub use codec::{decode_object, encode_object, CodecError, WireFormat};
pub use descriptor::{Negotiation, ResourceNeed, SystemCapabilities};
pub use engine::{EngineError, MhegEngine, PresentationEvent};
pub use ids::{MhegId, ObjectInfo, RtId};
pub use library::ClassLibrary;
pub use link::{Comparison, Condition, StatusKind};
pub use object::{
    ActionBody, CompositeBody, ContainerBody, ContentBody, ContentData, DescriptorBody, LinkBody,
    MhegObject, ObjectBody, ScriptBody, StreamDesc,
};
pub use runtime::{RtObject, RtState, Socket, SocketKind};
pub use script::{run as run_script, ScriptError};
pub use sync::{SyncMechanism, SyncSpec};
pub use value::GenericValue;
