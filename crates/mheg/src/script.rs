//! The `mits-expr` script language — MHEG Part III support the thesis
//! deferred ("script object class was not studied because of the
//! unavailability of materials and standards", §6.2).
//!
//! Scripts express "complex synchronization taking into account previous
//! user replies, calculated values, and the state of system resources"
//! (§2.2.2.3). `mits-expr` is a small, total expression language over
//! [`GenericValue`]s:
//!
//! ```text
//! expr  := or
//! or    := and ("||" and)*
//! and   := cmp ("&&" cmp)*
//! cmp   := sum (("=="|"!="|"<="|">="|"<"|">") sum)?
//! sum   := prod (("+"|"-") prod)*
//! prod  := unary (("*"|"/") unary)*
//! unary := "!" unary | "-" unary | atom
//! atom  := integer | "true" | "false" | 'single-quoted string'
//!        | identifier | "(" expr ")"
//! ```
//!
//! Identifiers resolve through a caller-supplied resolver; the engine
//! binds them to the data slots of like-named run-time objects, so a quiz
//! script like `score > 60 && attempts < 3` reads the values the
//! courseware's entry fields and counters hold.

use crate::value::GenericValue;
use std::fmt;

/// Errors from parsing or evaluating a script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptError {
    /// Syntax error at byte offset.
    Parse {
        /// Byte offset in the source.
        at: usize,
        /// What was wrong.
        msg: String,
    },
    /// An identifier the resolver could not supply.
    UnknownVariable(String),
    /// Operands of incompatible types.
    TypeError(String),
    /// Integer division by zero.
    DivisionByZero,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Parse { at, msg } => write!(f, "parse error at byte {at}: {msg}"),
            ScriptError::UnknownVariable(v) => write!(f, "unknown variable '{v}'"),
            ScriptError::TypeError(m) => write!(f, "type error: {m}"),
            ScriptError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for ScriptError {}

/// A parsed expression (kept for repeated evaluation).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Lit(GenericValue),
    /// Variable reference.
    Var(String),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical not.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `||`
    Or,
    /// `&&`
    And,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+` (also string concatenation)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ScriptError> {
        Err(ScriptError::Parse {
            at: self.pos,
            msg: msg.into(),
        })
    }

    fn ws(&mut self) {
        while matches!(self.src.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.ws();
        if self.src[self.pos..].starts_with(tok.as_bytes()) {
            // Guard identifier-like tokens against prefix matches
            // ("trueish" is not "true").
            if tok.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
                if let Some(&next) = self.src.get(self.pos + tok.len()) {
                    if next.is_ascii_alphanumeric() || next == b'_' {
                        return false;
                    }
                }
            }
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn expr(&mut self) -> Result<Expr, ScriptError> {
        self.or()
    }

    fn or(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.and()?;
        while self.eat("||") {
            let rhs = self.and()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.cmp()?;
        while self.eat("&&") {
            let rhs = self.cmp()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp(&mut self) -> Result<Expr, ScriptError> {
        let lhs = self.sum()?;
        for (tok, op) in [
            ("==", BinOp::Eq),
            ("!=", BinOp::Ne),
            ("<=", BinOp::Le),
            (">=", BinOp::Ge),
            ("<", BinOp::Lt),
            (">", BinOp::Gt),
        ] {
            if self.eat(tok) {
                let rhs = self.sum()?;
                return Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn sum(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.prod()?;
        loop {
            if self.eat("+") {
                let rhs = self.prod()?;
                lhs = Expr::Binary(BinOp::Add, Box::new(lhs), Box::new(rhs));
            } else if self.peek_minus() {
                self.eat("-");
                let rhs = self.prod()?;
                lhs = Expr::Binary(BinOp::Sub, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    /// A `-` here is a binary minus (not `->` or similar).
    fn peek_minus(&mut self) -> bool {
        self.ws();
        self.src.get(self.pos) == Some(&b'-')
    }

    fn prod(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.unary()?;
        loop {
            if self.eat("*") {
                let rhs = self.unary()?;
                lhs = Expr::Binary(BinOp::Mul, Box::new(lhs), Box::new(rhs));
            } else if self.eat("/") {
                let rhs = self.unary()?;
                lhs = Expr::Binary(BinOp::Div, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, ScriptError> {
        if self.eat("!") {
            return Ok(Expr::Unary(UnaryOp::Not, Box::new(self.unary()?)));
        }
        if self.peek_minus() {
            self.eat("-");
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(self.unary()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, ScriptError> {
        self.ws();
        if self.eat("(") {
            let e = self.expr()?;
            if !self.eat(")") {
                return self.err("expected ')'");
            }
            return Ok(e);
        }
        if self.eat("true") {
            return Ok(Expr::Lit(GenericValue::Bool(true)));
        }
        if self.eat("false") {
            return Ok(Expr::Lit(GenericValue::Bool(false)));
        }
        let Some(&c) = self.src.get(self.pos) else {
            return self.err("unexpected end of script");
        };
        if c == b'\'' {
            self.pos += 1;
            let start = self.pos;
            while let Some(&b) = self.src.get(self.pos) {
                if b == b'\'' {
                    let s = std::str::from_utf8(&self.src[start..self.pos])
                        .map_err(|_| ScriptError::Parse {
                            at: start,
                            msg: "non-UTF8 string".into(),
                        })?
                        .to_string();
                    self.pos += 1;
                    return Ok(Expr::Lit(GenericValue::Str(s)));
                }
                self.pos += 1;
            }
            return self.err("unterminated string");
        }
        if c.is_ascii_digit() {
            let start = self.pos;
            while matches!(self.src.get(self.pos), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).expect("digits");
            let n: i64 = text.parse().map_err(|_| ScriptError::Parse {
                at: start,
                msg: "integer overflow".into(),
            })?;
            return Ok(Expr::Lit(GenericValue::Int(n)));
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.pos;
            while matches!(self.src.get(self.pos), Some(b) if b.is_ascii_alphanumeric() || *b == b'_')
            {
                self.pos += 1;
            }
            let name = std::str::from_utf8(&self.src[start..self.pos])
                .expect("ident bytes")
                .to_string();
            return Ok(Expr::Var(name));
        }
        self.err(format!("unexpected character {:?}", c as char))
    }
}

/// Parse a script source into an expression tree.
pub fn parse(src: &str) -> Result<Expr, ScriptError> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
    };
    let e = p.expr()?;
    p.ws();
    if p.pos != p.src.len() {
        return Err(ScriptError::Parse {
            at: p.pos,
            msg: "trailing input".into(),
        });
    }
    Ok(e)
}

fn as_int(v: &GenericValue, ctx: &str) -> Result<i64, ScriptError> {
    match v {
        GenericValue::Int(i) => Ok(*i),
        GenericValue::Milli(m) => Ok(*m / 1000),
        other => Err(ScriptError::TypeError(format!(
            "{ctx}: {other} is not an integer"
        ))),
    }
}

fn as_bool(v: &GenericValue, ctx: &str) -> Result<bool, ScriptError> {
    match v {
        GenericValue::Bool(b) => Ok(*b),
        other => Err(ScriptError::TypeError(format!(
            "{ctx}: {other} is not a boolean"
        ))),
    }
}

/// Evaluate an expression with a variable resolver.
pub fn eval(
    expr: &Expr,
    resolve: &dyn Fn(&str) -> Option<GenericValue>,
) -> Result<GenericValue, ScriptError> {
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Var(name) => resolve(name).ok_or_else(|| ScriptError::UnknownVariable(name.clone())),
        Expr::Unary(op, inner) => {
            let v = eval(inner, resolve)?;
            match op {
                UnaryOp::Not => Ok(GenericValue::Bool(!as_bool(&v, "!")?)),
                UnaryOp::Neg => Ok(GenericValue::Int(-as_int(&v, "-")?)),
            }
        }
        Expr::Binary(op, l, r) => {
            use BinOp::*;
            // Short-circuit logicals.
            if matches!(op, And | Or) {
                let lv = as_bool(&eval(l, resolve)?, "logical operand")?;
                return Ok(GenericValue::Bool(match op {
                    And => lv && as_bool(&eval(r, resolve)?, "logical operand")?,
                    Or => lv || as_bool(&eval(r, resolve)?, "logical operand")?,
                    _ => unreachable!(),
                }));
            }
            let lv = eval(l, resolve)?;
            let rv = eval(r, resolve)?;
            match op {
                Eq | Ne | Lt | Le | Gt | Ge => {
                    let ord = lv.partial_cmp_value(&rv).ok_or_else(|| {
                        ScriptError::TypeError(format!("cannot compare {lv} with {rv}"))
                    });
                    let holds = match (op, ord) {
                        (Ne, Err(_)) => true, // differing types are "not equal"
                        (_, Err(e)) => return Err(e),
                        (Eq, Ok(o)) => o == std::cmp::Ordering::Equal,
                        (Ne, Ok(o)) => o != std::cmp::Ordering::Equal,
                        (Lt, Ok(o)) => o == std::cmp::Ordering::Less,
                        (Le, Ok(o)) => o != std::cmp::Ordering::Greater,
                        (Gt, Ok(o)) => o == std::cmp::Ordering::Greater,
                        (Ge, Ok(o)) => o != std::cmp::Ordering::Less,
                        _ => unreachable!(),
                    };
                    Ok(GenericValue::Bool(holds))
                }
                Add => match (&lv, &rv) {
                    (GenericValue::Str(a), GenericValue::Str(b)) => {
                        Ok(GenericValue::Str(format!("{a}{b}")))
                    }
                    _ => Ok(GenericValue::Int(
                        as_int(&lv, "+")?.wrapping_add(as_int(&rv, "+")?),
                    )),
                },
                Sub => Ok(GenericValue::Int(
                    as_int(&lv, "-")?.wrapping_sub(as_int(&rv, "-")?),
                )),
                Mul => Ok(GenericValue::Int(
                    as_int(&lv, "*")?.wrapping_mul(as_int(&rv, "*")?),
                )),
                Div => {
                    let d = as_int(&rv, "/")?;
                    if d == 0 {
                        return Err(ScriptError::DivisionByZero);
                    }
                    Ok(GenericValue::Int(as_int(&lv, "/")?.wrapping_div(d)))
                }
                And | Or => unreachable!("handled above"),
            }
        }
    }
}

/// Parse and evaluate in one step.
pub fn run(
    src: &str,
    resolve: &dyn Fn(&str) -> Option<GenericValue>,
) -> Result<GenericValue, ScriptError> {
    eval(&parse(src)?, resolve)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn none(_: &str) -> Option<GenericValue> {
        None
    }

    fn quiz_vars(name: &str) -> Option<GenericValue> {
        match name {
            "score" => Some(GenericValue::Int(72)),
            "attempts" => Some(GenericValue::Int(2)),
            "name" => Some(GenericValue::Str("alice".into())),
            "passed" => Some(GenericValue::Bool(true)),
            _ => None,
        }
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run("1 + 2 * 3", &none).unwrap(), GenericValue::Int(7));
        assert_eq!(run("(1 + 2) * 3", &none).unwrap(), GenericValue::Int(9));
        assert_eq!(
            run("10 - 4 - 3", &none).unwrap(),
            GenericValue::Int(3),
            "left assoc"
        );
        assert_eq!(run("20 / 2 / 5", &none).unwrap(), GenericValue::Int(2));
        assert_eq!(run("-5 + 3", &none).unwrap(), GenericValue::Int(-2));
        assert_eq!(run("--5", &none).unwrap(), GenericValue::Int(5));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(run("3 < 5", &none).unwrap(), GenericValue::Bool(true));
        assert_eq!(run("3 >= 5", &none).unwrap(), GenericValue::Bool(false));
        assert_eq!(
            run("1 < 2 && 2 < 3 || false", &none).unwrap(),
            GenericValue::Bool(true)
        );
        assert_eq!(run("!(1 == 1)", &none).unwrap(), GenericValue::Bool(false));
        assert_eq!(
            run("true && !false", &none).unwrap(),
            GenericValue::Bool(true)
        );
    }

    #[test]
    fn the_papers_quiz_script() {
        // §4.4: "score > 60 && attempts < 3".
        assert_eq!(
            run("score > 60 && attempts < 3", &quiz_vars).unwrap(),
            GenericValue::Bool(true)
        );
        let strict = |n: &str| match n {
            "score" => Some(GenericValue::Int(50)),
            "attempts" => Some(GenericValue::Int(2)),
            _ => None,
        };
        assert_eq!(
            run("score > 60 && attempts < 3", &strict).unwrap(),
            GenericValue::Bool(false)
        );
    }

    #[test]
    fn strings() {
        assert_eq!(
            run("'abc' + 'def'", &none).unwrap(),
            GenericValue::Str("abcdef".into())
        );
        assert_eq!(
            run("name == 'alice'", &quiz_vars).unwrap(),
            GenericValue::Bool(true)
        );
        assert_eq!(run("'a' < 'b'", &none).unwrap(), GenericValue::Bool(true));
        assert_eq!(
            run("'a' != 1", &none).unwrap(),
            GenericValue::Bool(true),
            "type mismatch is Ne"
        );
    }

    #[test]
    fn short_circuit() {
        // RHS would be an unknown variable, but LHS decides.
        assert_eq!(
            run("false && bogus", &none).unwrap(),
            GenericValue::Bool(false)
        );
        assert_eq!(
            run("true || bogus", &none).unwrap(),
            GenericValue::Bool(true)
        );
        assert_eq!(
            run("true && bogus", &none),
            Err(ScriptError::UnknownVariable("bogus".into()))
        );
    }

    #[test]
    fn errors() {
        assert!(matches!(run("1 +", &none), Err(ScriptError::Parse { .. })));
        assert!(matches!(run("(1", &none), Err(ScriptError::Parse { .. })));
        assert!(matches!(run("1 2", &none), Err(ScriptError::Parse { .. })));
        assert!(matches!(
            run("'open", &none),
            Err(ScriptError::Parse { .. })
        ));
        assert_eq!(run("1 / 0", &none), Err(ScriptError::DivisionByZero));
        assert!(matches!(
            run("1 && true", &none),
            Err(ScriptError::TypeError(_))
        ));
        assert!(matches!(
            run("true + 1", &none),
            Err(ScriptError::TypeError(_))
        ));
        assert_eq!(
            run("ghost", &none),
            Err(ScriptError::UnknownVariable("ghost".into()))
        );
    }

    #[test]
    fn keywords_not_prefixes() {
        // "trueish" is an identifier, not the literal `true` + garbage.
        let vars = |n: &str| (n == "trueish").then_some(GenericValue::Int(9));
        assert_eq!(run("trueish", &vars).unwrap(), GenericValue::Int(9));
    }

    #[test]
    fn milli_coerces_in_arithmetic() {
        let vars = |n: &str| (n == "speed").then_some(GenericValue::Milli(2000));
        assert_eq!(run("speed + 1", &vars).unwrap(), GenericValue::Int(3));
        assert_eq!(run("speed == 2", &vars).unwrap(), GenericValue::Bool(true));
    }

    #[test]
    fn parse_once_eval_many() {
        let expr = parse("score > 60").unwrap();
        for score in [10i64, 61, 99] {
            let vars = move |n: &str| (n == "score").then_some(GenericValue::Int(score));
            assert_eq!(eval(&expr, &vars).unwrap(), GenericValue::Bool(score > 60));
        }
    }
}
