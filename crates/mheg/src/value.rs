//! Generic values — the Generic Value subclass of the content class
//! (Fig 4.5b): "a value may be stored in the data for a comparison, an
//! assignment or a presentation". Also the currency of Getting-Value
//! actions and of link additional conditions.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A generic MHEG value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GenericValue {
    /// Integer value (positions, sizes, counters).
    Int(i64),
    /// Boolean value (visibility, selection state).
    Bool(bool),
    /// Character string (names, answers).
    Str(String),
    /// Rational number expressed in thousandths (speeds, volumes) —
    /// avoids floats on the wire so codec round-trips are exact.
    Milli(i64),
}

impl GenericValue {
    /// Compare two values if they are comparable (same variant, or
    /// Int vs Milli with scaling).
    pub fn partial_cmp_value(&self, other: &GenericValue) -> Option<Ordering> {
        use GenericValue::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Milli(a), Milli(b)) => Some(a.cmp(b)),
            (Int(a), Milli(b)) => Some((a * 1000).cmp(b)),
            (Milli(a), Int(b)) => Some(a.cmp(&(b * 1000))),
            _ => None,
        }
    }

    /// Truthiness used when a value gates a link condition.
    pub fn is_truthy(&self) -> bool {
        match self {
            GenericValue::Int(v) => *v != 0,
            GenericValue::Bool(b) => *b,
            GenericValue::Str(s) => !s.is_empty(),
            GenericValue::Milli(v) => *v != 0,
        }
    }

    /// Wire tag for the TLV codec.
    pub fn wire_tag(&self) -> u8 {
        match self {
            GenericValue::Int(_) => 1,
            GenericValue::Bool(_) => 2,
            GenericValue::Str(_) => 3,
            GenericValue::Milli(_) => 4,
        }
    }
}

impl fmt::Display for GenericValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenericValue::Int(v) => write!(f, "{v}"),
            GenericValue::Bool(b) => write!(f, "{b}"),
            GenericValue::Str(s) => write!(f, "{s:?}"),
            GenericValue::Milli(v) => write!(f, "{}.{:03}", v / 1000, (v % 1000).abs()),
        }
    }
}

impl From<i64> for GenericValue {
    fn from(v: i64) -> Self {
        GenericValue::Int(v)
    }
}
impl From<bool> for GenericValue {
    fn from(v: bool) -> Self {
        GenericValue::Bool(v)
    }
}
impl From<&str> for GenericValue {
    fn from(v: &str) -> Self {
        GenericValue::Str(v.to_string())
    }
}
impl From<String> for GenericValue {
    fn from(v: String) -> Self {
        GenericValue::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons_same_type() {
        assert_eq!(
            GenericValue::Int(3).partial_cmp_value(&GenericValue::Int(5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            GenericValue::Str("b".into()).partial_cmp_value(&GenericValue::Str("a".into())),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn int_milli_cross_comparison() {
        // 2 == 2000 milli
        assert_eq!(
            GenericValue::Int(2).partial_cmp_value(&GenericValue::Milli(2000)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            GenericValue::Milli(1500).partial_cmp_value(&GenericValue::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incomparable_types() {
        assert_eq!(
            GenericValue::Bool(true).partial_cmp_value(&GenericValue::Int(1)),
            None
        );
    }

    #[test]
    fn truthiness() {
        assert!(GenericValue::Int(1).is_truthy());
        assert!(!GenericValue::Int(0).is_truthy());
        assert!(!GenericValue::Str(String::new()).is_truthy());
        assert!(GenericValue::Str("x".into()).is_truthy());
        assert!(!GenericValue::Milli(0).is_truthy());
    }

    #[test]
    fn display_milli() {
        assert_eq!(GenericValue::Milli(1500).to_string(), "1.500");
        assert_eq!(GenericValue::Milli(-250).to_string(), "0.250"); // magnitude of fraction
    }

    #[test]
    fn from_impls() {
        assert_eq!(GenericValue::from(7i64), GenericValue::Int(7));
        assert_eq!(GenericValue::from(true), GenericValue::Bool(true));
        assert_eq!(GenericValue::from("hi"), GenericValue::Str("hi".into()));
    }
}
