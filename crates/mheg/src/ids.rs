//! Object identification.
//!
//! Every MHEG object carries an "MHEG identifier" plus general object
//! information — name, owner, version, date, keywords (§4.4.1). Run-time
//! objects (form c) get their own id space since many can be created from
//! one model object.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an interchanged MHEG object: an application (authoring
/// site / courseware) namespace plus an object number within it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct MhegId {
    /// Application / courseware namespace.
    pub app: u32,
    /// Object number within the application.
    pub num: u64,
}

impl MhegId {
    /// Convenience constructor.
    pub const fn new(app: u32, num: u64) -> Self {
        MhegId { app, num }
    }
}

impl fmt::Display for MhegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mheg:{}/{}", self.app, self.num)
    }
}

/// Identifier of a run-time (form c) object inside one engine.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct RtId(pub u64);

impl fmt::Display for RtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rt:{}", self.0)
    }
}

/// General object information common to every MHEG class (§4.4.1:
/// "name, owner, version, date, keywords, copyright, license and
/// comments").
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ObjectInfo {
    /// Human-readable object name.
    pub name: String,
    /// Owning author / institution.
    pub owner: String,
    /// Version number of the object.
    pub version: u32,
    /// Authoring date, free-form (the standard does not fix a calendar).
    pub date: String,
    /// Keywords for database retrieval (feeds the keyword tree in mits-db).
    pub keywords: Vec<String>,
}

impl ObjectInfo {
    /// Info with just a name.
    pub fn named(name: impl Into<String>) -> Self {
        ObjectInfo {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Builder-style keyword attachment.
    pub fn with_keywords<I, S>(mut self, kws: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.keywords = kws.into_iter().map(Into::into).collect();
        self
    }

    /// Builder-style owner attachment.
    pub fn with_owner(mut self, owner: impl Into<String>) -> Self {
        self.owner = owner.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(MhegId::new(3, 17).to_string(), "mheg:3/17");
        assert_eq!(RtId(5).to_string(), "rt:5");
    }

    #[test]
    fn ordering_is_app_then_num() {
        assert!(MhegId::new(1, 999) < MhegId::new(2, 0));
        assert!(MhegId::new(1, 1) < MhegId::new(1, 2));
    }

    #[test]
    fn info_builders() {
        let i = ObjectInfo::named("ATM Course")
            .with_owner("MIRLab")
            .with_keywords(["atm", "telecom"]);
        assert_eq!(i.name, "ATM Course");
        assert_eq!(i.owner, "MIRLab");
        assert_eq!(i.keywords, vec!["atm", "telecom"]);
        assert_eq!(i.version, 0);
    }
}
