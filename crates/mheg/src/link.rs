//! Link conditions (§2.2.2.3 "Conditional Synchronization").
//!
//! "There are two types of condition: *Trigger conditions* — the trigger is
//! activated when the MHEG engine detects a change in the value of an
//! object status or a presentable status; *Additional conditions* — the
//! MHEG engine is required to test the value of one or more additional
//! status." A link fires when a status-change event matches its trigger
//! and every additional condition holds against current engine state.

use crate::action::TargetRef;
use crate::value::GenericValue;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Which status of an object a condition inspects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StatusKind {
    /// Run state of a run-time object; values are the strings
    /// `"not-ready"`, `"ready"`, `"running"`, `"stopped"`.
    RunState,
    /// Selection state of an interactible (button pressed → `true` pulse).
    Selection,
    /// Preparation status of a model object (`true` once prepared).
    Preparation,
    /// The run-time object's data slot.
    Data,
    /// Visibility flag.
    Visibility,
    /// Presentation position reached end of medium (`true` pulse).
    Completion,
}

impl fmt::Display for StatusKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StatusKind::RunState => "run-state",
            StatusKind::Selection => "selection",
            StatusKind::Preparation => "preparation",
            StatusKind::Data => "data",
            StatusKind::Visibility => "visibility",
            StatusKind::Completion => "completion",
        };
        f.write_str(s)
    }
}

/// Comparison operator of a condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Comparison {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl Comparison {
    /// Apply the operator to an observed value vs the condition constant.
    /// Incomparable values never satisfy (except `Ne`, which they satisfy
    /// trivially — a changed type *is* "not equal").
    pub fn eval(self, observed: &GenericValue, constant: &GenericValue) -> bool {
        match observed.partial_cmp_value(constant) {
            Some(ord) => match self {
                Comparison::Eq => ord == Ordering::Equal,
                Comparison::Ne => ord != Ordering::Equal,
                Comparison::Lt => ord == Ordering::Less,
                Comparison::Le => ord != Ordering::Greater,
                Comparison::Gt => ord == Ordering::Greater,
                Comparison::Ge => ord != Ordering::Less,
            },
            None => self == Comparison::Ne,
        }
    }
}

/// A single condition: *status of source ⟨cmp⟩ value*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Condition {
    /// Whose status is inspected.
    pub source: TargetRef,
    /// Which status.
    pub status: StatusKind,
    /// Operator.
    pub cmp: Comparison,
    /// Constant to compare against.
    pub value: GenericValue,
}

impl Condition {
    /// `status of source == value` — the overwhelmingly common form.
    pub fn equals(source: TargetRef, status: StatusKind, value: impl Into<GenericValue>) -> Self {
        Condition {
            source,
            status,
            cmp: Comparison::Eq,
            value: value.into(),
        }
    }

    /// "Button was selected" — the paper's push-button example.
    pub fn selected(source: TargetRef) -> Self {
        Condition::equals(source, StatusKind::Selection, true)
    }

    /// "Presentation of source ended" — e.g. *when the audio has finished,
    /// display the image* (§2.2.2.3).
    pub fn completed(source: TargetRef) -> Self {
        Condition::equals(source, StatusKind::Completion, true)
    }

    /// Does a status-change event match this condition as a trigger?
    pub fn matches_event(
        &self,
        source: TargetRef,
        status: StatusKind,
        value: &GenericValue,
    ) -> bool {
        self.source == source && self.status == status && self.cmp.eval(value, &self.value)
    }
}

/// A status-change event flowing through the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusEvent {
    /// The object whose status changed.
    pub source: TargetRef,
    /// Which status changed.
    pub status: StatusKind,
    /// The new value.
    pub value: GenericValue,
}

impl StatusEvent {
    /// Convenience constructor.
    pub fn new(source: TargetRef, status: StatusKind, value: impl Into<GenericValue>) -> Self {
        StatusEvent {
            source,
            status,
            value: value.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RtId;

    fn rt(n: u64) -> TargetRef {
        TargetRef::Rt(RtId(n))
    }

    #[test]
    fn comparisons() {
        use Comparison::*;
        let a = GenericValue::Int(3);
        let b = GenericValue::Int(5);
        assert!(Lt.eval(&a, &b));
        assert!(Le.eval(&a, &b));
        assert!(Ne.eval(&a, &b));
        assert!(!Eq.eval(&a, &b));
        assert!(Gt.eval(&b, &a));
        assert!(Ge.eval(&b, &b));
    }

    #[test]
    fn incomparable_only_ne() {
        let s = GenericValue::Str("run".into());
        let i = GenericValue::Int(1);
        assert!(Comparison::Ne.eval(&s, &i));
        assert!(!Comparison::Eq.eval(&s, &i));
        assert!(!Comparison::Lt.eval(&s, &i));
    }

    #[test]
    fn trigger_matching() {
        let cond = Condition::selected(rt(1));
        assert!(cond.matches_event(rt(1), StatusKind::Selection, &GenericValue::Bool(true)));
        assert!(
            !cond.matches_event(rt(2), StatusKind::Selection, &GenericValue::Bool(true)),
            "different source"
        );
        assert!(
            !cond.matches_event(rt(1), StatusKind::Completion, &GenericValue::Bool(true)),
            "different status"
        );
        assert!(
            !cond.matches_event(rt(1), StatusKind::Selection, &GenericValue::Bool(false)),
            "value mismatch"
        );
    }

    #[test]
    fn completed_helper() {
        let cond = Condition::completed(rt(4));
        assert_eq!(cond.status, StatusKind::Completion);
        assert!(cond.matches_event(rt(4), StatusKind::Completion, &GenericValue::Bool(true)));
    }

    #[test]
    fn run_state_string_conditions() {
        let cond = Condition::equals(rt(1), StatusKind::RunState, "running");
        assert!(cond.matches_event(
            rt(1),
            StatusKind::RunState,
            &GenericValue::Str("running".into())
        ));
        assert!(!cond.matches_event(
            rt(1),
            StatusKind::RunState,
            &GenericValue::Str("stopped".into())
        ));
    }
}
