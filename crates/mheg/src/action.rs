//! Elementary actions (Figure 4.5c).
//!
//! "Objects of an action class are used to control the behavior of
//! objects." The paper derives seven subclasses of the action class; we
//! model each elementary action as an enum variant and tag it with its
//! [`ActionGroup`] so the library structure of Fig 4.5c is queryable.

use crate::ids::{MhegId, RtId};
use crate::value::GenericValue;
use mits_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whom an action (or a link condition) addresses: an interchanged model
/// object or a run-time object created from one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetRef {
    /// A form-(b) model object.
    Model(MhegId),
    /// A form-(c) run-time object.
    Rt(RtId),
}

impl fmt::Display for TargetRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetRef::Model(id) => write!(f, "{id}"),
            TargetRef::Rt(id) => write!(f, "{id}"),
        }
    }
}

/// The subclass families of Figure 4.5c.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionGroup {
    /// Controls availability of the object in the system.
    Preparation,
    /// Builds presentation/script instances from model objects.
    Creation,
    /// Controls the progress of presentation instances.
    Presentation,
    /// Controls activation of script instances.
    Activation,
    /// Determines results of interaction between an instance and the system.
    Interaction,
    /// Reads attribute/status/behaviour values, expressing link conditions.
    GettingValue,
    /// Prepares rendition according to media type (speed, size, volume).
    Rendition,
}

/// One elementary action.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElementaryAction {
    // --- Preparation ---
    /// Make a model object ready (decode, negotiate resources, cache).
    Prepare,
    /// Remove a model object from availability (inverse of Prepare).
    Destroy,
    // --- Creation ---
    /// Create a run-time object from a model object. The engine assigns
    /// the `RtId` and reports it in a `Created` presentation event.
    New,
    /// Delete a run-time object.
    DeleteRt,
    // --- Presentation ---
    /// Start/resume presentation of a run-time object.
    Run,
    /// Stop presentation of a run-time object.
    Stop,
    /// Move a visible run-time object (generic units).
    SetPosition {
        /// Horizontal position.
        x: i32,
        /// Vertical position.
        y: i32,
    },
    /// Show or hide a visible run-time object.
    SetVisibility(bool),
    // --- Rendition ---
    /// Resize a visible run-time object (generic units).
    SetSize {
        /// Width.
        w: u32,
        /// Height.
        h: u32,
    },
    /// Playback speed in thousandths (1000 = nominal). Time-based media.
    SetSpeed(i64),
    /// Volume in thousandths (1000 = nominal). Audible media.
    SetVolume(i64),
    // --- Activation ---
    /// Activate a script instance.
    Activate,
    /// Deactivate a script instance.
    Deactivate,
    // --- Interaction ---
    /// Enable/disable user selectability of a run-time object (buttons,
    /// menus, anchors).
    SetInteraction(bool),
    /// Store a value into a run-time object's data slot (form input,
    /// counters).
    SetData(GenericValue),
    /// Enable/disable a single stream of a multiplexed content object —
    /// "to turn audio on and off in an MPEG system stream" (§4.4.1).
    SetStreamEnabled {
        /// Stream identifier within the multiplex.
        stream_id: u32,
        /// New state.
        enabled: bool,
    },
    // --- Getting Value ---
    /// Read an attribute; the engine emits a `ValueReport` event.
    GetValue(ValueAttribute),
}

/// Attributes readable with [`ElementaryAction::GetValue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueAttribute {
    /// Current (x, y) — reported as two events.
    Position,
    /// Current (w, h).
    Size,
    /// Current speed (milli).
    Speed,
    /// Current volume (milli).
    Volume,
    /// Visibility flag.
    Visibility,
    /// Run-time state (ready/running/stopped).
    State,
    /// The data slot.
    Data,
}

impl ElementaryAction {
    /// The Fig 4.5c family this action belongs to.
    pub fn group(&self) -> ActionGroup {
        use ElementaryAction::*;
        match self {
            Prepare | Destroy => ActionGroup::Preparation,
            New | DeleteRt => ActionGroup::Creation,
            Run | Stop | SetPosition { .. } | SetVisibility(_) => ActionGroup::Presentation,
            SetSize { .. } | SetSpeed(_) | SetVolume(_) => ActionGroup::Rendition,
            Activate | Deactivate => ActionGroup::Activation,
            SetInteraction(_) | SetData(_) => ActionGroup::Interaction,
            SetStreamEnabled { .. } => ActionGroup::Rendition,
            GetValue(_) => ActionGroup::GettingValue,
        }
    }

    /// Whether this action is valid on a model object (vs run-time only).
    pub fn applies_to_model(&self) -> bool {
        matches!(
            self,
            ElementaryAction::Prepare | ElementaryAction::Destroy | ElementaryAction::New
        )
    }
}

/// A target plus the ordered elementary actions applied to it, optionally
/// delayed — one row of an action object's synchronized set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionEntry {
    /// The object acted upon.
    pub target: TargetRef,
    /// Delay from action-object execution to this entry running.
    pub delay: SimDuration,
    /// Actions applied in order.
    pub actions: Vec<ElementaryAction>,
}

impl ActionEntry {
    /// An immediate entry.
    pub fn now(target: TargetRef, actions: Vec<ElementaryAction>) -> Self {
        ActionEntry {
            target,
            delay: SimDuration::ZERO,
            actions,
        }
    }

    /// A delayed entry.
    pub fn after(target: TargetRef, delay: SimDuration, actions: Vec<ElementaryAction>) -> Self {
        ActionEntry {
            target,
            delay,
            actions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_match_figure() {
        use ElementaryAction::*;
        assert_eq!(Prepare.group(), ActionGroup::Preparation);
        assert_eq!(New.group(), ActionGroup::Creation);
        assert_eq!(Run.group(), ActionGroup::Presentation);
        assert_eq!(
            SetPosition { x: 0, y: 0 }.group(),
            ActionGroup::Presentation
        );
        assert_eq!(SetSize { w: 1, h: 1 }.group(), ActionGroup::Rendition);
        assert_eq!(SetSpeed(1000).group(), ActionGroup::Rendition);
        assert_eq!(Activate.group(), ActionGroup::Activation);
        assert_eq!(SetInteraction(true).group(), ActionGroup::Interaction);
        assert_eq!(
            GetValue(ValueAttribute::State).group(),
            ActionGroup::GettingValue
        );
    }

    #[test]
    fn model_applicability() {
        assert!(ElementaryAction::Prepare.applies_to_model());
        assert!(ElementaryAction::New.applies_to_model());
        assert!(!ElementaryAction::Run.applies_to_model());
        assert!(!ElementaryAction::DeleteRt.applies_to_model());
    }

    #[test]
    fn entry_constructors() {
        let t = TargetRef::Rt(crate::ids::RtId(1));
        let e = ActionEntry::now(t, vec![ElementaryAction::Run]);
        assert!(e.delay.is_zero());
        let d = ActionEntry::after(t, SimDuration::from_secs(2), vec![ElementaryAction::Stop]);
        assert_eq!(d.delay, SimDuration::from_secs(2));
    }

    #[test]
    fn target_display() {
        assert_eq!(TargetRef::Model(MhegId::new(1, 2)).to_string(), "mheg:1/2");
        assert_eq!(TargetRef::Rt(RtId(9)).to_string(), "rt:9");
    }
}
