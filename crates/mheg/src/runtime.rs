//! Run-time objects — form (c) of the MHEG object life cycle (Fig 2.4).
//!
//! "Form (c) objects come into existence whenever a 'new' action is
//! applied to an appropriate form (b) object ... The result is a copy of
//! this object, but can be presented and may have attribute values
//! changed. Form (c) objects are removed from existence by a 'delete'
//! action. ... The presentation or activation of a runtime-object does not
//! affect the model object, which allows the reuse of a same model object
//! in different runtime-objects."
//!
//! Run-time composites carry **sockets** — "an element of a
//! runtime-composite where a runtime-component is plugged into": empty,
//! presentable (rt-content / rt-multiplexed-content) or structural
//! (rt-composite).

use crate::ids::{MhegId, RtId};
use crate::value::GenericValue;
use mits_media::MediaFormat;
use mits_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Presentation state of a run-time object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RtState {
    /// Created, not yet run.
    Inactive,
    /// Currently presented / executing.
    Running,
    /// Stopped after running (or explicitly stopped).
    Stopped,
}

impl RtState {
    /// The string value reported through [`crate::link::StatusKind::RunState`]
    /// conditions.
    pub fn as_str(self) -> &'static str {
        match self {
            RtState::Inactive => "inactive",
            RtState::Running => "running",
            RtState::Stopped => "stopped",
        }
    }
}

/// What is plugged into a composite socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SocketKind {
    /// Nothing plugged ("a null runtime-component is plugged").
    Empty,
    /// An rt-content or rt-multiplexed-content.
    Presentable(RtId),
    /// An rt-composite.
    Structural(RtId),
}

/// A socket of a run-time composite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Socket {
    /// Which model component this socket position corresponds to.
    pub model: MhegId,
    /// What is plugged in.
    pub plugged: SocketKind,
}

/// Class-specific run-time payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RtKind {
    /// rt-content / rt-multiplexed-content.
    Content {
        /// Coding method (for player dispatch).
        format: MediaFormat,
        /// Intrinsic duration at nominal speed (zero = static).
        duration: SimDuration,
        /// Enabled stream ids (multiplexed content only; empty otherwise).
        enabled_streams: Vec<u32>,
    },
    /// rt-composite with its sockets.
    Composite {
        /// Sockets in component order.
        sockets: Vec<Socket>,
    },
    /// rt-script instance.
    Script {
        /// Whether the script is activated.
        active: bool,
    },
}

/// Mutable presentation attributes of a run-time object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RtAttrs {
    /// Screen position.
    pub position: (i32, i32),
    /// Display size (w, h).
    pub size: (u32, u32),
    /// Playback speed in thousandths (1000 = nominal).
    pub speed: i64,
    /// Volume in thousandths.
    pub volume: i64,
    /// Visibility.
    pub visible: bool,
    /// User-selectability (interaction enabled).
    pub interactive: bool,
    /// Data slot (form input, counters).
    pub data: GenericValue,
}

impl Default for RtAttrs {
    fn default() -> Self {
        RtAttrs {
            position: (0, 0),
            size: (0, 0),
            speed: 1000,
            volume: 1000,
            visible: true,
            interactive: false,
            data: GenericValue::Int(0),
        }
    }
}

/// A form-(c) run-time object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RtObject {
    /// Run-time id.
    pub id: RtId,
    /// The model object this was created from.
    pub model: MhegId,
    /// Class-specific payload.
    pub kind: RtKind,
    /// Presentation state.
    pub state: RtState,
    /// Mutable attributes.
    pub attrs: RtAttrs,
    /// When the current run started (valid while Running).
    pub started_at: SimTime,
    /// *Media-time* progress accumulated before `started_at` (supports
    /// pause/resume and speed changes: wall time × speed/1000).
    pub accumulated: SimDuration,
}

impl RtObject {
    /// Create an inactive run-time object.
    pub fn new(id: RtId, model: MhegId, kind: RtKind) -> Self {
        RtObject {
            id,
            model,
            kind,
            state: RtState::Inactive,
            attrs: RtAttrs::default(),
            started_at: SimTime::ZERO,
            accumulated: SimDuration::ZERO,
        }
    }

    /// Intrinsic duration adjusted for the current speed; `None` when the
    /// object is static (no scheduled end).
    pub fn effective_duration(&self) -> Option<SimDuration> {
        match &self.kind {
            RtKind::Content { duration, .. } if !duration.is_zero() => {
                let speed = self.attrs.speed.max(1) as u64;
                Some(SimDuration::from_micros(
                    duration.as_micros() * 1000 / speed,
                ))
            }
            _ => None,
        }
    }

    /// Start (or restart) running at `now`.
    pub fn start(&mut self, now: SimTime) {
        if self.state != RtState::Running {
            self.started_at = now;
            self.state = RtState::Running;
        }
    }

    /// Wall time → media time at the current speed.
    fn media_elapsed(&self, wall: SimDuration) -> SimDuration {
        let speed = self.attrs.speed.max(0) as u64;
        SimDuration::from_micros(wall.as_micros() * speed / 1000)
    }

    /// Stop at `now`, accumulating media-time progress.
    pub fn stop(&mut self, now: SimTime) {
        if self.state == RtState::Running {
            self.accumulated += self.media_elapsed(now.since(self.started_at));
        }
        self.state = RtState::Stopped;
    }

    /// Media-time presentation progress at `now`.
    pub fn progress(&self, now: SimTime) -> SimDuration {
        match self.state {
            RtState::Running => self.accumulated + self.media_elapsed(now.since(self.started_at)),
            _ => self.accumulated,
        }
    }

    /// The instant this run-time object will complete, if it is running
    /// time-based content at its current speed.
    pub fn completion_time(&self) -> Option<SimTime> {
        if self.state != RtState::Running {
            return None;
        }
        let duration = match &self.kind {
            RtKind::Content { duration, .. } if !duration.is_zero() => *duration,
            _ => return None,
        };
        let remaining_media = duration.saturating_sub(self.accumulated);
        let speed = self.attrs.speed.max(1) as u64;
        let remaining_wall = SimDuration::from_micros(remaining_media.as_micros() * 1000 / speed);
        Some(self.started_at + remaining_wall)
    }

    /// Is this a presentable (content) run-time object?
    pub fn is_presentable(&self) -> bool {
        matches!(self.kind, RtKind::Content { .. })
    }

    /// Sockets if this is a composite.
    pub fn sockets(&self) -> Option<&[Socket]> {
        match &self.kind {
            RtKind::Composite { sockets } => Some(sockets),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn content_rt(dur_ms: u64) -> RtObject {
        RtObject::new(
            RtId(1),
            MhegId::new(1, 1),
            RtKind::Content {
                format: MediaFormat::Mpeg,
                duration: SimDuration::from_millis(dur_ms),
                enabled_streams: vec![],
            },
        )
    }

    #[test]
    fn new_rt_is_inactive_with_default_attrs() {
        let rt = content_rt(1000);
        assert_eq!(rt.state, RtState::Inactive);
        assert_eq!(rt.attrs.speed, 1000);
        assert!(rt.attrs.visible);
        assert!(!rt.attrs.interactive);
    }

    #[test]
    fn start_then_completion_time() {
        let mut rt = content_rt(2000);
        rt.start(SimTime::from_secs(10));
        assert_eq!(rt.state, RtState::Running);
        assert_eq!(rt.completion_time(), Some(SimTime::from_secs(12)));
    }

    #[test]
    fn stop_accumulates_and_resume_continues() {
        let mut rt = content_rt(2000);
        rt.start(SimTime::ZERO);
        rt.stop(SimTime::from_millis(500));
        assert_eq!(
            rt.progress(SimTime::from_millis(800)),
            SimDuration::from_millis(500)
        );
        rt.start(SimTime::from_millis(800));
        // 1.5 s of media left → completes at 0.8 + 1.5 = 2.3 s.
        assert_eq!(rt.completion_time(), Some(SimTime::from_micros(2_300_000)));
    }

    #[test]
    fn double_start_is_idempotent() {
        let mut rt = content_rt(1000);
        rt.start(SimTime::ZERO);
        rt.start(SimTime::from_millis(400)); // ignored; already running
        assert_eq!(rt.completion_time(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn speed_scales_duration() {
        let mut rt = content_rt(1000);
        rt.attrs.speed = 2000; // double speed
        assert_eq!(rt.effective_duration(), Some(SimDuration::from_millis(500)));
        rt.attrs.speed = 500; // half speed
        assert_eq!(
            rt.effective_duration(),
            Some(SimDuration::from_millis(2000))
        );
    }

    #[test]
    fn static_content_never_completes() {
        let mut rt = RtObject::new(
            RtId(2),
            MhegId::new(1, 2),
            RtKind::Content {
                format: MediaFormat::Html,
                duration: SimDuration::ZERO,
                enabled_streams: vec![],
            },
        );
        rt.start(SimTime::ZERO);
        assert_eq!(rt.effective_duration(), None);
        assert_eq!(rt.completion_time(), None);
    }

    #[test]
    fn composite_sockets() {
        let rt = RtObject::new(
            RtId(3),
            MhegId::new(1, 3),
            RtKind::Composite {
                sockets: vec![
                    Socket {
                        model: MhegId::new(1, 1),
                        plugged: SocketKind::Empty,
                    },
                    Socket {
                        model: MhegId::new(1, 2),
                        plugged: SocketKind::Presentable(RtId(9)),
                    },
                ],
            },
        );
        let s = rt.sockets().unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].plugged, SocketKind::Empty);
        assert!(!rt.is_presentable());
    }

    #[test]
    fn state_strings() {
        assert_eq!(RtState::Inactive.as_str(), "inactive");
        assert_eq!(RtState::Running.as_str(), "running");
        assert_eq!(RtState::Stopped.as_str(), "stopped");
    }
}
