//! The interchanged MHEG object: common attributes plus one of the eight
//! class bodies (§2.2.2.1, §4.4.1).
//!
//! "Common attributes of the MHEG class are identification of the standard
//! and standard version, identification of the class of the MHEG object,
//! MHEG identifier of the MHEG object, and general object information."

use crate::action::{ActionEntry, TargetRef};
use crate::class::ClassKind;
use crate::descriptor::ResourceNeed;
use crate::ids::{MhegId, ObjectInfo};
use crate::link::Condition;
use crate::sync::SyncSpec;
use crate::value::GenericValue;
use bytes::Bytes;
use mits_media::{MediaFormat, MediaId, VideoDims};
use mits_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// The standard identifier attribute — "19" stands for "MHEG" (§4.4.1).
pub const STANDARD_ID: u8 = 19;
/// Version of the (modelled) standard this library encodes.
pub const STANDARD_VERSION: u8 = 1;

/// Where a content object's data lives.
///
/// §3.4.2: "content data of different media types could be either included
/// directly as binary data in an object, or stored separately in a content
/// database and referenced by MHEG objects. In MITS, the latter scheme is
/// chosen" — we support both so experiment E-REUSE can compare them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ContentData {
    /// Reference into the separate content database (the MITS scheme).
    Referenced(MediaId),
    /// Data carried inline in the object (the rejected alternative).
    Inline(Bytes),
    /// A generic value (the Generic Value subclass of Fig 4.5b).
    Value(GenericValue),
}

impl ContentData {
    /// Bytes this data contributes to the *object's* wire size.
    pub fn inline_len(&self) -> usize {
        match self {
            ContentData::Inline(b) => b.len(),
            _ => 0,
        }
    }
}

/// Content class body: data plus the presentation parameter set
/// ("identification of the coding method ... original size, duration and
/// volume of the data ... expressed using generic units").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentBody {
    /// The data or its reference.
    pub data: ContentData,
    /// Coding method.
    pub format: MediaFormat,
    /// Original presentation size (generic units ≙ pixels here).
    pub original_size: VideoDims,
    /// Original duration (zero for static media).
    pub original_duration: SimDuration,
    /// Original volume in thousandths (1000 = nominal).
    pub original_volume: i64,
    /// Original screen position (x, y).
    pub original_position: (i32, i32),
}

impl ContentBody {
    /// Referenced content with defaults for the optional parameters.
    pub fn referenced(media: MediaId, format: MediaFormat) -> Self {
        ContentBody {
            data: ContentData::Referenced(media),
            format,
            original_size: VideoDims::default(),
            original_duration: SimDuration::ZERO,
            original_volume: 1000,
            original_position: (0, 0),
        }
    }
}

/// One stream description inside a multiplexed content object: "data with
/// a description for each multiplexed stream. A stream identifier ... can
/// be used to control single streams, for example, to turn audio on and
/// off in an MPEG system stream."
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamDesc {
    /// Stream identifier within the multiplex.
    pub stream_id: u32,
    /// Coding of this stream.
    pub format: MediaFormat,
    /// Whether the stream starts enabled.
    pub enabled: bool,
}

/// Composite class body: components with synchronization in time and
/// space, the information-presentation tool of the interchange model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositeBody {
    /// Component model objects, in socket order.
    pub components: Vec<MhegId>,
    /// Actions executed when a run-time composite starts running
    /// (initial layout: positions, visibility, interaction enables).
    pub on_start: Vec<ActionEntry>,
    /// Synchronization of the components.
    pub sync: Vec<SyncSpec>,
}

/// How a link describes its effect: by referencing an interchanged action
/// object, or inline ("Action Class objects can be used alone or within a
/// link object").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LinkEffect {
    /// Reference to an action object.
    ActionRef(MhegId),
    /// Inline action entries.
    Inline(Vec<ActionEntry>),
}

/// Link class body: trigger + additional conditions and the effect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkBody {
    /// The triggering condition (status-change driven).
    pub trigger: Condition,
    /// Additional conditions tested against current state when triggered.
    pub additional: Vec<Condition>,
    /// What happens when the link fires.
    pub effect: LinkEffect,
}

/// Action class body: a synchronized set of elementary actions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionBody {
    /// Target/action rows, each optionally delayed.
    pub entries: Vec<ActionEntry>,
}

/// Script class body: "a container for specifying complex relationships
/// ... by a non-MHEG language." MITS's prototype deferred script support
/// (§6.2); we carry the text and a language tag so scripts round-trip and
/// can be activated/deactivated, and the TeleSchool quiz scripts execute a
/// tiny expression language.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptBody {
    /// Language identifier, e.g. `"mits-expr"`.
    pub language: String,
    /// Script source text.
    pub source: String,
}

/// Container class body: "regrouping multimedia and hypermedia data in
/// order to interchange them as a whole set."
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContainerBody {
    /// The grouped objects (by reference; the interchange layer decides
    /// whether to ship them in one unit).
    pub objects: Vec<MhegId>,
}

/// Descriptor class body: resource information for interchange
/// negotiation plus the `readme` mechanism (§2.3.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DescriptorBody {
    /// Objects this descriptor describes.
    pub describes: Vec<MhegId>,
    /// Resources required to present them.
    pub needs: Vec<ResourceNeed>,
    /// Human-readable notes ("readme").
    pub readme: String,
}

/// The class-specific part of an object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ObjectBody {
    /// Content class.
    Content(ContentBody),
    /// Multiplexed content class: base content plus stream table.
    MultiplexedContent {
        /// The underlying content.
        base: ContentBody,
        /// Stream descriptions.
        streams: Vec<StreamDesc>,
    },
    /// Composite class.
    Composite(CompositeBody),
    /// Link class.
    Link(LinkBody),
    /// Action class.
    Action(ActionBody),
    /// Script class.
    Script(ScriptBody),
    /// Container class.
    Container(ContainerBody),
    /// Descriptor class.
    Descriptor(DescriptorBody),
}

impl ObjectBody {
    /// The concrete class of this body.
    pub fn class(&self) -> ClassKind {
        match self {
            ObjectBody::Content(_) => ClassKind::Content,
            ObjectBody::MultiplexedContent { .. } => ClassKind::MultiplexedContent,
            ObjectBody::Composite(_) => ClassKind::Composite,
            ObjectBody::Link(_) => ClassKind::Link,
            ObjectBody::Action(_) => ClassKind::Action,
            ObjectBody::Script(_) => ClassKind::Script,
            ObjectBody::Container(_) => ClassKind::Container,
            ObjectBody::Descriptor(_) => ClassKind::Descriptor,
        }
    }
}

/// A complete interchanged MHEG object (form (b) in memory; forms (a) via
/// the codecs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MhegObject {
    /// Object identifier.
    pub id: MhegId,
    /// General object information.
    pub info: ObjectInfo,
    /// Class-specific body.
    pub body: ObjectBody,
}

impl MhegObject {
    /// Construct an object.
    pub fn new(id: MhegId, info: ObjectInfo, body: ObjectBody) -> Self {
        MhegObject { id, info, body }
    }

    /// Concrete class.
    pub fn class(&self) -> ClassKind {
        self.body.class()
    }

    /// Is this a model object (can run-time objects be created from it)?
    pub fn is_model(&self) -> bool {
        self.class().is_model()
    }

    /// Media referenced by this object (content + multiplexed content).
    pub fn referenced_media(&self) -> Option<MediaId> {
        let content = match &self.body {
            ObjectBody::Content(c) => c,
            ObjectBody::MultiplexedContent { base, .. } => base,
            _ => return None,
        };
        match &content.data {
            ContentData::Referenced(m) => Some(*m),
            _ => None,
        }
    }

    /// Objects this object refers to (composite components, container
    /// members, action-ref links, descriptor subjects) — the closure the
    /// database walks to ship a courseware.
    pub fn referenced_objects(&self) -> Vec<MhegId> {
        match &self.body {
            ObjectBody::Composite(c) => c.components.clone(),
            ObjectBody::Container(c) => c.objects.clone(),
            ObjectBody::Link(l) => match &l.effect {
                LinkEffect::ActionRef(id) => vec![*id],
                LinkEffect::Inline(_) => Vec::new(),
            },
            ObjectBody::Descriptor(d) => d.describes.clone(),
            _ => Vec::new(),
        }
    }

    /// All targets this object's conditions/actions mention — used by the
    /// authoring validator to detect dangling references.
    pub fn mentioned_targets(&self) -> Vec<TargetRef> {
        let mut out = Vec::new();
        match &self.body {
            ObjectBody::Link(l) => {
                out.push(l.trigger.source);
                out.extend(l.additional.iter().map(|c| c.source));
                if let LinkEffect::Inline(entries) = &l.effect {
                    out.extend(entries.iter().map(|e| e.target));
                }
            }
            ObjectBody::Action(a) => out.extend(a.entries.iter().map(|e| e.target)),
            ObjectBody::Composite(c) => {
                out.extend(c.on_start.iter().map(|e| e.target));
            }
            _ => {}
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ElementaryAction;
    use crate::link::StatusKind;

    fn content(num: u64) -> MhegObject {
        MhegObject::new(
            MhegId::new(1, num),
            ObjectInfo::named(format!("c{num}")),
            ObjectBody::Content(ContentBody::referenced(MediaId(num), MediaFormat::Mpeg)),
        )
    }

    #[test]
    fn class_of_each_body() {
        assert_eq!(content(1).class(), ClassKind::Content);
        let comp = MhegObject::new(
            MhegId::new(1, 2),
            ObjectInfo::default(),
            ObjectBody::Composite(CompositeBody {
                components: vec![MhegId::new(1, 1)],
                on_start: vec![],
                sync: vec![],
            }),
        );
        assert_eq!(comp.class(), ClassKind::Composite);
        assert!(comp.is_model());
    }

    #[test]
    fn referenced_media_extraction() {
        assert_eq!(content(9).referenced_media(), Some(MediaId(9)));
        let inline = MhegObject::new(
            MhegId::new(1, 3),
            ObjectInfo::default(),
            ObjectBody::Content(ContentBody {
                data: ContentData::Inline(Bytes::from_static(b"abc")),
                format: MediaFormat::Ascii,
                original_size: VideoDims::default(),
                original_duration: SimDuration::ZERO,
                original_volume: 1000,
                original_position: (0, 0),
            }),
        );
        assert_eq!(inline.referenced_media(), None);
        assert_eq!(inline.body.class(), ClassKind::Content);
    }

    #[test]
    fn referenced_objects_closure_sources() {
        let comp = MhegObject::new(
            MhegId::new(1, 10),
            ObjectInfo::default(),
            ObjectBody::Composite(CompositeBody {
                components: vec![MhegId::new(1, 1), MhegId::new(1, 2)],
                on_start: vec![],
                sync: vec![],
            }),
        );
        assert_eq!(
            comp.referenced_objects(),
            vec![MhegId::new(1, 1), MhegId::new(1, 2)]
        );

        let link = MhegObject::new(
            MhegId::new(1, 11),
            ObjectInfo::default(),
            ObjectBody::Link(LinkBody {
                trigger: Condition::selected(TargetRef::Model(MhegId::new(1, 1))),
                additional: vec![],
                effect: LinkEffect::ActionRef(MhegId::new(1, 12)),
            }),
        );
        assert_eq!(link.referenced_objects(), vec![MhegId::new(1, 12)]);
    }

    #[test]
    fn mentioned_targets_for_validation() {
        let t1 = TargetRef::Model(MhegId::new(1, 1));
        let t2 = TargetRef::Model(MhegId::new(1, 2));
        let link = MhegObject::new(
            MhegId::new(1, 20),
            ObjectInfo::default(),
            ObjectBody::Link(LinkBody {
                trigger: Condition::selected(t1),
                additional: vec![Condition::equals(t2, StatusKind::Visibility, true)],
                effect: LinkEffect::Inline(vec![ActionEntry::now(t2, vec![ElementaryAction::Run])]),
            }),
        );
        let mentioned = link.mentioned_targets();
        assert!(mentioned.contains(&t1));
        assert_eq!(mentioned.iter().filter(|t| **t == t2).count(), 2);
    }

    #[test]
    fn inline_len_only_counts_inline() {
        assert_eq!(
            ContentData::Inline(Bytes::from_static(b"12345")).inline_len(),
            5
        );
        assert_eq!(ContentData::Referenced(MediaId(1)).inline_len(), 0);
        assert_eq!(ContentData::Value(GenericValue::Int(5)).inline_len(), 0);
    }
}
