//! The basic MHEG class library (Figure 4.5) as a fluent builder.
//!
//! "A basic MHEG class library for multimedia and hypermedia information
//! coding is designed" (§4.4.1). This module is that library's programmatic
//! face: it allocates object numbers inside an application namespace and
//! offers one constructor per practical subclass — media-typed content
//! objects (Fig 4.5b), the action subclass families (Fig 4.5c), links,
//! composites, containers, descriptors. The *courseware* class library of
//! Fig 4.6 (Interactive / Output / Hyperobject) builds on this in
//! `mits-author`.

use crate::action::{ActionEntry, TargetRef};
use crate::descriptor::{needs_for_media, ResourceNeed};
use crate::ids::{MhegId, ObjectInfo};
use crate::link::Condition;
use crate::object::*;
use crate::sync::SyncSpec;
use crate::value::GenericValue;
use mits_media::{MediaFormat, MediaObject, VideoDims};
use mits_sim::SimDuration;

/// An object factory for one application namespace.
#[derive(Debug)]
pub struct ClassLibrary {
    app: u32,
    next_num: u64,
    objects: Vec<MhegObject>,
}

impl ClassLibrary {
    /// A library minting ids in application namespace `app`.
    pub fn new(app: u32) -> Self {
        ClassLibrary {
            app,
            next_num: 1,
            objects: Vec::new(),
        }
    }

    /// The application namespace.
    pub fn app(&self) -> u32 {
        self.app
    }

    fn mint(&mut self) -> MhegId {
        let id = MhegId::new(self.app, self.next_num);
        self.next_num += 1;
        id
    }

    fn push(&mut self, info: ObjectInfo, body: ObjectBody) -> MhegId {
        let id = self.mint();
        self.objects.push(MhegObject::new(id, info, body));
        id
    }

    /// Everything created so far.
    pub fn objects(&self) -> &[MhegObject] {
        &self.objects
    }

    /// Consume the library, yielding its objects.
    pub fn into_objects(self) -> Vec<MhegObject> {
        self.objects
    }

    /// Look up a created object.
    pub fn get(&self, id: MhegId) -> Option<&MhegObject> {
        self.objects.iter().find(|o| o.id == id)
    }

    // ---- content subclasses (Fig 4.5b) ----

    /// Content object referencing a produced media object, inheriting its
    /// size/duration as the original presentation parameters. The paper's
    /// worked example:
    /// `Media object = "Paris.mpg"; Coding method = MPEG; Size = 64*128;
    /// Number of frame = 180; Position = (100, 200)`.
    pub fn media_content(&mut self, media: &MediaObject, position: (i32, i32)) -> MhegId {
        let body = ContentBody {
            data: ContentData::Referenced(media.id),
            format: media.format,
            original_size: media.dims,
            original_duration: media.duration,
            original_volume: 1000,
            original_position: position,
        };
        self.push(
            ObjectInfo::named(media.name.clone()),
            ObjectBody::Content(body),
        )
    }

    /// Content object from an explicit body — the escape hatch template
    /// layers (the courseware class library) build on.
    pub fn content(&mut self, name: &str, body: ContentBody) -> MhegId {
        self.push(ObjectInfo::named(name), ObjectBody::Content(body))
    }

    /// Content object carrying its data inline (the non-MITS scheme,
    /// kept for the E-REUSE ablation).
    pub fn inline_content(
        &mut self,
        name: &str,
        format: MediaFormat,
        data: bytes::Bytes,
        duration: SimDuration,
        size: VideoDims,
    ) -> MhegId {
        let body = ContentBody {
            data: ContentData::Inline(data),
            format,
            original_size: size,
            original_duration: duration,
            original_volume: 1000,
            original_position: (0, 0),
        };
        self.push(ObjectInfo::named(name), ObjectBody::Content(body))
    }

    /// Generic-value content object (Fig 4.5b: "a value may be stored in
    /// the data for a comparison, an assignment or a presentation").
    pub fn value_content(&mut self, name: &str, value: GenericValue) -> MhegId {
        let body = ContentBody {
            data: ContentData::Value(value),
            format: MediaFormat::Ascii,
            original_size: VideoDims::default(),
            original_duration: SimDuration::ZERO,
            original_volume: 1000,
            original_position: (0, 0),
        };
        self.push(ObjectInfo::named(name), ObjectBody::Content(body))
    }

    /// Multiplexed content over a produced media object with a stream
    /// table (e.g. MPEG system stream: video stream 1, audio stream 2).
    pub fn multiplexed_content(&mut self, media: &MediaObject, streams: Vec<StreamDesc>) -> MhegId {
        let base = ContentBody {
            data: ContentData::Referenced(media.id),
            format: media.format,
            original_size: media.dims,
            original_duration: media.duration,
            original_volume: 1000,
            original_position: (0, 0),
        };
        self.push(
            ObjectInfo::named(media.name.clone()),
            ObjectBody::MultiplexedContent { base, streams },
        )
    }

    // ---- composition, links, actions ----

    /// Composite of `components` with start-up actions and synchronization.
    pub fn composite(
        &mut self,
        name: &str,
        components: Vec<MhegId>,
        on_start: Vec<ActionEntry>,
        sync: Vec<SyncSpec>,
    ) -> MhegId {
        self.push(
            ObjectInfo::named(name),
            ObjectBody::Composite(CompositeBody {
                components,
                on_start,
                sync,
            }),
        )
    }

    /// Link: *when `trigger` (and `additional`), do `entries`*.
    pub fn link(
        &mut self,
        name: &str,
        trigger: Condition,
        additional: Vec<Condition>,
        entries: Vec<ActionEntry>,
    ) -> MhegId {
        self.push(
            ObjectInfo::named(name),
            ObjectBody::Link(LinkBody {
                trigger,
                additional,
                effect: LinkEffect::Inline(entries),
            }),
        )
    }

    /// Link whose effect is a shared action object.
    pub fn link_to_action(
        &mut self,
        name: &str,
        trigger: Condition,
        additional: Vec<Condition>,
        action: MhegId,
    ) -> MhegId {
        self.push(
            ObjectInfo::named(name),
            ObjectBody::Link(LinkBody {
                trigger,
                additional,
                effect: LinkEffect::ActionRef(action),
            }),
        )
    }

    /// Standalone action object.
    pub fn action(&mut self, name: &str, entries: Vec<ActionEntry>) -> MhegId {
        self.push(
            ObjectInfo::named(name),
            ObjectBody::Action(ActionBody { entries }),
        )
    }

    /// Script object.
    pub fn script(&mut self, name: &str, language: &str, source: &str) -> MhegId {
        self.push(
            ObjectInfo::named(name),
            ObjectBody::Script(ScriptBody {
                language: language.to_string(),
                source: source.to_string(),
            }),
        )
    }

    // ---- interchange classes ----

    /// Container grouping `objects` for interchange as a whole set.
    pub fn container(&mut self, name: &str, objects: Vec<MhegId>) -> MhegId {
        self.push(
            ObjectInfo::named(name),
            ObjectBody::Container(ContainerBody { objects }),
        )
    }

    /// Descriptor for `describes` with explicit needs.
    pub fn descriptor(
        &mut self,
        name: &str,
        describes: Vec<MhegId>,
        needs: Vec<ResourceNeed>,
        readme: &str,
    ) -> MhegId {
        self.push(
            ObjectInfo::named(name),
            ObjectBody::Descriptor(DescriptorBody {
                describes,
                needs,
                readme: readme.to_string(),
            }),
        )
    }

    /// Descriptor derived automatically from a media object's parameters.
    pub fn descriptor_for_media(&mut self, subject: MhegId, media: &MediaObject) -> MhegId {
        let rate = media.bit_rate().map(|r| r as u64);
        let needs = needs_for_media(media.format, rate, media.dims);
        self.descriptor(
            &format!("needs-{}", media.name),
            vec![subject],
            needs,
            &format!("resource needs for {}", media.name),
        )
    }

    /// Shorthand target for a created object.
    pub fn target(&self, id: MhegId) -> TargetRef {
        TargetRef::Model(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ElementaryAction;
    use crate::class::ClassKind;
    use bytes::Bytes;
    use mits_media::MediaId;

    fn media() -> MediaObject {
        MediaObject::new(
            MediaId(42),
            "Paris.mpg",
            MediaFormat::Mpeg,
            SimDuration::from_secs(6),
            VideoDims::new(64, 128),
            Bytes::from_static(b"payload"),
        )
    }

    #[test]
    fn ids_are_sequential_within_app() {
        let mut lib = ClassLibrary::new(7);
        let a = lib.value_content("a", GenericValue::Int(1));
        let b = lib.value_content("b", GenericValue::Int(2));
        assert_eq!(a, MhegId::new(7, 1));
        assert_eq!(b, MhegId::new(7, 2));
        assert_eq!(lib.objects().len(), 2);
    }

    #[test]
    fn media_content_inherits_parameters() {
        let mut lib = ClassLibrary::new(1);
        let m = media();
        let id = lib.media_content(&m, (100, 200));
        let obj = lib.get(id).unwrap();
        assert_eq!(obj.class(), ClassKind::Content);
        assert_eq!(obj.info.name, "Paris.mpg");
        match &obj.body {
            ObjectBody::Content(c) => {
                assert_eq!(c.format, MediaFormat::Mpeg);
                assert_eq!(c.original_size, VideoDims::new(64, 128));
                assert_eq!(c.original_duration, SimDuration::from_secs(6));
                assert_eq!(c.original_position, (100, 200));
                assert_eq!(c.data, ContentData::Referenced(MediaId(42)));
            }
            other => panic!("not content: {other:?}"),
        }
    }

    #[test]
    fn link_and_action_objects() {
        let mut lib = ClassLibrary::new(1);
        let button = lib.value_content("btn", GenericValue::Bool(false));
        let video = lib.media_content(&media(), (0, 0));
        let act = lib.action(
            "stop-video",
            vec![ActionEntry::now(
                TargetRef::Model(video),
                vec![ElementaryAction::Stop],
            )],
        );
        let link = lib.link_to_action(
            "on-click",
            Condition::selected(TargetRef::Model(button)),
            vec![],
            act,
        );
        assert_eq!(lib.get(link).unwrap().class(), ClassKind::Link);
        assert_eq!(lib.get(link).unwrap().referenced_objects(), vec![act]);
    }

    #[test]
    fn descriptor_for_media_derives_needs() {
        let mut lib = ClassLibrary::new(1);
        let m = media();
        let c = lib.media_content(&m, (0, 0));
        let d = lib.descriptor_for_media(c, &m);
        match &lib.get(d).unwrap().body {
            ObjectBody::Descriptor(desc) => {
                assert_eq!(desc.describes, vec![c]);
                assert!(desc
                    .needs
                    .iter()
                    .any(|n| matches!(n, ResourceNeed::Decoder(MediaFormat::Mpeg))));
                assert!(desc
                    .needs
                    .iter()
                    .any(|n| matches!(n, ResourceNeed::Bandwidth(_))));
            }
            other => panic!("not descriptor: {other:?}"),
        }
    }

    #[test]
    fn container_groups_objects() {
        let mut lib = ClassLibrary::new(1);
        let a = lib.value_content("a", GenericValue::Int(1));
        let b = lib.value_content("b", GenericValue::Int(2));
        let cont = lib.container("ship", vec![a, b]);
        assert_eq!(lib.get(cont).unwrap().referenced_objects(), vec![a, b]);
        assert_eq!(lib.get(cont).unwrap().class(), ClassKind::Container);
    }

    #[test]
    fn every_constructor_yields_its_class() {
        let mut lib = ClassLibrary::new(1);
        let m = media();
        let pairs = vec![
            (lib.media_content(&m, (0, 0)), ClassKind::Content),
            (
                lib.inline_content(
                    "t",
                    MediaFormat::Ascii,
                    Bytes::new(),
                    SimDuration::ZERO,
                    VideoDims::default(),
                ),
                ClassKind::Content,
            ),
            (
                lib.multiplexed_content(&m, vec![]),
                ClassKind::MultiplexedContent,
            ),
            (
                lib.composite("c", vec![], vec![], vec![]),
                ClassKind::Composite,
            ),
            (lib.script("s", "mits-expr", "1"), ClassKind::Script),
            (lib.action("a", vec![]), ClassKind::Action),
            (lib.container("k", vec![]), ClassKind::Container),
            (
                lib.descriptor("d", vec![], vec![], ""),
                ClassKind::Descriptor,
            ),
        ];
        for (id, class) in pairs {
            assert_eq!(lib.get(id).unwrap().class(), class);
        }
    }
}
