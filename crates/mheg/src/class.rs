//! The MHEG class hierarchy (Figure 4.5a).
//!
//! The paper's basic class library arranges the eight standard classes
//! under abstract parents:
//!
//! ```text
//! MhegObject
//! ├── Presentation (abstract)
//! │   └── Model (abstract)
//! │       ├── Script
//! │       └── Component (abstract)
//! │           ├── Content
//! │           │   └── MultiplexedContent
//! │           └── Composite
//! ├── Link
//! ├── Action
//! └── Interchange (abstract)
//!     ├── Container
//!     └── Descriptor
//! ```
//!
//! ("Any subclass of the presentation class can be aggregated into a
//! composite class for presentation, or a container class for
//! interchange. From a model object ... run-time objects may be created.")

use serde::{Deserialize, Serialize};
use std::fmt;

/// Concrete and abstract MHEG classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ClassKind {
    /// Root of the hierarchy.
    MhegObject,
    /// Abstract: objects that take part in presentations.
    Presentation,
    /// Abstract: model objects from which run-time objects are created.
    Model,
    /// Abstract: content + composite.
    Component,
    /// Content class — carries or references mono-media data.
    Content,
    /// Multiplexed content — content with multiple described streams.
    MultiplexedContent,
    /// Composite — spatio-temporal composition of components.
    Composite,
    /// Script — complex relationships in a non-MHEG language.
    Script,
    /// Link — conditional relationships between sources and targets.
    Link,
    /// Action — synchronized sets of elementary actions.
    Action,
    /// Abstract: interchange grouping classes.
    Interchange,
    /// Container — groups objects for interchange as a whole set.
    Container,
    /// Descriptor — resource information about other interchanged objects.
    Descriptor,
}

impl ClassKind {
    /// The eight concrete classes defined by the standard.
    pub const CONCRETE: [ClassKind; 8] = [
        ClassKind::Content,
        ClassKind::MultiplexedContent,
        ClassKind::Composite,
        ClassKind::Script,
        ClassKind::Link,
        ClassKind::Action,
        ClassKind::Container,
        ClassKind::Descriptor,
    ];

    /// Immediate superclass (None for the root).
    pub fn parent(self) -> Option<ClassKind> {
        use ClassKind::*;
        Some(match self {
            MhegObject => return None,
            Presentation | Link | Action | Interchange => MhegObject,
            Model => Presentation,
            Script | Component => Model,
            Content | Composite => Component,
            MultiplexedContent => Content,
            Container | Descriptor => Interchange,
        })
    }

    /// True when `self` is `ancestor` or inherits from it.
    pub fn is_a(self, ancestor: ClassKind) -> bool {
        let mut cur = Some(self);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = c.parent();
        }
        false
    }

    /// Abstract classes cannot be instantiated as interchanged objects.
    pub fn is_abstract(self) -> bool {
        matches!(
            self,
            ClassKind::MhegObject
                | ClassKind::Presentation
                | ClassKind::Model
                | ClassKind::Component
                | ClassKind::Interchange
        )
    }

    /// Model classes support run-time object creation via the `new` action
    /// (script, content, multiplexed content, composite).
    pub fn is_model(self) -> bool {
        self.is_a(ClassKind::Model) && !self.is_abstract()
    }

    /// Path from the root to this class, for SGML encoding and debugging.
    pub fn lineage(self) -> Vec<ClassKind> {
        let mut path = vec![self];
        let mut cur = self;
        while let Some(p) = cur.parent() {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Stable wire tag for the TLV codec (concrete classes only).
    pub fn wire_tag(self) -> u8 {
        match self {
            ClassKind::Content => 1,
            ClassKind::MultiplexedContent => 2,
            ClassKind::Composite => 3,
            ClassKind::Script => 4,
            ClassKind::Link => 5,
            ClassKind::Action => 6,
            ClassKind::Container => 7,
            ClassKind::Descriptor => 8,
            // Abstract classes never appear on the wire.
            _ => 0,
        }
    }

    /// Inverse of [`wire_tag`](Self::wire_tag).
    pub fn from_wire_tag(tag: u8) -> Option<ClassKind> {
        ClassKind::CONCRETE
            .into_iter()
            .find(|c| c.wire_tag() == tag)
    }
}

impl fmt::Display for ClassKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ClassKind::MhegObject => "mheg-object",
            ClassKind::Presentation => "presentation",
            ClassKind::Model => "model",
            ClassKind::Component => "component",
            ClassKind::Content => "content",
            ClassKind::MultiplexedContent => "multiplexed-content",
            ClassKind::Composite => "composite",
            ClassKind::Script => "script",
            ClassKind::Link => "link",
            ClassKind::Action => "action",
            ClassKind::Interchange => "interchange",
            ClassKind::Container => "container",
            ClassKind::Descriptor => "descriptor",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_matches_figure_4_5a() {
        assert_eq!(ClassKind::Content.parent(), Some(ClassKind::Component));
        assert_eq!(
            ClassKind::MultiplexedContent.parent(),
            Some(ClassKind::Content)
        );
        assert_eq!(ClassKind::Composite.parent(), Some(ClassKind::Component));
        assert_eq!(ClassKind::Script.parent(), Some(ClassKind::Model));
        assert_eq!(ClassKind::Component.parent(), Some(ClassKind::Model));
        assert_eq!(ClassKind::Model.parent(), Some(ClassKind::Presentation));
        assert_eq!(ClassKind::Container.parent(), Some(ClassKind::Interchange));
        assert_eq!(ClassKind::Descriptor.parent(), Some(ClassKind::Interchange));
        assert_eq!(ClassKind::Link.parent(), Some(ClassKind::MhegObject));
        assert_eq!(ClassKind::MhegObject.parent(), None);
    }

    #[test]
    fn is_a_transitive() {
        assert!(ClassKind::MultiplexedContent.is_a(ClassKind::Content));
        assert!(ClassKind::MultiplexedContent.is_a(ClassKind::Component));
        assert!(ClassKind::MultiplexedContent.is_a(ClassKind::Presentation));
        assert!(ClassKind::MultiplexedContent.is_a(ClassKind::MhegObject));
        assert!(!ClassKind::MultiplexedContent.is_a(ClassKind::Interchange));
        assert!(!ClassKind::Link.is_a(ClassKind::Presentation));
    }

    #[test]
    fn model_classes() {
        assert!(ClassKind::Content.is_model());
        assert!(ClassKind::Composite.is_model());
        assert!(ClassKind::Script.is_model());
        assert!(ClassKind::MultiplexedContent.is_model());
        assert!(!ClassKind::Link.is_model());
        assert!(!ClassKind::Container.is_model());
        assert!(!ClassKind::Model.is_model(), "abstract");
    }

    #[test]
    fn abstract_flags() {
        for c in ClassKind::CONCRETE {
            assert!(!c.is_abstract(), "{c} is concrete");
        }
        assert!(ClassKind::Model.is_abstract());
        assert!(ClassKind::Presentation.is_abstract());
    }

    #[test]
    fn lineage_of_multiplexed_content() {
        let l = ClassKind::MultiplexedContent.lineage();
        assert_eq!(
            l,
            vec![
                ClassKind::MhegObject,
                ClassKind::Presentation,
                ClassKind::Model,
                ClassKind::Component,
                ClassKind::Content,
                ClassKind::MultiplexedContent,
            ]
        );
    }

    #[test]
    fn wire_tags_round_trip() {
        for c in ClassKind::CONCRETE {
            assert_eq!(ClassKind::from_wire_tag(c.wire_tag()), Some(c));
        }
        assert_eq!(ClassKind::from_wire_tag(0), None);
    }
}
