//! Interchange codecs — form (a) of the object life cycle.
//!
//! "In the MHEG object layer, objects are coded into ASN.1 or SGML at the
//! courseware author site and transmitted through the network" (§3.3,
//! Fig 2.9). We provide both faces over one document tree:
//!
//! * [`WireFormat::Tlv`] — a compact tag-length-value binary encoding
//!   playing the ASN.1/BER role (inline media bytes are carried raw);
//! * [`WireFormat::Sgml`] — a textual markup encoding (inline bytes are
//!   hex-encoded), human-readable and diffable.
//!
//! Both round-trip every object exactly (property-tested); the bench
//! `mheg_codec` compares their size and speed, reproducing the paper's
//! encode-at-author / decode-at-user interchange point.

mod node;
mod sgml;
mod tlv;
mod tree;

pub use node::Node;

use crate::object::MhegObject;
use bytes::Bytes;
use std::fmt;

/// Which interchange encoding to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireFormat {
    /// Binary tag-length-value (the ASN.1 role).
    Tlv,
    /// Textual markup (the SGML role).
    Sgml,
}

/// Errors from decoding an interchanged object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Byte stream ended unexpectedly or length field overran.
    Truncated,
    /// Structural problem; the message names the offending construct.
    Malformed(String),
    /// A numeric tag had no known meaning.
    UnknownTag(u8),
    /// Text was not valid UTF-8 / markup did not parse.
    BadText(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated interchange stream"),
            CodecError::Malformed(s) => write!(f, "malformed object: {s}"),
            CodecError::UnknownTag(t) => write!(f, "unknown tag {t}"),
            CodecError::BadText(s) => write!(f, "bad text: {s}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encode an object into its interchanged form (a).
pub fn encode_object(obj: &MhegObject, format: WireFormat) -> Bytes {
    let node = tree::object_to_node(obj);
    match format {
        WireFormat::Tlv => Bytes::from(tlv::encode(&node)),
        WireFormat::Sgml => Bytes::from(sgml::encode(&node).into_bytes()),
    }
}

/// Decode an interchanged form-(a) byte stream back into a form-(b)
/// object.
pub fn decode_object(data: &[u8], format: WireFormat) -> Result<MhegObject, CodecError> {
    let node = match format {
        WireFormat::Tlv => tlv::decode(data)?,
        WireFormat::Sgml => {
            let text = std::str::from_utf8(data).map_err(|e| CodecError::BadText(e.to_string()))?;
            sgml::decode(text)?
        }
    };
    tree::node_to_object(&node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionEntry, ElementaryAction, TargetRef, ValueAttribute};
    use crate::descriptor::ResourceNeed;
    use crate::ids::{MhegId, ObjectInfo};
    use crate::link::{Comparison, Condition, StatusKind};
    use crate::object::*;
    use crate::sync::{AtomicRelation, SyncMechanism, SyncSpec};
    use crate::value::GenericValue;
    use mits_media::{MediaFormat, MediaId, VideoDims};
    use mits_sim::SimDuration;

    fn sample_objects() -> Vec<MhegObject> {
        let id = |n| MhegId::new(7, n);
        let t = |n| TargetRef::Model(id(n));
        vec![
            // Content: referenced video, the paper's Paris.mpg example.
            MhegObject::new(
                id(1),
                ObjectInfo::named("Paris.mpg").with_keywords(["paris", "travel"]),
                ObjectBody::Content(ContentBody {
                    data: ContentData::Referenced(MediaId(42)),
                    format: MediaFormat::Mpeg,
                    original_size: VideoDims::new(64, 128),
                    original_duration: SimDuration::from_secs(6),
                    original_volume: 900,
                    original_position: (100, 200),
                }),
            ),
            // Content: inline text with markup-hostile characters.
            MhegObject::new(
                id(2),
                ObjectInfo::named("weird <text> & \"stuff\""),
                ObjectBody::Content(ContentBody {
                    data: ContentData::Inline(Bytes::from(vec![0, 1, 255, 60, 38, 34])),
                    format: MediaFormat::Ascii,
                    original_size: VideoDims::default(),
                    original_duration: SimDuration::ZERO,
                    original_volume: 1000,
                    original_position: (0, 0),
                }),
            ),
            // Generic value content.
            MhegObject::new(
                id(3),
                ObjectInfo::default(),
                ObjectBody::Content(ContentBody {
                    data: ContentData::Value(GenericValue::Str("a<b>&\"c".into())),
                    format: MediaFormat::Ascii,
                    original_size: VideoDims::default(),
                    original_duration: SimDuration::ZERO,
                    original_volume: 1000,
                    original_position: (-5, -9),
                }),
            ),
            // Multiplexed content with stream table.
            MhegObject::new(
                id(4),
                ObjectInfo::named("lecture-av"),
                ObjectBody::MultiplexedContent {
                    base: ContentBody::referenced(MediaId(9), MediaFormat::Mpeg),
                    streams: vec![
                        StreamDesc {
                            stream_id: 1,
                            format: MediaFormat::Mpeg,
                            enabled: true,
                        },
                        StreamDesc {
                            stream_id: 2,
                            format: MediaFormat::Wav,
                            enabled: false,
                        },
                    ],
                },
            ),
            // Composite with sync + on_start.
            MhegObject::new(
                id(5),
                ObjectInfo::named("scene1"),
                ObjectBody::Composite(CompositeBody {
                    components: vec![id(1), id(2)],
                    on_start: vec![ActionEntry::after(
                        t(1),
                        SimDuration::from_millis(250),
                        vec![
                            ElementaryAction::SetPosition { x: 10, y: 20 },
                            ElementaryAction::Run,
                        ],
                    )],
                    sync: vec![
                        SyncSpec::new(SyncMechanism::Atomic {
                            a: t(1),
                            b: t(2),
                            relation: AtomicRelation::Serial,
                        }),
                        SyncSpec::new(SyncMechanism::Elementary {
                            a: t(1),
                            t1: SimDuration::from_secs(1),
                            b: t(2),
                            t2: SimDuration::from_secs(3),
                        }),
                        SyncSpec::new(SyncMechanism::Cyclic {
                            target: t(1),
                            period: SimDuration::from_millis(500),
                            repetitions: Some(3),
                        }),
                        SyncSpec::new(SyncMechanism::Chained {
                            sequence: vec![t(1), t(2)],
                        }),
                    ],
                }),
            ),
            // Link with additional conditions + inline effect.
            MhegObject::new(
                id(6),
                ObjectInfo::named("stop-button-link"),
                ObjectBody::Link(LinkBody {
                    trigger: Condition::selected(t(2)),
                    additional: vec![Condition {
                        source: t(1),
                        status: StatusKind::RunState,
                        cmp: Comparison::Ne,
                        value: GenericValue::Str("stopped".into()),
                    }],
                    effect: LinkEffect::Inline(vec![ActionEntry::now(
                        t(1),
                        vec![
                            ElementaryAction::Stop,
                            ElementaryAction::SetVisibility(false),
                        ],
                    )]),
                }),
            ),
            // Link with action reference.
            MhegObject::new(
                id(7),
                ObjectInfo::default(),
                ObjectBody::Link(LinkBody {
                    trigger: Condition::completed(t(1)),
                    additional: vec![],
                    effect: LinkEffect::ActionRef(id(8)),
                }),
            ),
            // Action object exercising every elementary action.
            MhegObject::new(
                id(8),
                ObjectInfo::named("all-actions"),
                ObjectBody::Action(ActionBody {
                    entries: vec![ActionEntry::now(
                        t(1),
                        vec![
                            ElementaryAction::Prepare,
                            ElementaryAction::Destroy,
                            ElementaryAction::New,
                            ElementaryAction::DeleteRt,
                            ElementaryAction::Run,
                            ElementaryAction::Stop,
                            ElementaryAction::SetPosition { x: -1, y: 2 },
                            ElementaryAction::SetVisibility(true),
                            ElementaryAction::SetSize { w: 320, h: 240 },
                            ElementaryAction::SetSpeed(1500),
                            ElementaryAction::SetVolume(250),
                            ElementaryAction::Activate,
                            ElementaryAction::Deactivate,
                            ElementaryAction::SetInteraction(true),
                            ElementaryAction::SetData(GenericValue::Milli(-1250)),
                            ElementaryAction::GetValue(ValueAttribute::Position),
                            ElementaryAction::GetValue(ValueAttribute::State),
                        ],
                    )],
                }),
            ),
            // Script.
            MhegObject::new(
                id(9),
                ObjectInfo::named("quiz-score"),
                ObjectBody::Script(ScriptBody {
                    language: "mits-expr".into(),
                    source: "score > 60 && attempts < 3".into(),
                }),
            ),
            // Container.
            MhegObject::new(
                id(10),
                ObjectInfo::named("course-shipment"),
                ObjectBody::Container(ContainerBody {
                    objects: vec![id(1), id(4), id(5)],
                }),
            ),
            // Descriptor.
            MhegObject::new(
                id(11),
                ObjectInfo::named("needs"),
                ObjectBody::Descriptor(DescriptorBody {
                    describes: vec![id(1)],
                    needs: vec![
                        ResourceNeed::Decoder(MediaFormat::Mpeg),
                        ResourceNeed::Bandwidth(1_500_000),
                        ResourceNeed::Display(VideoDims::new(320, 240)),
                        ResourceNeed::AudioOutput,
                        ResourceNeed::CacheBytes(1 << 20),
                    ],
                    readme: "MPEG-1 course clip; needs ~1.5 Mb/s <sustained>".into(),
                }),
            ),
        ]
    }

    #[test]
    fn tlv_round_trips_every_class() {
        for obj in sample_objects() {
            let wire = encode_object(&obj, WireFormat::Tlv);
            let back = decode_object(&wire, WireFormat::Tlv)
                .unwrap_or_else(|e| panic!("decode {}: {e}", obj.id));
            assert_eq!(back, obj, "TLV round trip for {}", obj.id);
        }
    }

    #[test]
    fn sgml_round_trips_every_class() {
        for obj in sample_objects() {
            let wire = encode_object(&obj, WireFormat::Sgml);
            let back = decode_object(&wire, WireFormat::Sgml)
                .unwrap_or_else(|e| panic!("decode {}: {e}", obj.id));
            assert_eq!(back, obj, "SGML round trip for {}", obj.id);
        }
    }

    #[test]
    fn sgml_is_textual_tlv_is_smaller() {
        let obj = &sample_objects()[0];
        let sgml = encode_object(obj, WireFormat::Sgml);
        let tlv = encode_object(obj, WireFormat::Tlv);
        assert!(std::str::from_utf8(&sgml).is_ok(), "SGML is valid text");
        assert!(
            std::str::from_utf8(&sgml).unwrap().contains("mheg"),
            "markup names the root"
        );
        assert!(
            tlv.len() < sgml.len(),
            "binary beats text: {} vs {}",
            tlv.len(),
            sgml.len()
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_object(b"not an object", WireFormat::Tlv).is_err());
        assert!(decode_object(b"<wrong/>", WireFormat::Sgml).is_err());
        assert!(decode_object(b"", WireFormat::Tlv).is_err());
        assert!(decode_object(&[0xFF; 64], WireFormat::Tlv).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let obj = &sample_objects()[4];
        let wire = encode_object(obj, WireFormat::Tlv);
        for cut in [1, wire.len() / 2, wire.len() - 1] {
            assert!(
                decode_object(&wire[..cut], WireFormat::Tlv).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn cross_format_mismatch_fails() {
        let obj = &sample_objects()[0];
        let tlv = encode_object(obj, WireFormat::Tlv);
        assert!(decode_object(&tlv, WireFormat::Sgml).is_err());
    }
}
