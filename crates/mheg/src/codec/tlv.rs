//! Binary tag-length-value serialization of the document tree — the
//! ASN.1/BER role of the interchange model. Varint lengths keep small
//! objects small; inline media rides raw (no transcoding).

use super::node::Node;
use super::CodecError;
use bytes::Bytes;

const TAG_ELEM: u8 = 0x01;
const TAG_DATA: u8 = 0x03;
/// Stream magic: "MHG1".
const MAGIC: &[u8; 4] = b"MHG1";

/// Encode a tree to bytes.
pub fn encode(node: &Node) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(MAGIC);
    write_node(&mut out, node);
    out
}

/// Decode bytes to a tree, requiring full consumption.
pub fn decode(data: &[u8]) -> Result<Node, CodecError> {
    if data.len() < 4 || &data[..4] != MAGIC {
        return Err(CodecError::Malformed("missing MHG1 magic".into()));
    }
    let mut r = Reader {
        data: &data[4..],
        pos: 0,
    };
    let node = read_node(&mut r)?;
    if r.pos != r.data.len() {
        return Err(CodecError::Malformed(format!(
            "{} trailing bytes",
            r.data.len() - r.pos
        )));
    }
    Ok(node)
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn write_node(out: &mut Vec<u8>, node: &Node) {
    match node {
        Node::Elem {
            name,
            attrs,
            children,
        } => {
            out.push(TAG_ELEM);
            write_str(out, name);
            write_varint(out, attrs.len() as u64);
            for (k, v) in attrs {
                write_str(out, k);
                write_str(out, v);
            }
            write_varint(out, children.len() as u64);
            for c in children {
                write_node(out, c);
            }
        }
        Node::Data(b) => {
            out.push(TAG_DATA);
            write_varint(out, b.len() as u64);
            out.extend_from_slice(b);
        }
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn byte(&mut self) -> Result<u8, CodecError> {
        let b = *self.data.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, CodecError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 {
                return Err(CodecError::Malformed("varint overflow".into()));
            }
            v |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn bytes(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(len).ok_or(CodecError::Truncated)?;
        if end > self.data.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn string(&mut self) -> Result<String, CodecError> {
        let len = self.varint()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec()).map_err(|e| CodecError::BadText(e.to_string()))
    }
}

fn read_node(r: &mut Reader<'_>) -> Result<Node, CodecError> {
    match r.byte()? {
        TAG_ELEM => {
            let name = r.string()?;
            let nattrs = r.varint()? as usize;
            // Cap pre-allocation to a sane bound: a hostile length field
            // must not cause a huge allocation before we hit Truncated.
            let mut attrs = Vec::with_capacity(nattrs.min(64));
            for _ in 0..nattrs {
                let k = r.string()?;
                let v = r.string()?;
                attrs.push((k, v));
            }
            let nchildren = r.varint()? as usize;
            let mut children = Vec::with_capacity(nchildren.min(64));
            for _ in 0..nchildren {
                children.push(read_node(r)?);
            }
            Ok(Node::Elem {
                name,
                attrs,
                children,
            })
        }
        TAG_DATA => {
            let len = r.varint()? as usize;
            let raw = r.bytes(len)?;
            Ok(Node::Data(Bytes::copy_from_slice(raw)))
        }
        other => Err(CodecError::UnknownTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Node {
        Node::elem("mheg")
            .attr("class", "content")
            .attr("app", 7)
            .child(
                Node::elem("info")
                    .attr("name", "Paris.mpg")
                    .child(Node::elem("kw").attr("v", "paris")),
            )
            .child(Node::Data(Bytes::from(vec![0u8, 1, 2, 255])))
    }

    #[test]
    fn round_trip() {
        let n = sample();
        let wire = encode(&n);
        assert_eq!(decode(&wire).unwrap(), n);
    }

    #[test]
    fn magic_required() {
        let mut wire = encode(&sample());
        wire[0] = b'X';
        assert!(matches!(decode(&wire), Err(CodecError::Malformed(_))));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut wire = encode(&sample());
        wire.push(0);
        assert!(matches!(decode(&wire), Err(CodecError::Malformed(_))));
    }

    #[test]
    fn truncation_rejected_at_every_cut() {
        let wire = encode(&sample());
        for cut in 4..wire.len() {
            assert!(decode(&wire[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn varints_handle_large_values() {
        let mut out = Vec::new();
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            out.clear();
            write_varint(&mut out, v);
            let mut r = Reader { data: &out, pos: 0 };
            assert_eq!(r.varint().unwrap(), v);
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let wire = [b'M', b'H', b'G', b'1', 0x7E];
        assert_eq!(decode(&wire), Err(CodecError::UnknownTag(0x7E)));
    }

    #[test]
    fn hostile_length_fields_fail_cleanly() {
        // Element claiming 2^40 attributes: must hit Truncated, not OOM.
        let mut wire = MAGIC.to_vec();
        wire.push(TAG_ELEM);
        write_str(&mut wire, "x");
        write_varint(&mut wire, 1 << 40);
        assert!(decode(&wire).is_err());
    }
}
