//! The shared document tree both wire formats serialize.

use bytes::Bytes;

/// One node of the interchange document tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// An element with a name, string attributes, and children.
    Elem {
        /// Element name (`"mheg"`, `"content"`, …).
        name: String,
        /// Attribute key/value pairs, in order.
        attrs: Vec<(String, String)>,
        /// Child nodes, in order.
        children: Vec<Node>,
    },
    /// Raw binary data (inline media); hex-encoded in SGML, raw in TLV.
    Data(Bytes),
}

impl Node {
    /// Build an element.
    pub fn elem(name: &str) -> Node {
        Node::Elem {
            name: name.to_string(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: add an attribute.
    pub fn attr(mut self, key: &str, value: impl ToString) -> Node {
        if let Node::Elem { attrs, .. } = &mut self {
            attrs.push((key.to_string(), value.to_string()));
        }
        self
    }

    /// Builder: add a child.
    pub fn child(mut self, node: Node) -> Node {
        if let Node::Elem { children, .. } = &mut self {
            children.push(node);
        }
        self
    }

    /// Builder: add several children.
    pub fn children_from(mut self, nodes: impl IntoIterator<Item = Node>) -> Node {
        if let Node::Elem { children, .. } = &mut self {
            children.extend(nodes);
        }
        self
    }

    /// Element name, if this is an element.
    pub fn name(&self) -> Option<&str> {
        match self {
            Node::Elem { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Attribute lookup.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        match self {
            Node::Elem { attrs, .. } => attrs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str()),
            _ => None,
        }
    }

    /// Children slice (empty for data nodes).
    pub fn kids(&self) -> &[Node] {
        match self {
            Node::Elem { children, .. } => children,
            _ => &[],
        }
    }

    /// First child element with the given name.
    pub fn find(&self, name: &str) -> Option<&Node> {
        self.kids().iter().find(|n| n.name() == Some(name))
    }

    /// All child elements with the given name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Node> + 'a {
        self.kids().iter().filter(move |n| n.name() == Some(name))
    }
}

/// Escape text for SGML attribute/text contexts.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Undo [`escape`]. Unknown entities are an error (caller maps it).
pub fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &s[i..];
        let (entity, skip) = if rest.starts_with("&amp;") {
            ('&', 4)
        } else if rest.starts_with("&lt;") {
            ('<', 3)
        } else if rest.starts_with("&gt;") {
            ('>', 3)
        } else if rest.starts_with("&quot;") {
            ('"', 5)
        } else {
            return Err(format!("unknown entity at byte {i}"));
        };
        out.push(entity);
        for _ in 0..skip {
            chars.next();
        }
    }
    Ok(out)
}

/// Hex-encode bytes (for SGML data nodes).
pub fn to_hex(data: &[u8]) -> String {
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        s.push(char::from_digit((b & 0xF) as u32, 16).unwrap());
    }
    s
}

/// Decode hex into bytes.
pub fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd hex length".to_string());
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16).ok_or("bad hex digit")?;
        let lo = (pair[1] as char).to_digit(16).ok_or("bad hex digit")?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let n = Node::elem("content")
            .attr("format", "MPEG")
            .attr("w", 64)
            .child(Node::elem("ref").attr("media", 42));
        assert_eq!(n.name(), Some("content"));
        assert_eq!(n.get_attr("format"), Some("MPEG"));
        assert_eq!(n.get_attr("w"), Some("64"));
        assert_eq!(n.get_attr("missing"), None);
        assert_eq!(n.find("ref").unwrap().get_attr("media"), Some("42"));
        assert!(n.find("nope").is_none());
    }

    #[test]
    fn escape_round_trip() {
        let cases = [
            "",
            "plain",
            "a<b>&\"c",
            "&&&&",
            "&amp; already",
            "日本語 <tag>",
        ];
        for c in cases {
            assert_eq!(unescape(&escape(c)).unwrap(), c, "case {c:?}");
        }
    }

    #[test]
    fn unescape_rejects_unknown_entities() {
        assert!(unescape("&bogus;").is_err());
        assert!(unescape("trailing &").is_err());
    }

    #[test]
    fn hex_round_trip() {
        let data = [0u8, 1, 0x7F, 0x80, 0xFF, 0xAB];
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
        assert_eq!(to_hex(&[0xAB]), "ab");
        assert!(from_hex("abc").is_err(), "odd length");
        assert!(from_hex("zz").is_err(), "bad digit");
    }
}
