//! Conversions between [`MhegObject`] and the interchange document tree.
//!
//! This is the single source of truth for what goes on the wire; both the
//! TLV and SGML codecs serialize the tree this module builds, so the two
//! formats can never drift apart semantically.

use super::node::Node;
use super::CodecError;
use crate::action::{ActionEntry, ElementaryAction, TargetRef, ValueAttribute};
use crate::descriptor::ResourceNeed;
use crate::ids::{MhegId, ObjectInfo, RtId};
use crate::link::{Comparison, Condition, StatusKind};
use crate::object::*;
use crate::sync::{AtomicRelation, SyncMechanism, SyncSpec};
use crate::value::GenericValue;
use mits_media::{MediaFormat, MediaId, VideoDims};
use mits_sim::SimDuration;

type R<T> = Result<T, CodecError>;

fn malformed(msg: impl Into<String>) -> CodecError {
    CodecError::Malformed(msg.into())
}

fn req_attr<'a>(n: &'a Node, key: &str) -> R<&'a str> {
    n.get_attr(key).ok_or_else(|| {
        malformed(format!(
            "<{}> missing attribute {key}",
            n.name().unwrap_or("?")
        ))
    })
}

fn parse_num<T: std::str::FromStr>(n: &Node, key: &str) -> R<T> {
    req_attr(n, key)?
        .parse()
        .map_err(|_| malformed(format!("attribute {key} not numeric")))
}

fn req_child<'a>(n: &'a Node, name: &str) -> R<&'a Node> {
    n.find(name).ok_or_else(|| {
        malformed(format!(
            "<{}> missing child <{name}>",
            n.name().unwrap_or("?")
        ))
    })
}

// ---------- leaf encoders/decoders ----------

fn id_node(name: &str, id: MhegId) -> Node {
    Node::elem(name).attr("app", id.app).attr("num", id.num)
}

fn id_from(n: &Node) -> R<MhegId> {
    Ok(MhegId::new(parse_num(n, "app")?, parse_num(n, "num")?))
}

fn target_attrs(node: Node, t: TargetRef) -> Node {
    match t {
        TargetRef::Model(id) => node
            .attr("tkind", "m")
            .attr("tapp", id.app)
            .attr("tnum", id.num),
        TargetRef::Rt(id) => node.attr("tkind", "r").attr("tid", id.0),
    }
}

fn target_from(n: &Node) -> R<TargetRef> {
    match req_attr(n, "tkind")? {
        "m" => Ok(TargetRef::Model(MhegId::new(
            parse_num(n, "tapp")?,
            parse_num(n, "tnum")?,
        ))),
        "r" => Ok(TargetRef::Rt(RtId(parse_num(n, "tid")?))),
        other => Err(malformed(format!("bad target kind {other}"))),
    }
}

fn value_node(v: &GenericValue) -> Node {
    match v {
        GenericValue::Int(i) => Node::elem("val").attr("t", "i").attr("v", i),
        GenericValue::Bool(b) => Node::elem("val").attr("t", "b").attr("v", b),
        GenericValue::Str(s) => Node::elem("val").attr("t", "s").attr("v", s),
        GenericValue::Milli(m) => Node::elem("val").attr("t", "m").attr("v", m),
    }
}

fn value_from(n: &Node) -> R<GenericValue> {
    let v = req_attr(n, "v")?;
    Ok(match req_attr(n, "t")? {
        "i" => GenericValue::Int(v.parse().map_err(|_| malformed("bad int value"))?),
        "b" => GenericValue::Bool(v.parse().map_err(|_| malformed("bad bool value"))?),
        "s" => GenericValue::Str(v.to_string()),
        "m" => GenericValue::Milli(v.parse().map_err(|_| malformed("bad milli value"))?),
        other => return Err(malformed(format!("bad value type {other}"))),
    })
}

fn format_name(f: MediaFormat) -> String {
    f.to_string()
}

fn format_from(s: &str) -> R<MediaFormat> {
    MediaFormat::ALL
        .into_iter()
        .find(|f| f.to_string() == s)
        .ok_or_else(|| malformed(format!("unknown media format {s}")))
}

fn status_name(s: StatusKind) -> String {
    s.to_string()
}

fn status_from(s: &str) -> R<StatusKind> {
    Ok(match s {
        "run-state" => StatusKind::RunState,
        "selection" => StatusKind::Selection,
        "preparation" => StatusKind::Preparation,
        "data" => StatusKind::Data,
        "visibility" => StatusKind::Visibility,
        "completion" => StatusKind::Completion,
        other => return Err(malformed(format!("unknown status {other}"))),
    })
}

fn cmp_name(c: Comparison) -> &'static str {
    match c {
        Comparison::Eq => "eq",
        Comparison::Ne => "ne",
        Comparison::Lt => "lt",
        Comparison::Le => "le",
        Comparison::Gt => "gt",
        Comparison::Ge => "ge",
    }
}

fn cmp_from(s: &str) -> R<Comparison> {
    Ok(match s {
        "eq" => Comparison::Eq,
        "ne" => Comparison::Ne,
        "lt" => Comparison::Lt,
        "le" => Comparison::Le,
        "gt" => Comparison::Gt,
        "ge" => Comparison::Ge,
        other => return Err(malformed(format!("unknown comparison {other}"))),
    })
}

fn condition_node(name: &str, c: &Condition) -> Node {
    target_attrs(Node::elem(name), c.source)
        .attr("status", status_name(c.status))
        .attr("cmp", cmp_name(c.cmp))
        .child(value_node(&c.value))
}

fn condition_from(n: &Node) -> R<Condition> {
    Ok(Condition {
        source: target_from(n)?,
        status: status_from(req_attr(n, "status")?)?,
        cmp: cmp_from(req_attr(n, "cmp")?)?,
        value: value_from(req_child(n, "val")?)?,
    })
}

fn action_node(a: &ElementaryAction) -> Node {
    use ElementaryAction::*;
    match a {
        Prepare => Node::elem("act").attr("k", "prepare"),
        Destroy => Node::elem("act").attr("k", "destroy"),
        New => Node::elem("act").attr("k", "new"),
        DeleteRt => Node::elem("act").attr("k", "delete"),
        Run => Node::elem("act").attr("k", "run"),
        Stop => Node::elem("act").attr("k", "stop"),
        SetPosition { x, y } => Node::elem("act").attr("k", "pos").attr("x", x).attr("y", y),
        SetVisibility(v) => Node::elem("act").attr("k", "vis").attr("v", v),
        SetSize { w, h } => Node::elem("act")
            .attr("k", "size")
            .attr("w", w)
            .attr("h", h),
        SetSpeed(s) => Node::elem("act").attr("k", "speed").attr("v", s),
        SetVolume(v) => Node::elem("act").attr("k", "volume").attr("v", v),
        Activate => Node::elem("act").attr("k", "activate"),
        Deactivate => Node::elem("act").attr("k", "deactivate"),
        SetInteraction(v) => Node::elem("act").attr("k", "interact").attr("v", v),
        SetData(v) => Node::elem("act").attr("k", "setdata").child(value_node(v)),
        SetStreamEnabled { stream_id, enabled } => Node::elem("act")
            .attr("k", "stream")
            .attr("id", stream_id)
            .attr("on", enabled),
        GetValue(attr) => Node::elem("act").attr("k", "getvalue").attr(
            "a",
            match attr {
                ValueAttribute::Position => "position",
                ValueAttribute::Size => "size",
                ValueAttribute::Speed => "speed",
                ValueAttribute::Volume => "volume",
                ValueAttribute::Visibility => "visibility",
                ValueAttribute::State => "state",
                ValueAttribute::Data => "data",
            },
        ),
    }
}

fn action_from(n: &Node) -> R<ElementaryAction> {
    use ElementaryAction::*;
    Ok(match req_attr(n, "k")? {
        "prepare" => Prepare,
        "destroy" => Destroy,
        "new" => New,
        "delete" => DeleteRt,
        "run" => Run,
        "stop" => Stop,
        "pos" => SetPosition {
            x: parse_num(n, "x")?,
            y: parse_num(n, "y")?,
        },
        "vis" => SetVisibility(parse_num(n, "v")?),
        "size" => SetSize {
            w: parse_num(n, "w")?,
            h: parse_num(n, "h")?,
        },
        "speed" => SetSpeed(parse_num(n, "v")?),
        "volume" => SetVolume(parse_num(n, "v")?),
        "activate" => Activate,
        "deactivate" => Deactivate,
        "interact" => SetInteraction(parse_num(n, "v")?),
        "setdata" => SetData(value_from(req_child(n, "val")?)?),
        "stream" => SetStreamEnabled {
            stream_id: parse_num(n, "id")?,
            enabled: parse_num(n, "on")?,
        },
        "getvalue" => GetValue(match req_attr(n, "a")? {
            "position" => ValueAttribute::Position,
            "size" => ValueAttribute::Size,
            "speed" => ValueAttribute::Speed,
            "volume" => ValueAttribute::Volume,
            "visibility" => ValueAttribute::Visibility,
            "state" => ValueAttribute::State,
            "data" => ValueAttribute::Data,
            other => return Err(malformed(format!("unknown attribute {other}"))),
        }),
        other => return Err(malformed(format!("unknown action {other}"))),
    })
}

fn entry_node(e: &ActionEntry) -> Node {
    target_attrs(Node::elem("entry"), e.target)
        .attr("delay", e.delay.as_micros())
        .children_from(e.actions.iter().map(action_node))
}

fn entry_from(n: &Node) -> R<ActionEntry> {
    Ok(ActionEntry {
        target: target_from(n)?,
        delay: SimDuration::from_micros(parse_num(n, "delay")?),
        actions: n.find_all("act").map(action_from).collect::<R<_>>()?,
    })
}

fn sync_node(s: &SyncSpec) -> Node {
    match &s.mechanism {
        SyncMechanism::Atomic { a, b, relation } => {
            let n = Node::elem("sync").attr("mech", "atomic").attr(
                "rel",
                match relation {
                    AtomicRelation::Parallel => "parallel",
                    AtomicRelation::Serial => "serial",
                },
            );
            n.child(target_attrs(Node::elem("t"), *a))
                .child(target_attrs(Node::elem("t"), *b))
        }
        SyncMechanism::Elementary { a, t1, b, t2 } => Node::elem("sync")
            .attr("mech", "elementary")
            .attr("t1", t1.as_micros())
            .attr("t2", t2.as_micros())
            .child(target_attrs(Node::elem("t"), *a))
            .child(target_attrs(Node::elem("t"), *b)),
        SyncMechanism::Cyclic {
            target,
            period,
            repetitions,
        } => {
            let mut n = Node::elem("sync")
                .attr("mech", "cyclic")
                .attr("period", period.as_micros());
            if let Some(r) = repetitions {
                n = n.attr("reps", r);
            }
            n.child(target_attrs(Node::elem("t"), *target))
        }
        SyncMechanism::Chained { sequence } => Node::elem("sync")
            .attr("mech", "chained")
            .children_from(sequence.iter().map(|t| target_attrs(Node::elem("t"), *t))),
    }
}

fn sync_from(n: &Node) -> R<SyncSpec> {
    let targets: Vec<TargetRef> = n.find_all("t").map(target_from).collect::<R<_>>()?;
    let two = |targets: &[TargetRef]| -> R<(TargetRef, TargetRef)> {
        if targets.len() != 2 {
            return Err(malformed("sync needs exactly two targets"));
        }
        Ok((targets[0], targets[1]))
    };
    let mech = match req_attr(n, "mech")? {
        "atomic" => {
            let (a, b) = two(&targets)?;
            SyncMechanism::Atomic {
                a,
                b,
                relation: match req_attr(n, "rel")? {
                    "parallel" => AtomicRelation::Parallel,
                    "serial" => AtomicRelation::Serial,
                    other => return Err(malformed(format!("bad relation {other}"))),
                },
            }
        }
        "elementary" => {
            let (a, b) = two(&targets)?;
            SyncMechanism::Elementary {
                a,
                t1: SimDuration::from_micros(parse_num(n, "t1")?),
                b,
                t2: SimDuration::from_micros(parse_num(n, "t2")?),
            }
        }
        "cyclic" => SyncMechanism::Cyclic {
            target: *targets
                .first()
                .ok_or_else(|| malformed("cyclic sync needs a target"))?,
            period: SimDuration::from_micros(parse_num(n, "period")?),
            repetitions: match n.get_attr("reps") {
                Some(r) => Some(r.parse().map_err(|_| malformed("bad reps"))?),
                None => None,
            },
        },
        "chained" => SyncMechanism::Chained { sequence: targets },
        other => return Err(malformed(format!("unknown sync mechanism {other}"))),
    };
    Ok(SyncSpec::new(mech))
}

fn need_node(need: &ResourceNeed) -> Node {
    match need {
        ResourceNeed::Decoder(f) => Node::elem("need")
            .attr("k", "decoder")
            .attr("f", format_name(*f)),
        ResourceNeed::Bandwidth(b) => Node::elem("need").attr("k", "bw").attr("bps", b),
        ResourceNeed::Display(d) => Node::elem("need")
            .attr("k", "display")
            .attr("w", d.width)
            .attr("h", d.height),
        ResourceNeed::AudioOutput => Node::elem("need").attr("k", "audio"),
        ResourceNeed::CacheBytes(b) => Node::elem("need").attr("k", "cache").attr("bytes", b),
    }
}

fn need_from(n: &Node) -> R<ResourceNeed> {
    Ok(match req_attr(n, "k")? {
        "decoder" => ResourceNeed::Decoder(format_from(req_attr(n, "f")?)?),
        "bw" => ResourceNeed::Bandwidth(parse_num(n, "bps")?),
        "display" => ResourceNeed::Display(VideoDims::new(parse_num(n, "w")?, parse_num(n, "h")?)),
        "audio" => ResourceNeed::AudioOutput,
        "cache" => ResourceNeed::CacheBytes(parse_num(n, "bytes")?),
        other => return Err(malformed(format!("unknown need {other}"))),
    })
}

fn content_node(name: &str, c: &ContentBody) -> Node {
    let data = match &c.data {
        ContentData::Referenced(m) => Node::elem("ref").attr("media", m.0),
        ContentData::Inline(b) => Node::elem("inline").child(Node::Data(b.clone())),
        ContentData::Value(v) => Node::elem("value").child(value_node(v)),
    };
    Node::elem(name)
        .attr("format", format_name(c.format))
        .attr("w", c.original_size.width)
        .attr("h", c.original_size.height)
        .attr("dur", c.original_duration.as_micros())
        .attr("vol", c.original_volume)
        .attr("x", c.original_position.0)
        .attr("y", c.original_position.1)
        .child(data)
}

fn content_from(n: &Node) -> R<ContentBody> {
    let data = if let Some(r) = n.find("ref") {
        ContentData::Referenced(MediaId(parse_num(r, "media")?))
    } else if let Some(i) = n.find("inline") {
        match i.kids().first() {
            Some(Node::Data(b)) => ContentData::Inline(b.clone()),
            _ => return Err(malformed("inline content missing data node")),
        }
    } else if let Some(v) = n.find("value") {
        ContentData::Value(value_from(req_child(v, "val")?)?)
    } else {
        return Err(malformed("content without data"));
    };
    Ok(ContentBody {
        data,
        format: format_from(req_attr(n, "format")?)?,
        original_size: VideoDims::new(parse_num(n, "w")?, parse_num(n, "h")?),
        original_duration: SimDuration::from_micros(parse_num(n, "dur")?),
        original_volume: parse_num(n, "vol")?,
        original_position: (parse_num(n, "x")?, parse_num(n, "y")?),
    })
}

// ---------- whole objects ----------

/// Build the interchange tree for an object.
pub fn object_to_node(obj: &MhegObject) -> Node {
    let info = Node::elem("info")
        .attr("name", &obj.info.name)
        .attr("owner", &obj.info.owner)
        .attr("version", obj.info.version)
        .attr("date", &obj.info.date)
        .children_from(
            obj.info
                .keywords
                .iter()
                .map(|k| Node::elem("kw").attr("v", k)),
        );

    let body = match &obj.body {
        ObjectBody::Content(c) => content_node("content", c),
        ObjectBody::MultiplexedContent { base, streams } => Node::elem("mux")
            .child(content_node("content", base))
            .children_from(streams.iter().map(|s| {
                Node::elem("stream")
                    .attr("id", s.stream_id)
                    .attr("format", format_name(s.format))
                    .attr("on", s.enabled)
            })),
        ObjectBody::Composite(c) => Node::elem("composite")
            .children_from(c.components.iter().map(|id| id_node("comp", *id)))
            .children_from(c.on_start.iter().map(entry_node))
            .children_from(c.sync.iter().map(sync_node)),
        ObjectBody::Link(l) => {
            let effect = match &l.effect {
                LinkEffect::ActionRef(id) => Node::elem("effect")
                    .attr("kind", "ref")
                    .child(id_node("aref", *id)),
                LinkEffect::Inline(entries) => Node::elem("effect")
                    .attr("kind", "inline")
                    .children_from(entries.iter().map(entry_node)),
            };
            Node::elem("link")
                .child(condition_node("trigger", &l.trigger))
                .children_from(l.additional.iter().map(|c| condition_node("and", c)))
                .child(effect)
        }
        ObjectBody::Action(a) => {
            Node::elem("action").children_from(a.entries.iter().map(entry_node))
        }
        ObjectBody::Script(s) => Node::elem("script")
            .attr("lang", &s.language)
            .attr("src", &s.source),
        ObjectBody::Container(c) => {
            Node::elem("container").children_from(c.objects.iter().map(|id| id_node("obj", *id)))
        }
        ObjectBody::Descriptor(d) => Node::elem("descriptor")
            .attr("readme", &d.readme)
            .children_from(d.describes.iter().map(|id| id_node("subject", *id)))
            .children_from(d.needs.iter().map(need_node)),
    };

    Node::elem("mheg")
        .attr("std", STANDARD_ID)
        .attr("ver", STANDARD_VERSION)
        .attr("class", obj.class().to_string())
        .attr("app", obj.id.app)
        .attr("num", obj.id.num)
        .child(info)
        .child(body)
}

/// Rebuild an object from its interchange tree.
pub fn node_to_object(n: &Node) -> R<MhegObject> {
    if n.name() != Some("mheg") {
        return Err(malformed("root element must be <mheg>"));
    }
    let std_id: u8 = parse_num(n, "std")?;
    if std_id != STANDARD_ID {
        return Err(malformed(format!(
            "standard id {std_id}, expected {STANDARD_ID}"
        )));
    }
    let id = MhegId::new(parse_num(n, "app")?, parse_num(n, "num")?);
    let info_node = req_child(n, "info")?;
    let info = ObjectInfo {
        name: req_attr(info_node, "name")?.to_string(),
        owner: req_attr(info_node, "owner")?.to_string(),
        version: parse_num(info_node, "version")?,
        date: req_attr(info_node, "date")?.to_string(),
        keywords: info_node
            .find_all("kw")
            .map(|k| req_attr(k, "v").map(str::to_string))
            .collect::<R<_>>()?,
    };

    let class = req_attr(n, "class")?;
    let body = match class {
        "content" => ObjectBody::Content(content_from(req_child(n, "content")?)?),
        "multiplexed-content" => {
            let mux = req_child(n, "mux")?;
            ObjectBody::MultiplexedContent {
                base: content_from(req_child(mux, "content")?)?,
                streams: mux
                    .find_all("stream")
                    .map(|s| {
                        Ok(StreamDesc {
                            stream_id: parse_num(s, "id")?,
                            format: format_from(req_attr(s, "format")?)?,
                            enabled: parse_num(s, "on")?,
                        })
                    })
                    .collect::<R<_>>()?,
            }
        }
        "composite" => {
            let c = req_child(n, "composite")?;
            ObjectBody::Composite(CompositeBody {
                components: c.find_all("comp").map(id_from).collect::<R<_>>()?,
                on_start: c.find_all("entry").map(entry_from).collect::<R<_>>()?,
                sync: c.find_all("sync").map(sync_from).collect::<R<_>>()?,
            })
        }
        "link" => {
            let l = req_child(n, "link")?;
            let effect_node = req_child(l, "effect")?;
            let effect = match req_attr(effect_node, "kind")? {
                "ref" => LinkEffect::ActionRef(id_from(req_child(effect_node, "aref")?)?),
                "inline" => LinkEffect::Inline(
                    effect_node
                        .find_all("entry")
                        .map(entry_from)
                        .collect::<R<_>>()?,
                ),
                other => return Err(malformed(format!("bad effect kind {other}"))),
            };
            ObjectBody::Link(LinkBody {
                trigger: condition_from(req_child(l, "trigger")?)?,
                additional: l.find_all("and").map(condition_from).collect::<R<_>>()?,
                effect,
            })
        }
        "action" => {
            let a = req_child(n, "action")?;
            ObjectBody::Action(ActionBody {
                entries: a.find_all("entry").map(entry_from).collect::<R<_>>()?,
            })
        }
        "script" => {
            let s = req_child(n, "script")?;
            ObjectBody::Script(ScriptBody {
                language: req_attr(s, "lang")?.to_string(),
                source: req_attr(s, "src")?.to_string(),
            })
        }
        "container" => {
            let c = req_child(n, "container")?;
            ObjectBody::Container(ContainerBody {
                objects: c.find_all("obj").map(id_from).collect::<R<_>>()?,
            })
        }
        "descriptor" => {
            let d = req_child(n, "descriptor")?;
            ObjectBody::Descriptor(DescriptorBody {
                describes: d.find_all("subject").map(id_from).collect::<R<_>>()?,
                needs: d.find_all("need").map(need_from).collect::<R<_>>()?,
                readme: req_attr(d, "readme")?.to_string(),
            })
        }
        other => return Err(malformed(format!("unknown class {other}"))),
    };
    Ok(MhegObject::new(id, info, body))
}
