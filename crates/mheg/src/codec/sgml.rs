//! SGML-style textual serialization of the document tree.
//!
//! A deliberately small markup dialect: elements with double-quoted
//! attributes, nested children, and `<bin>…hex…</bin>` for binary data.
//! It is not a full SGML parser (no DTDs, no entities beyond the four
//! escapes) — the paper uses SGML purely as an interchange notation, and
//! this dialect preserves that role while remaining auditable by eye.

use super::node::{escape, from_hex, to_hex, unescape, Node};
use super::CodecError;
use bytes::Bytes;

/// Render a tree as markup text.
pub fn encode(node: &Node) -> String {
    let mut out = String::with_capacity(256);
    write_node(&mut out, node);
    out
}

/// Parse markup text into a tree, requiring a single root element and
/// full consumption.
pub fn decode(text: &str) -> Result<Node, CodecError> {
    let mut p = Parser {
        text: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let node = p.parse_node()?;
    p.skip_ws();
    if p.pos != p.text.len() {
        return Err(CodecError::BadText(format!(
            "trailing content at byte {}",
            p.pos
        )));
    }
    Ok(node)
}

fn write_node(out: &mut String, node: &Node) {
    match node {
        Node::Elem {
            name,
            attrs,
            children,
        } => {
            out.push('<');
            out.push_str(name);
            for (k, v) in attrs {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                out.push_str(&escape(v));
                out.push('"');
            }
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for c in children {
                    write_node(out, c);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
        }
        Node::Data(b) => {
            out.push_str("<bin>");
            out.push_str(&to_hex(b));
            out.push_str("</bin>");
        }
    }
}

struct Parser<'a> {
    text: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.text.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, CodecError> {
        let b = self.peek().ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), CodecError> {
        let got = self.bump()?;
        if got != b {
            return Err(CodecError::BadText(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn ident(&mut self) -> Result<String, CodecError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'-' || c == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(CodecError::BadText(format!("empty name at byte {start}")));
        }
        Ok(std::str::from_utf8(&self.text[start..self.pos])
            .expect("idents are ASCII")
            .to_string())
    }

    fn quoted(&mut self) -> Result<String, CodecError> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'"' {
                let raw = std::str::from_utf8(&self.text[start..self.pos])
                    .map_err(|e| CodecError::BadText(e.to_string()))?;
                self.pos += 1;
                return unescape(raw).map_err(CodecError::BadText);
            }
            self.pos += 1;
        }
        Err(CodecError::Truncated)
    }

    fn parse_node(&mut self) -> Result<Node, CodecError> {
        self.expect(b'<')?;
        let name = self.ident()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek().ok_or(CodecError::Truncated)? {
                b'/' => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(Node::Elem {
                        name,
                        attrs,
                        children: Vec::new(),
                    });
                }
                b'>' => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    let k = self.ident()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let v = self.quoted()?;
                    attrs.push((k, v));
                }
            }
        }
        // bin elements carry hex text instead of children.
        if name == "bin" {
            let start = self.pos;
            while self.peek() != Some(b'<') {
                if self.peek().is_none() {
                    return Err(CodecError::Truncated);
                }
                self.pos += 1;
            }
            let hex = std::str::from_utf8(&self.text[start..self.pos])
                .map_err(|e| CodecError::BadText(e.to_string()))?;
            let data = from_hex(hex.trim()).map_err(CodecError::BadText)?;
            self.close_tag("bin")?;
            return Ok(Node::Data(Bytes::from(data)));
        }
        let mut children = Vec::new();
        loop {
            self.skip_ws();
            if self.text[self.pos..].starts_with(b"</") {
                self.close_tag(&name)?;
                return Ok(Node::Elem {
                    name,
                    attrs,
                    children,
                });
            }
            children.push(self.parse_node()?);
        }
    }

    fn close_tag(&mut self, name: &str) -> Result<(), CodecError> {
        self.expect(b'<')?;
        self.expect(b'/')?;
        let got = self.ident()?;
        if got != name {
            return Err(CodecError::BadText(format!(
                "mismatched close tag: <{name}> closed by </{got}>"
            )));
        }
        self.skip_ws();
        self.expect(b'>')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Node {
        Node::elem("mheg")
            .attr("class", "content")
            .attr("name", "a<b>&\"c")
            .child(Node::elem("empty"))
            .child(Node::elem("info").attr("v", "x").child(Node::elem("kw")))
            .child(Node::Data(Bytes::from(vec![0u8, 0xFF, 0x42])))
    }

    #[test]
    fn round_trip() {
        let n = sample();
        let text = encode(&n);
        assert_eq!(decode(&text).unwrap(), n, "text was: {text}");
    }

    #[test]
    fn self_closing_and_nested_render() {
        let text = encode(&sample());
        assert!(text.contains("<empty/>"));
        assert!(text.contains("<bin>00ff42</bin>"));
        assert!(text.contains("name=\"a&lt;b&gt;&amp;&quot;c\""));
    }

    #[test]
    fn whitespace_tolerated() {
        let text = "<a x=\"1\">\n  <b/>\n  <c y=\"2\"/>\n</a>";
        let n = decode(text).unwrap();
        assert_eq!(n.name(), Some("a"));
        assert_eq!(n.kids().len(), 2);
    }

    #[test]
    fn mismatched_close_rejected() {
        assert!(decode("<a><b></a></a>").is_err());
        assert!(decode("<a></b>").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(decode("<a/>junk").is_err());
        assert!(decode("<a/><b/>").is_err(), "two roots");
    }

    #[test]
    fn truncated_rejected() {
        let text = encode(&sample());
        for cut in 1..text.len() {
            if text.is_char_boundary(cut) {
                assert!(decode(&text[..cut]).is_err(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn bad_hex_in_bin_rejected() {
        assert!(decode("<bin>xyz</bin>").is_err());
        assert!(decode("<bin>abc</bin>").is_err(), "odd length");
    }
}
