//! Property tests for the ATM substrate: AAL5 segmentation/reassembly
//! identity, cell-sequence integrity through switches, and transport
//! recovery under arbitrary loss rates.

use bytes::Bytes;
use mits_atm::{aal5, AtmNetwork, LinkProfile, ReliableChannel, ServiceClass, TransportEvent};
use mits_sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// Bit-serial CRC-32 (IEEE 802.3, reflected 0xEDB88320) — the seed
/// implementation, kept as an independent oracle for the table-driven
/// rewrite in `aal5`.
fn crc32_ref(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Copy-based AAL5 segmentation exactly as the seed implemented it: build
/// the padded trailer-carrying buffer and cut it into owned 48-byte
/// chunks. The zero-copy path must produce byte-identical cell payloads.
fn segment_ref(payload: &[u8]) -> Vec<[u8; 48]> {
    const CELL: usize = 48;
    const TRAILER: usize = 8;
    let body_len = payload.len() + TRAILER;
    let ncells = body_len.div_ceil(CELL).max(1);
    let total = ncells * CELL;
    let mut buf = vec![0u8; total];
    buf[..payload.len()].copy_from_slice(payload);
    buf[total - 6..total - 4].copy_from_slice(&(payload.len() as u16).to_be_bytes());
    let crc = crc32_ref(&buf[..total - 4]);
    buf[total - 4..].copy_from_slice(&crc.to_be_bytes());
    (0..ncells)
        .map(|i| buf[i * CELL..(i + 1) * CELL].try_into().expect("48 bytes"))
        .collect()
}

/// Check the zero-copy segment/reassemble pipeline against the reference
/// for one payload: identical cell payloads, identical round-trip bytes.
fn assert_matches_reference(payload: &[u8]) {
    let cells = aal5::segment(0, 7, 3, payload);
    let reference = segment_ref(payload);
    assert_eq!(
        cells.len(),
        reference.len(),
        "cell count ({})",
        payload.len()
    );
    for (i, (cell, expect)) in cells.iter().zip(&reference).enumerate() {
        assert_eq!(
            &cell.payload[..],
            &expect[..],
            "cell {i} ({})",
            payload.len()
        );
    }
    let back = aal5::reassemble(&cells).expect("reassembly");
    assert_eq!(&back[..], payload, "round trip ({})", payload.len());
}

/// Cell-size and length-field boundaries, including the AAL5 maximum PDU
/// (65535) and a PDU past the 16-bit window (recovered via cell count).
#[test]
fn aal5_zero_copy_matches_seed_reference_at_boundaries() {
    for n in [0usize, 1, 39, 40, 41, 47, 48, 49, 96, 65535, 65536, 70000] {
        let payload: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        assert_matches_reference(&payload);
    }
}

/// `validated_length` boundaries at exact 65536 multiples: PDU lengths
/// whose 16-bit length field wraps to 0 (or near it) must still
/// round-trip — the cell count disambiguates the window.
#[test]
fn aal5_length_field_window_boundaries() {
    for n in [65530usize, 65535, 65536, 65537, 65544, 131072] {
        let payload: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        assert_matches_reference(&payload);
        let run = aal5::segment_run(&payload);
        let back = aal5::reassemble_run(&run.payload).expect("run round trip");
        assert_eq!(&back[..], &payload[..], "run round trip ({n})");
    }
}

proptest! {
    // Payloads here run to 200 KB — keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full-window round trip: any length up to 200 000 survives
    /// segment→reassemble through the run-descriptor path, and every
    /// CRC-32 implementation — slice-by-8, slice-by-16, and the runtime
    /// dispatcher (which takes the SIMD lane where the host supports
    /// it) — agrees byte-for-byte with the bit-serial oracle.
    #[test]
    fn aal5_crc_impls_agree_across_full_window(
        len in 0usize..=200_000,
        seed in any::<u64>(),
    ) {
        let mult = seed | 1;
        let payload: Vec<u8> = (0..len)
            .map(|i| ((i as u64).wrapping_mul(mult) >> 13) as u8)
            .collect();
        let oracle = crc32_ref(&payload);
        prop_assert_eq!(aal5::crc32_slice8(&payload), oracle, "slice-by-8");
        prop_assert_eq!(aal5::crc32_slice16(&payload), oracle, "slice-by-16");
        prop_assert_eq!(aal5::crc32(&payload), oracle, "dispatch");
        let run = aal5::segment_run(&payload);
        prop_assert_eq!(run.ncells, aal5::cells_for(payload.len()));
        let back = aal5::reassemble_run(&run.payload).expect("run round trip");
        prop_assert_eq!(&back[..], &payload[..]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The zero-copy segmentation is byte-identical to the seed's
    /// copy-based implementation for arbitrary payloads.
    #[test]
    fn aal5_zero_copy_matches_seed_reference(
        payload in prop::collection::vec(any::<u8>(), 0..4000),
    ) {
        assert_matches_reference(&payload);
    }

    /// AAL5 segmentation followed by reassembly is the identity for every
    /// payload up to (and past) the 16-bit length window.
    #[test]
    fn aal5_round_trip(payload in prop::collection::vec(any::<u8>(), 0..3000)) {
        let cells = aal5::segment(0, 7, 3, &payload);
        prop_assert_eq!(cells.len(), aal5::cells_for(payload.len()));
        let back = aal5::reassemble(&cells).expect("reassembly");
        prop_assert_eq!(&back[..], &payload[..]);
    }

    /// Dropping ANY single cell from a multi-cell PDU makes reassembly
    /// fail (never silently corrupt).
    #[test]
    fn aal5_detects_any_single_loss(
        payload in prop::collection::vec(any::<u8>(), 100..2000),
        drop_frac in 0.0f64..1.0,
    ) {
        let mut cells = aal5::segment(0, 7, 3, &payload);
        let idx = ((cells.len() - 1) as f64 * drop_frac) as usize;
        cells.remove(idx);
        prop_assert!(aal5::reassemble(&cells).is_err());
    }

    /// Corrupting ANY single payload byte is caught by the CRC.
    #[test]
    fn aal5_detects_any_corruption(
        payload in prop::collection::vec(any::<u8>(), 1..1500),
        cell_frac in 0.0f64..1.0,
        byte in 0usize..48,
        flip in 1u8..=255,
    ) {
        let mut cells = aal5::segment(0, 7, 3, &payload);
        let idx = ((cells.len() - 1) as f64 * cell_frac) as usize;
        cells[idx].payload.make_mut()[byte] ^= flip;
        prop_assert!(aal5::reassemble(&cells).is_err());
    }

    /// Any mix of PDU sizes crosses a clean two-hop network intact and in
    /// order.
    #[test]
    fn network_preserves_order_and_content(
        sizes in prop::collection::vec(1usize..5_000, 1..20),
        seed in any::<u64>(),
    ) {
        let mut net = AtmNetwork::new(seed);
        let a = net.add_host("a");
        let s = net.add_switch("s");
        let b = net.add_host("b");
        net.connect(a, s, LinkProfile::atm_oc3());
        net.connect(s, b, LinkProfile::atm_oc3());
        let vc = net.open_vc(&[a, s, b], ServiceClass::Ubr, None).unwrap();
        let payloads: Vec<Bytes> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| Bytes::from(vec![(i % 251) as u8; n]))
            .collect();
        for p in &payloads {
            net.send(vc, p.clone()).unwrap();
        }
        let deliveries = net.drain(SimTime::from_secs(60));
        prop_assert_eq!(deliveries.len(), payloads.len());
        for (d, p) in deliveries.iter().zip(&payloads) {
            prop_assert_eq!(&d.payload, p);
        }
    }

    /// The reliable transport delivers every message exactly once, in
    /// order, for any loss rate up to 2 %.
    #[test]
    fn transport_survives_random_loss(
        loss_ppm in 0u32..20_000, // 0..2% per cell
        n_msgs in 1usize..8,
        msg_len in 1usize..20_000,
        seed in any::<u64>(),
    ) {
        let profile = LinkProfile {
            loss_rate: loss_ppm as f64 / 1e6,
            ..LinkProfile::atm_oc3()
        };
        let mut net = AtmNetwork::new(seed);
        let a = net.add_host("a");
        let b = net.add_host("b");
        net.connect(a, b, profile);
        let up = net.open_vc(&[a, b], ServiceClass::Ubr, None).unwrap();
        let down = net.open_vc(&[b, a], ServiceClass::Ubr, None).unwrap();
        let timeout = SimDuration::from_millis(20);
        let mut tx = ReliableChannel::new(up, down, 4, timeout);
        let mut rx = ReliableChannel::new(down, up, 4, timeout);
        for i in 0..n_msgs {
            tx.send_message(&mut net, &vec![i as u8; msg_len]).unwrap();
        }
        let mut got: Vec<Bytes> = Vec::new();
        let deadline = SimTime::from_secs(600);
        while got.len() < n_msgs && net.now() < deadline {
            let step = net
                .next_event_time()
                .into_iter()
                .chain(tx.next_timeout())
                .chain(rx.next_timeout())
                .min()
                .unwrap_or(deadline)
                .min(deadline)
                .max(net.now() + SimDuration::from_micros(1));
            let deliveries = net.advance(step);
            for d in &deliveries {
                for ev in tx.on_delivery(&mut net, d).unwrap() {
                    let _ = ev;
                }
                for ev in rx.on_delivery(&mut net, d).unwrap() {
                    if let TransportEvent::Message(m) = ev {
                        got.push(m);
                    }
                }
            }
            tx.on_tick(&mut net).unwrap();
            rx.on_tick(&mut net).unwrap();
        }
        prop_assert_eq!(got.len(), n_msgs, "all messages delivered");
        for (i, m) in got.iter().enumerate() {
            prop_assert_eq!(m.len(), msg_len);
            prop_assert!(m.iter().all(|&b| b == i as u8), "message {} in order", i);
        }
    }
}
