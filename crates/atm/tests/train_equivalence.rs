//! Determinism witness for the cell-train fast path.
//!
//! The batched scheduler must be *observationally invisible*: for any
//! workload and any fault plan, a network running cell trains and the
//! same network pinned to per-cell dispatch via `force_per_cell()` must
//! produce byte-identical `Delivery` sequences, identical `VcStats`, and
//! identical `FaultStats`. Down windows are the interesting case (trains
//! stay engaged and must expand around the windows); RNG-coupled faults
//! (extra loss, bursts, jitter) pin the whole network to the per-cell
//! path, so equality there is a sanity check of the pinning itself.

use bytes::Bytes;
use mits_atm::{
    AtmNetwork, Delivery, FaultPlan, FaultStats, LinkFaults, LinkProfile, NodeId, ServiceClass,
    VcId, VcStats,
};
use mits_sim::{OnlineStats, SimDuration, SimTime};
use proptest::prelude::*;

/// One traffic step: wait `gap_us`, then send `size` bytes on VC `vc_ix`.
#[derive(Debug, Clone)]
struct SendStep {
    vc_ix: usize,
    size: usize,
    gap_us: u64,
}

/// Everything observable about a finished run, in comparable form.
#[derive(Debug, PartialEq)]
struct Observed {
    deliveries: Vec<Delivery>,
    vc_stats: Vec<ComparableVcStats>,
    fault_stats: FaultStats,
}

/// `VcStats` flattened to exactly-comparable fields (`OnlineStats` holds
/// f64 accumulators — compare their bit patterns, not rounded views).
#[derive(Debug, PartialEq)]
struct ComparableVcStats {
    cells_sent: u64,
    cells_delivered: u64,
    cells_dropped: u64,
    pdus_sent: u64,
    pdus_delivered: u64,
    pdus_failed: u64,
    bytes_sent: u64,
    bytes_delivered: u64,
    ctd: (u64, u64, Option<u64>, Option<u64>),
    pdu_latency: (u64, u64, Option<u64>, Option<u64>),
}

fn flatten_online(s: &OnlineStats) -> (u64, u64, Option<u64>, Option<u64>) {
    (
        s.count(),
        s.mean().to_bits(),
        s.min().map(f64::to_bits),
        s.max().map(f64::to_bits),
    )
}

fn flatten(s: &VcStats) -> ComparableVcStats {
    ComparableVcStats {
        cells_sent: s.cells_sent,
        cells_delivered: s.cells_delivered,
        cells_dropped: s.cells_dropped,
        pdus_sent: s.pdus_sent,
        pdus_delivered: s.pdus_delivered,
        pdus_failed: s.pdus_failed,
        bytes_sent: s.bytes_sent,
        bytes_delivered: s.bytes_delivered,
        ctd: flatten_online(&s.ctd),
        pdu_latency: flatten_online(&s.pdu_latency),
    }
}

/// Two hosts feeding one switch that fans into a third host: the shared
/// downstream link is where class contention and cut-through decisions
/// happen.
fn build(seed: u64, plan: &FaultPlan, per_cell: bool) -> (AtmNetwork, Vec<VcId>, NodeId) {
    let mut net = AtmNetwork::new(seed);
    let a = net.add_host("a");
    let b = net.add_host("b");
    let s = net.add_switch("s");
    let dst = net.add_host("dst");
    net.connect(a, s, LinkProfile::atm_oc3());
    net.connect(b, s, LinkProfile::atm_oc3());
    net.connect(s, dst, LinkProfile::atm_oc3());
    net.set_fault_plan(plan.clone());
    if per_cell {
        net.force_per_cell();
    }
    let vcs = vec![
        net.open_vc(&[a, s, dst], ServiceClass::Vbr, None).unwrap(),
        net.open_vc(&[b, s, dst], ServiceClass::Ubr, None).unwrap(),
    ];
    (net, vcs, dst)
}

/// Drive one network through the send schedule; return the observables
/// plus the number of train runs the scheduler actually batched.
fn run_one(seed: u64, plan: &FaultPlan, steps: &[SendStep], per_cell: bool) -> (Observed, u64) {
    let (mut net, vcs, _dst) = build(seed, plan, per_cell);
    let mut deliveries = Vec::new();
    for st in steps {
        let to = net.now() + SimDuration::from_micros(st.gap_us);
        deliveries.extend(net.advance(to));
        let payload: Vec<u8> = (0..st.size)
            .map(|i| ((i as u64).wrapping_mul(2 * st.vc_ix as u64 + 1) % 251) as u8)
            .collect();
        net.send(vcs[st.vc_ix], Bytes::from(payload)).unwrap();
    }
    deliveries.extend(net.drain(SimTime::from_secs(120)));
    let vc_stats = vcs
        .iter()
        .map(|&vc| flatten(net.vc_stats(vc).expect("vc stats")))
        .collect();
    let runs = net.train_stats().runs;
    (
        Observed {
            deliveries,
            vc_stats,
            fault_stats: net.fault_stats(),
        },
        runs,
    )
}

/// Run the schedule both ways and assert observational equality. Returns
/// the batched network's train run count so callers can assert the fast
/// path actually engaged (or stayed out).
fn assert_equivalent(seed: u64, plan: &FaultPlan, steps: &[SendStep]) -> u64 {
    let (batched, runs) = run_one(seed, plan, steps, false);
    let (per_cell, pinned_runs) = run_one(seed, plan, steps, true);
    assert_eq!(
        batched, per_cell,
        "train path diverged from per-cell path (seed {seed})"
    );
    assert_eq!(pinned_runs, 0, "force_per_cell must disable trains");
    runs
}

fn big_steps() -> Vec<SendStep> {
    // Large PDUs with gaps long enough to drain: the pure fast path.
    (0..6)
        .map(|i| SendStep {
            vc_ix: i % 2,
            size: 40_000 + i * 7_001,
            gap_us: 30_000,
        })
        .collect()
}

#[test]
fn clean_network_trains_match_per_cell_exactly() {
    let runs = assert_equivalent(11, &FaultPlan::none(), &big_steps());
    assert!(runs > 0, "fast path must engage on a clean network");
}

#[test]
fn contending_sends_match_per_cell_exactly() {
    // Zero gap: both VCs dump PDUs at once, forcing contention at the
    // switch's shared output link and exercising the expansion path.
    let steps: Vec<SendStep> = (0..8)
        .map(|i| SendStep {
            vc_ix: i % 2,
            size: 10_000 + i * 3_777,
            gap_us: if i % 3 == 0 { 0 } else { 200 },
        })
        .collect();
    assert_equivalent(23, &FaultPlan::none(), &steps);
}

#[test]
fn down_windows_match_per_cell_exactly() {
    // Windows chosen to cut through the middle of several runs.
    let plan = FaultPlan::uniform(
        LinkFaults::default()
            .with_down(SimTime::from_millis(5), SimTime::from_millis(9))
            .with_down(SimTime::from_millis(40), SimTime::from_millis(41)),
    );
    let stats_runs = assert_equivalent(42, &plan, &big_steps());
    // Down-only plans keep trains allowed; runs land outside the windows.
    assert!(stats_runs > 0, "down-only plan must not disable trains");
}

#[test]
fn rng_coupled_faults_pin_per_cell_and_match() {
    // Extra loss + jitter consume the fault RNG per cell: the network
    // must pin itself to the per-cell path (trains would skew the draw
    // order), making both runs trivially identical — verify both the
    // pinning and the equality.
    let plan = FaultPlan::uniform(LinkFaults::loss(0.01).with_jitter(SimDuration::from_micros(40)));
    let runs = assert_equivalent(7, &plan, &big_steps());
    assert_eq!(runs, 0, "RNG-coupled plans must disable the fast path");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Seed-matrix witness: random schedules and random down windows
    /// never let the two schedulers diverge.
    #[test]
    fn train_equivalence_random(
        seed in any::<u64>(),
        sizes in prop::collection::vec(1usize..60_000, 1..8),
        gaps in prop::collection::vec(0u64..40_000, 1..8),
        windows in prop::collection::vec((0u64..80u64, 1u64..15u64), 0..3),
    ) {
        let steps: Vec<SendStep> = sizes
            .iter()
            .zip(gaps.iter().cycle())
            .enumerate()
            .map(|(i, (&size, &gap_us))| SendStep { vc_ix: i % 2, size, gap_us })
            .collect();
        let mut faults = LinkFaults::default();
        for &(from_ms, len_ms) in &windows {
            faults = faults.with_down(
                SimTime::from_millis(from_ms),
                SimTime::from_millis(from_ms + len_ms),
            );
        }
        let plan = if faults.down.is_empty() {
            FaultPlan::none()
        } else {
            FaultPlan::uniform(faults)
        };
        let (batched, _) = run_one(seed, &plan, &steps, false);
        let (per_cell, _) = run_one(seed, &plan, &steps, true);
        prop_assert_eq!(batched, per_cell);
    }
}
