//! AAL5 segmentation and reassembly.
//!
//! AAL5 appends an 8-byte trailer (2 reserved, 2 length, 4 CRC-32) to the
//! PDU, pads to a multiple of 48, and marks the final cell with the
//! PTI end-of-PDU bit. Reassembly collects cells until the end bit, then
//! validates length and CRC — a single lost cell corrupts the whole PDU,
//! which is exactly the behaviour that makes cell loss so expensive for
//! courseware delivery and shows up in experiment E-BB.
//!
//! Segmentation writes the PDU **once** into a padded shared buffer (the
//! *run image*) and hands every cell a 48-byte [`Payload`] window into it.
//! Reassembly detects when the arriving cells are still consecutive
//! windows of one buffer (the common clean-delivery case) and returns a
//! zero-copy view of it; the cell-train fast path skips the per-cell form
//! entirely and validates the run image directly ([`reassemble_run`]).
//! Only cells that were individually mutated in flight (fault injection)
//! or stitched from multiple sources fall back to a copying path.
//!
//! The CRC-32 kernel runs over every PDU twice (segment + reassemble), so
//! it gets three implementations: a slice-by-16 table walk as the portable
//! baseline, a carryless-multiply fold on x86_64 (PCLMULQDQ), and the
//! dedicated CRC instructions on aarch64 — both detected at runtime and
//! self-checked against the table path before being trusted.

use crate::cell::{AtmCell, CELL_PAYLOAD};
use bytes::Bytes;
use mits_sim::Payload;
use std::sync::Arc;

/// Errors from AAL5 reassembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Aal5Error {
    /// Fewer cells than the trailer's length implies / no end cell.
    Incomplete,
    /// Cell sequence had a gap (lost cell).
    MissingCell {
        /// Index of the first missing cell.
        index: u32,
    },
    /// CRC mismatch after reassembly.
    BadCrc,
    /// Trailer length field inconsistent with the cell count.
    BadLength,
}

impl std::fmt::Display for Aal5Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Aal5Error::Incomplete => write!(f, "incomplete PDU"),
            Aal5Error::MissingCell { index } => write!(f, "missing cell {index}"),
            Aal5Error::BadCrc => write!(f, "CRC-32 mismatch"),
            Aal5Error::BadLength => write!(f, "length field mismatch"),
        }
    }
}

impl std::error::Error for Aal5Error {}

// ---- CRC-32 (IEEE 802.3 polynomial, bit-reflected) ----

/// CRC-32 as used by AAL5, dispatching to the fastest implementation the
/// host supports: PCLMULQDQ folding on x86_64, the CRC instructions on
/// aarch64, slice-by-16 tables everywhere else. Hardware paths are
/// runtime-detected and verified against the table path once at first
/// use; a failed self-check (wrong microcode, exotic core) permanently
/// falls back to the tables, so the answer is always the IEEE CRC.
pub fn crc32(data: &[u8]) -> u32 {
    match crc_impl() {
        #[cfg(target_arch = "x86_64")]
        CrcImpl::Pclmul => crc32_pclmul(data),
        #[cfg(target_arch = "aarch64")]
        CrcImpl::HwCrc => crc32_hwcrc(data),
        CrcImpl::Slice16 => crc32_slice16(data),
    }
}

/// Slice-by-8 table implementation (the previous production kernel), kept
/// callable as an independent cross-check and benchmark reference.
pub fn crc32_slice8(data: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes(c[..4].try_into().expect("4 bytes")) ^ crc;
        let hi = u32::from_le_bytes(c[4..].try_into().expect("4 bytes"));
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Slice-by-16 table implementation: folds 16 message bytes per
/// iteration. The portable fallback for [`crc32`].
pub fn crc32_slice16(data: &[u8]) -> u32 {
    !crc32_slice16_update(0xFFFF_FFFF, data)
}

/// Slice-by-16 continuation on a raw (pre-inverted) CRC state — lets the
/// SIMD path hand its sub-16-byte tail over without re-finalizing.
fn crc32_slice16_update(mut crc: u32, data: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut chunks = data.chunks_exact(16);
    for c in &mut chunks {
        let a = u32::from_le_bytes(c[..4].try_into().expect("4 bytes")) ^ crc;
        let b = u32::from_le_bytes(c[4..8].try_into().expect("4 bytes"));
        let d = u32::from_le_bytes(c[8..12].try_into().expect("4 bytes"));
        let e = u32::from_le_bytes(c[12..16].try_into().expect("4 bytes"));
        crc = t[15][(a & 0xFF) as usize]
            ^ t[14][((a >> 8) & 0xFF) as usize]
            ^ t[13][((a >> 16) & 0xFF) as usize]
            ^ t[12][(a >> 24) as usize]
            ^ t[11][(b & 0xFF) as usize]
            ^ t[10][((b >> 8) & 0xFF) as usize]
            ^ t[9][((b >> 16) & 0xFF) as usize]
            ^ t[8][(b >> 24) as usize]
            ^ t[7][(d & 0xFF) as usize]
            ^ t[6][((d >> 8) & 0xFF) as usize]
            ^ t[5][((d >> 16) & 0xFF) as usize]
            ^ t[4][(d >> 24) as usize]
            ^ t[3][(e & 0xFF) as usize]
            ^ t[2][((e >> 8) & 0xFF) as usize]
            ^ t[1][((e >> 16) & 0xFF) as usize]
            ^ t[0][(e >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// Lookup tables: `CRC_TABLES[0]` is the classic byte-at-a-time table;
/// table `k` advances a byte `k` positions further into the message,
/// letting the slice-by-16 loop fold 16 bytes per iteration (slice-by-8
/// uses the first 8 tables).
static CRC_TABLES: [[u32; 256]; 16] = build_crc_tables();

const fn build_crc_tables() -> [[u32; 256]; 16] {
    let mut t = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            let mask = (c & 1).wrapping_neg();
            c = (c >> 1) ^ (0xEDB8_8320 & mask);
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut k = 1;
    while k < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        k += 1;
    }
    t
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CrcImpl {
    Slice16,
    #[cfg(target_arch = "x86_64")]
    Pclmul,
    #[cfg(target_arch = "aarch64")]
    HwCrc,
}

fn crc_impl() -> CrcImpl {
    static IMPL: std::sync::OnceLock<CrcImpl> = std::sync::OnceLock::new();
    *IMPL.get_or_init(detect_crc_impl)
}

/// Runtime detection with a self-check: the hardware path must agree with
/// slice-by-16 on a spread of lengths (covering the fold loop, the 4→1
/// reduction, 16-byte folds and odd tails) before it is trusted.
fn detect_crc_impl() -> CrcImpl {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("pclmulqdq")
            && std::arch::is_x86_feature_detected!("sse4.1")
            && hw_agrees_with_tables(crc32_pclmul)
        {
            return CrcImpl::Pclmul;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("crc") && hw_agrees_with_tables(crc32_hwcrc) {
            return CrcImpl::HwCrc;
        }
    }
    CrcImpl::Slice16
}

#[allow(dead_code)] // unused on targets without a hardware CRC path
fn hw_agrees_with_tables(hw: fn(&[u8]) -> u32) -> bool {
    let mut buf = [0u8; 259];
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for b in &mut buf {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *b = x as u8;
    }
    [0usize, 1, 9, 15, 16, 63, 64, 65, 80, 127, 128, 193, 259]
        .iter()
        .all(|&n| hw(&buf[..n]) == crc32_slice16(&buf[..n]))
}

/// True when [`crc32`] dispatches to a hardware (SIMD / CRC-instruction)
/// implementation on this host.
pub fn crc32_is_hw_accelerated() -> bool {
    crc_impl() != CrcImpl::Slice16
}

/// PCLMULQDQ-folded CRC-32 (x86_64). Safe wrapper: feature presence is
/// guaranteed by the dispatcher, and short or ragged inputs run through
/// the table path. Public so benches and tests can pin this path.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // std::arch intrinsics; guarded by runtime detection
pub fn crc32_pclmul(data: &[u8]) -> u32 {
    if data.len() < 64 || !std::arch::is_x86_feature_detected!("pclmulqdq") {
        return crc32_slice16(data);
    }
    let split = data.len() & !15;
    // SAFETY: pclmulqdq + sse4.1 presence checked above / by the caller's
    // dispatcher; `split` is ≥ 64 and a multiple of 16.
    let crc = unsafe { crc32_fold_pclmul(0xFFFF_FFFF, &data[..split]) };
    !crc32_slice16_update(crc, &data[split..])
}

/// The 128-bit carryless-multiply fold (reflected CRC-32, IEEE poly).
/// Constants are the standard reflected folding set: k1/k2 fold 64 bytes,
/// k3/k4 fold 16, k5 reduces 128→64 bits, and (P', μ) drive the final
/// Barrett reduction.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // std::arch intrinsics; guarded by runtime detection
#[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
unsafe fn crc32_fold_pclmul(crc: u32, data: &[u8]) -> u32 {
    use core::arch::x86_64::*;
    debug_assert!(data.len() >= 64 && data.len().is_multiple_of(16));
    let k1k2 = _mm_set_epi64x(0x0001_c6e4_1596, 0x0001_5444_2bd4);
    let k3k4 = _mm_set_epi64x(0x0000_ccaa_009e, 0x0001_7519_97d0);
    let k5 = _mm_set_epi64x(0, 0x0001_63cd_6124);
    let poly_mu = _mm_set_epi64x(0x0001_f701_1641, 0x0001_db71_0641);
    let mask32 = _mm_set_epi32(0, -1, 0, -1);

    let mut buf = data.as_ptr();
    let mut len = data.len();
    let mut x1 = _mm_loadu_si128(buf.cast());
    let mut x2 = _mm_loadu_si128(buf.add(16).cast());
    let mut x3 = _mm_loadu_si128(buf.add(32).cast());
    let mut x4 = _mm_loadu_si128(buf.add(48).cast());
    x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(crc as i32));
    buf = buf.add(64);
    len -= 64;

    while len >= 64 {
        let y1 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
        let y2 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
        let y3 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
        let y4 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
        x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
        x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
        x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
        x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
        x1 = _mm_xor_si128(_mm_xor_si128(x1, y1), _mm_loadu_si128(buf.cast()));
        x2 = _mm_xor_si128(_mm_xor_si128(x2, y2), _mm_loadu_si128(buf.add(16).cast()));
        x3 = _mm_xor_si128(_mm_xor_si128(x3, y3), _mm_loadu_si128(buf.add(32).cast()));
        x4 = _mm_xor_si128(_mm_xor_si128(x4, y4), _mm_loadu_si128(buf.add(48).cast()));
        buf = buf.add(64);
        len -= 64;
    }

    // Fold the four 128-bit lanes into one.
    let mut y = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), y);
    y = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x3), y);
    y = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x4), y);

    while len >= 16 {
        y = _mm_clmulepi64_si128(x1, k3k4, 0x00);
        x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
        x1 = _mm_xor_si128(_mm_xor_si128(x1, _mm_loadu_si128(buf.cast())), y);
        buf = buf.add(16);
        len -= 16;
    }

    // 128 → 64 bits.
    y = _mm_clmulepi64_si128(x1, k3k4, 0x10);
    x1 = _mm_srli_si128(x1, 8);
    x1 = _mm_xor_si128(x1, y);
    let upper = _mm_srli_si128(x1, 4);
    x1 = _mm_and_si128(x1, mask32);
    x1 = _mm_clmulepi64_si128(x1, k5, 0x00);
    x1 = _mm_xor_si128(x1, upper);

    // Barrett reduction 64 → 32 bits.
    let mut t = _mm_and_si128(x1, mask32);
    t = _mm_clmulepi64_si128(t, poly_mu, 0x10);
    t = _mm_and_si128(t, mask32);
    t = _mm_clmulepi64_si128(t, poly_mu, 0x00);
    x1 = _mm_xor_si128(x1, t);
    _mm_extract_epi32(x1, 1) as u32
}

/// CRC-instruction implementation (aarch64). Safe wrapper; feature
/// presence is guaranteed by the dispatcher's detection + self-check.
#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)] // std::arch intrinsics; guarded by runtime detection
pub fn crc32_hwcrc(data: &[u8]) -> u32 {
    if !std::arch::is_aarch64_feature_detected!("crc") {
        return crc32_slice16(data);
    }
    // SAFETY: the `crc` feature was just detected.
    unsafe { crc32_hwcrc_inner(data) }
}

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)] // std::arch intrinsics; guarded by runtime detection
#[target_feature(enable = "crc")]
unsafe fn crc32_hwcrc_inner(data: &[u8]) -> u32 {
    use core::arch::aarch64::{__crc32b, __crc32d};
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        crc = __crc32d(crc, u64::from_le_bytes(c.try_into().expect("8 bytes")));
    }
    for &b in chunks.remainder() {
        crc = __crc32b(crc, b);
    }
    !crc
}

// ---- segmentation ----

const TRAILER: usize = 8;

/// A segmented PDU held as one padded, trailer-carrying buffer — the
/// *run image* the cell-train fast path ships across the network without
/// ever materializing per-cell structs. `payload` spans the whole padded
/// body (`ncells * 48` bytes); cell `i`'s wire payload is bytes
/// `[i*48, (i+1)*48)`.
#[derive(Debug, Clone)]
pub struct RunImage {
    /// The padded body, trailer included, as a shared view.
    pub payload: Payload,
    /// Number of 48-byte cells in the run.
    pub ncells: usize,
}

/// Build the padded run image for a PDU: one allocation, written in
/// place (payload bytes, zero padding, length field, CRC) — no
/// `vec![0; total]` pre-zeroing and no second copy into the shared
/// buffer.
#[allow(unsafe_code)] // single-pass init of an uninit Arc slice, fully written before use
pub fn segment_run(payload: &[u8]) -> RunImage {
    let body_len = payload.len() + TRAILER;
    let ncells = body_len.div_ceil(CELL_PAYLOAD).max(1);
    let total = ncells * CELL_PAYLOAD;
    let mut arc: Arc<[std::mem::MaybeUninit<u8>]> = Arc::new_uninit_slice(total);
    let buf = Arc::get_mut(&mut arc).expect("freshly allocated");
    let dst = buf.as_mut_ptr().cast::<u8>();
    // SAFETY: `dst` points at `total` writable bytes; the three writes
    // below initialize [0, total-4) exactly once (payload, then zeroed
    // padding + reserved trailer bytes, then the length field), and the
    // CRC write initializes the final 4.
    let crc = unsafe {
        std::ptr::copy_nonoverlapping(payload.as_ptr(), dst, payload.len());
        std::ptr::write_bytes(dst.add(payload.len()), 0, total - 6 - payload.len());
        let len_be = (payload.len() as u16).to_be_bytes();
        // (16-bit length like real AAL5; PDUs > 65535 carry length mod 2^16
        // and rely on the cell count check, as real AAL5 caps PDUs at 65535.)
        std::ptr::copy_nonoverlapping(len_be.as_ptr(), dst.add(total - 6), 2);
        crc32(std::slice::from_raw_parts(dst, total - 4))
    };
    let crc_be = crc.to_be_bytes();
    // SAFETY: last 4 bytes of the same allocation.
    unsafe {
        std::ptr::copy_nonoverlapping(crc_be.as_ptr(), dst.add(total - 4), 4);
    }
    // SAFETY: every byte of the slice was initialized above.
    let arc: Arc<[u8]> = unsafe { arc.assume_init() };
    RunImage {
        payload: Payload::from_arc(arc),
        ncells,
    }
}

/// Pool bounds for [`segment_run_pooled`]: small control PDUs (acks)
/// churn too fast to be worth pooling, and the pool itself must stay a
/// bounded scratch, not a cache.
const POOL_MAX: usize = 16;
const POOL_MIN_BYTES: usize = 1024;

/// [`segment_run`] with buffer recycling through `pool` (typically the
/// network's `NetScratch`). When the pool holds a retired buffer of
/// exactly the right size whose only remaining owner is the pool itself,
/// the run is rewritten into it in place — zero allocations on the steady
///-state send path. Every byte is overwritten (payload, padding, length
/// field, CRC), so a recycled run is bit-identical to a fresh one. The
/// buffer stays registered in the pool and becomes reusable again once
/// the network and its deliveries drop their views.
pub fn segment_run_pooled(payload: &[u8], pool: &mut Vec<Arc<[u8]>>) -> RunImage {
    let body_len = payload.len() + TRAILER;
    let ncells = body_len.div_ceil(CELL_PAYLOAD).max(1);
    let total = ncells * CELL_PAYLOAD;
    if total < POOL_MIN_BYTES {
        return segment_run(payload);
    }
    let reusable = pool
        .iter()
        .position(|a| a.len() == total && Arc::strong_count(a) == 1);
    let Some(i) = reusable else {
        let run = segment_run(payload);
        if pool.len() >= POOL_MAX {
            pool.swap_remove(0);
        }
        pool.push(Arc::clone(run.payload.backing()));
        return run;
    };
    let mut arc = pool.swap_remove(i);
    {
        let buf = Arc::get_mut(&mut arc).expect("uniquely owned");
        buf[..payload.len()].copy_from_slice(payload);
        buf[payload.len()..total - 6].fill(0);
        buf[total - 6..total - 4].copy_from_slice(&(payload.len() as u16).to_be_bytes());
        let crc = crc32(&buf[..total - 4]);
        buf[total - 4..].copy_from_slice(&crc.to_be_bytes());
    }
    let view = Payload::from_arc(Arc::clone(&arc));
    pool.push(arc);
    RunImage {
        payload: view,
        ncells,
    }
}

/// Materialize the per-cell form of a run image into `out` (cleared
/// first): zero-copy 48-byte views into the run buffer.
pub fn cells_from_run(vpi: u8, vci: u16, pdu_seq: u64, run: &RunImage, out: &mut Vec<AtmCell>) {
    out.clear();
    out.reserve(run.ncells);
    for i in 0..run.ncells {
        out.push(
            AtmCell::new(vpi, vci, pdu_seq, i as u32, i == run.ncells - 1)
                .with_payload_view(run.payload.slice(i * CELL_PAYLOAD..(i + 1) * CELL_PAYLOAD)),
        );
    }
}

/// Segment a PDU into cells, reusing `out`'s allocation (cleared first).
/// The PDU is written once into a padded trailer-carrying buffer; the
/// cells are zero-copy 48-byte views into it.
pub fn segment_into(vpi: u8, vci: u16, pdu_seq: u64, payload: &[u8], out: &mut Vec<AtmCell>) {
    let run = segment_run(payload);
    cells_from_run(vpi, vci, pdu_seq, &run, out);
}

/// Segment a PDU into freshly allocated cells for the given VC
/// identifiers (see [`segment_into`] for the allocation-reusing form).
pub fn segment(vpi: u8, vci: u16, pdu_seq: u64, payload: &[u8]) -> Vec<AtmCell> {
    let mut out = Vec::new();
    segment_into(vpi, vci, pdu_seq, payload, &mut out);
    out
}

/// Validate trailer length against the cell count, returning the true PDU
/// length within the padded body `buf`.
fn validated_length(buf: &[u8]) -> Result<usize, Aal5Error> {
    let total = buf.len();
    let crc_stored = u32::from_be_bytes(buf[total - 4..].try_into().expect("4 bytes"));
    if crc32(&buf[..total - 4]) != crc_stored {
        return Err(Aal5Error::BadCrc);
    }
    let len_field =
        u16::from_be_bytes(buf[total - 6..total - 4].try_into().expect("2 bytes")) as usize;
    // Recover the true length: it is congruent to the 16-bit field mod
    // 65536, and the cell count pins it to the single candidate whose
    // padding fits inside the final cell. Lifting to the highest window
    // that still fits keeps exact-65536-multiple PDUs (len_field == 0)
    // on the maximal candidate instead of the empty one.
    let max_payload = total - TRAILER;
    if len_field > max_payload {
        return Err(Aal5Error::BadLength);
    }
    let length = len_field + (max_payload - len_field) / 65536 * 65536;
    // Padding must fit within the final cell (+ trailer).
    if total - (length + TRAILER) >= CELL_PAYLOAD {
        return Err(Aal5Error::BadLength);
    }
    Ok(length)
}

/// Reassemble a PDU from cells (in order, same `pdu_seq`). Validates the
/// sequence, length field and CRC.
pub fn reassemble(cells: &[AtmCell]) -> Result<Bytes, Aal5Error> {
    if cells.is_empty() {
        return Err(Aal5Error::Incomplete);
    }
    if !cells.last().expect("non-empty").pdu_end {
        return Err(Aal5Error::Incomplete);
    }
    for (i, c) in cells.iter().enumerate() {
        if c.cell_index != i as u32 {
            return Err(Aal5Error::MissingCell { index: i as u32 });
        }
        if c.pdu_end && i != cells.len() - 1 {
            return Err(Aal5Error::BadLength);
        }
    }
    let total = cells.len() * CELL_PAYLOAD;
    // Fast path: all payloads are still consecutive windows of the single
    // buffer segmentation built — validate in place and return a zero-copy
    // view of the original bytes.
    if cells
        .windows(2)
        .all(|w| w[0].payload.is_contiguous_with(&w[1].payload))
    {
        let (base, _) = cells[0].payload.range();
        let arc = Arc::clone(cells[0].payload.backing());
        let length = validated_length(&arc[base..base + total])?;
        return Ok(Bytes::from_shared_range(arc, base, base + length));
    }
    // Slow path: stitch the payloads together, then validate the copy.
    let mut buf = Vec::with_capacity(total);
    for c in cells {
        buf.extend_from_slice(&c.payload);
    }
    let length = validated_length(&buf)?;
    buf.truncate(length);
    Ok(Bytes::from(buf))
}

/// Reassemble straight from a run descriptor: the contiguity fast path of
/// [`reassemble`] without the per-cell walk. `run` must span the whole
/// padded body (as built by [`segment_run`]); the CRC and length field
/// are still validated honestly, so a corrupted buffer is caught exactly
/// as it would be cell-by-cell.
pub fn reassemble_run(run: &Payload) -> Result<Bytes, Aal5Error> {
    let (start, end) = run.range();
    if (end - start) % CELL_PAYLOAD != 0 || end == start {
        return Err(Aal5Error::BadLength);
    }
    let arc = Arc::clone(run.backing());
    let length = validated_length(&arc[start..end])?;
    Ok(Bytes::from_shared_range(arc, start, start + length))
}

/// Number of cells a PDU of `len` bytes occupies.
pub fn cells_for(len: usize) -> usize {
    (len + TRAILER).div_ceil(CELL_PAYLOAD).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_sizes() {
        for size in [0usize, 1, 39, 40, 41, 47, 48, 95, 96, 1000, 65_535] {
            let payload: Vec<u8> = (0..size).map(|i| (i * 7) as u8).collect();
            let cells = segment(0, 5, 1, &payload);
            assert_eq!(cells.len(), cells_for(size));
            let back = reassemble(&cells).unwrap_or_else(|e| panic!("size {size}: {e}"));
            assert_eq!(&back[..], &payload[..], "size {size}");
        }
    }

    #[test]
    fn trailer_boundary_sizes() {
        // 40 bytes + 8 trailer = exactly one cell; 41 spills to two.
        assert_eq!(cells_for(40), 1);
        assert_eq!(cells_for(41), 2);
        assert_eq!(cells_for(0), 1);
        assert_eq!(cells_for(88), 2);
    }

    #[test]
    fn length_window_boundaries_round_trip() {
        // The 16-bit length field wraps at 65536: 65530 (just below),
        // 65536 and 131072 (exact multiples, field reads zero), 65544
        // (just past) — all recovered via the cell count, per cell AND
        // via the run descriptor.
        for size in [65_530usize, 65_536, 65_544, 131_072] {
            let payload: Vec<u8> = (0..size).map(|i| (i % 249) as u8).collect();
            let cells = segment(0, 5, 1, &payload);
            assert_eq!(cells.len(), cells_for(size), "size {size}");
            let back = reassemble(&cells).unwrap_or_else(|e| panic!("size {size}: {e}"));
            assert_eq!(&back[..], &payload[..], "size {size}");
            let run = segment_run(&payload);
            let back = reassemble_run(&run.payload).unwrap();
            assert_eq!(&back[..], &payload[..], "run size {size}");
        }
    }

    #[test]
    fn lost_cell_detected() {
        let payload = vec![9u8; 500];
        let mut cells = segment(0, 5, 1, &payload);
        cells.remove(3);
        assert_eq!(reassemble(&cells), Err(Aal5Error::MissingCell { index: 3 }));
    }

    #[test]
    fn lost_last_cell_detected() {
        let payload = vec![9u8; 500];
        let mut cells = segment(0, 5, 1, &payload);
        cells.pop();
        assert_eq!(reassemble(&cells), Err(Aal5Error::Incomplete));
    }

    #[test]
    fn corruption_detected_by_crc() {
        let payload = vec![1u8; 200];
        let mut cells = segment(0, 5, 1, &payload);
        cells[1].payload.make_mut()[10] ^= 0xFF;
        assert_eq!(reassemble(&cells), Err(Aal5Error::BadCrc));
    }

    #[test]
    fn empty_input_incomplete() {
        assert_eq!(reassemble(&[]), Err(Aal5Error::Incomplete));
    }

    #[test]
    fn end_bit_only_on_last_cell() {
        let cells = segment(0, 5, 1, &[0u8; 500]);
        let ends: Vec<bool> = cells.iter().map(|c| c.pdu_end).collect();
        assert!(ends[..ends.len() - 1].iter().all(|&e| !e));
        assert!(*ends.last().unwrap());
    }

    #[test]
    fn large_pdu_over_64k_window() {
        // 70 000 bytes: length field wraps mod 2^16; cell count recovers it.
        let payload: Vec<u8> = (0..70_000).map(|i| (i % 251) as u8).collect();
        let cells = segment(0, 5, 9, &payload);
        let back = reassemble(&cells).unwrap();
        assert_eq!(&back[..], &payload[..]);
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32("123456789") = 0xCBF43926 (standard check value).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_slice8(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_slice16(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_implementations_agree() {
        let mut buf = vec![0u8; 4096];
        let mut x = 0x0123_4567_89AB_CDEFu64;
        for b in &mut buf {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (x >> 56) as u8;
        }
        for n in [0usize, 1, 7, 8, 15, 16, 47, 48, 63, 64, 65, 100, 1023, 4096] {
            let expect = crc32_slice8(&buf[..n]);
            assert_eq!(crc32_slice16(&buf[..n]), expect, "slice16 len {n}");
            assert_eq!(crc32(&buf[..n]), expect, "dispatch len {n}");
            #[cfg(target_arch = "x86_64")]
            assert_eq!(crc32_pclmul(&buf[..n]), expect, "pclmul len {n}");
            #[cfg(target_arch = "aarch64")]
            assert_eq!(crc32_hwcrc(&buf[..n]), expect, "hwcrc len {n}");
        }
    }

    #[test]
    fn segment_into_reuses_and_matches() {
        let mut out = Vec::new();
        for size in [0usize, 40, 41, 1000] {
            let payload: Vec<u8> = (0..size).map(|i| (i % 253) as u8).collect();
            segment_into(0, 5, 2, &payload, &mut out);
            let fresh = segment(0, 5, 2, &payload);
            assert_eq!(out.len(), fresh.len());
            for (a, b) in out.iter().zip(&fresh) {
                assert_eq!(&a.payload[..], &b.payload[..]);
                assert_eq!(a.pdu_end, b.pdu_end);
                assert_eq!(a.cell_index, b.cell_index);
            }
        }
    }

    #[test]
    fn run_image_matches_cells_and_reassembles() {
        let payload: Vec<u8> = (0..5_000).map(|i| (i % 251) as u8).collect();
        let run = segment_run(&payload);
        assert_eq!(run.ncells, cells_for(payload.len()));
        let mut cells = Vec::new();
        cells_from_run(0, 5, 3, &run, &mut cells);
        let via_cells = reassemble(&cells).unwrap();
        let via_run = reassemble_run(&run.payload).unwrap();
        assert_eq!(&via_cells[..], &payload[..]);
        assert_eq!(&via_run[..], &payload[..]);
        // Both are zero-copy views of the same run buffer.
        assert!(Arc::ptr_eq(via_run.shared(), run.payload.backing()));
    }

    #[test]
    fn clean_reassembly_is_zero_copy() {
        let payload: Vec<u8> = (0..5_000).map(|i| (i % 256) as u8).collect();
        let cells = segment(0, 5, 3, &payload);
        let seg_arc = Arc::clone(cells[0].payload.backing());
        let back = reassemble(&cells).unwrap();
        assert_eq!(&back[..], &payload[..]);
        assert!(
            Arc::ptr_eq(back.shared(), &seg_arc),
            "clean delivery reuses the segmentation buffer"
        );
    }

    #[test]
    fn mutated_cell_falls_back_to_copy_path() {
        // A CoW-mutated cell breaks contiguity; reassembly must still work
        // when the mutation is reverted byte-for-byte (copy path, valid CRC).
        let payload = vec![5u8; 500];
        let mut cells = segment(0, 5, 1, &payload);
        cells[2].payload.make_mut()[0] = 5; // same value: CRC stays valid
        let back = reassemble(&cells).unwrap();
        assert_eq!(&back[..], &payload[..]);
    }

    #[test]
    fn corrupted_run_rejected() {
        let payload = vec![3u8; 500];
        let run = segment_run(&payload);
        let mut raw: Vec<u8> = run.payload.to_vec();
        raw[17] ^= 0x40;
        let corrupted = Payload::from(raw);
        assert_eq!(reassemble_run(&corrupted), Err(Aal5Error::BadCrc));
    }
}
