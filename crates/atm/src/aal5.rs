//! AAL5 segmentation and reassembly.
//!
//! AAL5 appends an 8-byte trailer (2 reserved, 2 length, 4 CRC-32) to the
//! PDU, pads to a multiple of 48, and marks the final cell with the
//! PTI end-of-PDU bit. Reassembly collects cells until the end bit, then
//! validates length and CRC — a single lost cell corrupts the whole PDU,
//! which is exactly the behaviour that makes cell loss so expensive for
//! courseware delivery and shows up in experiment E-BB.
//!
//! Segmentation copies the PDU **once** into a padded buffer and hands every
//! cell a 48-byte [`Payload`] window into it. Reassembly detects when the
//! arriving cells are still consecutive windows of one buffer (the common
//! clean-delivery case) and returns a zero-copy view of it; only cells that
//! were individually mutated in flight (fault injection) or stitched from
//! multiple sources fall back to a copying path.

use crate::cell::{AtmCell, CELL_PAYLOAD};
use bytes::Bytes;
use mits_sim::Payload;
use std::sync::Arc;

/// Errors from AAL5 reassembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Aal5Error {
    /// Fewer cells than the trailer's length implies / no end cell.
    Incomplete,
    /// Cell sequence had a gap (lost cell).
    MissingCell {
        /// Index of the first missing cell.
        index: u32,
    },
    /// CRC mismatch after reassembly.
    BadCrc,
    /// Trailer length field inconsistent with the cell count.
    BadLength,
}

impl std::fmt::Display for Aal5Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Aal5Error::Incomplete => write!(f, "incomplete PDU"),
            Aal5Error::MissingCell { index } => write!(f, "missing cell {index}"),
            Aal5Error::BadCrc => write!(f, "CRC-32 mismatch"),
            Aal5Error::BadLength => write!(f, "length field mismatch"),
        }
    }
}

impl std::error::Error for Aal5Error {}

/// CRC-32 (IEEE 802.3 polynomial, bit-reflected) as used by AAL5.
///
/// Table-driven, slice-by-8: the CRC runs over every PDU twice (once at
/// segmentation, once at reassembly), so at media rates the bit-serial
/// formulation was the single hottest loop in the simulator.
pub fn crc32(data: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes(c[..4].try_into().expect("4 bytes")) ^ crc;
        let hi = u32::from_le_bytes(c[4..].try_into().expect("4 bytes"));
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Lookup tables for [`crc32`]: `CRC_TABLES[0]` is the classic byte-at-a-
/// time table; table `k` advances a byte `k` positions further into the
/// message, letting the main loop fold 8 bytes per iteration.
static CRC_TABLES: [[u32; 256]; 8] = build_crc_tables();

const fn build_crc_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            let mask = (c & 1).wrapping_neg();
            c = (c >> 1) ^ (0xEDB8_8320 & mask);
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        k += 1;
    }
    t
}

const TRAILER: usize = 8;

/// Segment a PDU into cells for the given VC identifiers.
///
/// The PDU is copied once into a padded trailer-carrying buffer; the cells
/// are zero-copy 48-byte views into it.
pub fn segment(vpi: u8, vci: u16, pdu_seq: u64, payload: &[u8]) -> Vec<AtmCell> {
    // PDU + trailer padded up to a whole number of cells.
    let body_len = payload.len() + TRAILER;
    let ncells = body_len.div_ceil(CELL_PAYLOAD).max(1);
    let total = ncells * CELL_PAYLOAD;
    let mut buf = vec![0u8; total];
    buf[..payload.len()].copy_from_slice(payload);
    // Trailer sits at the very end of the padded buffer.
    let len_field = payload.len() as u32;
    buf[total - 6..total - 4].copy_from_slice(&(len_field as u16).to_be_bytes());
    // (16-bit length like real AAL5; PDUs > 65535 carry length mod 2^16 and
    // rely on the cell count check, as real AAL5 caps PDUs at 65535.)
    let crc = crc32(&buf[..total - 4]);
    buf[total - 4..].copy_from_slice(&crc.to_be_bytes());

    let shared = Payload::from(buf);
    (0..ncells)
        .map(|i| {
            AtmCell::new(vpi, vci, pdu_seq, i as u32, i == ncells - 1)
                .with_payload_view(shared.slice(i * CELL_PAYLOAD..(i + 1) * CELL_PAYLOAD))
        })
        .collect()
}

/// Validate trailer length against the cell count, returning the true PDU
/// length within the padded body `buf`.
fn validated_length(buf: &[u8]) -> Result<usize, Aal5Error> {
    let total = buf.len();
    let crc_stored = u32::from_be_bytes(buf[total - 4..].try_into().expect("4 bytes"));
    if crc32(&buf[..total - 4]) != crc_stored {
        return Err(Aal5Error::BadCrc);
    }
    let len_field =
        u16::from_be_bytes(buf[total - 6..total - 4].try_into().expect("2 bytes")) as usize;
    // Recover true length: the cell count pins the payload to within one
    // 65536 window of the 16-bit length field.
    let max_payload = total - TRAILER;
    let mut length = len_field;
    while length + 65536 <= max_payload {
        length += 65536;
    }
    if length > max_payload || max_payload - length >= CELL_PAYLOAD + 65536 {
        return Err(Aal5Error::BadLength);
    }
    // Padding must fit within the final cell (+ trailer).
    if total - (length + TRAILER) >= CELL_PAYLOAD {
        return Err(Aal5Error::BadLength);
    }
    Ok(length)
}

/// Reassemble a PDU from cells (in order, same `pdu_seq`). Validates the
/// sequence, length field and CRC.
pub fn reassemble(cells: &[AtmCell]) -> Result<Bytes, Aal5Error> {
    if cells.is_empty() {
        return Err(Aal5Error::Incomplete);
    }
    if !cells.last().expect("non-empty").pdu_end {
        return Err(Aal5Error::Incomplete);
    }
    for (i, c) in cells.iter().enumerate() {
        if c.cell_index != i as u32 {
            return Err(Aal5Error::MissingCell { index: i as u32 });
        }
        if c.pdu_end && i != cells.len() - 1 {
            return Err(Aal5Error::BadLength);
        }
    }
    let total = cells.len() * CELL_PAYLOAD;
    // Fast path: all payloads are still consecutive windows of the single
    // buffer segmentation built — validate in place and return a zero-copy
    // view of the original bytes.
    if cells
        .windows(2)
        .all(|w| w[0].payload.is_contiguous_with(&w[1].payload))
    {
        let (base, _) = cells[0].payload.range();
        let arc = Arc::clone(cells[0].payload.backing());
        let length = validated_length(&arc[base..base + total])?;
        return Ok(Bytes::from_shared_range(arc, base, base + length));
    }
    // Slow path: stitch the payloads together, then validate the copy.
    let mut buf = Vec::with_capacity(total);
    for c in cells {
        buf.extend_from_slice(&c.payload);
    }
    let length = validated_length(&buf)?;
    buf.truncate(length);
    Ok(Bytes::from(buf))
}

/// Number of cells a PDU of `len` bytes occupies.
pub fn cells_for(len: usize) -> usize {
    (len + TRAILER).div_ceil(CELL_PAYLOAD).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_sizes() {
        for size in [0usize, 1, 39, 40, 41, 47, 48, 95, 96, 1000, 65_535] {
            let payload: Vec<u8> = (0..size).map(|i| (i * 7) as u8).collect();
            let cells = segment(0, 5, 1, &payload);
            assert_eq!(cells.len(), cells_for(size));
            let back = reassemble(&cells).unwrap_or_else(|e| panic!("size {size}: {e}"));
            assert_eq!(&back[..], &payload[..], "size {size}");
        }
    }

    #[test]
    fn trailer_boundary_sizes() {
        // 40 bytes + 8 trailer = exactly one cell; 41 spills to two.
        assert_eq!(cells_for(40), 1);
        assert_eq!(cells_for(41), 2);
        assert_eq!(cells_for(0), 1);
        assert_eq!(cells_for(88), 2);
    }

    #[test]
    fn lost_cell_detected() {
        let payload = vec![9u8; 500];
        let mut cells = segment(0, 5, 1, &payload);
        cells.remove(3);
        assert_eq!(reassemble(&cells), Err(Aal5Error::MissingCell { index: 3 }));
    }

    #[test]
    fn lost_last_cell_detected() {
        let payload = vec![9u8; 500];
        let mut cells = segment(0, 5, 1, &payload);
        cells.pop();
        assert_eq!(reassemble(&cells), Err(Aal5Error::Incomplete));
    }

    #[test]
    fn corruption_detected_by_crc() {
        let payload = vec![1u8; 200];
        let mut cells = segment(0, 5, 1, &payload);
        cells[1].payload.make_mut()[10] ^= 0xFF;
        assert_eq!(reassemble(&cells), Err(Aal5Error::BadCrc));
    }

    #[test]
    fn empty_input_incomplete() {
        assert_eq!(reassemble(&[]), Err(Aal5Error::Incomplete));
    }

    #[test]
    fn end_bit_only_on_last_cell() {
        let cells = segment(0, 5, 1, &[0u8; 500]);
        let ends: Vec<bool> = cells.iter().map(|c| c.pdu_end).collect();
        assert!(ends[..ends.len() - 1].iter().all(|&e| !e));
        assert!(*ends.last().unwrap());
    }

    #[test]
    fn large_pdu_over_64k_window() {
        // 70 000 bytes: length field wraps mod 2^16; cell count recovers it.
        let payload: Vec<u8> = (0..70_000).map(|i| (i % 251) as u8).collect();
        let cells = segment(0, 5, 9, &payload);
        let back = reassemble(&cells).unwrap();
        assert_eq!(&back[..], &payload[..]);
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32("123456789") = 0xCBF43926 (standard check value).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn clean_reassembly_is_zero_copy() {
        let payload: Vec<u8> = (0..5_000).map(|i| (i % 256) as u8).collect();
        let cells = segment(0, 5, 3, &payload);
        let seg_arc = Arc::clone(cells[0].payload.backing());
        let back = reassemble(&cells).unwrap();
        assert_eq!(&back[..], &payload[..]);
        assert!(
            Arc::ptr_eq(back.shared(), &seg_arc),
            "clean delivery reuses the segmentation buffer"
        );
    }

    #[test]
    fn mutated_cell_falls_back_to_copy_path() {
        // A CoW-mutated cell breaks contiguity; reassembly must still work
        // when the mutation is reverted byte-for-byte (copy path, valid CRC).
        let payload = vec![5u8; 500];
        let mut cells = segment(0, 5, 1, &payload);
        cells[2].payload.make_mut()[0] = 5; // same value: CRC stays valid
        let back = reassemble(&cells).unwrap();
        assert_eq!(&back[..], &payload[..]);
    }
}
