//! Configurable fault injection for the cell network.
//!
//! The paper's broadband argument is made under *ideal* line conditions;
//! a production telelearning deployment sees the opposite — noisy access
//! loops, congested backbones, and links that flap. A [`FaultPlan`]
//! describes those pathologies per link (or uniformly), and the network
//! weaves them into the cell pipeline:
//!
//! - **extra cell loss** — independent per-cell loss added on top of the
//!   profile's line-noise rate;
//! - **burst loss** — a two-state Gilbert process: cells entering the
//!   burst state are lost until the burst ends;
//! - **latency jitter** — uniform extra propagation delay per cell;
//! - **up/down schedule** — wall-clock windows during which every cell
//!   on the link is lost.
//!
//! All randomness comes from a dedicated fault RNG stream split off the
//! network seed, and is only consulted for links that actually carry
//! faults — a network with an empty plan is *bit-identical* to one built
//! before fault injection existed, which is what lets the zero-loss
//! regression suite pin exact byte counts.

use crate::network::NodeId;
use mits_sim::{SimDuration, SimTime};
use std::collections::HashMap;

/// Two-state (Gilbert) burst-loss process parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstLoss {
    /// Probability that a cell *enters* a loss burst.
    pub enter: f64,
    /// Mean burst length in cells (geometric exit, `1/mean_len` per cell).
    pub mean_len: f64,
}

/// Faults applied to one directed link.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkFaults {
    /// Extra independent per-cell loss probability.
    pub extra_loss: f64,
    /// Optional burst-loss process.
    pub burst: Option<BurstLoss>,
    /// Maximum extra per-cell latency (uniform in `[0, jitter]`).
    pub jitter: Option<SimDuration>,
    /// Half-open `[from, until)` windows during which the link is down.
    pub down: Vec<(SimTime, SimTime)>,
}

impl LinkFaults {
    /// Independent cell loss only.
    pub fn loss(p: f64) -> Self {
        LinkFaults {
            extra_loss: p,
            ..Default::default()
        }
    }

    /// Builder: add a burst-loss process.
    pub fn with_burst(mut self, enter: f64, mean_len: f64) -> Self {
        self.burst = Some(BurstLoss { enter, mean_len });
        self
    }

    /// Builder: add latency jitter.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = Some(jitter);
        self
    }

    /// Builder: add a down window `[from, until)`.
    pub fn with_down(mut self, from: SimTime, until: SimTime) -> Self {
        self.down.push((from, until));
        self
    }

    /// Is the link down at `now` per the schedule?
    pub fn is_down(&self, now: SimTime) -> bool {
        self.down
            .iter()
            .any(|&(from, until)| now >= from && now < until)
    }

    /// Does this entry inject anything at all?
    pub fn is_active(&self) -> bool {
        self.extra_loss > 0.0
            || self.burst.is_some()
            || self.jitter.is_some()
            || !self.down.is_empty()
    }

    /// True when the only faults here are down windows — the one fault
    /// kind whose outcome is a pure function of the clock. RNG-coupled
    /// faults (extra loss, bursts, jitter) consume the fault RNG per
    /// cell, so batched scheduling could not reproduce their draw order.
    pub fn is_down_only(&self) -> bool {
        self.extra_loss == 0.0 && self.burst.is_none() && self.jitter.is_none_or(|j| j.is_zero())
    }
}

/// A reproducible description of every fault in a simulation run.
///
/// `default` applies to every directed link; `per_link` entries override
/// it for specific `(from, to)` pairs.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    default: Option<LinkFaults>,
    per_link: HashMap<(NodeId, NodeId), LinkFaults>,
}

impl FaultPlan {
    /// A plan injecting nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan applying `faults` to every directed link.
    pub fn uniform(faults: LinkFaults) -> Self {
        FaultPlan {
            default: Some(faults),
            per_link: HashMap::new(),
        }
    }

    /// Builder: override the plan for the directed link `from → to`.
    pub fn with_link(mut self, from: NodeId, to: NodeId, faults: LinkFaults) -> Self {
        self.per_link.insert((from, to), faults);
        self
    }

    /// Faults for the directed link `from → to`, if any are active.
    pub fn for_link(&self, from: NodeId, to: NodeId) -> Option<&LinkFaults> {
        self.per_link
            .get(&(from, to))
            .or(self.default.as_ref())
            .filter(|f| f.is_active())
    }

    /// Does the plan inject anything anywhere?
    pub fn is_empty(&self) -> bool {
        !self.default.as_ref().is_some_and(LinkFaults::is_active)
            && !self.per_link.values().any(LinkFaults::is_active)
    }

    /// True when every active fault in the plan is a down window (see
    /// [`LinkFaults::is_down_only`]) — the condition under which the
    /// network's cell-train fast path may stay engaged.
    pub fn is_down_only(&self) -> bool {
        let entry_ok = |f: &LinkFaults| !f.is_active() || f.is_down_only();
        self.default.as_ref().is_none_or(entry_ok) && self.per_link.values().all(entry_ok)
    }
}

/// What a scheduled server-lifecycle event does to its target.
///
/// These extend fault injection beyond the network: where [`LinkFaults`]
/// kill cells in flight, a crash schedule kills *endpoints* — the
/// durability layer (`mits-db`'s WAL + snapshots) is what makes the
/// restart meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The target process dies instantly: volatile state (queues,
    /// in-flight responses, ARQ windows) is lost; only its log devices
    /// survive.
    ServerCrash,
    /// The target comes back up and recovers from its devices; recovery
    /// latency is charged from the bytes it replays.
    ServerRestart,
}

/// One scheduled crash or restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// When it happens.
    pub at: SimTime,
    /// Which server (index into the system's server list).
    pub target: u32,
    /// Crash or restart.
    pub kind: FaultKind,
}

/// A reproducible schedule of server crashes and restarts, kept sorted
/// by time (ties break crash-before-restart so a crash and restart at
/// the same instant net out to a bounce).
#[derive(Debug, Clone, Default)]
pub struct CrashSchedule {
    events: Vec<CrashEvent>,
}

impl CrashSchedule {
    /// An empty schedule.
    pub fn none() -> Self {
        CrashSchedule::default()
    }

    fn push(&mut self, ev: CrashEvent) {
        self.events.push(ev);
        self.events
            .sort_by_key(|e| (e.at, matches!(e.kind, FaultKind::ServerRestart), e.target));
    }

    /// Builder: crash server `target` at `at`.
    pub fn with_crash(mut self, at: SimTime, target: u32) -> Self {
        self.push(CrashEvent {
            at,
            target,
            kind: FaultKind::ServerCrash,
        });
        self
    }

    /// Builder: restart server `target` at `at`.
    pub fn with_restart(mut self, at: SimTime, target: u32) -> Self {
        self.push(CrashEvent {
            at,
            target,
            kind: FaultKind::ServerRestart,
        });
        self
    }

    /// The next event strictly after `now`, if any (for wakeup timers).
    pub fn next_event_after(&self, now: SimTime) -> Option<SimTime> {
        self.events.iter().map(|e| e.at).find(|&at| at > now)
    }

    /// Drain every event due in `(after, upto]`, in order.
    pub fn due(&self, after: SimTime, upto: SimTime) -> Vec<CrashEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.at > after && e.at <= upto)
            .collect()
    }

    /// Does the schedule contain anything?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events, sorted.
    pub fn events(&self) -> &[CrashEvent] {
        &self.events
    }
}

/// Per-link runtime state for the burst and jitter processes.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FaultState {
    pub in_burst: bool,
    /// Latest scheduled arrival on this link: jittered cells are clamped
    /// to it so jitter never reorders cells (ATM preserves cell order
    /// within a VC).
    pub last_arrival: SimTime,
}

/// Counters for what the plan actually did — exposed for tests and
/// experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Cells lost to the extra independent loss process.
    pub random_losses: u64,
    /// Cells lost inside bursts.
    pub burst_losses: u64,
    /// Cells lost to down windows.
    pub downtime_losses: u64,
    /// Cells delayed by jitter.
    pub jittered: u64,
    /// Cells that traversed a link carrying active faults (lost or not);
    /// the denominator for the loss counters above.
    pub faulted_cells: u64,
}

impl FaultStats {
    /// All cells the plan destroyed.
    pub fn total_losses(&self) -> u64 {
        self.random_losses + self.burst_losses + self.downtime_losses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn down_windows_are_half_open() {
        let f = LinkFaults::default().with_down(SimTime::from_secs(1), SimTime::from_secs(2));
        assert!(!f.is_down(SimTime::from_micros(999_999)));
        assert!(f.is_down(SimTime::from_secs(1)));
        assert!(!f.is_down(SimTime::from_secs(2)));
    }

    #[test]
    fn empty_plans_are_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::uniform(LinkFaults::default()).is_empty());
        assert!(!FaultPlan::uniform(LinkFaults::loss(0.05)).is_empty());
        let keyed = FaultPlan::none().with_link(NodeId(0), NodeId(1), LinkFaults::loss(0.1));
        assert!(!keyed.is_empty());
    }

    #[test]
    fn crash_schedule_sorts_and_drains_in_order() {
        let sched = CrashSchedule::none()
            .with_restart(SimTime::from_secs(5), 0)
            .with_crash(SimTime::from_secs(2), 0)
            .with_crash(SimTime::from_secs(5), 1);
        assert_eq!(sched.events().len(), 3);
        // Sorted by time; at t=5 the crash (of server 1) precedes the
        // restart (of server 0).
        assert_eq!(sched.events()[0].kind, FaultKind::ServerCrash);
        assert_eq!(sched.events()[0].at, SimTime::from_secs(2));
        assert_eq!(sched.events()[1].kind, FaultKind::ServerCrash);
        assert_eq!(sched.events()[1].target, 1);
        assert_eq!(sched.events()[2].kind, FaultKind::ServerRestart);
        assert_eq!(
            sched.next_event_after(SimTime::from_secs(2)),
            Some(SimTime::from_secs(5))
        );
        let due = sched.due(SimTime::from_secs(2), SimTime::from_secs(5));
        assert_eq!(due.len(), 2, "half-open (after, upto]");
        assert!(CrashSchedule::none().is_empty());
        assert!(!sched.is_empty());
    }

    #[test]
    fn per_link_overrides_default() {
        let plan = FaultPlan::uniform(LinkFaults::loss(0.01)).with_link(
            NodeId(0),
            NodeId(1),
            LinkFaults::loss(0.5),
        );
        assert_eq!(plan.for_link(NodeId(0), NodeId(1)).unwrap().extra_loss, 0.5);
        assert_eq!(
            plan.for_link(NodeId(1), NodeId(0)).unwrap().extra_loss,
            0.01
        );
    }
}
