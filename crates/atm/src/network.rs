//! The cell-level network simulator: hosts, output-queued switches,
//! virtual circuits, and per-VC QoS accounting.
//!
//! Everything is clock-driven and deterministic. A caller builds a
//! topology, opens VCs along explicit paths (MITS is connection-oriented:
//! the prototype pre-established its author/database/user circuits),
//! `send`s PDUs, and `advance`s the clock, collecting [`Delivery`]
//! records. Cell transfer delay, delay variation, and loss accumulate per
//! VC — the raw material of experiments E-BB and F3.5.

use crate::aal5;
use crate::cell::{AtmCell, CELL_BITS, CELL_PAYLOAD};
use crate::fault::{FaultPlan, FaultState, FaultStats, LinkFaults};
use crate::link::{LinkProfile, LinkTelemetry, Policer, ServeKind, ServiceClass, TrafficContract};
use bytes::Bytes;
use mits_sim::{
    MetricsRegistry, OnlineStats, RatioCounter, SimDuration, SimRng, SimTime, TimeWeighted,
};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// A node (host or switch) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A virtual circuit handle (doubles as the VCI carried in cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VcId(pub u16);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct LinkId(u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node:{}", self.0)
    }
}

impl fmt::Display for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vc:{}", self.0)
    }
}

/// Errors from topology and VC operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Node id out of range.
    UnknownNode(NodeId),
    /// VC id unknown.
    UnknownVc(VcId),
    /// Two consecutive path nodes are not connected.
    NotConnected(NodeId, NodeId),
    /// A path needs at least a source and a destination.
    PathTooShort,
    /// VC number space (16-bit) exhausted.
    VcSpaceExhausted,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown {n}"),
            NetError::UnknownVc(v) => write!(f, "unknown {v}"),
            NetError::NotConnected(a, b) => write!(f, "{a} and {b} are not connected"),
            NetError::PathTooShort => write!(f, "path needs ≥ 2 nodes"),
            NetError::VcSpaceExhausted => write!(f, "no free VCIs"),
        }
    }
}

impl std::error::Error for NetError {}

/// A PDU delivered to a VC's destination host.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Arrival instant (last cell received, PDU validated).
    pub at: SimTime,
    /// The circuit it arrived on.
    pub vc: VcId,
    /// Destination node.
    pub node: NodeId,
    /// The reassembled payload.
    pub payload: Bytes,
}

/// Per-VC quality-of-service statistics.
#[derive(Debug, Clone, Default)]
pub struct VcStats {
    /// Cells offered by the source.
    pub cells_sent: u64,
    /// Cells that reached the destination.
    pub cells_delivered: u64,
    /// Cells dropped (queue overflow, line loss, policing discard).
    pub cells_dropped: u64,
    /// PDUs offered.
    pub pdus_sent: u64,
    /// PDUs delivered intact.
    pub pdus_delivered: u64,
    /// PDUs lost to cell loss / CRC failure.
    pub pdus_failed: u64,
    /// Payload bytes offered.
    pub bytes_sent: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
    /// Cell transfer delay (seconds).
    pub ctd: OnlineStats,
    /// PDU latency: send call → validated delivery (seconds).
    pub pdu_latency: OnlineStats,
}

impl VcStats {
    /// Cell loss ratio.
    pub fn clr(&self) -> f64 {
        if self.cells_sent == 0 {
            0.0
        } else {
            self.cells_dropped as f64 / self.cells_sent as f64
        }
    }

    /// Cell delay variation (std dev of CTD, seconds).
    pub fn cdv(&self) -> f64 {
        self.ctd.std_dev()
    }
}

struct LinkState {
    to: NodeId,
    profile: LinkProfile,
    queues: Vec<TxQueue>,
    busy: bool,
    utilization: TimeWeighted,
    /// Injected faults from the network's [`FaultPlan`], if any.
    faults: Option<LinkFaults>,
    fault_state: FaultState,
    /// Highest service-class priority (lowest [`ServiceClass::priority`]
    /// value) of any VC routed over this link. A cell train may only
    /// occupy the transmitter when no strictly-higher-priority VC could
    /// enqueue a cell mid-run — the per-cell scheduler re-arbitrates
    /// priorities at every cell boundary, and the train must never be
    /// able to diverge from that.
    top_priority: usize,
    /// Per-hop weathermap: windowed serve-mode samples, recorded only at
    /// the run/cell boundaries the simulator already visits. Purely
    /// observational — no RNG draws, no events — so it cannot perturb
    /// the digest.
    telemetry: LinkTelemetry,
}

#[derive(Clone)]
struct Flying {
    cell: AtmCell,
    born: SimTime,
    send_call: SimTime,
}

/// Minimum run length worth batching: below this the train's own events
/// cost as much as the per-cell ones (acks and control PDUs stay on the
/// exact per-cell path for free).
const TRAIN_MIN_CELLS: usize = 4;

/// A whole-PDU cell run on the fast path: one queue entry / timer event
/// per hop instead of one `Flying` and two timer events per cell. The
/// run's cells are never materialized unless the train has to fall back
/// to per-cell dispatch (contention, fault window, realized line loss).
struct Train {
    vci: u16,
    pdu_seq: u64,
    run: aal5::RunImage,
    born: SimTime,
    send_call: SimTime,
    /// Arrival spacing of consecutive cells at the current hop:
    /// [`SimDuration::ZERO`] at the source (every cell is queued), the
    /// upstream cell time downstream.
    spacing: SimDuration,
    /// Arrival instant of the run's first cell at the current hop.
    head_at: SimTime,
}

impl Train {
    /// Materialize cell `k` exactly as [`aal5::cells_from_run`] would —
    /// the fallback paths must produce bit-identical cells to the ones
    /// the per-cell engine would have carried.
    fn cell(&self, k: usize) -> AtmCell {
        AtmCell::new(
            0,
            self.vci,
            self.pdu_seq,
            k as u32,
            k == self.run.ncells - 1,
        )
        .with_payload_view(
            self.run
                .payload
                .slice(k * CELL_PAYLOAD..(k + 1) * CELL_PAYLOAD),
        )
    }
}

/// One queued transmission: a single cell or a whole-PDU train.
enum QueuedTx {
    Cell(Flying),
    Train(Train),
}

/// A per-class output queue that counts occupancy in *cells* (a train
/// weighs its full run) so congestion thresholds, tail-drop capacity and
/// the drop ledger behave exactly like the per-cell `BoundedQueue` did.
struct TxQueue {
    items: VecDeque<QueuedTx>,
    len_cells: usize,
    capacity: usize,
    drops: RatioCounter,
    high_water: usize,
}

impl TxQueue {
    fn new(capacity: usize) -> Self {
        TxQueue {
            items: VecDeque::new(),
            len_cells: 0,
            capacity,
            drops: RatioCounter::default(),
            high_water: 0,
        }
    }

    /// Offer one cell; bounces it back (tail drop) when full.
    fn offer_cell(&mut self, f: Flying) -> Option<Flying> {
        if self.len_cells >= self.capacity {
            self.drops.record(true);
            return Some(f);
        }
        self.drops.record(false);
        self.items.push_back(QueuedTx::Cell(f));
        self.len_cells += 1;
        self.high_water = self.high_water.max(self.len_cells);
        None
    }

    /// Offer a whole train; the caller has already checked the run fits.
    fn offer_train(&mut self, t: Train) {
        let n = t.run.ncells;
        debug_assert!(self.len_cells + n <= self.capacity, "train overflows queue");
        // n accepted arrivals on the ledger, exactly as n cell offers.
        self.drops.total += n as u64;
        self.len_cells += n;
        self.high_water = self.high_water.max(self.len_cells);
        self.items.push_back(QueuedTx::Train(t));
    }

    /// Ledger a run that passed straight through to the transmitter
    /// without queueing (the per-cell path would have recorded n
    /// accepted arrivals and briefly held one cell).
    fn note_passthrough(&mut self, n: usize) {
        self.drops.total += n as u64;
        self.high_water = self.high_water.max(1);
    }

    fn take(&mut self) -> Option<QueuedTx> {
        let e = self.items.pop_front()?;
        self.len_cells -= match &e {
            QueuedTx::Cell(_) => 1,
            QueuedTx::Train(t) => t.run.ncells,
        };
        Some(e)
    }

    /// Return a cell to the front (train expansion); occupancy was
    /// already accounted when its train was taken.
    fn push_front_cell(&mut self, f: Flying) {
        self.items.push_front(QueuedTx::Cell(f));
        self.len_cells += 1;
    }

    fn peek(&self) -> Option<&QueuedTx> {
        self.items.front()
    }

    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// What the cell-train fast path did — exposed for tests, benches and
/// the `net.train.*` registry counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrainStats {
    /// Runs served analytically (counted per hop).
    pub runs: u64,
    /// Cells those runs carried without per-cell events.
    pub cells_batched: u64,
    /// PDUs that never formed a train (short run, policer tag, fault
    /// plan with RNG-coupled faults, or `force_per_cell`).
    pub per_cell_pdus: u64,
    /// Trains expanded to per-cell arrivals at a contended or
    /// rate-mismatched hop.
    pub expanded_contention: u64,
    /// Trains that reached a busy but otherwise clear hop and were
    /// parked whole in the egress queue instead of expanding (served
    /// analytically when the transmitter frees).
    pub parked: u64,
    /// Trains expanded because a link-down window overlapped the run's
    /// serialization window.
    pub expanded_fault_window: u64,
    /// Runs whose line-noise draw actually hit, shipping survivors
    /// per-cell.
    pub line_loss_fallbacks: u64,
}

struct NodeState {
    name: String,
    is_switch: bool,
    /// Route table indexed by VCI (VCIs are allocated densely from 1).
    routes: Vec<u32>,
}

/// Sentinel in a node's route table: no route for this VCI.
const NO_ROUTE: u32 = u32::MAX;

impl NodeState {
    fn route(&self, vc: VcId) -> Option<LinkId> {
        match self.routes.get(vc.0 as usize) {
            Some(&l) if l != NO_ROUTE => Some(LinkId(l)),
            _ => None,
        }
    }

    fn set_route(&mut self, vc: VcId, link: LinkId) {
        let i = vc.0 as usize;
        if self.routes.len() <= i {
            self.routes.resize(i + 1, NO_ROUTE);
        }
        self.routes[i] = link.0;
    }
}

struct VcState {
    class: ServiceClass,
    first_link: LinkId,
    dst: NodeId,
    policer: Option<Policer>,
    next_pdu_seq: u64,
    rx: Vec<Flying>,
    /// PDU sequence numbers already declared failed (first cell drop
    /// fails the whole AAL5 PDU; later drops of the same PDU don't
    /// double-count).
    failed_pdus: std::collections::HashSet<u64>,
    stats: VcStats,
}

impl VcState {
    /// Record a cell drop; marks the owning PDU failed exactly once.
    fn drop_cell(&mut self, pdu_seq: u64) {
        self.stats.cells_dropped += 1;
        if self.failed_pdus.insert(pdu_seq) {
            self.stats.pdus_failed += 1;
        }
    }
}

#[derive(PartialEq, Eq)]
enum TimerKind {
    /// Transmitter on `link` finished serializing; carries the cell.
    TxDone(u32, u32),
    /// Cell arrives at the far end of `link`.
    Arrive(u32, u32),
    /// Transmitter on `link` finished serializing a whole train; if the
    /// second field is a stashed train id (not `u32::MAX`), the run is
    /// host-bound and its delivery is scheduled from here — the same
    /// wall instant the per-cell path schedules the last cell's arrival
    /// from its `tx_done`, so heap sequence numbers (the tie-break for
    /// simultaneous events) allocate in baseline order.
    TrainTxDone(u32, u32),
    /// Fires one cell-time before a train's `TrainTxDone` — the instant
    /// the per-cell path would *start* serving the run's last cell and
    /// allocate its `TxDone`. Exists only to allocate `TrainTxDone`'s
    /// sequence number at that baseline wall time; scheduling it at
    /// serve start would give the completion an earlier sequence than
    /// any same-instant arrival, inverting contention tie-breaks.
    TrainWind(u32, u32),
    /// Fires when a train's head cell finishes serializing (`s + ct`) —
    /// the wall instant the per-cell path allocates the head's `Arrive`
    /// inside `tx_done` — and schedules `TrainHead` one propagation
    /// delay later.
    TrainHeadWind(u32, u32),
    /// A train's head cell arrives at the switch at the far end of
    /// `link`; the train either re-serializes onto the next hop or
    /// expands to per-cell arrivals there.
    TrainHead(u32, u32),
    /// A train's last cell arrives at the destination host of `link`;
    /// the whole run is accounted and reassembled at once.
    TrainDeliver(u32, u32),
}

struct Timer {
    at: SimTime,
    seq: u64,
    kind: TimerKind,
}

impl PartialEq for Timer {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Timer {}
impl Ord for Timer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Recycled allocation capacity harvested from a retired [`AtmNetwork`].
///
/// A campus worker retires thousands of short-lived per-student networks;
/// rebuilding each one from empty `Vec`s re-pays every growth
/// reallocation of the timer heap, the in-flight cell slab, the delivery
/// buffer, the VC/route tables, and the topology vectors. `NetScratch`
/// carries those containers — emptied of contents but keeping their
/// capacity — from [`AtmNetwork::into_scratch`] into the next
/// [`AtmNetwork::with_scratch`]. A recycled network is observably
/// identical to a fresh one: every container is cleared, clocks reset,
/// and the RNG streams are re-seeded in place from the new seed.
#[derive(Default)]
pub struct NetScratch {
    nodes: Vec<NodeState>,
    links: Vec<LinkState>,
    link_index: HashMap<(NodeId, NodeId), LinkId>,
    vcs: Vec<VcState>,
    timers: BinaryHeap<Timer>,
    in_flight: Vec<Option<Flying>>,
    free_flights: Vec<u32>,
    deliveries: Vec<Delivery>,
    trains: Vec<Option<Train>>,
    free_trains: Vec<u32>,
    cell_scratch: Vec<AtmCell>,
    /// Retired PDU segmentation buffers, ready for
    /// [`aal5::segment_run_pooled`] to rewrite in place. Buffers are
    /// fully overwritten before reuse, so recycling is observably
    /// identical to fresh allocation.
    pdu_pool: Vec<Arc<[u8]>>,
}

/// The ATM network simulator.
pub struct AtmNetwork {
    nodes: Vec<NodeState>,
    links: Vec<LinkState>,
    link_index: HashMap<(NodeId, NodeId), LinkId>,
    /// VC states indexed by `vci - 1` (VCIs are allocated densely from 1).
    vcs: Vec<VcState>,
    next_vci: u16,
    timers: BinaryHeap<Timer>,
    timer_seq: u64,
    /// Slab of cells in flight (serializing or propagating). A slot is
    /// claimed by exactly one pending timer, so ids never alias.
    in_flight: Vec<Option<Flying>>,
    free_flights: Vec<u32>,
    now: SimTime,
    rng: SimRng,
    deliveries: Vec<Delivery>,
    fault_plan: FaultPlan,
    /// Dedicated RNG stream for fault injection. Kept separate from the
    /// line-noise RNG so an empty plan leaves the base simulation
    /// bit-identical to a network without fault injection.
    fault_rng: SimRng,
    fault_stats: FaultStats,
    /// Slab of trains in flight, claimed by exactly one pending timer.
    trains: Vec<Option<Train>>,
    free_trains: Vec<u32>,
    /// Debug switch: disable the train fast path entirely (the
    /// equivalence witness for the batched scheduler).
    per_cell_only: bool,
    /// Whether the installed fault plan is compatible with analytic
    /// serialization (down-windows only — no RNG-coupled loss, burst or
    /// jitter whose draw order a train would perturb).
    plan_allows_trains: bool,
    train_stats: TrainStats,
    /// Reusable cell buffer for per-cell fallback segmentation.
    cell_scratch: Vec<AtmCell>,
    /// Recycled PDU segmentation buffers (see [`NetScratch::pdu_pool`]).
    pdu_pool: Vec<Arc<[u8]>>,
}

impl AtmNetwork {
    /// An empty network; `seed` drives the loss process.
    pub fn new(seed: u64) -> Self {
        Self::with_scratch(seed, NetScratch::default())
    }

    /// An empty network reusing the allocation capacity of a retired
    /// one. Behaviour is bit-identical to [`AtmNetwork::new`] — only
    /// the containers' reserved capacity differs.
    pub fn with_scratch(seed: u64, scratch: NetScratch) -> Self {
        AtmNetwork {
            nodes: scratch.nodes,
            links: scratch.links,
            link_index: scratch.link_index,
            vcs: scratch.vcs,
            next_vci: 1,
            timers: scratch.timers,
            timer_seq: 0,
            in_flight: scratch.in_flight,
            free_flights: scratch.free_flights,
            now: SimTime::ZERO,
            rng: SimRng::seed_from_u64(seed ^ 0xA7A7_17D0),
            deliveries: scratch.deliveries,
            fault_plan: FaultPlan::none(),
            fault_rng: SimRng::seed_from_u64(seed ^ 0xFA17_0BAD),
            fault_stats: FaultStats::default(),
            trains: scratch.trains,
            free_trains: scratch.free_trains,
            per_cell_only: false,
            plan_allows_trains: true,
            train_stats: TrainStats::default(),
            cell_scratch: scratch.cell_scratch,
            pdu_pool: scratch.pdu_pool,
        }
    }

    /// Retire this network and harvest its containers' capacity for the
    /// next one (see [`NetScratch`]). All contents are dropped here; only
    /// empty-but-reserved allocations survive.
    pub fn into_scratch(self) -> NetScratch {
        let AtmNetwork {
            mut nodes,
            mut links,
            mut link_index,
            mut vcs,
            mut timers,
            mut in_flight,
            mut free_flights,
            mut deliveries,
            mut trains,
            mut free_trains,
            mut cell_scratch,
            pdu_pool,
            ..
        } = self;
        nodes.clear();
        links.clear();
        link_index.clear();
        vcs.clear();
        timers.clear();
        in_flight.clear();
        free_flights.clear();
        deliveries.clear();
        trains.clear();
        free_trains.clear();
        cell_scratch.clear();
        NetScratch {
            nodes,
            links,
            link_index,
            vcs,
            timers,
            in_flight,
            free_flights,
            deliveries,
            trains,
            free_trains,
            cell_scratch,
            // Kept as-is: retired buffers carry no observable state.
            pdu_pool,
        }
    }

    /// Install (or replace) the fault plan. Applies to links already
    /// connected and to links connected afterwards.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
        // Trains consume line-noise RNG draws per cell (count-preserving)
        // but cannot reproduce the fault RNG's per-cell draw order, so
        // any plan with RNG-coupled faults (extra loss, bursts, jitter)
        // pins the whole network to the exact per-cell path. Down-only
        // plans are fine: trains expand inside their windows.
        self.plan_allows_trains = self.fault_plan.is_down_only();
        for (&(from, to), id) in &self.link_index {
            self.links[id.0 as usize].faults = self.fault_plan.for_link(from, to).cloned();
        }
    }

    /// Disable the cell-train fast path: every PDU rides the exact
    /// per-cell scheduler. The batched path must be observably
    /// indistinguishable from this mode — it exists as the equivalence
    /// witness for tests and as a forensics escape hatch.
    pub fn force_per_cell(&mut self) {
        self.per_cell_only = true;
    }

    /// What the cell-train fast path has done so far.
    pub fn train_stats(&self) -> TrainStats {
        self.train_stats
    }

    /// The installed fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// What fault injection has done so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Current network clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Add an end host.
    pub fn add_host(&mut self, name: &str) -> NodeId {
        self.add_node(name, false)
    }

    /// Add a switch.
    pub fn add_switch(&mut self, name: &str) -> NodeId {
        self.add_node(name, true)
    }

    fn add_node(&mut self, name: &str, is_switch: bool) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeState {
            name: name.to_string(),
            is_switch,
            routes: Vec::new(),
        });
        id
    }

    /// Connect two nodes with a bidirectional link pair of this profile.
    pub fn connect(&mut self, a: NodeId, b: NodeId, profile: LinkProfile) {
        assert!((a.0 as usize) < self.nodes.len(), "unknown node {a}");
        assert!((b.0 as usize) < self.nodes.len(), "unknown node {b}");
        for (from, to) in [(a, b), (b, a)] {
            let id = LinkId(self.links.len() as u32);
            // Host egress buffers model host memory (a sending application
            // is backpressured, not dropped); only switch ports use the
            // profile's shallow cell buffers.
            let capacity = if self.nodes[from.0 as usize].is_switch {
                profile.queue_cells
            } else {
                profile.queue_cells.max(1 << 20)
            };
            let queues = (0..ServiceClass::LEVELS)
                .map(|_| TxQueue::new(capacity))
                .collect();
            self.links.push(LinkState {
                to,
                profile,
                queues,
                busy: false,
                utilization: TimeWeighted::new(),
                faults: self.fault_plan.for_link(from, to).cloned(),
                fault_state: FaultState::default(),
                top_priority: usize::MAX,
                telemetry: LinkTelemetry::default(),
            });
            self.link_index.insert((from, to), id);
        }
    }

    /// Open a unidirectional VC along `path` (source first, destination
    /// last), optionally policed by `contract`.
    pub fn open_vc(
        &mut self,
        path: &[NodeId],
        class: ServiceClass,
        contract: Option<TrafficContract>,
    ) -> Result<VcId, NetError> {
        if path.len() < 2 {
            return Err(NetError::PathTooShort);
        }
        for n in path {
            if (n.0 as usize) >= self.nodes.len() {
                return Err(NetError::UnknownNode(*n));
            }
        }
        let mut hop_links = Vec::with_capacity(path.len() - 1);
        for pair in path.windows(2) {
            let link = self
                .link_index
                .get(&(pair[0], pair[1]))
                .copied()
                .ok_or(NetError::NotConnected(pair[0], pair[1]))?;
            hop_links.push((pair[0], link));
        }
        if self.next_vci == u16::MAX {
            return Err(NetError::VcSpaceExhausted);
        }
        let vc = VcId(self.next_vci);
        self.next_vci += 1;
        for (node, link) in &hop_links {
            self.nodes[node.0 as usize].set_route(vc, *link);
            let l = &mut self.links[link.0 as usize];
            l.top_priority = l.top_priority.min(class.priority());
        }
        self.vcs.push(VcState {
            class,
            first_link: hop_links[0].1,
            dst: *path.last().expect("non-empty"),
            policer: contract.map(Policer::new),
            next_pdu_seq: 0,
            rx: Vec::new(),
            failed_pdus: std::collections::HashSet::new(),
            stats: VcStats::default(),
        });
        Ok(vc)
    }

    fn vc_mut(&mut self, vc: VcId) -> Option<&mut VcState> {
        self.vcs.get_mut((vc.0 as usize).wrapping_sub(1))
    }

    /// Queue a PDU on a VC at the current clock. Returns the PDU sequence
    /// number.
    pub fn send(&mut self, vc: VcId, payload: Bytes) -> Result<u64, NetError> {
        let now = self.now;
        let state = self.vc_mut(vc).ok_or(NetError::UnknownVc(vc))?;
        let seq = state.next_pdu_seq;
        state.next_pdu_seq += 1;
        state.stats.pdus_sent += 1;
        state.stats.bytes_sent += payload.len() as u64;
        let ncells = aal5::cells_for(payload.len());
        state.stats.cells_sent += ncells as u64;
        // Police at the source UNI: non-conforming cells are tagged
        // CLP=1. Tags are collected per cell index so the train decision
        // can be made before any cell is materialized.
        let mut tags: Option<Vec<bool>> = None;
        if let Some(policer) = &mut state.policer {
            let mut v = vec![false; ncells];
            let mut any = false;
            for t in v.iter_mut() {
                if !policer.conforms(now) {
                    *t = true;
                    any = true;
                }
            }
            if any {
                tags = Some(v);
            }
        }
        let class = state.class;
        let link = state.first_link;
        let run = aal5::segment_run_pooled(&payload, &mut self.pdu_pool);
        let link_ref = &self.links[link.0 as usize];
        let queue = &link_ref.queues[class.priority()];
        let can_train = !self.per_cell_only
            && self.plan_allows_trains
            && tags.is_none()
            && ncells >= TRAIN_MIN_CELLS
            && link_ref.top_priority >= class.priority()
            && queue.len_cells + ncells <= queue.capacity;
        if can_train {
            let train = Train {
                vci: vc.0,
                pdu_seq: seq,
                run,
                born: now,
                send_call: now,
                spacing: SimDuration::ZERO,
                head_at: now,
            };
            let link_mut = &mut self.links[link.0 as usize];
            link_mut.queues[class.priority()].offer_train(train);
            if !link_mut.busy {
                self.start_tx(link);
            }
            return Ok(seq);
        }
        // Exact per-cell path: short runs, tagged cells, RNG-coupled
        // fault plans, or forced fallback.
        self.train_stats.per_cell_pdus += 1;
        let mut cells = std::mem::take(&mut self.cell_scratch);
        aal5::cells_from_run(0, vc.0, seq, &run, &mut cells);
        if let Some(tags) = tags {
            for (c, &t) in cells.iter_mut().zip(&tags) {
                c.clp = t;
            }
        }
        for cell in cells.drain(..) {
            let flying = Flying {
                cell,
                born: now,
                send_call: now,
            };
            self.enqueue_cell(link, class, flying);
        }
        self.cell_scratch = cells;
        Ok(seq)
    }

    /// Advance the clock to `to`, returning all PDUs delivered in the
    /// interval.
    pub fn advance(&mut self, to: SimTime) -> Vec<Delivery> {
        assert!(to >= self.now, "network clock cannot go backwards");
        while let Some(t) = self.timers.peek() {
            if t.at > to {
                break;
            }
            let timer = self.timers.pop().expect("peeked");
            self.now = timer.at;
            match timer.kind {
                TimerKind::TxDone(link, flight) => self.tx_done(LinkId(link), flight),
                TimerKind::Arrive(link, flight) => self.arrive(LinkId(link), flight),
                TimerKind::TrainTxDone(link, tid) => self.train_tx_done(LinkId(link), tid),
                TimerKind::TrainWind(link, tid) => self.train_wind(LinkId(link), tid),
                TimerKind::TrainHeadWind(link, tid) => self.train_head_wind(LinkId(link), tid),
                TimerKind::TrainHead(link, tid) => self.train_head(LinkId(link), tid),
                TimerKind::TrainDeliver(link, tid) => self.train_deliver(LinkId(link), tid),
            }
        }
        self.now = to;
        std::mem::take(&mut self.deliveries)
    }

    /// Advance the clock toward `to`, stopping early the moment one or
    /// more PDUs are delivered — the clock then rests at the delivery
    /// instant (every event of that same instant is processed first).
    /// This lets a driver react to each delivery at its exact time
    /// without being woken for every intervening cell event. When
    /// nothing is delivered the clock lands on `to`, exactly like
    /// [`AtmNetwork::advance`].
    pub fn advance_until_delivery(&mut self, to: SimTime) -> Vec<Delivery> {
        assert!(to >= self.now, "network clock cannot go backwards");
        while let Some(t) = self.timers.peek() {
            if t.at > to {
                break;
            }
            if !self.deliveries.is_empty() && t.at > self.now {
                // Deliveries landed at `now`; later events keep.
                return std::mem::take(&mut self.deliveries);
            }
            let timer = self.timers.pop().expect("peeked");
            self.now = timer.at;
            match timer.kind {
                TimerKind::TxDone(link, flight) => self.tx_done(LinkId(link), flight),
                TimerKind::Arrive(link, flight) => self.arrive(LinkId(link), flight),
                TimerKind::TrainTxDone(link, tid) => self.train_tx_done(LinkId(link), tid),
                TimerKind::TrainWind(link, tid) => self.train_wind(LinkId(link), tid),
                TimerKind::TrainHeadWind(link, tid) => self.train_head_wind(LinkId(link), tid),
                TimerKind::TrainHead(link, tid) => self.train_head(LinkId(link), tid),
                TimerKind::TrainDeliver(link, tid) => self.train_deliver(LinkId(link), tid),
            }
        }
        if self.deliveries.is_empty() {
            self.now = to;
        }
        std::mem::take(&mut self.deliveries)
    }

    /// True when no cells are queued or in flight.
    pub fn idle(&self) -> bool {
        self.timers.is_empty()
    }

    /// Instant of the next internal event, if any — lets a driver advance
    /// straight to it instead of polling in fixed steps.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.timers.peek().map(|t| t.at)
    }

    /// Run until the network drains or `deadline` passes; returns
    /// deliveries.
    pub fn drain(&mut self, deadline: SimTime) -> Vec<Delivery> {
        let mut out = Vec::new();
        while !self.idle() && self.now < deadline {
            let next = self
                .timers
                .peek()
                .map(|t| t.at)
                .unwrap_or(deadline)
                .min(deadline);
            out.extend(self.advance(next));
        }
        out
    }

    /// QoS statistics for a VC.
    pub fn vc_stats(&self, vc: VcId) -> Option<&VcStats> {
        self.vcs
            .get((vc.0 as usize).wrapping_sub(1))
            .map(|s| &s.stats)
    }

    /// Mean utilization of the `a`→`b` link over `[0, now]`.
    pub fn link_utilization(&self, a: NodeId, b: NodeId) -> Option<f64> {
        let id = self.link_index.get(&(a, b))?;
        Some(self.links[id.0 as usize].utilization.mean_until(self.now))
    }

    /// Queue drop counters of the `a`→`b` link, summed over classes.
    pub fn link_drops(&self, a: NodeId, b: NodeId) -> Option<u64> {
        let id = self.link_index.get(&(a, b))?;
        Some(
            self.links[id.0 as usize]
                .queues
                .iter()
                .map(|q| q.drops.hits)
                .sum(),
        )
    }

    /// Name the node was added under.
    pub fn node_name(&self, id: NodeId) -> Option<&str> {
        self.nodes.get(id.0 as usize).map(|n| n.name.as_str())
    }

    /// Snapshot network statistics into `reg` under the `atm.` prefix:
    /// per-link utilization and queue drops (labelled by node names, in
    /// link id order), circuit aggregates summed over every VC (cell /
    /// PDU / byte counts, AAL5 reassembly failures, cell transfer delay
    /// and its variation), and the fault-injection tallies.
    pub fn export_metrics(&self, reg: &MetricsRegistry) {
        let mut labels: Vec<Option<(NodeId, NodeId)>> = vec![None; self.links.len()];
        for (&(from, to), id) in &self.link_index {
            labels[id.0 as usize] = Some((from, to));
        }
        for (i, link) in self.links.iter().enumerate() {
            let Some((from, to)) = labels[i] else {
                continue;
            };
            let p = format!(
                "atm.link.{}->{}",
                self.nodes[from.0 as usize].name, self.nodes[to.0 as usize].name
            );
            reg.gauge_set(
                &format!("{p}.utilization"),
                link.utilization.mean_until(self.now),
            );
            reg.counter_set(
                &format!("{p}.drops"),
                link.queues.iter().map(|q| q.drops.hits).sum(),
            );
            reg.counter_set(&format!("{p}.cells_trained"), link.telemetry.total_trained);
            reg.counter_set(
                &format!("{p}.cells_per_cell"),
                link.telemetry.total_per_cell,
            );
            reg.counter_set(&format!("{p}.cells_parked"), link.telemetry.total_parked);
        }
        let mut agg = VcStats::default();
        let mut ctd = OnlineStats::new();
        let mut pdu_latency = OnlineStats::new();
        for vc in &self.vcs {
            agg.cells_sent += vc.stats.cells_sent;
            agg.cells_delivered += vc.stats.cells_delivered;
            agg.cells_dropped += vc.stats.cells_dropped;
            agg.pdus_sent += vc.stats.pdus_sent;
            agg.pdus_delivered += vc.stats.pdus_delivered;
            agg.pdus_failed += vc.stats.pdus_failed;
            agg.bytes_sent += vc.stats.bytes_sent;
            agg.bytes_delivered += vc.stats.bytes_delivered;
            ctd.merge(&vc.stats.ctd);
            pdu_latency.merge(&vc.stats.pdu_latency);
        }
        reg.counter_set("atm.vc.cells_sent", agg.cells_sent);
        reg.counter_set("atm.vc.cells_delivered", agg.cells_delivered);
        reg.counter_set("atm.vc.cells_dropped", agg.cells_dropped);
        reg.counter_set("atm.vc.pdus_sent", agg.pdus_sent);
        reg.counter_set("atm.vc.pdus_delivered", agg.pdus_delivered);
        reg.counter_set("atm.vc.aal5_reassembly_failures", agg.pdus_failed);
        reg.counter_set("atm.vc.bytes_sent", agg.bytes_sent);
        reg.counter_set("atm.vc.bytes_delivered", agg.bytes_delivered);
        reg.gauge_set("atm.vc.ctd_mean_s", ctd.mean());
        reg.gauge_set("atm.vc.cdv_s", ctd.std_dev());
        reg.gauge_set("atm.vc.pdu_latency_mean_s", pdu_latency.mean());
        reg.counter_set("atm.faults.random_losses", self.fault_stats.random_losses);
        reg.counter_set("atm.faults.burst_losses", self.fault_stats.burst_losses);
        reg.counter_set(
            "atm.faults.downtime_losses",
            self.fault_stats.downtime_losses,
        );
        reg.counter_set("atm.faults.jittered", self.fault_stats.jittered);
        reg.counter_set("atm.faults.faulted_cells", self.fault_stats.faulted_cells);
        reg.counter_set("atm.faults.total_losses", self.fault_stats.total_losses());
        reg.counter_set("net.train.runs", self.train_stats.runs);
        reg.counter_set("net.train.cells_batched", self.train_stats.cells_batched);
        reg.counter_set("net.train.per_cell_pdus", self.train_stats.per_cell_pdus);
        reg.counter_set(
            "net.train.expanded_contention",
            self.train_stats.expanded_contention,
        );
        reg.counter_set("net.train.parked", self.train_stats.parked);
        reg.counter_set(
            "net.train.expanded_fault_window",
            self.train_stats.expanded_fault_window,
        );
        reg.counter_set(
            "net.train.line_loss_fallbacks",
            self.train_stats.line_loss_fallbacks,
        );
    }

    /// Directed links that carried at least one cell this run, as
    /// `(from, to)` node-name pairs in link-id order. For a single
    /// session's network this *is* the session's route through the
    /// topology.
    pub fn active_links(&self) -> Vec<(String, String)> {
        let mut labels: Vec<Option<(NodeId, NodeId)>> = vec![None; self.links.len()];
        for (&(from, to), id) in &self.link_index {
            labels[id.0 as usize] = Some((from, to));
        }
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.telemetry.total_cells() > 0)
            .filter_map(|(i, _)| labels[i])
            .map(|(from, to)| {
                (
                    self.nodes[from.0 as usize].name.clone(),
                    self.nodes[to.0 as usize].name.clone(),
                )
            })
            .collect()
    }

    /// Render the per-hop weathermap as one versioned JSON object
    /// (`{"t":"weathermap","v":1,...}`, byte-stable): every link that
    /// carried traffic, its windowed samples, and per-VC QoS
    /// aggregates. Node names are code-controlled identifiers, emitted
    /// verbatim.
    pub fn weathermap_json(&self) -> String {
        use std::fmt::Write as _;
        let mut labels: Vec<Option<(NodeId, NodeId)>> = vec![None; self.links.len()];
        for (&(from, to), id) in &self.link_index {
            labels[id.0 as usize] = Some((from, to));
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"t\":\"weathermap\",\"v\":1,\"window_us\":{},\"links\":[",
            crate::link::TELEMETRY_WINDOW_US
        );
        let mut first = true;
        for (i, link) in self.links.iter().enumerate() {
            if link.telemetry.total_cells() == 0 {
                continue;
            }
            let Some((from, to)) = labels[i] else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            let t = &link.telemetry;
            let _ = write!(
                out,
                "{{\"from\":\"{}\",\"to\":\"{}\",\"cells_trained\":{},\"cells_per_cell\":{},\
                 \"cells_parked\":{},\"dropped_windows\":{},\"windows\":[",
                self.nodes[from.0 as usize].name,
                self.nodes[to.0 as usize].name,
                t.total_trained,
                t.total_per_cell,
                t.total_parked,
                t.dropped_windows
            );
            for (j, w) in t.windows().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"start_us\":{},\"queue_high_water\":{},\"busy_us\":{},\
                     \"cells_trained\":{},\"cells_per_cell\":{},\"cells_parked\":{},\
                     \"faulted\":{}}}",
                    w.window * crate::link::TELEMETRY_WINDOW_US,
                    w.queue_high_water,
                    w.busy_us,
                    w.cells_trained,
                    w.cells_per_cell,
                    w.cells_parked,
                    w.faulted
                );
            }
            out.push_str("]}");
        }
        out.push_str("],\"vcs\":[");
        for (i, vc) in self.vcs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = &vc.stats;
            let _ = write!(
                out,
                "{{\"vci\":{},\"cells_sent\":{},\"cells_delivered\":{},\"cells_dropped\":{},\
                 \"pdus_delivered\":{},\"pdus_failed\":{}}}",
                i + 1,
                s.cells_sent,
                s.cells_delivered,
                s.cells_dropped,
                s.pdus_delivered,
                s.pdus_failed
            );
        }
        out.push_str("]}");
        out
    }

    // ---- internals ----

    fn schedule(&mut self, at: SimTime, kind: TimerKind) {
        let seq = self.timer_seq;
        self.timer_seq += 1;
        self.timers.push(Timer { at, seq, kind });
    }

    fn stash(&mut self, f: Flying) -> u32 {
        match self.free_flights.pop() {
            Some(id) => {
                self.in_flight[id as usize] = Some(f);
                id
            }
            None => {
                self.in_flight.push(Some(f));
                (self.in_flight.len() - 1) as u32
            }
        }
    }

    fn unstash(&mut self, id: u32) -> Option<Flying> {
        let f = self.in_flight.get_mut(id as usize)?.take();
        if f.is_some() {
            self.free_flights.push(id);
        }
        f
    }

    fn enqueue_cell(&mut self, link_id: LinkId, class: ServiceClass, flying: Flying) {
        let vc = VcId(flying.cell.vci);
        let link = &mut self.links[link_id.0 as usize];
        let queue = &mut link.queues[class.priority()];
        // Early discard of tagged cells under congestion (90 % occupancy).
        let congested = queue.len_cells * 10 >= queue.capacity * 9;
        if flying.cell.clp && congested {
            let seq = flying.cell.pdu_seq;
            if let Some(s) = self.vc_mut(vc) {
                s.drop_cell(seq);
            }
            return;
        }
        if let Some(bounced) = queue.offer_cell(flying) {
            // Tail drop.
            let seq = bounced.cell.pdu_seq;
            if let Some(s) = self.vc_mut(vc) {
                s.drop_cell(seq);
            }
            return;
        }
        if !link.busy {
            self.start_tx(link_id);
        }
    }

    /// Begin serializing the highest-priority queued entry, if any. A
    /// train at the head of its queue is served analytically when the
    /// link is fault-quiet for the run's whole serialization window;
    /// otherwise it is expanded back into per-cell entries in place and
    /// the loop retries, now seeing a plain cell.
    fn start_tx(&mut self, link_id: LinkId) {
        let now = self.now;
        let li = link_id.0 as usize;
        loop {
            let link = &mut self.links[li];
            let Some(qi) = link.queues.iter().position(|q| !q.is_empty()) else {
                link.busy = false;
                link.utilization.set(now, 0.0);
                return;
            };
            let needs_expand = matches!(
                link.queues[qi].peek(),
                Some(QueuedTx::Train(t)) if !Self::link_clear_for_train(link, now, t.run.ncells)
            );
            if needs_expand {
                // Down window overlaps the run: expand in place and
                // retry, so faults land per cell exactly as the slow
                // path would land them.
                self.train_stats.expanded_fault_window += 1;
                let q = &mut self.links[li].queues[qi];
                let Some(QueuedTx::Train(t)) = q.take() else {
                    unreachable!("peeked a train");
                };
                Self::expand_train_into_queue(q, t);
                continue;
            }
            match link.queues[qi].take() {
                Some(QueuedTx::Cell(flying)) => {
                    link.busy = true;
                    link.utilization.set(now, 1.0);
                    let cell_time =
                        mits_sim::SimDuration::for_bits(CELL_BITS, link.profile.rate_bps);
                    let queued = link.queues.iter().map(|q| q.len_cells as u64).sum();
                    let faulted = link.faults.as_ref().is_some_and(|f| f.is_down(now));
                    link.telemetry
                        .note(now, ServeKind::PerCell, 1, queued, cell_time, faulted);
                    let flight = self.stash(flying);
                    self.schedule(now + cell_time, TimerKind::TxDone(link_id.0, flight));
                }
                Some(QueuedTx::Train(t)) => self.serve_train(link_id, t),
                None => unreachable!("queue was non-empty"),
            }
            return;
        }
    }

    /// Expand a train back into per-cell queue entries at the front of
    /// `q`, preserving cell order. Occupancy in cells is unchanged.
    fn expand_train_into_queue(q: &mut TxQueue, t: Train) {
        for k in (0..t.run.ncells).rev() {
            q.push_front_cell(Flying {
                cell: t.cell(k),
                born: t.born,
                send_call: t.send_call,
            });
        }
    }

    /// Whether the link is clear to serialize an `n`-cell run starting
    /// now: no down window may touch any of the run's per-cell TxDone
    /// instants `now + k·cell_time`, k = 1..=n. The check is
    /// conservative (window overlap, not instant membership) — a false
    /// negative only costs the fallback to the exact per-cell path.
    fn link_clear_for_train(link: &LinkState, now: SimTime, n: usize) -> bool {
        let Some(faults) = &link.faults else {
            return true;
        };
        let first = now + link.profile.cell_time();
        let last = now + link.profile.train_time(n as u64);
        !faults
            .down
            .iter()
            .any(|&(from, until)| from <= last && until > first)
    }

    fn stash_train(&mut self, t: Train) -> u32 {
        match self.free_trains.pop() {
            Some(id) => {
                self.trains[id as usize] = Some(t);
                id
            }
            None => {
                self.trains.push(Some(t));
                (self.trains.len() - 1) as u32
            }
        }
    }

    fn unstash_train(&mut self, id: u32) -> Option<Train> {
        let t = self.trains.get_mut(id as usize)?.take();
        if t.is_some() {
            self.free_trains.push(id);
        }
        t
    }

    /// Serialize a whole run analytically: one `TrainTxDone` for the
    /// transmitter plus one arrival event at the far end, instead of
    /// `2n` per-cell events. Per-cell observables are reproduced exactly:
    /// the utilization trace gets a sample at every cell boundary, the
    /// line-noise RNG is drawn once per cell in cell order, and a
    /// realized loss (≈ 1e-9 per draw) falls back to per-cell arrivals
    /// for the survivors.
    fn serve_train(&mut self, link_id: LinkId, train: Train) {
        let s = self.now;
        let n = train.run.ncells;
        let link = &mut self.links[link_id.0 as usize];
        link.busy = true;
        let ct = mits_sim::SimDuration::for_bits(CELL_BITS, link.profile.rate_bps);
        let ct_us = ct.as_micros();
        // The per-cell path samples utilization 1.0 at each cell's
        // start-of-serialization instant; reproduce the trace exactly
        // (TimeWeighted accumulates f64 in sample order).
        for k in 0..n as u64 {
            link.utilization
                .set(s + SimDuration::from_micros(ct_us * k), 1.0);
        }
        {
            let queued = link.queues.iter().map(|q| q.len_cells as u64).sum();
            let faulted = link.faults.as_ref().is_some_and(|f| f.is_down(s));
            let busy_for = link.profile.train_time(n as u64);
            link.telemetry
                .note(s, ServeKind::Trained, n as u64, queued, busy_for, faulted);
        }
        if link.faults.is_some() {
            // Every cell of the run crosses a faulted link (down windows
            // were excluded by `link_clear_for_train`).
            self.fault_stats.faulted_cells += n as u64;
        }
        let loss_rate = link.profile.loss_rate;
        let prop = link.profile.prop_delay;
        let to_switch = self.nodes[link.to.0 as usize].is_switch;
        let done_at = s + link.profile.train_time(n as u64);
        // One line-noise draw per cell, in cell order — the RNG stream
        // stays count- and order-identical to the per-cell path.
        let mut lost: Vec<usize> = Vec::new();
        for k in 0..n {
            if self.rng.chance(loss_rate) {
                lost.push(k);
            }
        }
        if lost.is_empty() {
            self.train_stats.runs += 1;
            self.train_stats.cells_batched += n as u64;
            let mut t = train;
            t.spacing = ct;
            t.head_at = s + ct + prop;
            let tid = self.stash_train(t);
            // Event sequence numbers are the tie-break for simultaneous
            // timers, so each train event must be *allocated* at the wall
            // instant its per-cell counterpart would be: the head arrival
            // from the head cell's tx-done (s + ct), the completion from
            // the last cell's serve start (done_at - ct), and — inside
            // `train_tx_done` — the delivery from the last cell's
            // tx-done (done_at). The wind events exist to pin those
            // allocation instants.
            if to_switch {
                self.schedule(s + ct, TimerKind::TrainHeadWind(link_id.0, tid));
                self.schedule(done_at - ct, TimerKind::TrainWind(link_id.0, u32::MAX));
            } else {
                self.schedule(done_at - ct, TimerKind::TrainWind(link_id.0, tid));
            }
            return;
        }
        self.schedule(done_at - ct, TimerKind::TrainWind(link_id.0, u32::MAX));
        // A line hit inside the run: ship survivors per cell so the PDU
        // fails exactly as it would have on the slow path.
        self.train_stats.line_loss_fallbacks += 1;
        let vc = VcId(train.vci);
        let mut lost_iter = lost.iter().copied().peekable();
        for k in 0..n {
            if lost_iter.peek() == Some(&k) {
                lost_iter.next();
                let seq = train.pdu_seq;
                if let Some(st) = self.vc_mut(vc) {
                    st.drop_cell(seq);
                }
                continue;
            }
            let flying = Flying {
                cell: train.cell(k),
                born: train.born,
                send_call: train.send_call,
            };
            let id = self.stash(flying);
            let at = s + SimDuration::from_micros(ct_us * (k as u64 + 1)) + prop;
            self.schedule(at, TimerKind::Arrive(link_id.0, id));
        }
    }

    /// One cell-time before the run completes — the instant the per-cell
    /// path would start serving the last cell: allocate the completion
    /// event's sequence number now, exactly as `start_tx` would.
    fn train_wind(&mut self, link_id: LinkId, tid: u32) {
        let ct = self.links[link_id.0 as usize].profile.cell_time();
        self.schedule(self.now + ct, TimerKind::TrainTxDone(link_id.0, tid));
    }

    /// The head cell finished serializing — the instant the per-cell
    /// path's `tx_done` would put it in flight: allocate the head
    /// arrival's sequence number now.
    fn train_head_wind(&mut self, link_id: LinkId, tid: u32) {
        let prop = self.links[link_id.0 as usize].profile.prop_delay;
        self.schedule(self.now + prop, TimerKind::TrainHead(link_id.0, tid));
    }

    /// The transmitter finished a whole run. For a host-bound run the
    /// delivery goes into flight first (mirroring the per-cell `tx_done`,
    /// which schedules the arrival before serving the next cell), then
    /// whatever queued up behind the train is served.
    fn train_tx_done(&mut self, link_id: LinkId, tid: u32) {
        if tid != u32::MAX {
            let prop = self.links[link_id.0 as usize].profile.prop_delay;
            self.schedule(self.now + prop, TimerKind::TrainDeliver(link_id.0, tid));
        }
        self.start_tx(link_id);
    }

    /// A train's head cell reaches a switch. If the next hop's
    /// transmitter is idle, its queues empty, its cell rate matches the
    /// arrival spacing, and its fault window is clear, the run
    /// re-serializes analytically (classic cut-through: each cell starts
    /// tx the instant it arrives). Otherwise the train expands into
    /// per-cell arrivals at this switch and proceeds on the exact path.
    fn train_head(&mut self, link_id: LinkId, tid: u32) {
        let Some(train) = self.unstash_train(tid) else {
            return;
        };
        let now = self.now;
        let n = train.run.ncells;
        let node_id = self.links[link_id.0 as usize].to;
        let vc = VcId(train.vci);
        let node = &self.nodes[node_id.0 as usize];
        debug_assert!(node.is_switch, "TrainHead only targets switches");
        let Some(next_link) = node.route(vc) else {
            // Misrouted: the whole run drops, cell by cell.
            let seq = train.pdu_seq;
            if let Some(s) = self.vc_mut(vc) {
                for _ in 0..n {
                    s.drop_cell(seq);
                }
            }
            return;
        };
        let class = self
            .vcs
            .get((vc.0 as usize).wrapping_sub(1))
            .map(|s| s.class)
            .unwrap_or(ServiceClass::Ubr);
        let nl = &self.links[next_link.0 as usize];
        let ct2 = mits_sim::SimDuration::for_bits(CELL_BITS, nl.profile.rate_bps);
        // Structurally clear: nothing queued ahead, no higher-priority VC
        // routed over the hop, and the egress cell rate matches the
        // arrival spacing — the run will drain head-first, back-to-back.
        let clear = nl.queues.iter().all(|q| q.is_empty())
            && nl.top_priority >= class.priority()
            && ct2 == train.spacing;
        let engageable = clear && !nl.busy && Self::link_clear_for_train(nl, now, n);
        if engageable {
            // Ledger the run's pass-through on the egress queue (the
            // per-cell path records n accepted offers there).
            self.links[next_link.0 as usize].queues[class.priority()].note_passthrough(n);
            self.serve_train(next_link, train);
            return;
        }
        if clear && nl.busy && n <= nl.queues[class.priority()].capacity {
            // Transmitter still draining (back-to-back runs meet here:
            // the previous run's completion fires at this same instant
            // or later). Park the run whole; `start_tx` serves it when
            // the link frees, at exactly the instants the per-cell path
            // would serve the queued head and its in-flight successors
            // (cell k starts at free-time + k·ct ≥ its arrival
            // now + k·spacing, since ct == spacing). Down windows are
            // re-checked at serve time, as the per-cell path would.
            self.train_stats.parked += 1;
            let nl = &mut self.links[next_link.0 as usize];
            nl.queues[class.priority()].offer_train(train);
            let queued = nl.queues.iter().map(|q| q.len_cells as u64).sum();
            let faulted = nl.faults.as_ref().is_some_and(|f| f.is_down(now));
            nl.telemetry.note(
                now,
                ServeKind::Parked,
                n as u64,
                queued,
                SimDuration::ZERO,
                faulted,
            );
            return;
        }
        // Contended / rate-mismatched hop: expand. Later cells become
        // in-flight arrivals on this link (they are still propagating);
        // the head cell enqueues right now. Arrives are scheduled before
        // the head's enqueue so same-instant events keep the per-cell
        // timer order (Arrive seq precedes the TxDone the enqueue may
        // schedule).
        self.train_stats.expanded_contention += 1;
        let sp_us = train.spacing.as_micros();
        for k in 1..n {
            let flying = Flying {
                cell: train.cell(k),
                born: train.born,
                send_call: train.send_call,
            };
            let id = self.stash(flying);
            let at = now + SimDuration::from_micros(sp_us * k as u64);
            self.schedule(at, TimerKind::Arrive(link_id.0, id));
        }
        let head = Flying {
            cell: train.cell(0),
            born: train.born,
            send_call: train.send_call,
        };
        self.enqueue_cell(next_link, class, head);
    }

    /// A train's last cell reaches the destination host: account every
    /// cell at its analytic arrival instant and validate the run image
    /// in one pass.
    fn train_deliver(&mut self, link_id: LinkId, tid: u32) {
        let Some(train) = self.unstash_train(tid) else {
            return;
        };
        let now = self.now;
        let n = train.run.ncells;
        let node_id = self.links[link_id.0 as usize].to;
        let vc = VcId(train.vci);
        let this_seq = train.pdu_seq;
        let Some(state) = self.vc_mut(vc) else {
            return;
        };
        if state.dst != node_id {
            for _ in 0..n {
                state.drop_cell(this_seq);
            }
            return;
        }
        // Stale partial PDU in the reassembly buffer (lost its end cell
        // upstream): flush on sequence change, as the per-cell first-cell
        // arrival would.
        if state.rx.first().is_some_and(|f| f.cell.pdu_seq != this_seq) {
            let stale = state.rx[0].cell.pdu_seq;
            if state.failed_pdus.insert(stale) {
                state.stats.pdus_failed += 1;
            }
            state.rx.clear();
        }
        state.stats.cells_delivered += n as u64;
        let sp_us = train.spacing.as_micros();
        for k in 0..n as u64 {
            let at = train.head_at + SimDuration::from_micros(sp_us * k);
            state.stats.ctd.record(at.since(train.born).as_secs_f64());
        }
        match aal5::reassemble_run(&train.run.payload) {
            Ok(payload) => {
                state.stats.pdus_delivered += 1;
                state.stats.bytes_delivered += payload.len() as u64;
                state
                    .stats
                    .pdu_latency
                    .record(now.since(train.send_call).as_secs_f64());
                self.deliveries.push(Delivery {
                    at: now,
                    vc,
                    node: node_id,
                    payload,
                });
            }
            Err(_) => {
                if state.failed_pdus.insert(this_seq) {
                    state.stats.pdus_failed += 1;
                }
            }
        }
    }

    fn tx_done(&mut self, link_id: LinkId, flight: u32) {
        let Some(flying) = self.unstash(flight) else {
            return;
        };
        let (loss_rate, prop) = {
            let link = &self.links[link_id.0 as usize];
            (link.profile.loss_rate, link.profile.prop_delay)
        };
        // Line loss, then any injected faults for surviving cells.
        let injected = if self.rng.chance(loss_rate) {
            Some(SimDuration::ZERO) // lost to line noise
        } else {
            self.apply_faults(link_id)
        };
        match injected {
            Some(_) => {
                let vc = VcId(flying.cell.vci);
                let seq = flying.cell.pdu_seq;
                if let Some(s) = self.vc_mut(vc) {
                    s.drop_cell(seq);
                }
            }
            None => {
                let at = self.jittered_arrival(link_id, self.now + prop);
                let id = self.stash(flying);
                self.schedule(at, TimerKind::Arrive(link_id.0, id));
            }
        }
        // Serve the next queued cell.
        self.start_tx(link_id);
    }

    /// Run one cell through the link's injected loss faults. `Some(_)`
    /// means the cell is lost; `None` means it crosses (jitter is applied
    /// separately by [`Self::jittered_arrival`]). Links without faults
    /// never touch the fault RNG, keeping fault-free runs bit-identical.
    fn apply_faults(&mut self, link_id: LinkId) -> Option<SimDuration> {
        let link = &mut self.links[link_id.0 as usize];
        let faults = link.faults.as_ref()?;
        self.fault_stats.faulted_cells += 1;
        if faults.is_down(self.now) {
            self.fault_stats.downtime_losses += 1;
            return Some(SimDuration::ZERO);
        }
        if let Some(burst) = faults.burst {
            if link.fault_state.in_burst {
                // Geometric burst exit: expected length `mean_len` cells.
                if self.fault_rng.chance(1.0 / burst.mean_len.max(1.0)) {
                    link.fault_state.in_burst = false;
                }
                self.fault_stats.burst_losses += 1;
                return Some(SimDuration::ZERO);
            }
            if self.fault_rng.chance(burst.enter) {
                link.fault_state.in_burst = true;
                self.fault_stats.burst_losses += 1;
                return Some(SimDuration::ZERO);
            }
        }
        if faults.extra_loss > 0.0 && self.fault_rng.chance(faults.extra_loss) {
            self.fault_stats.random_losses += 1;
            return Some(SimDuration::ZERO);
        }
        None
    }

    /// Arrival instant for a cell leaving this link at `base`, with any
    /// injected jitter. Arrivals are clamped to the link's latest
    /// scheduled arrival so jitter delays cells but never reorders them
    /// (ATM preserves cell order within a VC; out-of-order cells would
    /// spuriously kill AAL5 PDUs).
    fn jittered_arrival(&mut self, link_id: LinkId, base: SimTime) -> SimTime {
        let link = &mut self.links[link_id.0 as usize];
        let Some(faults) = &link.faults else {
            return base;
        };
        let Some(jitter) = faults.jitter.filter(|j| !j.is_zero()) else {
            return base;
        };
        let extra = SimDuration::from_micros(self.fault_rng.below(jitter.as_micros() + 1));
        if !extra.is_zero() {
            self.fault_stats.jittered += 1;
        }
        let at = (base + extra).max(link.fault_state.last_arrival);
        link.fault_state.last_arrival = at;
        at
    }

    fn arrive(&mut self, link_id: LinkId, flight: u32) {
        let Some(flying) = self.unstash(flight) else {
            return;
        };
        let node_id = self.links[link_id.0 as usize].to;
        let vc = VcId(flying.cell.vci);
        let node = &self.nodes[node_id.0 as usize];
        if node.is_switch {
            let Some(next_link) = node.route(vc) else {
                // Misrouted cell: drop.
                let seq = flying.cell.pdu_seq;
                if let Some(s) = self.vc_mut(vc) {
                    s.drop_cell(seq);
                }
                return;
            };
            let class = self
                .vcs
                .get((vc.0 as usize).wrapping_sub(1))
                .map(|s| s.class)
                .unwrap_or(ServiceClass::Ubr);
            self.enqueue_cell(next_link, class, flying);
            return;
        }
        // Destination host: account and reassemble.
        let now = self.now;
        let Some(state) = self.vc_mut(vc) else {
            return;
        };
        if state.dst != node_id {
            state.drop_cell(flying.cell.pdu_seq);
            return;
        }
        state.stats.cells_delivered += 1;
        state.stats.ctd.record(now.since(flying.born).as_secs_f64());
        let is_end = flying.cell.pdu_end;
        let this_seq = flying.cell.pdu_seq;
        // Cells of an older PDU that lost its end cell: flush on seq change.
        if state.rx.first().is_some_and(|f| f.cell.pdu_seq != this_seq) {
            let stale = state.rx[0].cell.pdu_seq;
            if state.failed_pdus.insert(stale) {
                state.stats.pdus_failed += 1;
            }
            state.rx.clear();
        }
        state.rx.push(flying);
        if !is_end {
            return;
        }
        let send_call = state.rx.first().map(|f| f.send_call).unwrap_or(now);
        let cells: Vec<AtmCell> = state.rx.drain(..).map(|f| f.cell).collect();
        match aal5::reassemble(&cells) {
            Ok(payload) => {
                state.stats.pdus_delivered += 1;
                state.stats.bytes_delivered += payload.len() as u64;
                state
                    .stats
                    .pdu_latency
                    .record(now.since(send_call).as_secs_f64());
                self.deliveries.push(Delivery {
                    at: now,
                    vc,
                    node: node_id,
                    payload,
                });
            }
            Err(_) => {
                if state.failed_pdus.insert(this_seq) {
                    state.stats.pdus_failed += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// host A — switch — host B, both hops OC-3.
    fn small_net() -> (AtmNetwork, NodeId, NodeId, NodeId) {
        let mut net = AtmNetwork::new(1);
        let a = net.add_host("A");
        let s = net.add_switch("S");
        let b = net.add_host("B");
        net.connect(a, s, LinkProfile::atm_oc3());
        net.connect(s, b, LinkProfile::atm_oc3());
        (net, a, s, b)
    }

    #[test]
    fn pdu_crosses_one_switch() {
        let (mut net, a, s, b) = small_net();
        let vc = net.open_vc(&[a, s, b], ServiceClass::Ubr, None).unwrap();
        let payload = Bytes::from(vec![7u8; 1000]);
        net.send(vc, payload.clone()).unwrap();
        let deliveries = net.drain(SimTime::from_secs(1));
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].payload, payload);
        assert_eq!(deliveries[0].node, b);
        let stats = net.vc_stats(vc).unwrap();
        assert_eq!(stats.pdus_delivered, 1);
        assert_eq!(stats.cells_dropped, 0);
        assert!(stats.ctd.mean() > 0.0);
    }

    #[test]
    fn weathermap_covers_the_active_route() {
        let (mut net, a, s, b) = small_net();
        let vc = net.open_vc(&[a, s, b], ServiceClass::Ubr, None).unwrap();
        net.send(vc, Bytes::from(vec![7u8; 100_000])).unwrap();
        let d = net.drain(SimTime::from_secs(1));
        assert_eq!(d.len(), 1);
        // Exactly the two forward hops carried cells; reverse links idle.
        let route = net.active_links();
        assert_eq!(
            route,
            vec![
                ("A".to_string(), "S".to_string()),
                ("S".to_string(), "B".to_string())
            ]
        );
        let json = net.weathermap_json();
        assert_eq!(json, net.weathermap_json(), "rendering is read-only");
        assert!(json.starts_with("{\"t\":\"weathermap\",\"v\":1,"));
        for (from, to) in &route {
            assert!(
                json.contains(&format!("\"from\":\"{from}\",\"to\":\"{to}\"")),
                "weathermap must cover hop {from}->{to}"
            );
        }
        assert!(json.contains("\"cells_delivered\""));
        // 100 kB segments into >4-cell runs, so the fast path carried it.
        assert!(json.contains("\"cells_trained\""));
        assert!(!json.contains("\"from\":\"B\""), "idle links are omitted");
    }

    #[test]
    fn latency_scales_with_link_rate() {
        // The same 100 kB transfer over OC-3 vs modem.
        let mut lat = Vec::new();
        for profile in [LinkProfile::atm_oc3(), LinkProfile::modem_28_8k()] {
            let mut net = AtmNetwork::new(1);
            let a = net.add_host("A");
            let b = net.add_host("B");
            net.connect(a, b, profile);
            let vc = net.open_vc(&[a, b], ServiceClass::Ubr, None).unwrap();
            net.send(vc, Bytes::from(vec![1u8; 100_000])).unwrap();
            let d = net.drain(SimTime::from_secs(3600));
            assert_eq!(d.len(), 1, "profile {profile:?}");
            lat.push(net.vc_stats(vc).unwrap().pdu_latency.mean());
        }
        // OC-3 ≈ 5 ms, modem ≈ 31 s: ≥ 1000× apart.
        assert!(
            lat[1] / lat[0] > 1000.0,
            "oc3 {} vs modem {}",
            lat[0],
            lat[1]
        );
    }

    #[test]
    fn unconnected_path_rejected() {
        let mut net = AtmNetwork::new(1);
        let a = net.add_host("A");
        let b = net.add_host("B");
        assert_eq!(
            net.open_vc(&[a, b], ServiceClass::Ubr, None),
            Err(NetError::NotConnected(a, b))
        );
        assert_eq!(
            net.open_vc(&[a], ServiceClass::Ubr, None),
            Err(NetError::PathTooShort)
        );
    }

    #[test]
    fn cbr_preempts_ubr_under_contention() {
        // Slow shared link; bulk UBR floods it, CBR cells keep low delay.
        let mut net = AtmNetwork::new(2);
        let a = net.add_host("A");
        let b = net.add_host("B");
        net.connect(a, b, LinkProfile::isdn_128k());
        let bulk = net.open_vc(&[a, b], ServiceClass::Ubr, None).unwrap();
        let live = net.open_vc(&[a, b], ServiceClass::Cbr, None).unwrap();
        // Saturate with bulk…
        net.send(bulk, Bytes::from(vec![0u8; 4_000])).unwrap();
        // …then a small CBR message right behind it.
        net.send(live, Bytes::from(vec![1u8; 96])).unwrap();
        net.drain(SimTime::from_secs(60));
        let bulk_lat = net.vc_stats(bulk).unwrap().pdu_latency.mean();
        let live_lat = net.vc_stats(live).unwrap().pdu_latency.mean();
        assert!(
            live_lat < bulk_lat / 2.0,
            "CBR {live_lat}s should beat UBR {bulk_lat}s"
        );
    }

    #[test]
    fn queue_overflow_drops_cells_and_fails_pdus() {
        // Fast ingress into a switch whose slow egress port has a tiny
        // buffer: the classic output-queue overflow.
        let mut net = AtmNetwork::new(3);
        let a = net.add_host("A");
        let s = net.add_switch("S");
        let b = net.add_host("B");
        net.connect(a, s, LinkProfile::atm_oc3());
        net.connect(
            s,
            b,
            LinkProfile {
                queue_cells: 16,
                ..LinkProfile::modem_28_8k()
            },
        );
        let vc = net.open_vc(&[a, s, b], ServiceClass::Ubr, None).unwrap();
        // 10 kB → ~209 cells arriving at OC-3 speed into a 16-cell queue
        // drained at modem speed.
        net.send(vc, Bytes::from(vec![0u8; 10_000])).unwrap();
        net.drain(SimTime::from_secs(600));
        let stats = net.vc_stats(vc).unwrap();
        assert!(stats.cells_dropped > 0, "overflow must drop");
        assert_eq!(stats.pdus_delivered, 0, "AAL5 PDU dies with its cells");
        assert_eq!(stats.pdus_failed, 1);
    }

    #[test]
    fn lossy_line_fails_pdus_proportionally() {
        let mut net = AtmNetwork::new(4);
        let a = net.add_host("A");
        let b = net.add_host("B");
        let profile = LinkProfile {
            loss_rate: 0.05,
            ..LinkProfile::atm_oc3()
        };
        net.connect(a, b, profile);
        let vc = net.open_vc(&[a, b], ServiceClass::Ubr, None).unwrap();
        // 200 one-cell PDUs: each survives with p ≈ 0.95.
        for _ in 0..200 {
            net.send(vc, Bytes::from(vec![1u8; 40])).unwrap();
        }
        net.drain(SimTime::from_secs(10));
        let stats = net.vc_stats(vc).unwrap();
        assert!(stats.pdus_failed > 0, "some PDUs must fail at 5% cell loss");
        assert!(stats.pdus_delivered > 150, "most still arrive");
        assert_eq!(stats.pdus_delivered + stats.pdus_failed, 200);
    }

    #[test]
    fn policing_tags_and_discards_under_congestion() {
        // Tagged (CLP=1) cells are discarded early when a congested switch
        // port fills past 90 % occupancy.
        let mut net = AtmNetwork::new(5);
        let a = net.add_host("A");
        let s = net.add_switch("S");
        let b = net.add_host("B");
        net.connect(a, s, LinkProfile::atm_oc3());
        net.connect(
            s,
            b,
            LinkProfile {
                queue_cells: 32,
                ..LinkProfile::isdn_128k()
            },
        );
        // Contract far below the offered rate: almost everything tagged.
        let contract = TrafficContract {
            pcr_cells_per_sec: 10.0,
            burst_cells: 2.0,
        };
        let rogue = net
            .open_vc(&[a, s, b], ServiceClass::Ubr, Some(contract))
            .unwrap();
        for _ in 0..50 {
            net.send(rogue, Bytes::from(vec![0u8; 400])).unwrap();
        }
        net.drain(SimTime::from_secs(600));
        let stats = net.vc_stats(rogue).unwrap();
        assert!(
            stats.cells_dropped > 0,
            "tagged cells discarded at the congested port"
        );
    }

    #[test]
    fn multi_hop_path_and_utilization() {
        let mut net = AtmNetwork::new(6);
        let a = net.add_host("A");
        let s1 = net.add_switch("S1");
        let s2 = net.add_switch("S2");
        let b = net.add_host("B");
        net.connect(a, s1, LinkProfile::atm_oc3());
        net.connect(s1, s2, LinkProfile::atm_oc3_wan());
        net.connect(s2, b, LinkProfile::atm_oc3());
        let vc = net
            .open_vc(&[a, s1, s2, b], ServiceClass::Vbr, None)
            .unwrap();
        net.send(vc, Bytes::from(vec![5u8; 50_000])).unwrap();
        let d = net.drain(SimTime::from_secs(5));
        assert_eq!(d.len(), 1);
        assert!(net.link_utilization(a, s1).unwrap() > 0.0);
        assert_eq!(net.link_drops(a, s1), Some(0));
        // Latency includes the 5 ms WAN propagation.
        assert!(net.vc_stats(vc).unwrap().pdu_latency.mean() > 0.005);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut net = AtmNetwork::new(seed);
            let a = net.add_host("A");
            let b = net.add_host("B");
            net.connect(
                a,
                b,
                LinkProfile {
                    loss_rate: 0.02,
                    ..LinkProfile::atm_oc3()
                },
            );
            let vc = net.open_vc(&[a, b], ServiceClass::Ubr, None).unwrap();
            for _ in 0..100 {
                net.send(vc, Bytes::from(vec![2u8; 96])).unwrap();
            }
            net.drain(SimTime::from_secs(10));
            let s = net.vc_stats(vc).unwrap();
            (s.pdus_delivered, s.cells_dropped)
        };
        assert_eq!(run(42), run(42), "same seed, same outcome");
        assert_ne!(run(42), run(43), "different seed, different loss pattern");
    }

    #[test]
    fn empty_fault_plan_is_bit_identical() {
        // Installing an empty plan must not perturb the base RNG stream:
        // same seed, same deliveries, same drop counts.
        let run = |plan: Option<FaultPlan>| {
            let mut net = AtmNetwork::new(7);
            let a = net.add_host("A");
            let b = net.add_host("B");
            net.connect(
                a,
                b,
                LinkProfile {
                    loss_rate: 0.02,
                    ..LinkProfile::atm_oc3()
                },
            );
            if let Some(p) = plan {
                net.set_fault_plan(p);
            }
            let vc = net.open_vc(&[a, b], ServiceClass::Ubr, None).unwrap();
            for _ in 0..100 {
                net.send(vc, Bytes::from(vec![2u8; 96])).unwrap();
            }
            net.drain(SimTime::from_secs(10));
            let s = net.vc_stats(vc).unwrap();
            (s.pdus_delivered, s.cells_dropped)
        };
        assert_eq!(run(None), run(Some(FaultPlan::none())));
        assert_eq!(
            run(None),
            run(Some(FaultPlan::uniform(LinkFaults::default())))
        );
    }

    #[test]
    fn injected_loss_is_deterministic_and_counted() {
        let run = |seed| {
            let mut net = AtmNetwork::new(seed);
            let a = net.add_host("A");
            let b = net.add_host("B");
            net.connect(a, b, LinkProfile::atm_oc3());
            net.set_fault_plan(FaultPlan::uniform(LinkFaults::loss(0.05)));
            let vc = net.open_vc(&[a, b], ServiceClass::Ubr, None).unwrap();
            for _ in 0..200 {
                net.send(vc, Bytes::from(vec![1u8; 40])).unwrap();
            }
            net.drain(SimTime::from_secs(10));
            let s = net.vc_stats(vc).unwrap();
            (s.pdus_delivered, net.fault_stats().random_losses)
        };
        let (delivered, losses) = run(11);
        assert!(losses > 0, "5% of 200 cells should lose some");
        assert!(delivered > 150, "most should still arrive");
        assert_eq!(run(11), run(11), "fault schedule is reproducible");
        assert_ne!(run(11), run(12), "seed changes the schedule");
    }

    #[test]
    fn down_window_kills_everything_inside_it() {
        let mut net = AtmNetwork::new(8);
        let a = net.add_host("A");
        let b = net.add_host("B");
        net.connect(a, b, LinkProfile::atm_oc3());
        net.set_fault_plan(FaultPlan::uniform(
            LinkFaults::default().with_down(SimTime::ZERO, SimTime::from_secs(5)),
        ));
        let vc = net.open_vc(&[a, b], ServiceClass::Ubr, None).unwrap();
        net.send(vc, Bytes::from(vec![1u8; 1000])).unwrap();
        net.drain(SimTime::from_secs(2));
        assert_eq!(net.vc_stats(vc).unwrap().pdus_delivered, 0, "link is down");
        assert!(net.fault_stats().downtime_losses > 0);
        // After the window, traffic flows again.
        let mut net2 = AtmNetwork::new(8);
        let a2 = net2.add_host("A");
        let b2 = net2.add_host("B");
        net2.connect(a2, b2, LinkProfile::atm_oc3());
        net2.set_fault_plan(FaultPlan::uniform(
            LinkFaults::default().with_down(SimTime::ZERO, SimTime::from_micros(1)),
        ));
        let vc2 = net2.open_vc(&[a2, b2], ServiceClass::Ubr, None).unwrap();
        net2.advance(SimTime::from_secs(1));
        net2.send(vc2, Bytes::from(vec![1u8; 1000])).unwrap();
        net2.drain(SimTime::from_secs(2));
        assert_eq!(net2.vc_stats(vc2).unwrap().pdus_delivered, 1);
    }

    #[test]
    fn burst_loss_clusters_drops() {
        let mut net = AtmNetwork::new(9);
        let a = net.add_host("A");
        let b = net.add_host("B");
        net.connect(a, b, LinkProfile::atm_oc3());
        net.set_fault_plan(FaultPlan::uniform(
            LinkFaults::default().with_burst(0.02, 20.0),
        ));
        let vc = net.open_vc(&[a, b], ServiceClass::Ubr, None).unwrap();
        for _ in 0..300 {
            net.send(vc, Bytes::from(vec![1u8; 40])).unwrap();
        }
        net.drain(SimTime::from_secs(10));
        let stats = net.fault_stats();
        assert!(stats.burst_losses > 0, "bursts must fire at 2% entry");
        // Mean burst length 20 ⇒ losses well above the entry count alone.
        assert!(
            stats.burst_losses as f64 > 300.0 * 0.02,
            "bursts cluster: {} losses",
            stats.burst_losses
        );
    }

    #[test]
    fn jitter_delays_but_delivers() {
        let base = {
            let mut net = AtmNetwork::new(10);
            let a = net.add_host("A");
            let b = net.add_host("B");
            net.connect(a, b, LinkProfile::atm_oc3());
            let vc = net.open_vc(&[a, b], ServiceClass::Ubr, None).unwrap();
            net.send(vc, Bytes::from(vec![1u8; 10_000])).unwrap();
            net.drain(SimTime::from_secs(10));
            net.vc_stats(vc).unwrap().pdu_latency.mean()
        };
        let jittered = {
            let mut net = AtmNetwork::new(10);
            let a = net.add_host("A");
            let b = net.add_host("B");
            net.connect(a, b, LinkProfile::atm_oc3());
            net.set_fault_plan(FaultPlan::uniform(
                LinkFaults::default().with_jitter(SimDuration::from_millis(2)),
            ));
            let vc = net.open_vc(&[a, b], ServiceClass::Ubr, None).unwrap();
            net.send(vc, Bytes::from(vec![1u8; 10_000])).unwrap();
            net.drain(SimTime::from_secs(10));
            assert!(net.fault_stats().jittered > 0);
            net.vc_stats(vc).unwrap().pdu_latency.mean()
        };
        assert!(
            jittered > base,
            "jitter must add delay: {jittered} vs {base}"
        );
    }

    #[test]
    fn two_vcs_interleave_without_corruption() {
        let (mut net, a, s, b) = small_net();
        let vc1 = net.open_vc(&[a, s, b], ServiceClass::Ubr, None).unwrap();
        let vc2 = net.open_vc(&[a, s, b], ServiceClass::Ubr, None).unwrap();
        let p1 = Bytes::from(vec![1u8; 5_000]);
        let p2 = Bytes::from(vec![2u8; 5_000]);
        net.send(vc1, p1.clone()).unwrap();
        net.send(vc2, p2.clone()).unwrap();
        let d = net.drain(SimTime::from_secs(1));
        assert_eq!(d.len(), 2);
        for delivery in d {
            if delivery.vc == vc1 {
                assert_eq!(delivery.payload, p1);
            } else {
                assert_eq!(delivery.payload, p2);
            }
        }
    }

    #[test]
    fn reverse_direction_needs_its_own_vc() {
        let (mut net, a, s, b) = small_net();
        let fwd = net.open_vc(&[a, s, b], ServiceClass::Ubr, None).unwrap();
        let rev = net.open_vc(&[b, s, a], ServiceClass::Ubr, None).unwrap();
        net.send(fwd, Bytes::from_static(b"ping")).unwrap();
        net.send(rev, Bytes::from_static(b"pong")).unwrap();
        let d = net.drain(SimTime::from_secs(1));
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|x| x.node == b && x.payload == "ping"));
        assert!(d.iter().any(|x| x.node == a && x.payload == "pong"));
    }
}
