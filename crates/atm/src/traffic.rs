//! Traffic sources for the delivery experiments.
//!
//! Each source yields a schedule of `(offset, pdu_size)` pairs describing
//! when payload enters the network — constant-rate audio, VBR video paced
//! by the MPEG frame model of `mits-media`, and bursty on-off
//! interactive traffic.

use mits_media::codec::FrameStream;
use mits_sim::{SimDuration, SimRng};

/// One scheduled emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Emission {
    /// Offset from stream start.
    pub at: SimDuration,
    /// Payload bytes in this PDU.
    pub bytes: usize,
}

/// Constant bit rate source: fixed-size PDUs at fixed intervals.
#[derive(Debug, Clone)]
pub struct CbrSource {
    /// Target payload rate, bits per second.
    pub rate_bps: u64,
    /// PDU payload size in bytes.
    pub pdu_bytes: usize,
}

impl CbrSource {
    /// Schedule for `duration` of traffic.
    pub fn schedule(&self, duration: SimDuration) -> Vec<Emission> {
        assert!(self.pdu_bytes > 0 && self.rate_bps > 0);
        let interval = SimDuration::for_bits(self.pdu_bytes as u64 * 8, self.rate_bps);
        let n = (duration.as_micros() / interval.as_micros().max(1)) as usize;
        (0..n)
            .map(|i| Emission {
                at: interval * i as u64,
                bytes: self.pdu_bytes,
            })
            .collect()
    }
}

/// VBR video source: one PDU per coded frame, paced at the frame rate,
/// sized by the MPEG GOP model — the workload "classroom presentation"
/// puts on the network.
#[derive(Debug, Clone)]
pub struct VbrVideoSource {
    /// Video length.
    pub duration: SimDuration,
    /// Mean coded rate, bits per second.
    pub bits_per_sec: u64,
    /// Determinism seed.
    pub seed: u64,
}

impl VbrVideoSource {
    /// Schedule: one emission per frame at its PTS.
    pub fn schedule(&self) -> Vec<Emission> {
        FrameStream::new(self.duration, self.bits_per_sec, self.seed)
            .map(|f| Emission {
                at: f.pts,
                bytes: f.size as usize,
            })
            .collect()
    }
}

/// On-off source: exponential on and off periods; CBR inside on periods.
/// Models interactive navigation traffic (bursts of object fetches).
#[derive(Debug, Clone)]
pub struct OnOffSource {
    /// Mean on-period length.
    pub mean_on: SimDuration,
    /// Mean off-period length.
    pub mean_off: SimDuration,
    /// Rate during on periods, bits per second.
    pub on_rate_bps: u64,
    /// PDU size during on periods.
    pub pdu_bytes: usize,
    /// Determinism seed.
    pub seed: u64,
}

impl OnOffSource {
    /// Schedule for `duration` of traffic.
    pub fn schedule(&self, duration: SimDuration) -> Vec<Emission> {
        let mut rng = SimRng::seed_from_u64(self.seed ^ 0x00FF_0A0F);
        let mut out = Vec::new();
        let interval = SimDuration::for_bits(self.pdu_bytes as u64 * 8, self.on_rate_bps);
        let mut t = SimDuration::ZERO;
        loop {
            // On period.
            let on_len = SimDuration::from_secs_f64(rng.exponential(self.mean_on.as_secs_f64()));
            let on_end = t + on_len;
            while t < on_end && t < duration {
                out.push(Emission {
                    at: t,
                    bytes: self.pdu_bytes,
                });
                t += interval;
            }
            if t >= duration {
                break;
            }
            // Off period.
            t += SimDuration::from_secs_f64(rng.exponential(self.mean_off.as_secs_f64()));
            if t >= duration {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_is_evenly_spaced_at_rate() {
        let src = CbrSource {
            rate_bps: 64_000,
            pdu_bytes: 800,
        };
        let sched = src.schedule(SimDuration::from_secs(10));
        // 800 B = 6400 bits → 10 PDUs/s → 100 total.
        assert_eq!(sched.len(), 100);
        assert_eq!(sched[1].at - sched[0].at, SimDuration::from_millis(100));
        let total_bits: u64 = sched.iter().map(|e| e.bytes as u64 * 8).sum();
        assert_eq!(total_bits, 640_000);
    }

    #[test]
    fn vbr_video_matches_frame_model() {
        let src = VbrVideoSource {
            duration: SimDuration::from_secs(2),
            bits_per_sec: 1_500_000,
            seed: 7,
        };
        let sched = src.schedule();
        assert_eq!(sched.len(), 60, "30 fps × 2 s");
        let total: usize = sched.iter().map(|e| e.bytes).sum();
        let nominal = 1_500_000 / 8 * 2;
        let err = (total as f64 - nominal as f64).abs() / nominal as f64;
        assert!(err < 0.15, "VBR total {total} vs nominal {nominal}");
        // Frame sizes vary (it is VBR).
        let min = sched.iter().map(|e| e.bytes).min().unwrap();
        let max = sched.iter().map(|e| e.bytes).max().unwrap();
        assert!(max > 2 * min, "I-frames dwarf B-frames");
    }

    #[test]
    fn onoff_bursts_and_gaps() {
        let src = OnOffSource {
            mean_on: SimDuration::from_secs(1),
            mean_off: SimDuration::from_secs(1),
            on_rate_bps: 100_000,
            pdu_bytes: 500,
            seed: 3,
        };
        let sched = src.schedule(SimDuration::from_secs(60));
        assert!(!sched.is_empty());
        // Roughly half duty cycle: total bytes ≈ 50 % of always-on.
        let total: usize = sched.iter().map(|e| e.bytes).sum();
        let always_on = 100_000 / 8 * 60;
        let duty = total as f64 / always_on as f64;
        assert!((0.2..0.8).contains(&duty), "duty cycle {duty}");
        // Gaps exist that far exceed the on-period spacing.
        let spacing = SimDuration::from_millis(40);
        let has_gap = sched.windows(2).any(|w| (w[1].at - w[0].at) > spacing * 5);
        assert!(has_gap, "off periods must appear");
    }

    #[test]
    fn onoff_deterministic() {
        let mk = |seed| {
            OnOffSource {
                mean_on: SimDuration::from_millis(500),
                mean_off: SimDuration::from_millis(500),
                on_rate_bps: 50_000,
                pdu_bytes: 250,
                seed,
            }
            .schedule(SimDuration::from_secs(10))
        };
        assert_eq!(mk(1), mk(1));
        assert_ne!(mk(1), mk(2));
    }
}
