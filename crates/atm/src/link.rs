//! Link profiles and service classes.
//!
//! The paper's argument for broadband (§1.3.3) is quantitative at heart:
//! MPEG-rate courseware cannot ride a modem or ISDN line. These profiles
//! pin the four infrastructures experiment E-BB compares, and
//! [`ServiceClass`] carries the ATM service architecture the switch's
//! priority queues implement.

use mits_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// ATM service class, mapped to switch queue priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServiceClass {
    /// Constant bit rate — highest priority (live audio/video).
    Cbr,
    /// Variable bit rate — middle priority (stored video).
    Vbr,
    /// Unspecified bit rate — best effort (bulk object transfer, control).
    Ubr,
}

impl ServiceClass {
    /// Queue index: 0 is served first.
    pub fn priority(self) -> usize {
        match self {
            ServiceClass::Cbr => 0,
            ServiceClass::Vbr => 1,
            ServiceClass::Ubr => 2,
        }
    }

    /// Number of priority levels.
    pub const LEVELS: usize = 3;
}

/// A unidirectional link's physical characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Serialization rate, bits per second.
    pub rate_bps: u64,
    /// Propagation delay.
    pub prop_delay: SimDuration,
    /// Independent random cell-loss probability (line noise).
    pub loss_rate: f64,
    /// Output buffer capacity in cells (per priority level).
    pub queue_cells: usize,
}

impl LinkProfile {
    /// OC-3 ATM at 155.52 Mb/s — the OCRInet class of link.
    pub fn atm_oc3() -> Self {
        LinkProfile {
            rate_bps: 155_520_000,
            prop_delay: SimDuration::from_micros(100), // metro distance
            loss_rate: 1e-9,
            queue_cells: 1024,
        }
    }

    /// OC-3 with a longer haul (inter-city).
    pub fn atm_oc3_wan() -> Self {
        LinkProfile {
            prop_delay: SimDuration::from_millis(5),
            ..Self::atm_oc3()
        }
    }

    /// Shared 10 Mb/s LAN (effective throughput derated for contention).
    pub fn lan_10m() -> Self {
        LinkProfile {
            rate_bps: 6_000_000, // ~60 % effective under load
            prop_delay: SimDuration::from_micros(50),
            loss_rate: 1e-7,
            queue_cells: 256,
        }
    }

    /// ISDN basic rate bonding, 128 kb/s.
    pub fn isdn_128k() -> Self {
        LinkProfile {
            rate_bps: 128_000,
            prop_delay: SimDuration::from_millis(2),
            loss_rate: 1e-6,
            queue_cells: 512,
        }
    }

    /// V.34 modem, 28.8 kb/s.
    pub fn modem_28_8k() -> Self {
        LinkProfile {
            rate_bps: 28_800,
            prop_delay: SimDuration::from_millis(5),
            loss_rate: 1e-5,
            queue_cells: 512,
        }
    }

    /// Time to serialize one 53-byte cell on this link.
    pub fn cell_time(&self) -> SimDuration {
        SimDuration::for_bits(crate::cell::CELL_BITS, self.rate_bps)
    }

    /// Wall time to move `bytes` of raw payload (ignoring cell overhead) —
    /// the back-of-envelope number experiments quote as "line rate".
    pub fn raw_transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration::for_bits(bytes * 8, self.rate_bps)
    }

    /// Time to serialize `cells` back-to-back cells — the wire length of a
    /// cell train. Deliberately `cells × cell_time()` (whole microseconds
    /// per cell) rather than `for_bits` over the total bit count, so a
    /// train lands on exactly the cumulative per-cell schedule it
    /// replaces.
    pub fn train_time(&self, cells: u64) -> SimDuration {
        SimDuration::from_micros(self.cell_time().as_micros() * cells)
    }
}

/// Width of one weathermap sample window. Five milliseconds spans a
/// couple of thousand OC-3 cell times — wide enough that a whole cell
/// train usually lands in one window, narrow enough to see a fault
/// window open and close.
pub const TELEMETRY_WINDOW_US: u64 = 5_000;

/// Windows retained per link. With 5 ms windows, 64 slots cover the
/// most recent ~320 ms of virtual time — the active tail of a session.
pub const TELEMETRY_RING_CAP: usize = 64;

/// How a batch of cells crossed a hop, as the weathermap counts them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeKind {
    /// Served analytically as one whole cell train (the O(1) fast path).
    Trained,
    /// Served cell-by-cell through the priority queues (fault windows,
    /// contended links).
    PerCell,
    /// Parked at an idle host egress awaiting pull (counted once, when
    /// the train parks).
    Parked,
}

/// One `SimDuration`-window of per-link weather: how deep the queues
/// got, how long the transmitter was busy, how the cells that moved
/// were served, and whether an injected fault window covered any of
/// it. Samples are taken only at run/cell-train boundaries — the same
/// instants the simulator already visits — so a quiet link costs
/// nothing and a busy link stays O(1) events per hop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkWindowSample {
    /// Window index (`start_us = window * TELEMETRY_WINDOW_US`).
    pub window: u64,
    /// Deepest any priority queue got during the window, in cells.
    pub queue_high_water: u64,
    /// Microseconds of serialization attributed to this window's cells.
    pub busy_us: u64,
    /// Cells served as whole trains.
    pub cells_trained: u64,
    /// Cells served one at a time.
    pub cells_per_cell: u64,
    /// Cells parked at a host egress awaiting pull.
    pub cells_parked: u64,
    /// Whether an injected fault window was open at any sample instant.
    pub faulted: bool,
}

/// Bounded ring of [`LinkWindowSample`]s for one link, plus lifetime
/// serve-mode totals. Observation-only: it draws no randomness and
/// schedules no events, so recording is digest-neutral by
/// construction.
#[derive(Debug, Clone, Default)]
pub struct LinkTelemetry {
    ring: Vec<LinkWindowSample>,
    cur: Option<LinkWindowSample>,
    /// Windows evicted from the full ring.
    pub dropped_windows: u64,
    /// Lifetime cells served as whole trains.
    pub total_trained: u64,
    /// Lifetime cells served one at a time.
    pub total_per_cell: u64,
    /// Lifetime cells parked at a host egress.
    pub total_parked: u64,
}

impl LinkTelemetry {
    /// Record one serve observation at `now`. `cells` is how many cells
    /// the observation covers, `queue_cells` the queue depth at the
    /// sample instant, `busy` the serialization time attributed to the
    /// batch, and `faulted` whether an injected fault window is open.
    pub fn note(
        &mut self,
        now: SimTime,
        kind: ServeKind,
        cells: u64,
        queue_cells: u64,
        busy: SimDuration,
        faulted: bool,
    ) {
        match kind {
            ServeKind::Trained => self.total_trained += cells,
            ServeKind::PerCell => self.total_per_cell += cells,
            ServeKind::Parked => self.total_parked += cells,
        }
        let window = now.as_micros() / TELEMETRY_WINDOW_US;
        let cur = match self.cur.as_mut() {
            Some(c) if c.window == window => c,
            _ => {
                self.flush();
                self.cur.insert(LinkWindowSample {
                    window,
                    ..LinkWindowSample::default()
                })
            }
        };
        cur.queue_high_water = cur.queue_high_water.max(queue_cells);
        cur.busy_us += busy.as_micros();
        cur.faulted |= faulted;
        match kind {
            ServeKind::Trained => cur.cells_trained += cells,
            ServeKind::PerCell => cur.cells_per_cell += cells,
            ServeKind::Parked => cur.cells_parked += cells,
        }
    }

    /// Push the in-progress window (if any) into the ring, evicting the
    /// oldest sample when full.
    fn flush(&mut self) {
        if let Some(c) = self.cur.take() {
            if self.ring.len() == TELEMETRY_RING_CAP {
                self.ring.remove(0);
                self.dropped_windows += 1;
            }
            self.ring.push(c);
        }
    }

    /// Lifetime cells observed in any serve mode.
    pub fn total_cells(&self) -> u64 {
        self.total_trained + self.total_per_cell + self.total_parked
    }

    /// Retained windows oldest-first, including the in-progress one.
    pub fn windows(&self) -> Vec<LinkWindowSample> {
        let mut v = self.ring.clone();
        if let Some(c) = self.cur {
            v.push(c);
        }
        v
    }

    /// Forget everything (scratch reuse across sessions).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.cur = None;
        self.dropped_windows = 0;
        self.total_trained = 0;
        self.total_per_cell = 0;
        self.total_parked = 0;
    }
}

/// A traffic contract for policing: peak cell rate and a burst tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficContract {
    /// Peak cell rate, cells per second.
    pub pcr_cells_per_sec: f64,
    /// Burst tolerance, cells.
    pub burst_cells: f64,
}

impl TrafficContract {
    /// Contract admitting `bits_per_sec` of payload throughput with the
    /// given burst allowance.
    pub fn for_bit_rate(bits_per_sec: u64, burst_cells: f64) -> Self {
        let cells = bits_per_sec as f64 / (crate::cell::CELL_PAYLOAD as f64 * 8.0);
        TrafficContract {
            pcr_cells_per_sec: cells.max(1.0),
            burst_cells: burst_cells.max(1.0),
        }
    }
}

/// GCRA policer state (token bucket formulation).
#[derive(Debug, Clone)]
pub struct Policer {
    bucket: mits_sim::TokenBucket,
}

impl Policer {
    /// Policer for a contract.
    pub fn new(contract: TrafficContract) -> Self {
        Policer {
            bucket: mits_sim::TokenBucket::new(contract.pcr_cells_per_sec, contract.burst_cells),
        }
    }

    /// Does a cell arriving at `now` conform? Non-conforming cells are
    /// tagged CLP=1 by the caller.
    pub fn conforms(&mut self, now: SimTime) -> bool {
        self.bucket.try_take(now, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering() {
        assert!(ServiceClass::Cbr.priority() < ServiceClass::Vbr.priority());
        assert!(ServiceClass::Vbr.priority() < ServiceClass::Ubr.priority());
        assert!(ServiceClass::Ubr.priority() < ServiceClass::LEVELS);
    }

    #[test]
    fn cell_time_on_oc3() {
        // 424 bits / 155.52 Mb/s ≈ 2.7 µs → ceil 3 µs.
        assert_eq!(LinkProfile::atm_oc3().cell_time().as_micros(), 3);
        // Modem: 424 / 28 800 ≈ 14.7 ms.
        let t = LinkProfile::modem_28_8k().cell_time();
        assert!((14_000..15_000).contains(&t.as_micros()), "{t}");
    }

    #[test]
    fn transfer_time_sanity() {
        // 1 MB over ISDN 128k ≈ 65.5 s; over OC-3 ≈ 54 ms.
        let isdn = LinkProfile::isdn_128k().raw_transfer_time(1_048_576);
        assert!((60.0..70.0).contains(&isdn.as_secs_f64()), "{isdn}");
        let oc3 = LinkProfile::atm_oc3().raw_transfer_time(1_048_576);
        assert!(oc3.as_secs_f64() < 0.06, "{oc3}");
    }

    #[test]
    fn policer_enforces_pcr() {
        use mits_sim::SimTime;
        // 1000 cells/s, burst 2.
        let mut p = Policer::new(TrafficContract {
            pcr_cells_per_sec: 1000.0,
            burst_cells: 2.0,
        });
        let t = SimTime::from_secs(1);
        assert!(p.conforms(t));
        assert!(p.conforms(t));
        assert!(!p.conforms(t), "burst exhausted");
        assert!(p.conforms(t + SimDuration::from_millis(1)), "refilled");
    }

    #[test]
    fn contract_from_bit_rate() {
        let c = TrafficContract::for_bit_rate(1_500_000, 32.0);
        // 1.5 Mb/s over 384-bit payloads ≈ 3906 cells/s.
        assert!((3_900.0..3_910.0).contains(&c.pcr_cells_per_sec));
    }

    #[test]
    fn telemetry_windows_and_totals() {
        use mits_sim::SimTime;
        let mut t = LinkTelemetry::default();
        let busy = SimDuration::from_micros(3);
        t.note(
            SimTime::from_micros(10),
            ServeKind::Trained,
            40,
            2,
            busy,
            false,
        );
        t.note(
            SimTime::from_micros(20),
            ServeKind::PerCell,
            1,
            5,
            busy,
            true,
        );
        // Next window: the first one must flush into the ring.
        t.note(
            SimTime::from_micros(TELEMETRY_WINDOW_US + 1),
            ServeKind::Parked,
            8,
            0,
            SimDuration::ZERO,
            false,
        );
        let w = t.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].window, 0);
        assert_eq!(w[0].cells_trained, 40);
        assert_eq!(w[0].cells_per_cell, 1);
        assert_eq!(w[0].queue_high_water, 5);
        assert_eq!(w[0].busy_us, 6);
        assert!(w[0].faulted, "fault flag is sticky within a window");
        assert_eq!(w[1].window, 1);
        assert_eq!(w[1].cells_parked, 8);
        assert!(!w[1].faulted);
        assert_eq!(t.total_cells(), 49);
        assert_eq!(t.dropped_windows, 0);
    }

    #[test]
    fn telemetry_ring_evicts_oldest_and_counts() {
        use mits_sim::SimTime;
        let mut t = LinkTelemetry::default();
        let n = (TELEMETRY_RING_CAP as u64) + 5;
        for w in 0..=n {
            t.note(
                SimTime::from_micros(w * TELEMETRY_WINDOW_US),
                ServeKind::Trained,
                1,
                0,
                SimDuration::ZERO,
                false,
            );
        }
        let windows = t.windows();
        assert_eq!(
            windows.len(),
            TELEMETRY_RING_CAP + 1,
            "ring plus in-progress"
        );
        assert_eq!(t.dropped_windows, n - TELEMETRY_RING_CAP as u64);
        assert_eq!(windows[0].window, t.dropped_windows, "oldest were evicted");
        assert_eq!(t.total_trained, n + 1, "totals survive eviction");
        t.clear();
        assert!(t.windows().is_empty());
        assert_eq!(t.total_cells(), 0);
    }
}
