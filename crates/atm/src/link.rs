//! Link profiles and service classes.
//!
//! The paper's argument for broadband (§1.3.3) is quantitative at heart:
//! MPEG-rate courseware cannot ride a modem or ISDN line. These profiles
//! pin the four infrastructures experiment E-BB compares, and
//! [`ServiceClass`] carries the ATM service architecture the switch's
//! priority queues implement.

use mits_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// ATM service class, mapped to switch queue priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServiceClass {
    /// Constant bit rate — highest priority (live audio/video).
    Cbr,
    /// Variable bit rate — middle priority (stored video).
    Vbr,
    /// Unspecified bit rate — best effort (bulk object transfer, control).
    Ubr,
}

impl ServiceClass {
    /// Queue index: 0 is served first.
    pub fn priority(self) -> usize {
        match self {
            ServiceClass::Cbr => 0,
            ServiceClass::Vbr => 1,
            ServiceClass::Ubr => 2,
        }
    }

    /// Number of priority levels.
    pub const LEVELS: usize = 3;
}

/// A unidirectional link's physical characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Serialization rate, bits per second.
    pub rate_bps: u64,
    /// Propagation delay.
    pub prop_delay: SimDuration,
    /// Independent random cell-loss probability (line noise).
    pub loss_rate: f64,
    /// Output buffer capacity in cells (per priority level).
    pub queue_cells: usize,
}

impl LinkProfile {
    /// OC-3 ATM at 155.52 Mb/s — the OCRInet class of link.
    pub fn atm_oc3() -> Self {
        LinkProfile {
            rate_bps: 155_520_000,
            prop_delay: SimDuration::from_micros(100), // metro distance
            loss_rate: 1e-9,
            queue_cells: 1024,
        }
    }

    /// OC-3 with a longer haul (inter-city).
    pub fn atm_oc3_wan() -> Self {
        LinkProfile {
            prop_delay: SimDuration::from_millis(5),
            ..Self::atm_oc3()
        }
    }

    /// Shared 10 Mb/s LAN (effective throughput derated for contention).
    pub fn lan_10m() -> Self {
        LinkProfile {
            rate_bps: 6_000_000, // ~60 % effective under load
            prop_delay: SimDuration::from_micros(50),
            loss_rate: 1e-7,
            queue_cells: 256,
        }
    }

    /// ISDN basic rate bonding, 128 kb/s.
    pub fn isdn_128k() -> Self {
        LinkProfile {
            rate_bps: 128_000,
            prop_delay: SimDuration::from_millis(2),
            loss_rate: 1e-6,
            queue_cells: 512,
        }
    }

    /// V.34 modem, 28.8 kb/s.
    pub fn modem_28_8k() -> Self {
        LinkProfile {
            rate_bps: 28_800,
            prop_delay: SimDuration::from_millis(5),
            loss_rate: 1e-5,
            queue_cells: 512,
        }
    }

    /// Time to serialize one 53-byte cell on this link.
    pub fn cell_time(&self) -> SimDuration {
        SimDuration::for_bits(crate::cell::CELL_BITS, self.rate_bps)
    }

    /// Wall time to move `bytes` of raw payload (ignoring cell overhead) —
    /// the back-of-envelope number experiments quote as "line rate".
    pub fn raw_transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration::for_bits(bytes * 8, self.rate_bps)
    }

    /// Time to serialize `cells` back-to-back cells — the wire length of a
    /// cell train. Deliberately `cells × cell_time()` (whole microseconds
    /// per cell) rather than `for_bits` over the total bit count, so a
    /// train lands on exactly the cumulative per-cell schedule it
    /// replaces.
    pub fn train_time(&self, cells: u64) -> SimDuration {
        SimDuration::from_micros(self.cell_time().as_micros() * cells)
    }
}

/// A traffic contract for policing: peak cell rate and a burst tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficContract {
    /// Peak cell rate, cells per second.
    pub pcr_cells_per_sec: f64,
    /// Burst tolerance, cells.
    pub burst_cells: f64,
}

impl TrafficContract {
    /// Contract admitting `bits_per_sec` of payload throughput with the
    /// given burst allowance.
    pub fn for_bit_rate(bits_per_sec: u64, burst_cells: f64) -> Self {
        let cells = bits_per_sec as f64 / (crate::cell::CELL_PAYLOAD as f64 * 8.0);
        TrafficContract {
            pcr_cells_per_sec: cells.max(1.0),
            burst_cells: burst_cells.max(1.0),
        }
    }
}

/// GCRA policer state (token bucket formulation).
#[derive(Debug, Clone)]
pub struct Policer {
    bucket: mits_sim::TokenBucket,
}

impl Policer {
    /// Policer for a contract.
    pub fn new(contract: TrafficContract) -> Self {
        Policer {
            bucket: mits_sim::TokenBucket::new(contract.pcr_cells_per_sec, contract.burst_cells),
        }
    }

    /// Does a cell arriving at `now` conform? Non-conforming cells are
    /// tagged CLP=1 by the caller.
    pub fn conforms(&mut self, now: SimTime) -> bool {
        self.bucket.try_take(now, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering() {
        assert!(ServiceClass::Cbr.priority() < ServiceClass::Vbr.priority());
        assert!(ServiceClass::Vbr.priority() < ServiceClass::Ubr.priority());
        assert!(ServiceClass::Ubr.priority() < ServiceClass::LEVELS);
    }

    #[test]
    fn cell_time_on_oc3() {
        // 424 bits / 155.52 Mb/s ≈ 2.7 µs → ceil 3 µs.
        assert_eq!(LinkProfile::atm_oc3().cell_time().as_micros(), 3);
        // Modem: 424 / 28 800 ≈ 14.7 ms.
        let t = LinkProfile::modem_28_8k().cell_time();
        assert!((14_000..15_000).contains(&t.as_micros()), "{t}");
    }

    #[test]
    fn transfer_time_sanity() {
        // 1 MB over ISDN 128k ≈ 65.5 s; over OC-3 ≈ 54 ms.
        let isdn = LinkProfile::isdn_128k().raw_transfer_time(1_048_576);
        assert!((60.0..70.0).contains(&isdn.as_secs_f64()), "{isdn}");
        let oc3 = LinkProfile::atm_oc3().raw_transfer_time(1_048_576);
        assert!(oc3.as_secs_f64() < 0.06, "{oc3}");
    }

    #[test]
    fn policer_enforces_pcr() {
        use mits_sim::SimTime;
        // 1000 cells/s, burst 2.
        let mut p = Policer::new(TrafficContract {
            pcr_cells_per_sec: 1000.0,
            burst_cells: 2.0,
        });
        let t = SimTime::from_secs(1);
        assert!(p.conforms(t));
        assert!(p.conforms(t));
        assert!(!p.conforms(t), "burst exhausted");
        assert!(p.conforms(t + SimDuration::from_millis(1)), "refilled");
    }

    #[test]
    fn contract_from_bit_rate() {
        let c = TrafficContract::for_bit_rate(1_500_000, 32.0);
        // 1.5 Mb/s over 384-bit payloads ≈ 3906 cells/s.
        assert!((3_900.0..3_910.0).contains(&c.pcr_cells_per_sec));
    }
}
