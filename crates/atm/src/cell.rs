//! The ATM cell: 53 bytes, 5 of header, 48 of payload.
//!
//! We model the header fields the simulator actually uses — VPI, VCI,
//! payload-type "end of AAL5 PDU" flag, and CLP — plus bookkeeping the
//! real header carries implicitly (which PDU and which position within it,
//! recoverable on real hardware from arrival order).
//!
//! The payload is a [`Payload`] view, normally a 48-byte window into the
//! PDU-wide buffer built by AAL5 segmentation: cloning a cell (which the
//! switch fabric, per-VC queues and retransmit buffers do constantly) bumps
//! a reference count instead of copying bytes.

use mits_sim::Payload;
use std::sync::{Arc, OnceLock};

/// Total cell size on the wire, bytes.
pub const CELL_SIZE: usize = 53;
/// Payload bytes per cell.
pub const CELL_PAYLOAD: usize = 48;
/// Header bytes per cell.
pub const CELL_HEADER: usize = CELL_SIZE - CELL_PAYLOAD;
/// Bits serialized per cell.
pub const CELL_BITS: u64 = (CELL_SIZE as u64) * 8;

/// All-zero 48-byte payload, shared by every freshly built cell.
fn zero_payload() -> Payload {
    static ZERO: OnceLock<Arc<[u8]>> = OnceLock::new();
    let arc = ZERO.get_or_init(|| Arc::from([0u8; CELL_PAYLOAD].as_slice()));
    Payload::from_arc(Arc::clone(arc))
}

/// One ATM cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtmCell {
    /// Virtual path identifier.
    pub vpi: u8,
    /// Virtual channel identifier (we use one global VC number space).
    pub vci: u16,
    /// Payload-type indicator bit 0: last cell of an AAL5 PDU.
    pub pdu_end: bool,
    /// Cell loss priority: `true` = eligible for early discard (tagged by
    /// the policer for non-conforming traffic).
    pub clp: bool,
    /// Which PDU this cell belongs to (sender-scoped sequence number).
    pub pdu_seq: u64,
    /// Cell index within its PDU.
    pub cell_index: u32,
    /// Payload (always [`CELL_PAYLOAD`] bytes; final cell is padded).
    pub payload: Payload,
}

impl AtmCell {
    /// Build a cell.
    pub fn new(vpi: u8, vci: u16, pdu_seq: u64, cell_index: u32, pdu_end: bool) -> Self {
        AtmCell {
            vpi,
            vci,
            pdu_end,
            clp: false,
            pdu_seq,
            cell_index,
            payload: zero_payload(),
        }
    }

    /// Copy payload bytes in (`data.len()` ≤ 48; the rest stays zero).
    pub fn with_payload(mut self, data: &[u8]) -> Self {
        assert!(data.len() <= CELL_PAYLOAD, "payload too large for a cell");
        let mut buf = [0u8; CELL_PAYLOAD];
        buf[..data.len()].copy_from_slice(data);
        self.payload = Payload::copy_from_slice(&buf);
        self
    }

    /// Adopt a 48-byte shared view as the payload — no copy. This is how
    /// AAL5 segmentation hands every cell a window into one PDU buffer.
    ///
    /// # Panics
    /// Panics unless `view` is exactly [`CELL_PAYLOAD`] bytes.
    pub fn with_payload_view(mut self, view: Payload) -> Self {
        assert!(view.len() == CELL_PAYLOAD, "cell view must be 48 bytes");
        self.payload = view;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_atm_sizes() {
        assert_eq!(CELL_SIZE, 53);
        assert_eq!(CELL_PAYLOAD, 48);
        assert_eq!(CELL_HEADER, 5);
        assert_eq!(CELL_BITS, 424);
    }

    #[test]
    fn payload_is_padded() {
        let c = AtmCell::new(0, 1, 0, 0, true).with_payload(b"abc");
        assert_eq!(&c.payload[..3], b"abc");
        assert!(c.payload[3..].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversize_payload_panics() {
        let _ = AtmCell::new(0, 1, 0, 0, false).with_payload(&[0u8; 49]);
    }

    #[test]
    fn payload_view_shares_storage() {
        let pdu = Payload::from(vec![7u8; 96]);
        let c = AtmCell::new(0, 1, 0, 0, false).with_payload_view(pdu.slice(48..96));
        assert!(Arc::ptr_eq(c.payload.backing(), pdu.backing()));
        let clone = c.clone();
        assert!(
            Arc::ptr_eq(clone.payload.backing(), pdu.backing()),
            "clone is a view too"
        );
    }

    #[test]
    #[should_panic(expected = "48 bytes")]
    fn short_view_panics() {
        let pdu = Payload::from(vec![0u8; 10]);
        let _ = AtmCell::new(0, 1, 0, 0, false).with_payload_view(pdu);
    }
}
