//! Transport over AAL5 — the TCP/UDP role of the prototype
//! ("the implementation makes use of the ATM network and the
//! communication protocols (TCP/IP/UDP) for communication", §5.1.2).
//!
//! Datagram service is the network itself (one `send` = one PDU, lost
//! PDUs are simply gone). [`ReliableChannel`] adds what the courseware
//! database protocol needs: ordered, loss-recovering message delivery
//! using a sliding window with cumulative acks and timeout retransmission.
//!
//! One `ReliableChannel` is one *endpoint*; a connection is two endpoints
//! over a pair of opposed VCs. Both endpoints can send (full duplex).

use crate::network::{AtmNetwork, Delivery, NetError, VcId};
use bytes::{BufMut, Bytes, BytesMut};
use mits_sim::{SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// Maximum segment payload (fits comfortably in one AAL5 PDU while
/// keeping retransmission granularity useful).
pub const MSS: usize = 8 * 1024;
/// Frame type tags.
const FT_DATA: u8 = 0;
const FT_ACK: u8 = 1;
/// Per-segment header: type(1) + seq(4) + flags(1).
const HDR: usize = 6;
const FLAG_LAST_FRAG: u8 = 1;

/// Events surfaced to the application.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportEvent {
    /// A complete, ordered message arrived.
    Message(Bytes),
    /// All segments of the `n`-th message we sent have been acknowledged.
    Sent(u64),
}

/// Statistics for a channel endpoint.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelStats {
    /// Segments transmitted (including retransmissions).
    pub segments_tx: u64,
    /// Retransmissions alone.
    pub retransmissions: u64,
    /// Segments received in order.
    pub segments_rx: u64,
    /// Duplicate segments discarded.
    pub duplicates: u64,
    /// Acks transmitted.
    pub acks_tx: u64,
}

/// One reliable endpoint.
pub struct ReliableChannel {
    /// VC we transmit on (data and acks).
    out_vc: VcId,
    /// VC we expect deliveries from.
    in_vc: VcId,
    window: usize,
    timeout: SimDuration,
    // Sender state.
    next_seq: u32,
    send_buffer: VecDeque<(u32, Bytes)>, // not yet admitted to window
    unacked: BTreeMap<u32, (Bytes, SimTime, u32)>, // seq → (frame, deadline, retries)
    msg_last_seq: VecDeque<(u32, u64)>,  // last seq of each message → msg index
    next_msg_id: u64,
    // Receiver state.
    rx_next: u32,
    rx_ooo: BTreeMap<u32, Bytes>, // out-of-order frames
    rx_assembly: BytesMut,
    /// Largest reassembled message so far — `freeze` gives the buffer
    /// away, so the next message pre-reserves this much instead of
    /// re-growing through doubling reallocations.
    rx_high_water: usize,
    /// Counters.
    pub stats: ChannelStats,
}

impl ReliableChannel {
    /// An endpoint sending on `out_vc`, receiving on `in_vc`.
    pub fn new(out_vc: VcId, in_vc: VcId, window: usize, timeout: SimDuration) -> Self {
        assert!(window > 0, "zero window");
        ReliableChannel {
            out_vc,
            in_vc,
            window,
            timeout,
            next_seq: 0,
            send_buffer: VecDeque::new(),
            unacked: BTreeMap::new(),
            msg_last_seq: VecDeque::new(),
            next_msg_id: 0,
            rx_next: 0,
            rx_ooo: BTreeMap::new(),
            rx_assembly: BytesMut::new(),
            rx_high_water: 0,
            stats: ChannelStats::default(),
        }
    }

    /// Queue a message for reliable delivery. Returns its message index
    /// (reported back via [`TransportEvent::Sent`]).
    pub fn send_message(&mut self, net: &mut AtmNetwork, msg: &[u8]) -> Result<u64, NetError> {
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        let nfrags = msg.len().div_ceil(MSS).max(1);
        for (i, chunk) in msg.chunks(MSS).enumerate() {
            self.queue_segment(chunk, i == nfrags - 1);
        }
        if msg.is_empty() {
            self.queue_segment(&[], true);
        }
        self.msg_last_seq
            .push_back((self.next_seq.wrapping_sub(1), msg_id));
        self.pump(net)?;
        Ok(msg_id)
    }

    fn queue_segment(&mut self, payload: &[u8], last: bool) {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let mut frame = BytesMut::with_capacity(HDR + payload.len());
        frame.put_u8(FT_DATA);
        frame.put_u32(seq);
        frame.put_u8(if last { FLAG_LAST_FRAG } else { 0 });
        frame.put_slice(payload);
        self.send_buffer.push_back((seq, frame.freeze()));
    }

    /// Admit buffered segments to the window and transmit them.
    fn pump(&mut self, net: &mut AtmNetwork) -> Result<(), NetError> {
        let now = net.now();
        while self.unacked.len() < self.window {
            let Some((seq, frame)) = self.send_buffer.pop_front() else {
                break;
            };
            net.send(self.out_vc, frame.clone())?;
            self.stats.segments_tx += 1;
            self.unacked.insert(seq, (frame, now + self.timeout, 0));
        }
        Ok(())
    }

    /// Handle a network delivery. Returns application events. Deliveries
    /// for other VCs are ignored (returns empty).
    pub fn on_delivery(
        &mut self,
        net: &mut AtmNetwork,
        d: &Delivery,
    ) -> Result<Vec<TransportEvent>, NetError> {
        if d.vc != self.in_vc || d.payload.is_empty() {
            return Ok(Vec::new());
        }
        match d.payload[0] {
            FT_ACK => self.on_ack(net, &d.payload),
            FT_DATA => self.on_data(net, &d.payload),
            _ => Ok(Vec::new()),
        }
    }

    fn on_ack(
        &mut self,
        net: &mut AtmNetwork,
        frame: &[u8],
    ) -> Result<Vec<TransportEvent>, NetError> {
        if frame.len() < 5 {
            return Ok(Vec::new());
        }
        let cum = u32::from_be_bytes(frame[1..5].try_into().expect("4 bytes"));
        // Cumulative: everything below `cum` is acknowledged.
        let acked: Vec<u32> = self.unacked.range(..cum).map(|(s, _)| *s).collect();
        for s in acked {
            self.unacked.remove(&s);
        }
        let mut events = Vec::new();
        while let Some((last_seq, msg_id)) = self.msg_last_seq.front().copied() {
            if last_seq < cum {
                events.push(TransportEvent::Sent(msg_id));
                self.msg_last_seq.pop_front();
            } else {
                break;
            }
        }
        self.pump(net)?;
        Ok(events)
    }

    fn on_data(
        &mut self,
        net: &mut AtmNetwork,
        frame: &Bytes,
    ) -> Result<Vec<TransportEvent>, NetError> {
        if frame.len() < HDR {
            return Ok(Vec::new());
        }
        let seq = u32::from_be_bytes(frame[1..5].try_into().expect("4 bytes"));
        let body = frame.slice(5..); // flags + payload — zero-copy view
        let mut events = Vec::new();
        if seq == self.rx_next {
            self.accept(body, &mut events);
            // Drain any buffered successors.
            while let Some(b) = self.rx_ooo.remove(&self.rx_next) {
                self.accept(b, &mut events);
            }
        } else if seq > self.rx_next {
            self.rx_ooo.entry(seq).or_insert(body);
        } else {
            self.stats.duplicates += 1;
        }
        // Ack the highest in-order point.
        let mut ack = BytesMut::with_capacity(5);
        ack.put_u8(FT_ACK);
        ack.put_u32(self.rx_next);
        net.send(self.out_vc, ack.freeze())?;
        self.stats.acks_tx += 1;
        Ok(events)
    }

    fn accept(&mut self, body: Bytes, events: &mut Vec<TransportEvent>) {
        self.stats.segments_rx += 1;
        self.rx_next = self.rx_next.wrapping_add(1);
        let flags = body[0];
        if flags & FLAG_LAST_FRAG != 0 && self.rx_assembly.is_empty() {
            // Single-fragment message: hand the wire bytes straight up
            // without staging them through the assembly buffer.
            events.push(TransportEvent::Message(body.slice(1..)));
            return;
        }
        if self.rx_assembly.is_empty() {
            self.rx_assembly.reserve(self.rx_high_water);
        }
        self.rx_assembly.extend_from_slice(&body[1..]);
        if flags & FLAG_LAST_FRAG != 0 {
            self.rx_high_water = self.rx_high_water.max(self.rx_assembly.len());
            let msg = std::mem::take(&mut self.rx_assembly).freeze();
            events.push(TransportEvent::Message(msg));
        }
    }

    /// The VC this endpoint receives on — lets a pump loop route a
    /// [`Delivery`] to the one channel that owns it instead of offering
    /// it to every channel in the system.
    pub fn in_vc(&self) -> VcId {
        self.in_vc
    }

    /// Retransmit timed-out segments. Call whenever the clock advances.
    pub fn on_tick(&mut self, net: &mut AtmNetwork) -> Result<(), NetError> {
        let now = net.now();
        let expired: Vec<u32> = self
            .unacked
            .iter()
            .filter(|(_, (_, deadline, _))| *deadline <= now)
            .map(|(s, _)| *s)
            .collect();
        for seq in expired {
            let (frame, _, retries) = self.unacked.get(&seq).expect("present").clone();
            // `frame` is a Bytes view — this clone is a refcount bump, not
            // a copy of the segment.
            net.send(self.out_vc, frame.clone())?;
            self.stats.segments_tx += 1;
            self.stats.retransmissions += 1;
            // Exponential backoff on the retransmission timer.
            let backoff = self.timeout * (1u64 << retries.min(6));
            self.unacked
                .insert(seq, (frame, now + backoff, retries + 1));
        }
        Ok(())
    }

    /// Earliest retransmission deadline (drive your advance loop to it).
    pub fn next_timeout(&self) -> Option<SimTime> {
        self.unacked.values().map(|(_, d, _)| *d).min()
    }

    /// True when nothing is pending on the send side.
    pub fn send_idle(&self) -> bool {
        self.unacked.is_empty() && self.send_buffer.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{LinkProfile, ServiceClass};
    use crate::network::AtmNetwork;

    struct Pair {
        net: AtmNetwork,
        a: ReliableChannel,
        b: ReliableChannel,
    }

    fn pair_over(profile: LinkProfile, seed: u64) -> Pair {
        let mut net = AtmNetwork::new(seed);
        let ha = net.add_host("A");
        let hb = net.add_host("B");
        net.connect(ha, hb, profile);
        let ab = net.open_vc(&[ha, hb], ServiceClass::Ubr, None).unwrap();
        let ba = net.open_vc(&[hb, ha], ServiceClass::Ubr, None).unwrap();
        let a = ReliableChannel::new(ab, ba, 16, SimDuration::from_millis(50));
        let b = ReliableChannel::new(ba, ab, 16, SimDuration::from_millis(50));
        Pair { net, a, b }
    }

    /// Pump the pair until quiescent; collect events per endpoint.
    fn run(p: &mut Pair, deadline: SimTime) -> (Vec<TransportEvent>, Vec<TransportEvent>) {
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        loop {
            let step_to = p
                .net
                .now()
                .checked_add(SimDuration::from_millis(10))
                .unwrap()
                .min(deadline);
            let deliveries = p.net.advance(step_to);
            for d in &deliveries {
                ea.extend(p.a.on_delivery(&mut p.net, d).unwrap());
                eb.extend(p.b.on_delivery(&mut p.net, d).unwrap());
            }
            p.a.on_tick(&mut p.net).unwrap();
            p.b.on_tick(&mut p.net).unwrap();
            let done = p.net.idle() && p.a.send_idle() && p.b.send_idle();
            if done || p.net.now() >= deadline {
                return (ea, eb);
            }
        }
    }

    #[test]
    fn message_crosses_clean_link() {
        let mut p = pair_over(LinkProfile::atm_oc3(), 1);
        let msg = vec![42u8; 30_000]; // 4 fragments
        let id = p.a.send_message(&mut p.net, &msg).unwrap();
        let (ea, eb) = run(&mut p, SimTime::from_secs(10));
        assert!(eb
            .iter()
            .any(|e| matches!(e, TransportEvent::Message(m) if m[..] == msg[..])));
        assert!(ea.contains(&TransportEvent::Sent(id)));
        assert_eq!(p.a.stats.retransmissions, 0, "clean link needs no ARQ");
    }

    #[test]
    fn empty_message_round_trips() {
        let mut p = pair_over(LinkProfile::atm_oc3(), 1);
        p.a.send_message(&mut p.net, &[]).unwrap();
        let (_, eb) = run(&mut p, SimTime::from_secs(1));
        assert!(eb
            .iter()
            .any(|e| matches!(e, TransportEvent::Message(m) if m.is_empty())));
    }

    #[test]
    fn recovers_from_heavy_cell_loss() {
        let profile = LinkProfile {
            loss_rate: 0.002, // per cell → several PDU losses across the run
            ..LinkProfile::atm_oc3()
        };
        let mut p = pair_over(profile, 7);
        let msg: Vec<u8> = (0..200_000usize).map(|i| (i % 253) as u8).collect();
        p.a.send_message(&mut p.net, &msg).unwrap();
        let (_, eb) = run(&mut p, SimTime::from_secs(60));
        let delivered = eb.iter().find_map(|e| match e {
            TransportEvent::Message(m) => Some(m.clone()),
            _ => None,
        });
        let delivered = delivered.expect("message must eventually arrive");
        assert_eq!(&delivered[..], &msg[..], "content intact after ARQ");
        assert!(p.a.stats.retransmissions > 0, "loss must have forced ARQ");
    }

    #[test]
    fn ordered_delivery_of_many_messages() {
        let mut p = pair_over(
            LinkProfile {
                loss_rate: 0.001,
                ..LinkProfile::atm_oc3()
            },
            3,
        );
        for i in 0..20u8 {
            p.a.send_message(&mut p.net, &vec![i; 2_000]).unwrap();
        }
        let (_, eb) = run(&mut p, SimTime::from_secs(60));
        let messages: Vec<Bytes> = eb
            .into_iter()
            .filter_map(|e| match e {
                TransportEvent::Message(m) => Some(m),
                _ => None,
            })
            .collect();
        assert_eq!(messages.len(), 20);
        for (i, m) in messages.iter().enumerate() {
            assert!(m.iter().all(|&b| b == i as u8), "message {i} in order");
        }
    }

    #[test]
    fn full_duplex() {
        let mut p = pair_over(LinkProfile::atm_oc3(), 5);
        p.a.send_message(&mut p.net, b"from A").unwrap();
        p.b.send_message(&mut p.net, b"from B").unwrap();
        let (ea, eb) = run(&mut p, SimTime::from_secs(5));
        assert!(eb
            .iter()
            .any(|e| matches!(e, TransportEvent::Message(m) if &m[..] == b"from A")));
        assert!(ea
            .iter()
            .any(|e| matches!(e, TransportEvent::Message(m) if &m[..] == b"from B")));
    }

    #[test]
    fn window_limits_outstanding_segments() {
        let mut net = AtmNetwork::new(1);
        let ha = net.add_host("A");
        let hb = net.add_host("B");
        net.connect(ha, hb, LinkProfile::modem_28_8k());
        let ab = net.open_vc(&[ha, hb], ServiceClass::Ubr, None).unwrap();
        let ba = net.open_vc(&[hb, ha], ServiceClass::Ubr, None).unwrap();
        let mut a = ReliableChannel::new(ab, ba, 2, SimDuration::from_secs(30));
        // 10 fragments, window 2: only 2 transmitted initially.
        a.send_message(&mut net, &vec![0u8; MSS * 10]).unwrap();
        assert_eq!(a.stats.segments_tx, 2);
        assert!(!a.send_idle());
    }

    #[test]
    fn duplicate_segments_counted_not_redelivered() {
        // Long ack delay forces sender timeout → duplicate at receiver.
        let profile = LinkProfile {
            prop_delay: SimDuration::from_millis(100),
            ..LinkProfile::atm_oc3()
        };
        let mut p = pair_over(profile, 2);
        // Timeout (50 ms) < RTT (200 ms): every segment retransmits at
        // least once.
        p.a.send_message(&mut p.net, b"dup test").unwrap();
        let (_, eb) = run(&mut p, SimTime::from_secs(10));
        let delivered = eb
            .iter()
            .filter(|e| matches!(e, TransportEvent::Message(_)))
            .count();
        assert_eq!(delivered, 1, "exactly one delivery despite duplicates");
        assert!(p.b.stats.duplicates > 0, "duplicates were seen and dropped");
    }
}
