//! # mits-atm — the broadband substrate of MITS
//!
//! The prototype in the paper ran on OCRInet, "an R&D ATM network in the
//! Ottawa region" (§5.1.1), chosen because "the advancement of B-ISDN and
//! ATM technology has provided a prospective solution to deliver
//! multimedia and hypermedia information through a computer network in a
//! fast and quality manner" (§1.3.3). We have no OCRInet, so this crate
//! *is* the network: a cell-level discrete-event simulator with
//!
//! * 53-byte **cells** (5-byte header carrying VPI/VCI/PTI/CLP) — [`cell`];
//! * **AAL5** segmentation and reassembly with length + CRC-32 trailer —
//!   [`aal5`];
//! * **virtual circuits** routed across output-queued switches with
//!   per-service-class priority queues (CBR > VBR > UBR) and GCRA
//!   (leaky-bucket) policing — [`network`], [`link`];
//! * configurable **link profiles**, including the narrowband baselines
//!   the paper argues against (28.8 kb/s modem, 128 kb/s ISDN, shared
//!   10 Mb/s LAN) and OC-3 ATM at 155.52 Mb/s — [`link`];
//! * a small **transport layer** (datagram + stop-and-wait-window ARQ) that
//!   plays the prototype's TCP/UDP role — [`transport`];
//! * traffic **sources** (CBR, VBR video from MPEG frame models, on-off) —
//!   [`traffic`].
//!
//! Like the MHEG engine, the network is clock-driven and deterministic:
//! callers `send` PDUs, `advance(to)` the clock, and collect
//! [`network::Delivery`] records; QoS statistics (cell transfer delay,
//! delay variation, loss ratio) accumulate per VC for the experiment
//! tables (E-BB, F3.5).

pub mod aal5;
pub mod cell;
pub mod fault;
pub mod link;
pub mod network;
pub mod traffic;
pub mod transport;

pub use aal5::{reassemble, segment, Aal5Error};
pub use cell::{AtmCell, CELL_PAYLOAD, CELL_SIZE};
pub use fault::{
    BurstLoss, CrashEvent, CrashSchedule, FaultKind, FaultPlan, FaultStats, LinkFaults,
};
pub use link::{
    LinkProfile, LinkTelemetry, LinkWindowSample, ServeKind, ServiceClass, TELEMETRY_RING_CAP,
    TELEMETRY_WINDOW_US,
};
pub use network::{AtmNetwork, Delivery, NetError, NetScratch, NodeId, TrainStats, VcId, VcStats};
pub use traffic::{CbrSource, OnOffSource, VbrVideoSource};
pub use transport::{ReliableChannel, TransportEvent};
