//! # mits-core — the Multimedia Interactive TeleLearning System
//!
//! This crate is the paper's primary contribution assembled: the five
//! components of the generic architecture (Fig 3.1) — media production
//! center, courseware author site, courseware database, courseware user
//! sites, and the on-line facilitator — "distributed over a computer
//! network and work\[ing\] together to offer an interactive multimedia
//! courseware service".
//!
//! * [`system`] — [`system::MitsSystem`]: builds the network topology
//!   (hosts + switch fabric + VC pairs), runs the database server behind
//!   the reliable transport, and pumps the whole distributed system on
//!   one virtual clock. Publishing (author → database) and fetching
//!   (user ← database) are real protocol exchanges over simulated ATM.
//! * [`cod`] — the **Course-On-Demand** service (§3.1.1): end-to-end
//!   sessions that fetch scenario objects, prefetch scene content on
//!   demand ("content objects of large size are transmitted only at the
//!   time they are requested", §3.4.2), present through the navigator's
//!   engine, and report startup latency / per-scene fetch stalls.
//! * [`stack`] — the layered interchange model of Fig 3.2 with per-layer
//!   cost accounting (experiment F3.2).
//! * [`stream`] — streamed video delivery over competing link profiles
//!   (experiment E-BB): frame lateness against presentation deadlines.
//! * [`models`] — the three TeleLearning infrastructures of §1.3
//!   (broadcast, CD-ROM, network COD) under one accessibility/
//!   interactivity metric (experiment E-MODEL), and the content-delivery
//!   ablation of §3.4.2 (experiment E-REUSE).

pub mod campus;
pub mod cod;
pub mod models;
pub mod stack;
pub mod stream;
pub mod system;

pub use campus::{
    default_campus_slos, edge_cache_slos, fault_storm_slos, host_cores, sharded_workloads, Campus,
    CampusReport, CampusRollup, CampusWorkload, FaultStorm, ReplayReport, ReportSink,
    SessionReport, SessionSpec, ShardTrace,
};
#[allow(deprecated)]
pub use campus::{run_campus, CampusConfig, ShardReport};
pub use cod::{CodReport, CodSession};
pub use models::{compare_delivery_models, reuse_ablation, ModelMetrics, ReuseReport};
pub use stack::{layer_breakdown, LayerCost};
pub use stream::{stream_video_over, StreamReport};
pub use system::{ClientId, MitsSystem, SystemConfig};
