//! Course-On-Demand sessions (§3.1.1): the end-to-end service the whole
//! system exists for. "Courseware is stored in a database after being
//! created, and is provided on demand for the presentation on an end-user
//! system."
//!
//! A [`CodSession`] fetches a courseware's scenario objects, loads them
//! into the navigator's presentation engine, and prefetches each unit's
//! bulk content *when the unit is entered* — the MITS storage strategy
//! (§3.4.2). The presentation clock freezes while content is in flight,
//! so fetch time is observable as **startup latency** (first unit) or
//! **stall** (later units): the exact quantities experiment E-BB and the
//! pipeline experiment F3.3 report.

use crate::system::{ClientId, MitsSystem, SystemError};
use mits_media::MediaId;
use mits_mheg::{MhegId, ObjectBody};
use mits_navigator::{NavError, PresentationSession};
use mits_sim::{SimDuration, SimTime, SpanId};
use std::collections::HashMap;

/// Outcome of a full course playback.
#[derive(Debug, Clone, Default)]
pub struct CodReport {
    /// Time to fetch the scenario object closure.
    pub scenario_fetch: SimDuration,
    /// Time to prefetch the first unit's content (completes "startup").
    pub first_unit_fetch: SimDuration,
    /// Stall per later unit entered: (unit, fetch time).
    pub stalls: Vec<(usize, SimDuration)>,
    /// Presentation (media) time played.
    pub played: SimDuration,
    /// Scenario bytes + content bytes that crossed the network.
    pub bytes_transferred: u64,
    /// Did the course run to completion?
    pub completed: bool,
    /// Media whose content never arrived: `(unit, media)`. The session
    /// keeps playing with placeholders instead of aborting.
    pub degraded: Vec<(usize, MediaId)>,
}

impl CodReport {
    /// Startup latency: scenario + first-unit content.
    pub fn startup(&self) -> SimDuration {
        self.scenario_fetch + self.first_unit_fetch
    }

    /// Total stall time after startup.
    pub fn total_stall(&self) -> SimDuration {
        self.stalls
            .iter()
            .fold(SimDuration::ZERO, |acc, (_, d)| acc + *d)
    }

    /// Did any content fail to arrive (placeholder playback)?
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty()
    }
}

/// One student's Course-On-Demand session.
pub struct CodSession<'a> {
    system: &'a mut MitsSystem,
    client: ClientId,
    presentation: PresentationSession,
    /// Media referenced by each unit (unit index → media ids).
    unit_media: Vec<Vec<MediaId>>,
    /// Element name presenting each media id (for degradation marks).
    media_names: HashMap<MediaId, String>,
    fetched_units: Vec<bool>,
    /// The session's root trace span: stage spans (`cod.open`,
    /// `cod.prefetch`) and every database request issued on the
    /// session's behalf nest under it.
    session_span: SpanId,
    finished: bool,
    /// Accumulating report.
    pub report: CodReport,
}

impl<'a> CodSession<'a> {
    /// Open a session: fetch the scenario closure of `root` and prepare
    /// the presentation for `course_name`.
    pub fn open(
        system: &'a mut MitsSystem,
        client: ClientId,
        root: MhegId,
        course_name: &str,
    ) -> Result<Self, SystemError> {
        let tr = system.tracer.clone();
        let now = system.now();
        let session_span = tr.root_span("cod.session", now);
        tr.attr(session_span, "course", course_name);
        tr.attr_u64(session_span, "client", client.0 as u64);
        tr.push_context(session_span);
        let stage = tr.child(session_span, "cod.open", now);
        tr.push_context(stage);
        let bytes_before = system.bytes_to_client(client);
        let fetched = system.fetch_courseware(client, root);
        let opened_at = system.now();
        tr.pop_context();
        tr.end(stage, opened_at);
        let (objects, scenario_fetch) = match fetched {
            Ok(v) => v,
            Err(e) => {
                tr.pop_context();
                tr.end(session_span, opened_at);
                return Err(e);
            }
        };

        // Map units to the media their content objects reference.
        let mut by_id: HashMap<MhegId, &mits_mheg::MhegObject> = HashMap::new();
        let mut media_names = HashMap::new();
        for o in &objects {
            by_id.insert(o.id, o);
            if let Some(m) = o.referenced_media() {
                media_names.insert(m, o.info.name.clone());
            }
        }
        let entry = match objects
            .iter()
            .find(|o| matches!(o.body, ObjectBody::Composite(_)) && o.info.name == course_name)
        {
            Some(e) => e,
            None => {
                tr.pop_context();
                tr.end(session_span, opened_at);
                return Err(SystemError::Protocol(format!(
                    "no entry composite '{course_name}'"
                )));
            }
        };
        let units: Vec<MhegId> = match &entry.body {
            ObjectBody::Composite(c) => c.components.clone(),
            _ => unreachable!("matched composite above"),
        };
        let unit_media: Vec<Vec<MediaId>> = units
            .iter()
            .map(|u| {
                let mut media = Vec::new();
                let mut stack = vec![*u];
                let mut seen = std::collections::HashSet::new();
                while let Some(id) = stack.pop() {
                    if !seen.insert(id) {
                        continue;
                    }
                    if let Some(obj) = by_id.get(&id) {
                        if let Some(m) = obj.referenced_media() {
                            media.push(m);
                        }
                        stack.extend(obj.referenced_objects());
                    }
                }
                media
            })
            .collect();

        let presentation = match PresentationSession::load(objects, course_name) {
            Ok(p) => p,
            Err(e) => {
                tr.pop_context();
                tr.end(session_span, opened_at);
                return Err(SystemError::Protocol(e.to_string()));
            }
        };
        let fetched_units = vec![false; unit_media.len()];
        let mut report = CodReport {
            scenario_fetch,
            ..Default::default()
        };
        report.bytes_transferred = system.bytes_to_client(client) - bytes_before;
        Ok(CodSession {
            system,
            client,
            presentation,
            unit_media,
            media_names,
            fetched_units,
            session_span,
            finished: false,
            report,
        })
    }

    /// Prefetch the content of `unit` (idempotent). Returns fetch time.
    fn prefetch_unit(&mut self, unit: usize) -> Result<SimDuration, SystemError> {
        if self.fetched_units.get(unit).copied().unwrap_or(true) {
            return Ok(SimDuration::ZERO);
        }
        let tr = self.system.tracer.clone();
        let stage = tr.child(self.session_span, "cod.prefetch", self.system.now());
        tr.attr_u64(stage, "unit", unit as u64);
        tr.push_context(stage);
        let res = self.prefetch_unit_inner(unit);
        tr.pop_context();
        tr.end(stage, self.system.now());
        res
    }

    /// The fetch loop behind [`CodSession::prefetch_unit`] — split out so
    /// the stage span closes on every exit path.
    fn prefetch_unit_inner(&mut self, unit: usize) -> Result<SimDuration, SystemError> {
        let bytes_before = self.system.bytes_to_client(self.client);
        let mut total = SimDuration::ZERO;
        for media in self.unit_media[unit].clone() {
            match self.system.fetch_content(self.client, media) {
                Ok((m, t)) => {
                    debug_assert!(m.verify(), "content corrupted in flight");
                    total += t;
                }
                // Graceful degradation: a missing or unreachable content
                // object downgrades its element to a placeholder instead
                // of killing the whole session. Anything else (protocol
                // breakage, VC failure) still aborts.
                Err(SystemError::Timeout) => {
                    self.report.degraded.push((unit, media));
                    if let Some(name) = self.media_names.get(&media) {
                        self.presentation.mark_degraded(name);
                    }
                }
                Err(SystemError::Db(e))
                    if e.is_retryable() || matches!(e, mits_db::DbError::NotFound(_)) =>
                {
                    self.report.degraded.push((unit, media));
                    if let Some(name) = self.media_names.get(&media) {
                        self.presentation.mark_degraded(name);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        self.fetched_units[unit] = true;
        self.report.bytes_transferred += self.system.bytes_to_client(self.client) - bytes_before;
        Ok(total)
    }

    /// Begin presentation (startup: prefetch unit 0, then start).
    pub fn start(&mut self) -> Result<(), SystemError> {
        self.report.first_unit_fetch = self.prefetch_unit(0)?;
        self.presentation
            .start()
            .map_err(|e| SystemError::Protocol(e.to_string()))?;
        Ok(())
    }

    /// Resume at a saved unit (§5.4).
    pub fn resume(&mut self, unit: usize) -> Result<(), SystemError> {
        self.report.first_unit_fetch = self.prefetch_unit(unit)?;
        self.presentation
            .resume(unit)
            .map_err(|e| SystemError::Protocol(e.to_string()))?;
        Ok(())
    }

    /// Play forward by `step`, prefetching (and recording stalls) when a
    /// new unit is entered. Returns the current unit.
    pub fn play(&mut self, step: SimDuration) -> Result<Option<usize>, SystemError> {
        let before = self.presentation.current_unit();
        let target = self.presentation.now() + step;
        self.presentation
            .advance(target)
            .map_err(|e| SystemError::Protocol(e.to_string()))?;
        self.report.played += step;
        let after = self.presentation.current_unit();
        if after != before {
            if let Some(u) = after {
                let stall = self.prefetch_unit(u)?;
                if !stall.is_zero() {
                    self.system.tracer.event_with(
                        Some(self.session_span),
                        "cod.stall",
                        self.system.now(),
                        &[("unit", u.to_string()), ("stall", stall.to_string())],
                    );
                    self.report.stalls.push((u, stall));
                }
            }
        }
        if self.presentation.completed() {
            self.report.completed = true;
        }
        Ok(after)
    }

    /// Auto-play until completion or `max` presentation time, in 100 ms
    /// ticks (serial playback; no interaction).
    pub fn auto_play(&mut self, max: SimDuration) -> Result<(), SystemError> {
        let tick = SimDuration::from_millis(100);
        let mut played = SimDuration::ZERO;
        while !self.presentation.completed() && played < max {
            self.play(tick)?;
            played += tick;
        }
        if self.presentation.completed() {
            self.report.completed = true;
        }
        Ok(())
    }

    /// Click a named element (interactive courses).
    pub fn click(&mut self, name: &str) -> Result<(), NavError> {
        let res = self.presentation.click(name);
        if res.is_ok() {
            // A click may have jumped units: prefetch the new one.
            if let Some(u) = self.presentation.current_unit() {
                if let Ok(stall) = self.prefetch_unit(u) {
                    if !stall.is_zero() {
                        self.report.stalls.push((u, stall));
                    }
                }
            }
        }
        res
    }

    /// Current unit.
    pub fn current_unit(&self) -> Option<usize> {
        self.presentation.current_unit()
    }

    /// Completed?
    pub fn completed(&self) -> bool {
        self.presentation.completed()
    }

    /// Presentation clock.
    pub fn presentation_now(&self) -> SimTime {
        self.presentation.now()
    }

    /// Borrow the presentation (rendering, assertions).
    pub fn presentation(&self) -> &PresentationSession {
        &self.presentation
    }

    /// The session's root trace span — feed it to
    /// [`mits_sim::Tracer::waterfall`] for the latency breakdown.
    pub fn root_span(&self) -> SpanId {
        self.session_span
    }

    /// Close the session's root span and export every layer's counters
    /// (network, servers, clients, MHEG engine, presentation) into the
    /// system's [`mits_sim::MetricsRegistry`]. Idempotent; call it when
    /// playback is over.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let now = self.system.now();
        let tr = self.system.tracer.clone();
        tr.pop_context();
        tr.attr(
            self.session_span,
            "completed",
            if self.report.completed {
                "true"
            } else {
                "false"
            },
        );
        tr.attr_u64(
            self.session_span,
            "bytes_transferred",
            self.report.bytes_transferred,
        );
        tr.attr_u64(
            self.session_span,
            "degraded",
            self.report.degraded.len() as u64,
        );
        tr.end(self.session_span, now);
        self.presentation.export_metrics(&self.system.metrics);
        self.system.export_metrics();
        // Session-outcome counters, so a campus rollup can compute the
        // degraded fraction and stall totals without keeping CodReports.
        let m = &self.system.metrics;
        m.counter_set("cod.sessions", 1);
        m.counter_set(
            "cod.sessions_degraded",
            u64::from(self.report.is_degraded()),
        );
        m.counter_set("cod.sessions_completed", u64::from(self.report.completed));
        m.counter_set("cod.stalls", self.report.stalls.len() as u64);
        m.counter_set("cod.degraded_units", self.report.degraded.len() as u64);
        m.counter_set("cod.stall_time_us", self.report.total_stall().as_micros());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use mits_atm::LinkProfile;
    use mits_author::{
        compile_imd, Behavior, BehaviorAction, BehaviorCondition, ElementKind, ImDocument, Scene,
        Section, Subsection, TimelineEntry,
    };
    use mits_media::{CaptureSpec, MediaFormat, MediaObject, ProductionCenter, VideoDims};
    use mits_mheg::MhegObject;

    /// Two-scene course: 1 s video then 1 s caption, plus a skip button.
    fn course() -> (Vec<MhegObject>, Vec<MediaObject>, MhegId, &'static str) {
        let mut pc = ProductionCenter::new(3);
        let clip = pc.capture(&CaptureSpec::video(
            "intro.mpg",
            MediaFormat::Mpeg,
            SimDuration::from_secs(1),
            VideoDims::new(160, 120),
        ));
        let img = pc.capture(&CaptureSpec::image(
            "diagram.gif",
            MediaFormat::Gif,
            VideoDims::new(320, 240),
        ));
        let mut doc = ImDocument::new("COD Course");
        doc.sections.push(Section {
            title: "s".into(),
            subsections: vec![Subsection {
                title: "ss".into(),
                scenes: vec![
                    Scene::new("video-scene")
                        .element("v", ElementKind::Media((&clip).into()))
                        .element("skip", ElementKind::Button("Skip".into()))
                        .entry(TimelineEntry::at_start("v"))
                        .entry(TimelineEntry::at_start("skip"))
                        .behavior(Behavior::when(
                            BehaviorCondition::Clicked("skip".into()),
                            vec![BehaviorAction::NextScene],
                        )),
                    Scene::new("image-scene")
                        .element("d", ElementKind::Media((&img).into()))
                        .element("t", ElementKind::Caption("the end".into()))
                        .entry(TimelineEntry::at_start("d").for_duration(SimDuration::from_secs(1)))
                        .entry(
                            TimelineEntry::at_start("t").for_duration(SimDuration::from_secs(1)),
                        ),
                ],
            }],
        });
        let compiled = compile_imd(60, &doc);
        (
            compiled.objects,
            vec![clip, img],
            compiled.root,
            "COD Course",
        )
    }

    #[test]
    fn full_cod_pipeline_completes() {
        let (objects, media, root, name) = course();
        let mut sys = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
        sys.publish(&objects, &media).unwrap();
        let mut session = CodSession::open(&mut sys, ClientId(0), root, name).unwrap();
        session.start().unwrap();
        session.auto_play(SimDuration::from_secs(10)).unwrap();
        let r = &session.report;
        assert!(r.completed, "course finished");
        assert!(r.scenario_fetch > SimDuration::ZERO);
        assert!(r.first_unit_fetch > SimDuration::ZERO, "video prefetched");
        assert_eq!(r.stalls.len(), 1, "image fetched entering scene 2");
        assert!(r.bytes_transferred > 150_000, "~190 kB video crossed");
    }

    #[test]
    fn narrowband_startup_dwarfs_broadband() {
        let (objects, media, root, name) = course();
        let mut startups = Vec::new();
        for profile in [LinkProfile::atm_oc3(), LinkProfile::modem_28_8k()] {
            let mut sys =
                MitsSystem::build(&SystemConfig::broadband(1).with_access(profile)).unwrap();
            sys.load_directly(objects.clone(), media.clone());
            let mut session = CodSession::open(&mut sys, ClientId(0), root, name).unwrap();
            session.start().unwrap();
            startups.push(session.report.startup());
        }
        // 1 s of MPEG ≈ 190 kB ≈ 53 s over a modem vs ~10 ms over OC-3.
        assert!(
            startups[1].as_secs_f64() > 100.0 * startups[0].as_secs_f64(),
            "modem {} vs oc3 {}",
            startups[1],
            startups[0]
        );
    }

    #[test]
    fn click_driven_session() {
        let (objects, media, root, name) = course();
        let mut sys = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
        sys.load_directly(objects, media);
        let mut session = CodSession::open(&mut sys, ClientId(0), root, name).unwrap();
        session.start().unwrap();
        session.play(SimDuration::from_millis(200)).unwrap();
        session.click("Skip").unwrap();
        assert_eq!(session.current_unit(), Some(1));
        // The image scene's media was prefetched on the jump.
        assert_eq!(session.report.stalls.len(), 1);
    }

    #[test]
    fn missing_content_degrades_instead_of_aborting() {
        let (objects, media, root, name) = course();
        let mut sys = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
        // Publish the scenario and the intro video, but "lose" the
        // image: entering scene 2 must not kill the session.
        let lost = media[1].id;
        sys.load_directly(objects, vec![media[0].clone()]);
        let mut session = CodSession::open(&mut sys, ClientId(0), root, name).unwrap();
        session.start().unwrap();
        session.auto_play(SimDuration::from_secs(10)).unwrap();
        assert!(
            session.report.completed,
            "placeholder playback still finishes"
        );
        assert_eq!(session.report.degraded, vec![(1, lost)]);
        assert!(session.report.is_degraded());
        assert!(session.presentation().is_degraded());
        assert_eq!(
            session
                .presentation()
                .degraded_elements()
                .collect::<Vec<_>>(),
            vec!["diagram.gif"]
        );
    }

    #[test]
    fn resume_skips_first_unit_content() {
        let (objects, media, root, name) = course();
        let mut sys = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
        sys.load_directly(objects.clone(), media.clone());
        let mut session = CodSession::open(&mut sys, ClientId(0), root, name).unwrap();
        session.resume(1).unwrap();
        assert_eq!(session.current_unit(), Some(1));
        // Only the image-scene media was fetched (the video clip wasn't).
        let fetched = session.report.first_unit_fetch;
        assert!(fetched > SimDuration::ZERO);
        session.auto_play(SimDuration::from_secs(5)).unwrap();
        assert!(session.completed());
    }
}
