//! Parallel campus runner: many independent student sessions at once.
//!
//! The paper sizes MITS for a campus, not a single seat — the broadband
//! network exists so that "a thousand students" can pull courseware
//! concurrently. One `MitsSystem` models one student's end-to-end session
//! on one virtual clock; a campus run shards the student population into
//! independent per-student systems and executes the shards on a pool of
//! worker threads.
//!
//! Determinism is the contract: shard `i` always runs with the seed
//! derived from `(base_seed, i)` and its report depends only on simulated
//! quantities, so the merged campus digest is byte-identical whether the
//! shards ran on one thread or eight. Host wall-clock is reported for
//! throughput numbers but never folded into a digest.

use crate::system::{ClientId, MitsSystem, SystemConfig, SystemError};
use mits_media::MediaObject;
use mits_mheg::{MhegId, MhegObject};
use mits_sim::SimDuration;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How many students to simulate and how many worker threads to use.
#[derive(Debug, Clone)]
pub struct CampusConfig {
    /// Number of independent student sessions (one shard each).
    pub students: usize,
    /// Worker threads; 1 runs the shards inline on the caller's thread.
    pub threads: usize,
    /// Base seed; shard `i` derives its own seed from `(base_seed, i)`.
    pub base_seed: u64,
}

/// The courseware every student session fetches.
#[derive(Debug, Clone)]
pub struct CampusWorkload {
    /// Scenario objects preloaded into each shard's database.
    pub objects: Vec<MhegObject>,
    /// Media catalogue; every student fetches every object once.
    pub media: Vec<MediaObject>,
    /// Root container fetched as the courseware closure.
    pub root: MhegId,
}

/// Outcome of one student shard. All fields except `wall_secs` are
/// deterministic functions of `(workload, seed)`.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index == student index.
    pub student: usize,
    /// The derived seed the shard ran with.
    pub seed: u64,
    /// FNV digest over the shard's simulated observables.
    pub digest: u64,
    /// Bytes delivered to the student across the simulated downlink.
    pub bytes: u64,
    /// Simulated session time (courseware fetch + every media fetch).
    pub session: SimDuration,
    /// Host wall-clock the shard took (not part of any digest).
    pub wall_secs: f64,
}

/// Merged outcome of a campus run.
#[derive(Debug, Clone)]
pub struct CampusReport {
    /// Students simulated.
    pub students: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Order-independent merge: FNV over per-shard digests in shard order.
    pub digest: u64,
    /// Total bytes delivered across all shards.
    pub bytes: u64,
    /// Host wall-clock for the whole campus run.
    pub wall_secs: f64,
    /// Per-shard reports, in shard order regardless of completion order.
    pub shards: Vec<ShardReport>,
}

impl CampusReport {
    /// Students completed per host second.
    pub fn students_per_sec(&self) -> f64 {
        self.students as f64 / self.wall_secs.max(1e-9)
    }

    /// Simulated bytes delivered per host second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes as f64 / self.wall_secs.max(1e-9)
    }

    /// Percentile (0.0..=1.0) of per-shard host wall-time, in seconds.
    pub fn wall_percentile(&self, p: f64) -> f64 {
        percentile(self.shards.iter().map(|s| s.wall_secs).collect(), p)
    }

    /// Percentile (0.0..=1.0) of simulated session time, in seconds.
    pub fn session_percentile(&self, p: f64) -> f64 {
        percentile(
            self.shards
                .iter()
                .map(|s| s.session.as_secs_f64())
                .collect(),
            p,
        )
    }
}

fn percentile(mut xs: Vec<f64>, p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank = (p.clamp(0.0, 1.0) * (xs.len() - 1) as f64).round() as usize;
    xs[rank]
}

/// SplitMix64 finalizer: decorrelates per-shard seeds so neighbouring
/// students do not share RNG streams.
fn derive_seed(base: u64, shard: u64) -> u64 {
    let mut z = base ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv_fold(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Run one student's whole session: fetch the courseware closure, then
/// fetch every media object (cold cache — each shard is a fresh seat).
fn run_shard(
    workload: &CampusWorkload,
    student: usize,
    seed: u64,
) -> Result<ShardReport, SystemError> {
    let start = Instant::now();
    let config = SystemConfig::broadband(1).with_seed(seed);
    let mut sys = MitsSystem::build(&config)?;
    sys.load_directly(workload.objects.clone(), workload.media.clone());
    let student_id = ClientId(0);

    let (objects, mut session) = sys.fetch_courseware(student_id, workload.root)?;
    let mut digest = fnv_fold(FNV_OFFSET, seed);
    digest = fnv_fold(digest, objects.len() as u64);
    for m in &workload.media {
        let (got, t) = sys.fetch_content(student_id, m.id)?;
        session += t;
        digest = fnv_fold(digest, got.data.len() as u64);
    }
    let bytes = sys.bytes_to_client(student_id);
    digest = fnv_fold(digest, bytes);
    digest = fnv_fold(digest, session.as_micros());
    digest = fnv_fold(digest, sys.db().state_digest());

    Ok(ShardReport {
        student,
        seed,
        digest,
        bytes,
        session,
        wall_secs: start.elapsed().as_secs_f64(),
    })
}

/// Run the campus: `students` independent sessions over `threads` workers.
///
/// Workers claim shard indices from a shared counter, so scheduling is
/// dynamic — but each report lands in its shard's slot and the merge walks
/// slots in index order, so the result is independent of thread count and
/// claim interleaving.
pub fn run_campus(
    config: &CampusConfig,
    workload: &CampusWorkload,
) -> Result<CampusReport, SystemError> {
    let students = config.students;
    let threads = config.threads.max(1).min(students.max(1));
    let start = Instant::now();

    let slots: Mutex<Vec<Option<Result<ShardReport, SystemError>>>> =
        Mutex::new((0..students).map(|_| None).collect());
    let next = AtomicUsize::new(0);

    let work = || loop {
        let shard = next.fetch_add(1, Ordering::Relaxed);
        if shard >= students {
            break;
        }
        let report = run_shard(workload, shard, derive_seed(config.base_seed, shard as u64));
        slots.lock().expect("campus slots")[shard] = Some(report);
    };

    if threads == 1 {
        work();
    } else {
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(move |_| work());
            }
        })
        .map_err(|_| SystemError::Protocol("campus worker panicked".into()))?;
    }

    let slots = slots.into_inner().expect("campus slots");
    let mut shards = Vec::with_capacity(students);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Ok(report)) => shards.push(report),
            Some(Err(e)) => return Err(e),
            None => return Err(SystemError::Protocol(format!("campus shard {i} never ran"))),
        }
    }

    let mut digest = FNV_OFFSET;
    let mut bytes = 0u64;
    for s in &shards {
        digest = fnv_fold(digest, s.digest);
        bytes += s.bytes;
    }

    Ok(CampusReport {
        students,
        threads,
        digest,
        bytes,
        wall_secs: start.elapsed().as_secs_f64(),
        shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mits_media::{MediaFormat, MediaId, VideoDims};
    use mits_mheg::{ClassLibrary, GenericValue};

    fn tiny_workload(clips: usize, clip_bytes: usize) -> CampusWorkload {
        let mut lib = ClassLibrary::new(1);
        let v = lib.value_content("v", GenericValue::Int(1));
        let root = lib.container("Course", vec![v]);
        let media = (0..clips)
            .map(|i| {
                let data: Vec<u8> = (0..clip_bytes)
                    .map(|j| ((i * 31 + j) % 251) as u8)
                    .collect();
                MediaObject::new(
                    MediaId(900 + i as u64),
                    format!("clip{i}.mpg"),
                    MediaFormat::Mpeg,
                    SimDuration::from_secs(1),
                    VideoDims::new(160, 120),
                    Bytes::from(data),
                )
            })
            .collect();
        CampusWorkload {
            objects: lib.into_objects(),
            media,
            root,
        }
    }

    #[test]
    fn campus_digest_is_thread_count_invariant() {
        let w = tiny_workload(2, 4096);
        let base = CampusConfig {
            students: 6,
            threads: 1,
            base_seed: 42,
        };
        let serial = run_campus(&base, &w).unwrap();
        for threads in [2, 8] {
            let parallel = run_campus(
                &CampusConfig {
                    threads,
                    ..base.clone()
                },
                &w,
            )
            .unwrap();
            assert_eq!(serial.digest, parallel.digest, "threads={threads}");
            assert_eq!(serial.bytes, parallel.bytes);
            assert_eq!(
                serial.shards.iter().map(|s| s.digest).collect::<Vec<_>>(),
                parallel.shards.iter().map(|s| s.digest).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn campus_shards_have_distinct_seeds_and_full_coverage() {
        let w = tiny_workload(1, 1024);
        let report = run_campus(
            &CampusConfig {
                students: 5,
                threads: 3,
                base_seed: 7,
            },
            &w,
        )
        .unwrap();
        assert_eq!(report.students, 5);
        assert_eq!(report.shards.len(), 5);
        for (i, s) in report.shards.iter().enumerate() {
            assert_eq!(s.student, i);
            assert_eq!(s.bytes, report.shards[0].bytes, "same workload, same bytes");
            assert!(s.bytes > 1024, "content plus protocol overhead");
        }
        let mut seeds: Vec<u64> = report.shards.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 5, "derived seeds must not collide");
    }

    #[test]
    fn base_seed_changes_the_campus_digest() {
        let w = tiny_workload(1, 2048);
        let a = run_campus(
            &CampusConfig {
                students: 3,
                threads: 2,
                base_seed: 1,
            },
            &w,
        )
        .unwrap();
        let b = run_campus(
            &CampusConfig {
                students: 3,
                threads: 2,
                base_seed: 2,
            },
            &w,
        )
        .unwrap();
        assert_ne!(a.digest, b.digest, "seed must reach the digest");
    }
}
