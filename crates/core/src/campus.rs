//! Parallel campus runner: many independent student sessions at once.
//!
//! The paper sizes MITS for a campus, not a single seat — the broadband
//! network exists so that "a thousand students" can pull courseware
//! concurrently. One `MitsSystem` models one student's end-to-end session
//! on one virtual clock; a campus run shards the student population into
//! independent per-student systems and executes the shards on a pool of
//! worker threads.
//!
//! Determinism is the contract: shard `i` always runs with the seed
//! derived from `(base_seed, i)` and its report depends only on simulated
//! quantities, so the merged campus digest is byte-identical whether the
//! shards ran on one thread or eight. Host wall-clock is reported for
//! throughput numbers but never folded into a digest.
//!
//! Telemetry scales the same way. Every shard freezes its
//! [`MetricsRegistry`] into a [`MetricsSnapshot`]; the merge folds the
//! snapshots in shard-index order (counters add, histograms merge,
//! gauges keep the latest virtual stamp), so
//! [`CampusReport::metrics`] is byte-identical across thread counts.
//! Traces are *sampled*, Dapper-style: a deterministic per-student
//! lottery ([`TraceSampler`]) keeps a bounded fraction, and anomalous
//! sessions — degraded (the client retried, timed out or hit a decode
//! error), failed over, or slower than the latency threshold — are
//! always kept. The merged snapshot is then judged against declarative
//! SLOs ([`default_campus_slos`]) into pass/warn/breach verdicts.

use crate::system::{ClientId, MitsSystem, SystemConfig, SystemError};
use mits_media::MediaObject;
use mits_mheg::{MhegId, MhegObject};
use mits_sim::{
    MetricsSnapshot, SampleReason, SimDuration, Slo, SloInput, SloReport, TailSignals, TraceSampler,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Histogram geometry for per-session simulated time, shared by every
/// shard so the merged campus histogram is well-defined.
const SESSION_SECS_HI: f64 = 60.0;
const SESSION_SECS_BINS: usize = 600;

/// How many students to simulate, how many worker threads to use, and
/// how the campus telemetry behaves.
#[derive(Debug, Clone)]
pub struct CampusConfig {
    /// Number of independent student sessions (one shard each).
    pub students: usize,
    /// Worker threads; 1 runs the shards inline on the caller's thread.
    pub threads: usize,
    /// Base seed; shard `i` derives its own seed from `(base_seed, i)`.
    pub base_seed: u64,
    /// Fraction of students whose traces are head-sampled (0.0..=1.0).
    /// Anomalous sessions are kept regardless (tail sampling).
    pub trace_sample_rate: f64,
    /// Sessions simulating longer than this are tail-sampled as slow.
    pub slow_session: SimDuration,
}

impl CampusConfig {
    /// A campus with default telemetry: 5% head sampling, 30 s slow
    /// threshold.
    pub fn new(students: usize, threads: usize, base_seed: u64) -> Self {
        CampusConfig {
            students,
            threads,
            base_seed,
            trace_sample_rate: 0.05,
            slow_session: SimDuration::from_secs(30),
        }
    }

    /// Override the head-sampling fraction.
    pub fn with_trace_sample_rate(mut self, rate: f64) -> Self {
        self.trace_sample_rate = rate;
        self
    }

    /// Override the slow-session tail-sampling threshold.
    pub fn with_slow_session(mut self, d: SimDuration) -> Self {
        self.slow_session = d;
        self
    }
}

/// The courseware every student session fetches.
#[derive(Debug, Clone)]
pub struct CampusWorkload {
    /// Scenario objects preloaded into each shard's database.
    pub objects: Vec<MhegObject>,
    /// Media catalogue; every student fetches every object once.
    pub media: Vec<MediaObject>,
    /// Root container fetched as the courseware closure.
    pub root: MhegId,
}

/// One sampled shard trace: the student's full JSONL span/event export
/// plus why the sampler kept it.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardTrace {
    /// Shard index == student index.
    pub student: usize,
    /// The seed the shard ran with.
    pub seed: u64,
    /// Why the sampler kept this trace.
    pub reason: SampleReason,
    /// The shard tracer's JSONL export.
    pub jsonl: String,
}

/// Outcome of one student shard. All fields except `wall_secs` are
/// deterministic functions of `(workload, seed)`.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index == student index.
    pub student: usize,
    /// The derived seed the shard ran with.
    pub seed: u64,
    /// FNV digest over the shard's simulated observables.
    pub digest: u64,
    /// Bytes delivered to the student across the simulated downlink.
    pub bytes: u64,
    /// Simulated session time (courseware fetch + every media fetch).
    pub session: SimDuration,
    /// Whether the session was anomalous: client retries/timeouts/
    /// decode errors (degraded service) or a database failover.
    pub anomalous: bool,
    /// The sampler's decision for this shard, if it kept the trace.
    pub sampled: Option<SampleReason>,
    /// Host wall-clock the shard took (not part of any digest).
    pub wall_secs: f64,
}

/// Merged outcome of a campus run.
#[derive(Debug, Clone)]
pub struct CampusReport {
    /// Students simulated.
    pub students: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Order-independent merge: FNV over per-shard digests in shard order.
    pub digest: u64,
    /// Total bytes delivered across all shards.
    pub bytes: u64,
    /// Host wall-clock for the whole campus run.
    pub wall_secs: f64,
    /// Per-shard reports, in shard order regardless of completion order.
    pub shards: Vec<ShardReport>,
    /// Every shard's metrics snapshot folded in shard-index order:
    /// counters add, histograms merge, gauges keep the latest virtual
    /// stamp. Byte-identical across thread counts.
    pub metrics: MetricsSnapshot,
    /// Sampled traces in shard-index order — head winners plus every
    /// anomalous or slow session.
    pub traces: Vec<ShardTrace>,
    /// Default campus SLOs judged against the merged snapshot.
    pub slo: SloReport,
}

impl CampusReport {
    /// Students completed per host second.
    pub fn students_per_sec(&self) -> f64 {
        self.students as f64 / self.wall_secs.max(1e-9)
    }

    /// Simulated bytes delivered per host second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes as f64 / self.wall_secs.max(1e-9)
    }

    /// Percentile (0.0..=1.0) of per-shard host wall-time, in seconds.
    /// An empty report reads 0.0; a single shard reads its own sample.
    pub fn wall_percentile(&self, p: f64) -> f64 {
        percentile(self.shards.iter().map(|s| s.wall_secs).collect(), p)
    }

    /// Percentile (0.0..=1.0) of simulated session time, in seconds.
    /// An empty report reads 0.0; a single shard reads its own sample.
    pub fn session_percentile(&self, p: f64) -> f64 {
        percentile(
            self.shards
                .iter()
                .map(|s| s.session.as_secs_f64())
                .collect(),
            p,
        )
    }

    /// The sampled traces concatenated into one JSONL document, each
    /// shard prefixed by a header line. Deterministic byte for byte.
    pub fn traces_jsonl(&self) -> String {
        let mut out = String::new();
        for t in &self.traces {
            out.push_str(&format!(
                "{{\"t\":\"shard\",\"student\":{},\"seed\":{},\"reason\":\"{}\"}}\n",
                t.student,
                t.seed,
                t.reason.as_str()
            ));
            out.push_str(&t.jsonl);
        }
        out
    }
}

/// Nearest-rank percentile over finite samples. Empty input reads 0.0;
/// a single sample reads itself. `total_cmp` keeps the sort total even
/// if a non-finite value sneaks in (NaN sorts last instead of
/// panicking the comparator).
fn percentile(mut xs: Vec<f64>, p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(f64::total_cmp);
    let rank = (p.clamp(0.0, 1.0) * (xs.len() - 1) as f64).round() as usize;
    xs[rank.min(xs.len() - 1)]
}

/// SplitMix64 finalizer: decorrelates per-shard seeds so neighbouring
/// students do not share RNG streams.
fn derive_seed(base: u64, shard: u64) -> u64 {
    let mut z = base ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The default campus service-level objectives, judged against the
/// merged snapshot (all inputs are simulated quantities, so the
/// verdicts are as deterministic as the digest):
///
/// * `session_p99_wall` — p99 simulated session time under 10 s
///   (warn) / 30 s (breach), from the merged `campus.session_secs`
///   histogram.
/// * `retry_rate` — client re-issues per attempt ≤ 1% / 10%.
/// * `shed_rate` — primary-server load shedding ≤ 0 / 5%.
/// * `degraded_fraction` — sessions with client anomalies or failovers
///   ≤ 0 / 2%.
pub fn default_campus_slos() -> Vec<Slo> {
    vec![
        Slo::upper(
            "session_p99_wall",
            SloInput::HistogramQuantile {
                name: "campus.session_secs".into(),
                q: 0.99,
            },
            10.0,
            30.0,
        ),
        Slo::upper(
            "retry_rate",
            SloInput::Ratio {
                numerator: "client0.retries".into(),
                denominator: "client0.attempts".into(),
            },
            0.01,
            0.10,
        ),
        Slo::upper(
            "shed_rate",
            SloInput::Ratio {
                numerator: "db.server0.requests_shed".into(),
                denominator: "db.server0.requests_served".into(),
            },
            0.0,
            0.05,
        ),
        Slo::upper(
            "degraded_fraction",
            SloInput::Ratio {
                numerator: "campus.sessions_degraded".into(),
                denominator: "campus.sessions".into(),
            },
            0.0,
            0.02,
        ),
    ]
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv_fold(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// What one shard hands back to the merge: the lean report plus its
/// telemetry (dropped into the rollup, not kept per shard).
struct ShardOutcome {
    report: ShardReport,
    snapshot: MetricsSnapshot,
    trace: Option<ShardTrace>,
}

/// Run one student's whole session: fetch the courseware closure, then
/// fetch every media object (cold cache — each shard is a fresh seat).
fn run_shard(
    workload: &CampusWorkload,
    sampler: &TraceSampler,
    student: usize,
    seed: u64,
) -> Result<ShardOutcome, SystemError> {
    let start = Instant::now();
    let config = SystemConfig::broadband(1).with_seed(seed);
    let mut sys = MitsSystem::build(&config)?;
    sys.load_directly(workload.objects.clone(), workload.media.clone());
    let student_id = ClientId(0);

    let (objects, mut session) = sys.fetch_courseware(student_id, workload.root)?;
    let mut digest = fnv_fold(FNV_OFFSET, seed);
    digest = fnv_fold(digest, objects.len() as u64);
    for m in &workload.media {
        let (got, t) = sys.fetch_content(student_id, m.id)?;
        session += t;
        digest = fnv_fold(digest, got.data.len() as u64);
    }
    let bytes = sys.bytes_to_client(student_id);
    digest = fnv_fold(digest, bytes);
    digest = fnv_fold(digest, session.as_micros());
    digest = fnv_fold(digest, sys.db().state_digest());

    // Telemetry: freeze this shard's registry (stamped at the session's
    // final virtual instant) with the campus-level session counters the
    // SLO layer reads from the merged rollup.
    sys.export_metrics();
    let degraded = sys.client_metrics(student_id).tail_sample_signal();
    let failed_over = sys.failovers > 0;
    let anomalous = degraded || failed_over;
    sys.metrics.counter_set("campus.sessions", 1);
    sys.metrics
        .counter_set("campus.sessions_degraded", u64::from(anomalous));
    sys.metrics.observe(
        "campus.session_secs",
        session.as_secs_f64(),
        0.0,
        SESSION_SECS_HI,
        SESSION_SECS_BINS,
    );
    let sampled = sampler.decide(
        student as u64,
        &TailSignals {
            degraded,
            failed_over,
            session,
        },
    );
    sys.metrics
        .counter_set("campus.traces_sampled", u64::from(sampled.is_some()));
    let snapshot = sys.metrics.snapshot();
    let trace = sampled.map(|reason| ShardTrace {
        student,
        seed,
        reason,
        jsonl: sys.tracer.to_jsonl(),
    });

    Ok(ShardOutcome {
        report: ShardReport {
            student,
            seed,
            digest,
            bytes,
            session,
            anomalous,
            sampled,
            wall_secs: start.elapsed().as_secs_f64(),
        },
        snapshot,
        trace,
    })
}

/// Run the campus: `students` independent sessions over `threads` workers.
///
/// Workers claim shard indices from a shared counter, so scheduling is
/// dynamic — but each report lands in its shard's slot and the merge walks
/// slots in index order, so the result (digest, merged metrics snapshot,
/// sampled-trace set, SLO verdicts) is independent of thread count and
/// claim interleaving.
pub fn run_campus(
    config: &CampusConfig,
    workload: &CampusWorkload,
) -> Result<CampusReport, SystemError> {
    let students = config.students;
    let threads = config.threads.max(1).min(students.max(1));
    let sampler = TraceSampler::new(config.base_seed, config.trace_sample_rate)
        .with_latency_threshold(config.slow_session);
    let start = Instant::now();

    let slots: Mutex<Vec<Option<Result<ShardOutcome, SystemError>>>> =
        Mutex::new((0..students).map(|_| None).collect());
    let next = AtomicUsize::new(0);

    let work = || loop {
        let shard = next.fetch_add(1, Ordering::Relaxed);
        if shard >= students {
            break;
        }
        let outcome = run_shard(
            workload,
            &sampler,
            shard,
            derive_seed(config.base_seed, shard as u64),
        );
        slots.lock().expect("campus slots")[shard] = Some(outcome);
    };

    if threads == 1 {
        work();
    } else {
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| work());
            }
        })
        .map_err(|_| SystemError::Protocol("campus worker panicked".into()))?;
    }

    let slots = slots.into_inner().expect("campus slots");
    let mut shards = Vec::with_capacity(students);
    let mut metrics = MetricsSnapshot::new();
    let mut traces = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Ok(outcome)) => {
                metrics.merge(&outcome.snapshot);
                if let Some(trace) = outcome.trace {
                    traces.push(trace);
                }
                shards.push(outcome.report);
            }
            Some(Err(e)) => return Err(e),
            None => return Err(SystemError::Protocol(format!("campus shard {i} never ran"))),
        }
    }

    let mut digest = FNV_OFFSET;
    let mut bytes = 0u64;
    for s in &shards {
        digest = fnv_fold(digest, s.digest);
        bytes += s.bytes;
    }

    let slo = SloReport::evaluate(&default_campus_slos(), &metrics, &BTreeMap::new());

    Ok(CampusReport {
        students,
        threads,
        digest,
        bytes,
        wall_secs: start.elapsed().as_secs_f64(),
        shards,
        metrics,
        traces,
        slo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mits_media::{MediaFormat, MediaId, VideoDims};
    use mits_mheg::{ClassLibrary, GenericValue};
    use mits_sim::Verdict;

    fn tiny_workload(clips: usize, clip_bytes: usize) -> CampusWorkload {
        let mut lib = ClassLibrary::new(1);
        let v = lib.value_content("v", GenericValue::Int(1));
        let root = lib.container("Course", vec![v]);
        let media = (0..clips)
            .map(|i| {
                let data: Vec<u8> = (0..clip_bytes)
                    .map(|j| ((i * 31 + j) % 251) as u8)
                    .collect();
                MediaObject::new(
                    MediaId(900 + i as u64),
                    format!("clip{i}.mpg"),
                    MediaFormat::Mpeg,
                    SimDuration::from_secs(1),
                    VideoDims::new(160, 120),
                    Bytes::from(data),
                )
            })
            .collect();
        CampusWorkload {
            objects: lib.into_objects(),
            media,
            root,
        }
    }

    #[test]
    fn campus_digest_is_thread_count_invariant() {
        let w = tiny_workload(2, 4096);
        let base = CampusConfig::new(6, 1, 42);
        let serial = run_campus(&base, &w).unwrap();
        for threads in [2, 8] {
            let parallel = run_campus(
                &CampusConfig {
                    threads,
                    ..base.clone()
                },
                &w,
            )
            .unwrap();
            assert_eq!(serial.digest, parallel.digest, "threads={threads}");
            assert_eq!(serial.bytes, parallel.bytes);
            assert_eq!(
                serial.shards.iter().map(|s| s.digest).collect::<Vec<_>>(),
                parallel.shards.iter().map(|s| s.digest).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn campus_telemetry_is_thread_count_invariant() {
        let w = tiny_workload(2, 4096);
        // High head rate so the sampled set is non-trivial.
        let base = CampusConfig::new(6, 1, 42).with_trace_sample_rate(0.5);
        let serial = run_campus(&base, &w).unwrap();
        assert!(
            !serial.traces.is_empty(),
            "a 50% lottery over 6 students should keep something"
        );
        assert!(
            serial.traces.len() < serial.students,
            "sampling must bound the trace set"
        );
        for threads in [2, 8] {
            let parallel = run_campus(
                &CampusConfig {
                    threads,
                    ..base.clone()
                },
                &w,
            )
            .unwrap();
            assert_eq!(
                serial.metrics.to_json(),
                parallel.metrics.to_json(),
                "merged snapshot must be byte-identical at threads={threads}"
            );
            assert_eq!(
                serial.metrics.to_text(),
                parallel.metrics.to_text(),
                "text rendering too"
            );
            assert_eq!(
                serial.traces_jsonl(),
                parallel.traces_jsonl(),
                "sampled trace set must be byte-identical at threads={threads}"
            );
            assert_eq!(serial.slo.to_json(), parallel.slo.to_json());
        }
    }

    #[test]
    fn campus_rollup_sums_counters_and_judges_slos() {
        let w = tiny_workload(1, 2048);
        let report = run_campus(&CampusConfig::new(4, 2, 9), &w).unwrap();
        assert_eq!(report.metrics.counter("campus.sessions"), Some(4));
        assert_eq!(report.metrics.counter("campus.sessions_degraded"), Some(0));
        let h = report.metrics.histogram("campus.session_secs").unwrap();
        assert_eq!(h.count(), 4, "one session sample per shard");
        // Client attempts accumulate across shards.
        let attempts = report.metrics.counter("client0.attempts").unwrap();
        assert!(attempts >= 4 * 2, "each shard fetched courseware + clip");
        // Zero-fault campus: every default SLO passes.
        assert_eq!(report.slo.breaches(), 0, "{}", report.slo.to_json());
        assert!(report
            .slo
            .outcomes
            .iter()
            .all(|o| o.verdict == Verdict::Pass));
        assert!(report.shards.iter().all(|s| !s.anomalous));
    }

    #[test]
    fn campus_shards_have_distinct_seeds_and_full_coverage() {
        let w = tiny_workload(1, 1024);
        let report = run_campus(&CampusConfig::new(5, 3, 7), &w).unwrap();
        assert_eq!(report.students, 5);
        assert_eq!(report.shards.len(), 5);
        for (i, s) in report.shards.iter().enumerate() {
            assert_eq!(s.student, i);
            assert_eq!(s.bytes, report.shards[0].bytes, "same workload, same bytes");
            assert!(s.bytes > 1024, "content plus protocol overhead");
        }
        let mut seeds: Vec<u64> = report.shards.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 5, "derived seeds must not collide");
    }

    #[test]
    fn base_seed_changes_the_campus_digest() {
        let w = tiny_workload(1, 2048);
        let a = run_campus(&CampusConfig::new(3, 2, 1), &w).unwrap();
        let b = run_campus(&CampusConfig::new(3, 2, 2), &w).unwrap();
        assert_ne!(a.digest, b.digest, "seed must reach the digest");
    }

    #[test]
    fn percentile_edge_cases_do_not_panic_or_extrapolate() {
        let empty = CampusReport {
            students: 0,
            threads: 1,
            digest: 0,
            bytes: 0,
            wall_secs: 0.0,
            shards: Vec::new(),
            metrics: MetricsSnapshot::new(),
            traces: Vec::new(),
            slo: SloReport::default(),
        };
        assert_eq!(empty.wall_percentile(0.99), 0.0);
        assert_eq!(empty.session_percentile(0.5), 0.0);

        let one_shard = ShardReport {
            student: 0,
            seed: 1,
            digest: 1,
            bytes: 1,
            session: SimDuration::from_millis(250),
            anomalous: false,
            sampled: None,
            wall_secs: 0.125,
        };
        let single = CampusReport {
            shards: vec![one_shard],
            students: 1,
            ..empty.clone()
        };
        for p in [0.0, 0.5, 0.99, 1.0, -3.0, 7.0] {
            assert_eq!(single.wall_percentile(p), 0.125, "p={p}");
            assert_eq!(single.session_percentile(p), 0.25, "p={p}");
        }
        // A NaN sample must not panic the comparator; it sorts last.
        assert_eq!(percentile(vec![f64::NAN, 2.0, 1.0], 0.0), 1.0);
    }
}
