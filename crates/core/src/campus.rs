//! Memory-bounded campus runner: many independent student sessions with
//! an explicit lifecycle.
//!
//! The paper sizes MITS for a campus, not a single seat — the broadband
//! network exists so that "a thousand students" can pull courseware
//! concurrently. One `MitsSystem` models one student's end-to-end session
//! on one virtual clock; a campus run executes the population as a stream
//! of short-lived sessions over a pool of worker threads.
//!
//! Three mechanisms keep live memory bounded by *concurrent* sessions,
//! never by population:
//!
//! * **Session lifecycle (`admit → run → retire`)** — a student exists as
//!   a compact [`SessionSpec`] (index + derived seed) until a worker
//!   admits it through the [`Campus::max_concurrent`] admission window,
//!   builds its `MitsSystem`, runs the fetches, and retires it. Retiring
//!   folds the session's digest, metrics snapshot and (if sampled) trace
//!   into per-batch accumulators and frees the whole per-student world.
//! * **Work-stealing batch queue** — student indices are grouped into
//!   contiguous batches; each worker starts with its own span of batches
//!   and steals from the most-loaded peer when it runs dry, so a straggler
//!   session delays only its own batch, not a statically-partitioned
//!   slice of the population.
//! * **Streaming merge** — completed batches flush through an in-order
//!   frontier: batch *i* streams into the rollup (and into any
//!   [`ReportSink`]) as soon as every batch before it has, then its
//!   buffers are dropped. The out-of-order window is a handful of batches
//!   (stragglers), never the population.
//!
//! Determinism is the contract: student `i` always runs with the seed
//! derived from `(base_seed, i)`, every merge walks strict index order,
//! and nothing host-dependent reaches a digest — so the campus digest,
//! merged metrics rollup, sampled-trace bundle and SLO verdicts are
//! byte-identical whether the sessions ran on one thread or eight, under
//! an admission window of 1 or of the whole population. Host wall-clock
//! is reported for throughput numbers but never folded into a digest.
//!
//! Telemetry scales the same way it did before the redesign: every
//! session freezes its [`MetricsRegistry`](mits_sim::MetricsRegistry)
//! into a [`MetricsSnapshot`] (counters add, histograms merge, gauges
//! keep the latest virtual stamp), traces are sampled Dapper-style
//! ([`TraceSampler`] head lottery plus always-keep tails for degraded /
//! failed-over / slow / failed sessions), and the merged snapshot is
//! judged against declarative SLOs ([`default_campus_slos`]).

use crate::system::{ClientId, MitsSystem, SessionScratch, SystemConfig, SystemError};
use bytes::Bytes;
use mits_db::{RetryPolicy, ShardRouter};
use mits_media::{MediaFormat, MediaId, MediaObject, VideoDims};
use mits_mheg::{ClassLibrary, GenericValue, MhegId, MhegObject};
use mits_sim::{
    derive_seed, forensics, DigestTrace, Exemplar, FaultWindow, ForensicBundle, ForensicInput,
    Histogram, MetricsSnapshot, ReplayBundle, SampleReason, SessionTail, SimDuration, SimTime, Slo,
    SloInput, SloReport, TailSignals, Timeline, TimelineRecorder, TraceSampler,
};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Histogram geometry for per-session simulated time, shared by every
/// session so the merged campus histogram is well-defined.
const SESSION_SECS_HI: f64 = 60.0;
const SESSION_SECS_BINS: usize = 600;

/// Host-wall histogram geometry for per-session wall time (1 ms bins).
const WALL_SECS_HI: f64 = 60.0;
const WALL_SECS_BINS: usize = 60_000;

/// Folded into a failed session's digest so a retire-under-fault session
/// is distinguishable from a clean one that happened to deliver the same
/// byte counts.
const SESSION_FAILED_MARK: u64 = 0xFA11_ED00_5E55_10FF;

/// Default timeline window: 250 ms of session-local virtual time.
const TIMELINE_WINDOW_MS: u64 = 250;

/// Campus-wide cap on retained flight-recorder tails. Tails are kept
/// only for degraded/failed sessions and only up to this many (in
/// student-index order), so forensic evidence is bounded by the anomaly
/// count, never the population.
const FORENSIC_TAIL_CAP: usize = 64;

/// The schedulable core count of this host: `available_parallelism`
/// (which respects CPU affinity masks and cgroup quotas) with a
/// `/proc/cpuinfo` fallback for platforms where it errors out. Never
/// reports zero. This is the count worth sizing a worker pool by; a
/// container pinned to one core reports 1 here even when the machine
/// has more sockets present.
pub fn host_cores() -> usize {
    if let Ok(n) = std::thread::available_parallelism() {
        return n.get();
    }
    if let Ok(s) = std::fs::read_to_string("/proc/cpuinfo") {
        let n = s.lines().filter(|l| l.starts_with("processor")).count();
        if n > 0 {
            return n;
        }
    }
    1
}

/// Everything the campus knows about a student before admission: its
/// index and derived seed. A million students is a million of these —
/// two words each — not a million simulated worlds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionSpec {
    /// Student index in `0..students`.
    pub student: usize,
    /// SplitMix64-derived seed for this student's whole session.
    pub seed: u64,
}

/// The courseware every student session fetches.
#[derive(Debug, Clone)]
pub struct CampusWorkload {
    /// Scenario objects preloaded into each session's database.
    pub objects: Vec<MhegObject>,
    /// Media catalogue; every student fetches every object once.
    pub media: Vec<MediaObject>,
    /// Root container fetched as the courseware closure.
    pub root: MhegId,
}

/// One sampled session trace: the student's full JSONL span/event export
/// plus why the sampler kept it.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardTrace {
    /// Student index.
    pub student: usize,
    /// The seed the session ran with.
    pub seed: u64,
    /// Why the sampler kept this trace.
    pub reason: SampleReason,
    /// The session tracer's JSONL export.
    pub jsonl: String,
}

/// Outcome of one retired student session. All fields except `wall_secs`
/// are deterministic functions of `(workload, seed)`.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Student index.
    pub student: usize,
    /// The derived seed the session ran with.
    pub seed: u64,
    /// FNV digest over the session's simulated observables.
    pub digest: u64,
    /// Bytes delivered to the student across the simulated downlink.
    pub bytes: u64,
    /// Simulated session time (courseware fetch + every media fetch).
    pub session: SimDuration,
    /// Whether the session was anomalous: client retries/timeouts/
    /// decode errors (degraded service), a database failover, or an
    /// outright failure.
    pub anomalous: bool,
    /// The session died mid-run (deadline expired, server gone). It
    /// still retired: its partial observables are folded into the
    /// rollup under [`SESSION_FAILED_MARK`].
    pub failed: bool,
    /// Human-readable failure cause, when `failed`.
    pub error: Option<String>,
    /// The sampler's decision for this session, if it kept the trace.
    pub sampled: Option<SampleReason>,
    /// The virtual instant the session retired — the end of its span,
    /// used to slice the fault schedule for a [`ReplayBundle`].
    pub end: SimTime,
    /// Layer-by-layer digest checkpoints of the session fold, so a
    /// replay mismatch can name the first divergent layer instead of an
    /// opaque final-digest difference.
    pub layers: DigestTrace,
    /// Host wall-clock the session took (not part of any digest).
    pub wall_secs: f64,
}

/// Deprecated name for [`SessionReport`] from the slot-per-shard runner.
#[deprecated(note = "renamed to SessionReport")]
pub type ShardReport = SessionReport;

/// The campus-wide merge a run ends with: everything deterministic
/// (digest, metrics, SLOs) plus the host wall totals.
#[derive(Debug, Clone)]
pub struct CampusRollup {
    /// Students simulated (== sessions retired).
    pub students: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Admission window the run was bounded by.
    pub max_concurrent: usize,
    /// FNV fold over per-session digests in student-index order.
    pub digest: u64,
    /// Total bytes delivered across all sessions.
    pub bytes: u64,
    /// Sessions that died mid-run but still retired into the rollup.
    pub sessions_failed: u64,
    /// Host wall-clock for the whole campus run.
    pub wall_secs: f64,
    /// Every session's metrics snapshot folded in student-index order.
    pub metrics: MetricsSnapshot,
    /// Default campus SLOs judged against the merged snapshot.
    pub slo: SloReport,
    /// Windowed telemetry timeline over session-local virtual time,
    /// merged associatively — byte-identical across thread counts.
    pub timeline: Timeline,
    /// Forensic incident bundles: one if any session retired failed,
    /// plus one per breached SLO. Empty for a healthy run.
    pub forensics: Vec<ForensicBundle>,
}

/// A consumer of campus output, fed *while the campus runs* instead of
/// from a buffered report. All callbacks arrive in deterministic
/// student-index order regardless of thread count, work stealing or the
/// admission window; `rollup` is called exactly once at the end of a
/// successful run. [`CampusReport`] is one provided sink; `tables --exp
/// campus` streams into its own JSON-writing sink.
pub trait ReportSink: Send {
    /// A session retired. Called in student-index order.
    fn session(&mut self, _report: &SessionReport) {}
    /// A sampled trace, in student-index order.
    fn trace(&mut self, _trace: &ShardTrace) {}
    /// The final merge of a completed campus run.
    fn rollup(&mut self, _rollup: &CampusRollup) {}
}

/// Merged outcome of a campus run — the provided [`ReportSink`] that
/// keeps the compact rollup: digest, merged metrics, sampled traces, SLO
/// verdicts and bounded wall-time histograms. It does **not** buffer
/// per-session reports, so its memory is independent of population size.
#[derive(Debug, Clone)]
pub struct CampusReport {
    /// Students simulated.
    pub students: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Admission window the run was bounded by.
    pub max_concurrent: usize,
    /// FNV fold over per-session digests in student-index order.
    pub digest: u64,
    /// Total bytes delivered across all sessions.
    pub bytes: u64,
    /// Sessions that died mid-run but still retired into the rollup.
    pub sessions_failed: u64,
    /// Sessions flagged anomalous (degraded, failed over, or failed).
    pub sessions_anomalous: u64,
    /// Host wall-clock for the whole campus run.
    pub wall_secs: f64,
    /// Every session's metrics snapshot folded in student-index order:
    /// counters add, histograms merge, gauges keep the latest virtual
    /// stamp. Byte-identical across thread counts.
    pub metrics: MetricsSnapshot,
    /// Sampled traces in student-index order — head winners plus every
    /// anomalous, failed or slow session.
    pub traces: Vec<ShardTrace>,
    /// Default campus SLOs judged against the merged snapshot.
    pub slo: SloReport,
    /// Windowed telemetry timeline over session-local virtual time.
    pub timeline: Timeline,
    /// Forensic incident bundles (empty for a healthy run).
    pub forensics: Vec<ForensicBundle>,
    /// Per-session host wall times, binned at 1 ms (not deterministic,
    /// never folded into a digest).
    wall_hist: Histogram,
}

impl Default for CampusReport {
    fn default() -> Self {
        CampusReport::new()
    }
}

impl CampusReport {
    /// An empty report, ready to be streamed into as a [`ReportSink`].
    pub fn new() -> Self {
        CampusReport {
            students: 0,
            threads: 0,
            max_concurrent: 0,
            digest: 0,
            bytes: 0,
            sessions_failed: 0,
            sessions_anomalous: 0,
            wall_secs: 0.0,
            metrics: MetricsSnapshot::new(),
            traces: Vec::new(),
            slo: SloReport::default(),
            timeline: Timeline::new(SimDuration::from_millis(TIMELINE_WINDOW_MS)),
            forensics: Vec::new(),
            wall_hist: Histogram::new(0.0, WALL_SECS_HI, WALL_SECS_BINS),
        }
    }

    /// Students completed per host second.
    pub fn students_per_sec(&self) -> f64 {
        self.students as f64 / self.wall_secs.max(1e-9)
    }

    /// Simulated bytes delivered per host second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes as f64 / self.wall_secs.max(1e-9)
    }

    /// Percentile (0.0..=1.0) of per-session host wall-time, in seconds,
    /// from the 1 ms-binned histogram. An empty report reads 0.0.
    pub fn wall_percentile(&self, p: f64) -> f64 {
        self.wall_hist.quantile(p.clamp(0.0, 1.0)).unwrap_or(0.0)
    }

    /// Percentile (0.0..=1.0) of simulated session time, in seconds,
    /// from the merged `campus.session_secs` histogram. An empty report
    /// reads 0.0.
    pub fn session_percentile(&self, p: f64) -> f64 {
        self.metrics
            .histogram("campus.session_secs")
            .and_then(|h| h.quantile(p.clamp(0.0, 1.0)))
            .unwrap_or(0.0)
    }

    /// The sampled traces concatenated into one JSONL document, each
    /// session prefixed by a header line. Deterministic byte for byte.
    ///
    /// Header schema (versioned since `"v":1`; consumers must tolerate
    /// unknown fields so the header can evolve without breakage):
    /// `{"t":"shard","v":1,"student":N,"seed":N,"reason":"..."}`.
    pub fn traces_jsonl(&self) -> String {
        let mut out = String::new();
        for t in &self.traces {
            out.push_str(&format!(
                "{{\"t\":\"shard\",\"v\":1,\"student\":{},\"seed\":{},\"reason\":\"{}\"}}\n",
                t.student,
                t.seed,
                t.reason.as_str()
            ));
            out.push_str(&t.jsonl);
        }
        out
    }

    /// The windowed timeline as byte-stable JSON (see
    /// [`Timeline::to_json`]).
    pub fn timeline_json(&self) -> String {
        self.timeline.to_json()
    }

    /// The forensic bundles as one byte-stable JSON array.
    pub fn forensics_json(&self) -> String {
        forensics::bundles_json(&self.forensics)
    }
}

impl ReportSink for CampusReport {
    fn session(&mut self, report: &SessionReport) {
        self.wall_hist.record(report.wall_secs);
        self.sessions_anomalous += u64::from(report.anomalous);
    }

    fn trace(&mut self, trace: &ShardTrace) {
        self.traces.push(trace.clone());
    }

    fn rollup(&mut self, rollup: &CampusRollup) {
        self.students = rollup.students;
        self.threads = rollup.threads;
        self.max_concurrent = rollup.max_concurrent;
        self.digest = rollup.digest;
        self.bytes = rollup.bytes;
        self.sessions_failed = rollup.sessions_failed;
        self.wall_secs = rollup.wall_secs;
        self.metrics = rollup.metrics.clone();
        self.slo = rollup.slo.clone();
        self.timeline = rollup.timeline.clone();
        self.forensics = rollup.forensics.clone();
    }
}

/// The default campus service-level objectives, judged against the
/// merged snapshot (all inputs are simulated quantities, so the
/// verdicts are as deterministic as the digest):
///
/// * `session_p99_wall` — p99 simulated session time under 10 s
///   (warn) / 30 s (breach), from the merged `campus.session_secs`
///   histogram.
/// * `retry_rate` — client re-issues per attempt ≤ 1% / 10%.
/// * `shed_rate` — primary-server load shedding ≤ 0 / 5%.
/// * `degraded_fraction` — sessions with client anomalies or failovers
///   ≤ 0 / 2%.
pub fn default_campus_slos() -> Vec<Slo> {
    vec![
        Slo::upper(
            "session_p99_wall",
            SloInput::HistogramQuantile {
                name: "campus.session_secs".into(),
                q: 0.99,
            },
            10.0,
            30.0,
        ),
        Slo::upper(
            "retry_rate",
            SloInput::Ratio {
                numerator: "client0.retries".into(),
                denominator: "client0.attempts".into(),
            },
            0.01,
            0.10,
        ),
        Slo::upper(
            "shed_rate",
            SloInput::Ratio {
                numerator: "db.server0.requests_shed".into(),
                denominator: "db.server0.requests_served".into(),
            },
            0.0,
            0.05,
        ),
        Slo::upper(
            "degraded_fraction",
            SloInput::Ratio {
                numerator: "campus.sessions_degraded".into(),
                denominator: "campus.sessions".into(),
            },
            0.0,
            0.02,
        ),
    ]
}

/// Build one workload per shard, each keyed *entirely* to its shard:
/// the root container (and with it the whole object closure, which the
/// ring places by root) hashes to shard `d`, and so does every one of
/// its media clips. Rotated through [`Campus::workloads`], student `i`
/// touches only shard `i % shards` — a shard fault's blast radius
/// becomes a residue class of the student population, which the
/// fault-storm gate asserts exactly.
///
/// Placement is a pure function of object/media ids, so the searches
/// here are deterministic and seed-free.
pub fn sharded_workloads(shards: usize, clips: usize, clip_bytes: usize) -> Vec<CampusWorkload> {
    let router = ShardRouter::new(shards.max(1));
    (0..shards.max(1))
        .map(|d| {
            // Scan application ids until the compiled root lands on `d`.
            let mut app = 1 + d as u32;
            let (objects, root) = loop {
                let mut lib = ClassLibrary::new(app);
                let v = lib.value_content("v", GenericValue::Int(1));
                let root = lib.container(&format!("Course shard {d}"), vec![v]);
                if router.shard_for_object(root) == d {
                    break (lib.into_objects(), root);
                }
                app += shards.max(1) as u32;
            };
            // Same scan for media ids: only ids hashing to `d` are used.
            let mut media = Vec::with_capacity(clips);
            let mut next = 0x0900_0000_u64 + ((d as u64) << 40);
            while media.len() < clips {
                let id = MediaId(next);
                next += 1;
                if router.shard_for_media(id) != d {
                    continue;
                }
                let i = media.len();
                let data: Vec<u8> = (0..clip_bytes)
                    .map(|j| ((i * 31 + j) % 251) as u8)
                    .collect();
                media.push(MediaObject::new(
                    id,
                    format!("shard{d}-clip{i}.mpg"),
                    MediaFormat::Mpeg,
                    SimDuration::from_secs(1),
                    VideoDims::new(160, 120),
                    Bytes::from(data),
                ));
            }
            CampusWorkload {
                objects,
                media,
                root,
            }
        })
        .collect()
}

/// A correlated fault storm aimed at one shard, replayed inside every
/// student session's virtual clock: at [`FaultStorm::crash_at`] the
/// victim shard's primary *and* its hot standby crash together, and
/// every link between the victim group and the switch goes down until
/// [`FaultStorm::outage_until`] — so per-shard failover, which saves a
/// session from a lone primary crash, cannot save one from the storm.
/// Sessions whose working set hashes to the victim fail at their retry
/// deadline; sessions keyed to healthy shards must be byte-identical
/// to a storm-free twin run ([`FaultStorm::apply_calm`]).
#[derive(Debug, Clone)]
pub struct FaultStorm {
    /// Shard groups in every session's store.
    pub shards: usize,
    /// The shard the storm takes out.
    pub victim: usize,
    /// When (virtual, per session) the victim's servers crash.
    pub crash_at: SimTime,
    /// End of the victim group's link outage window.
    pub outage_until: SimTime,
    /// Optional restart of the victim primary (failback drills).
    pub restart_at: Option<SimTime>,
    /// Campus-edge cache budget per session (0 = no edge tier).
    pub edge_cache_bytes: usize,
    /// Client retry policy under the storm. Victim sessions must *fail*
    /// at this policy's deadline, never hang.
    pub retry: RetryPolicy,
}

impl FaultStorm {
    /// A storm with the default interactive retry policy, no failback
    /// and no edge tier.
    pub fn new(shards: usize, victim: usize, crash_at: SimTime, outage_until: SimTime) -> Self {
        FaultStorm {
            shards,
            victim,
            crash_at,
            outage_until,
            restart_at: None,
            edge_cache_bytes: 0,
            retry: RetryPolicy::interactive(),
        }
    }

    /// The storm-free twin: the same topology (shards, per-shard
    /// replicas, edge budget, retry policy) with no faults at all. The
    /// survival gate diffs healthy-shard session digests against this.
    pub fn apply_calm(&self, config: SystemConfig) -> SystemConfig {
        config
            .with_shards(self.shards)
            .with_replica()
            .with_edge_cache(self.edge_cache_bytes)
            .with_retry(self.retry)
    }

    /// The storm itself: the calm topology plus the correlated crash
    /// pair and the shard-wide link outage (and the optional failback
    /// restart).
    pub fn apply(&self, config: SystemConfig) -> SystemConfig {
        let mut c = self
            .apply_calm(config)
            .with_shard_crash(self.crash_at, self.victim, 0)
            .with_shard_crash(self.crash_at, self.victim, 1)
            .with_shard_outage(self.victim, self.crash_at, self.outage_until);
        if let Some(at) = self.restart_at {
            c = c.with_shard_restart(at, self.victim, 0);
        }
        c
    }

    /// The storm as an injected fault schedule for forensics: one
    /// window labelled `fault_storm.shard<victim>`, opening at the
    /// crash and clearing only if a failback restart is planned (with
    /// no restart the victim's primary *and* standby stay dead, so the
    /// fault never clears). Feed this to [`Campus::fault_schedule`] so
    /// breach bundles can name the storm as their suspect.
    pub fn schedule(&self) -> Vec<FaultWindow> {
        vec![FaultWindow {
            label: format!("fault_storm.shard{}", self.victim),
            shard: self.victim as u64,
            onset: self.crash_at,
            clear: self.restart_at.map(|r| r.max(self.outage_until)),
        }]
    }
}

/// SLOs for a fault-storm campaign. The storm *intends* to fail the
/// victim shard's sessions, so the failure budget is the victim's share
/// of the population — one session more than that share is a breach,
/// because it means the blast radius leaked past the victim shard.
pub fn fault_storm_slos(victim_share: f64) -> Vec<Slo> {
    vec![
        Slo::upper(
            "storm_failed_fraction",
            SloInput::Ratio {
                numerator: "campus.sessions_failed".into(),
                denominator: "campus.sessions".into(),
            },
            victim_share,
            victim_share,
        ),
        Slo::upper(
            "storm_degraded_fraction",
            SloInput::Ratio {
                numerator: "campus.sessions_degraded".into(),
                denominator: "campus.sessions".into(),
            },
            victim_share,
            victim_share,
        ),
    ]
}

/// SLOs for an edge-cached flash crowd: the hit rate must stay *above*
/// `min_hit_rate` (a [`Slo::lower`] floor — half the floor is a
/// breach), and origin traffic per lookup must stay under the
/// complementary bound (an origin request for every lookup means the
/// cache absorbed nothing).
pub fn edge_cache_slos(min_hit_rate: f64) -> Vec<Slo> {
    vec![
        Slo::lower(
            "edge_hit_rate",
            SloInput::Ratio {
                numerator: "edge.hits".into(),
                denominator: "edge.lookups".into(),
            },
            min_hit_rate,
            min_hit_rate / 2.0,
        ),
        Slo::upper(
            "edge_origin_fraction",
            SloInput::Ratio {
                numerator: "edge.origin_requests".into(),
                denominator: "edge.lookups".into(),
            },
            1.0 - min_hit_rate,
            1.0,
        ),
    ]
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv_fold(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Per-student `SystemConfig` hook (see [`Campus::configure_sessions`]).
type SessionConfigFn = dyn Fn(&SessionSpec, SystemConfig) -> SystemConfig + Send + Sync;

/// Builder for a campus run.
///
/// ```no_run
/// # use mits_core::campus::{Campus, CampusWorkload};
/// # fn demo(workload: CampusWorkload) -> Result<(), mits_core::system::SystemError> {
/// let report = Campus::new(10_000, 42)
///     .threads(8)
///     .max_concurrent(64)
///     .workload(workload)
///     .run()?;
/// assert_eq!(report.students, 10_000);
/// # Ok(())
/// # }
/// ```
///
/// `threads(0)` (the default) sizes the pool to [`host_cores`];
/// `max_concurrent(0)` (the default) admits as many sessions as there
/// are workers. Lowering `max_concurrent` below the worker count bounds
/// live memory harder at the cost of idle workers; results never change.
pub struct Campus {
    students: usize,
    base_seed: u64,
    threads: usize,
    max_concurrent: usize,
    batch: usize,
    trace_sample_rate: f64,
    slow_session: SimDuration,
    workloads: Vec<CampusWorkload>,
    slos: Option<Vec<Slo>>,
    session_config: Option<Arc<SessionConfigFn>>,
    timeline_window: SimDuration,
    fault_schedule: Vec<FaultWindow>,
    flight_ring: usize,
}

impl Campus {
    /// A campus of `students` sessions, seeded by `base_seed`, with
    /// default telemetry: 5% head sampling, 30 s slow threshold.
    pub fn new(students: usize, base_seed: u64) -> Self {
        Campus {
            students,
            base_seed,
            threads: 0,
            max_concurrent: 0,
            batch: 0,
            trace_sample_rate: 0.05,
            slow_session: SimDuration::from_secs(30),
            workloads: Vec::new(),
            slos: None,
            session_config: None,
            timeline_window: SimDuration::from_millis(TIMELINE_WINDOW_MS),
            fault_schedule: Vec::new(),
            flight_ring: mits_sim::FLIGHT_RING_CAP,
        }
    }

    /// Worker threads; 0 = auto ([`host_cores`]), 1 runs inline on the
    /// caller's thread.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Admission window: at most this many sessions live at once,
    /// bounding memory by concurrency instead of population. 0 = one
    /// per worker, capped at [`host_cores`].
    pub fn max_concurrent(mut self, k: usize) -> Self {
        self.max_concurrent = k;
        self
    }

    /// Students per work-stealing batch; 0 = auto-sized from the
    /// population and worker count. Batch size is independent of the
    /// thread count, so it never reaches the digest.
    pub fn batch(mut self, n: usize) -> Self {
        self.batch = n;
        self
    }

    /// The courseware every session fetches. Required (or
    /// [`Campus::workloads`]).
    pub fn workload(mut self, w: CampusWorkload) -> Self {
        self.workloads = vec![w];
        self
    }

    /// A rotation of workloads: student `i` fetches
    /// `workloads[i % workloads.len()]`. With per-shard workloads (see
    /// [`sharded_workloads`]) this keys each student's whole working
    /// set to one shard, so a shard fault's blast radius is a residue
    /// class of the student population.
    pub fn workloads(mut self, ws: Vec<CampusWorkload>) -> Self {
        self.workloads = ws;
        self
    }

    /// Override the SLO list the rollup is judged against (default:
    /// [`default_campus_slos`]). A fault-storm campaign judges with
    /// [`fault_storm_slos`] instead, which budgets for the victim
    /// shard's share of sessions.
    pub fn slos(mut self, slos: Vec<Slo>) -> Self {
        self.slos = Some(slos);
        self
    }

    /// Fraction of students whose traces are head-sampled (0.0..=1.0).
    /// Anomalous sessions are kept regardless (tail sampling).
    pub fn trace_sample_rate(mut self, rate: f64) -> Self {
        self.trace_sample_rate = rate;
        self
    }

    /// Sessions simulating longer than this are tail-sampled as slow.
    pub fn slow_session(mut self, d: SimDuration) -> Self {
        self.slow_session = d;
        self
    }

    /// Width of the windowed telemetry timeline (session-local virtual
    /// time; default 250 ms). Zero keeps the default. The window width
    /// reaches the timeline bytes, so compare runs only at equal
    /// widths.
    pub fn timeline_window(mut self, w: SimDuration) -> Self {
        if !w.is_zero() {
            self.timeline_window = w;
        }
        self
    }

    /// Capacity of every session's flight-recorder ring (default
    /// [`mits_sim::FLIGHT_RING_CAP`]). The ring never reaches the
    /// session digest, but its tail feeds the timeline and forensic
    /// evidence — so compare timelines only at equal caps. Zero keeps
    /// the default; [`Campus::replay`] forces an effectively unbounded
    /// ring on the replayed session.
    pub fn flight_ring(mut self, cap: usize) -> Self {
        if cap != 0 {
            self.flight_ring = cap;
        }
        self
    }

    /// Declare the fault schedule injected via
    /// [`Campus::configure_sessions`] (e.g. [`FaultStorm::schedule`]),
    /// so forensic bundles can align breach windows against it and
    /// name a suspected cause. Purely declarative: it injects nothing.
    pub fn fault_schedule(mut self, schedule: Vec<FaultWindow>) -> Self {
        self.fault_schedule = schedule;
        self
    }

    /// Customise a student's `SystemConfig` (fault plans, crash
    /// schedules, retry policies). The hook receives the session spec
    /// and the seeded single-seat base config; it must stay a pure
    /// function of the spec or the determinism contract breaks.
    pub fn configure_sessions(
        mut self,
        f: impl Fn(&SessionSpec, SystemConfig) -> SystemConfig + Send + Sync + 'static,
    ) -> Self {
        self.session_config = Some(Arc::new(f));
        self
    }

    /// Run the campus into the provided [`CampusReport`] sink.
    pub fn run(&self) -> Result<CampusReport, SystemError> {
        let mut report = CampusReport::new();
        self.run_with(&mut report)?;
        Ok(report)
    }

    /// Run the campus, streaming sessions, traces and the final rollup
    /// into `sink` in deterministic student-index order.
    pub fn run_with(&self, sink: &mut dyn ReportSink) -> Result<(), SystemError> {
        if self.workloads.is_empty() {
            return Err(SystemError::Protocol(
                "Campus::workload(..) must be set before run()".into(),
            ));
        }
        let students = self.students;
        let threads = if self.threads == 0 {
            host_cores()
        } else {
            self.threads
        };
        let batch = if self.batch == 0 {
            (students / (threads.max(1) * 4)).clamp(1, 64)
        } else {
            self.batch.max(1)
        };
        let n_batches = students.div_ceil(batch);
        let workers = threads.max(1).min(n_batches.max(1));
        let max_concurrent = if self.max_concurrent == 0 {
            // One live session per worker, capped at the physical core
            // count: admitting more concurrent sessions than cores can
            // run only grows live memory and thrashes the cache. Only
            // throughput depends on this; results never do.
            workers.min(host_cores()).max(1)
        } else {
            self.max_concurrent
        };
        let sampler = TraceSampler::new(self.base_seed, self.trace_sample_rate)
            .with_latency_threshold(self.slow_session);
        let tl_window = self.timeline_window;
        let start = Instant::now();

        let queue = BatchQueue::new(n_batches, workers);
        let window = AdmissionWindow::new(max_concurrent);
        let merge = Mutex::new(MergeState::new(sink, tl_window));
        let fatal: Mutex<Option<SystemError>> = Mutex::new(None);
        let abort = AtomicBool::new(false);

        let work = |worker: usize| {
            let mut scratch = SessionScratch::default();
            while let Some(b) = queue.claim(worker) {
                if abort.load(Ordering::Relaxed) {
                    return;
                }
                let lo = b * batch;
                let hi = ((b + 1) * batch).min(students);
                let mut out = BatchOut::new(tl_window);
                for student in lo..hi {
                    let spec = SessionSpec {
                        student,
                        seed: derive_seed(self.base_seed, student as u64),
                    };
                    let base = SystemConfig::broadband(1)
                        .with_seed(spec.seed)
                        .with_flight_ring(self.flight_ring);
                    let config = match &self.session_config {
                        Some(f) => f(&spec, base),
                        None => base,
                    };
                    // admit: wait for an admission slot, then build the
                    // session's world (reusing this worker's scratch).
                    window.admit();
                    let ran = run_session(
                        &self.workloads[student % self.workloads.len()],
                        &sampler,
                        &spec,
                        &config,
                        tl_window,
                        std::mem::take(&mut scratch),
                        None,
                    );
                    // retire: the session's world is already torn down
                    // (its allocations harvested into `scratch`); free
                    // the admission slot and fold the outcome.
                    window.retire();
                    match ran {
                        Ok((outcome, recycled)) => {
                            scratch = recycled;
                            out.push(outcome);
                        }
                        Err(e) => {
                            abort.store(true, Ordering::Relaxed);
                            let mut f = fatal.lock().expect("campus fatal");
                            if f.is_none() {
                                *f = Some(e);
                            }
                            return;
                        }
                    }
                }
                merge.lock().expect("campus merge").complete(b, out);
            }
        };

        if workers <= 1 {
            work(0);
        } else {
            let work = &work;
            crossbeam::thread::scope(|scope| {
                for w in 0..workers {
                    scope.spawn(move |_| work(w));
                }
            })
            .map_err(|_| SystemError::Protocol("campus worker panicked".into()))?;
        }

        if let Some(e) = fatal.into_inner().expect("campus fatal") {
            return Err(e);
        }
        let mut merged = merge.into_inner().expect("campus merge");
        if merged.next != n_batches {
            return Err(SystemError::Protocol(format!(
                "campus batch {} never retired",
                merged.next
            )));
        }

        let slos = match &self.slos {
            Some(s) => s.clone(),
            None => default_campus_slos(),
        };
        let slo = SloReport::evaluate(&slos, &merged.metrics, &BTreeMap::new());

        // Breach forensics: walk the merged timeline for the anomaly
        // window, align it against the declared fault schedule, and
        // attach the exemplar-linked samples and flight-recorder tails
        // as evidence. Healthy run => no bundles.
        let timeline = std::mem::replace(&mut merged.timeline, Timeline::new(tl_window));
        let exemplars: Vec<Exemplar> = merged
            .metrics
            .histogram("campus.session_secs")
            .map(|h| h.exemplars().copied().collect())
            .unwrap_or_default();
        let bundles = forensics::generate(&ForensicInput {
            timeline: &timeline,
            tails: &merged.tails,
            schedule: &self.fault_schedule,
            slo: Some(&slo),
            exemplars: &exemplars,
            sessions_failed: merged.failed,
            sessions_degraded: merged.degraded,
            base_seed: self.base_seed,
        });

        let rollup = CampusRollup {
            students,
            threads: workers,
            max_concurrent,
            digest: merged.digest,
            bytes: merged.bytes,
            sessions_failed: merged.failed,
            wall_secs: start.elapsed().as_secs_f64(),
            metrics: std::mem::replace(&mut merged.metrics, MetricsSnapshot::new()),
            slo,
            timeline,
            forensics: bundles,
        };
        merged.sink.rollup(&rollup);
        Ok(())
    }

    /// Capture everything needed to re-run `report`'s session
    /// standalone: the spec, workload id, shard/replica topology (read
    /// off the configured session's `SystemConfig`), the fault-schedule
    /// slice intersecting the session's span, and the campus-recorded
    /// digest checkpoints. Pure — nothing is simulated here.
    pub fn extract(&self, report: &SessionReport) -> ReplayBundle {
        let spec = SessionSpec {
            student: report.student,
            seed: report.seed,
        };
        let base = SystemConfig::broadband(1).with_seed(spec.seed);
        let config = match &self.session_config {
            Some(f) => f(&spec, base),
            None => base,
        };
        let faults = self
            .fault_schedule
            .iter()
            .filter(|w| w.overlaps(SimTime::ZERO, report.end))
            .cloned()
            .collect();
        ReplayBundle {
            student: report.student,
            seed: report.seed,
            workload: report.student % self.workloads.len().max(1),
            shards: config.shards,
            replica: config.replica,
            digest: report.digest,
            layers: report.layers.clone(),
            anomalous: report.anomalous,
            failed: report.failed,
            faults,
        }
    }

    /// Re-run one captured session standalone with instrumentation
    /// forced to maximum — trace kept unconditionally, an effectively
    /// unbounded flight ring, and the link weathermap harvested off the
    /// live network — then prove faithfulness: the replayed digest
    /// checkpoints must equal the campus-recorded ones layer for layer.
    /// A divergence is a hard error naming the first layer that
    /// disagrees. Neither the sampler nor the flight-ring cap feeds the
    /// digest, so the instrumentation delta cannot cause one.
    pub fn replay_bundle(&self, bundle: &ReplayBundle) -> Result<ReplayReport, SystemError> {
        if self.workloads.is_empty() {
            return Err(SystemError::Protocol(
                "Campus::workload(..) must be set before replay".into(),
            ));
        }
        let spec = SessionSpec {
            student: bundle.student,
            seed: bundle.seed,
        };
        let base = SystemConfig::broadband(1)
            .with_seed(spec.seed)
            .with_flight_ring(usize::MAX);
        let config = match &self.session_config {
            Some(f) => f(&spec, base),
            None => base,
        };
        // Rate 1.0 head-samples every student, so the replayed trace is
        // always kept; the decision stays out of the digest.
        let sampler =
            TraceSampler::new(self.base_seed, 1.0).with_latency_threshold(self.slow_session);
        let mut weathermap = String::new();
        let mut route = Vec::new();
        let mut waterfall = String::new();
        let mut profile_top = String::new();
        let mut observe = |sys: &MitsSystem| {
            weathermap = sys.net.weathermap_json();
            route = sys.net.active_links();
            // The session's root span is the first ever opened, so the
            // waterfall renders the whole replayed session end to end.
            if let Some(root) = sys.tracer.spans().first().map(|s| s.id) {
                waterfall = sys.tracer.waterfall(root);
            }
            profile_top = mits_sim::profile_tracer(&sys.tracer).render_top(10);
        };
        let (outcome, _) = run_session(
            &self.workloads[bundle.workload % self.workloads.len()],
            &sampler,
            &spec,
            &config,
            self.timeline_window,
            SessionScratch::default(),
            Some(&mut observe),
        )?;
        let report = outcome.report;
        report.layers.compare(&bundle.layers).map_err(|d| {
            SystemError::Protocol(format!(
                "replay of student {} unfaithful: {d}",
                bundle.student
            ))
        })?;
        if report.digest != bundle.digest {
            return Err(SystemError::Protocol(format!(
                "replay of student {} unfaithful: final digest {:#018x} != campus {:#018x}",
                bundle.student, report.digest, bundle.digest
            )));
        }
        let breach_reproduced =
            report.failed == bundle.failed && report.anomalous == bundle.anomalous;
        let trace_jsonl = outcome.trace.map(|t| t.jsonl).unwrap_or_default();
        Ok(ReplayReport {
            bundle: bundle.clone(),
            digest_match: true,
            breach_reproduced,
            report,
            trace_jsonl,
            weathermap,
            route,
            waterfall,
            profile_top,
        })
    }

    /// Extract-and-replay one student: run the campus (streaming, so
    /// memory stays bounded), capture that student's [`SessionReport`],
    /// and [`Campus::replay_bundle`] it. This is the one-call debugging
    /// loop: name a victim (e.g. from a [`ForensicBundle`]'s replay
    /// handles) and get back its solo re-run at full instrumentation,
    /// faithfulness already proven.
    pub fn replay(&self, student: usize) -> Result<ReplayReport, SystemError> {
        let mut sink = CaptureSink {
            student,
            report: None,
        };
        self.run_with(&mut sink)?;
        let report = sink.report.ok_or_else(|| {
            SystemError::Protocol(format!(
                "student {student} is outside this campus (population {})",
                self.students
            ))
        })?;
        self.replay_bundle(&self.extract(&report))
    }
}

/// Outcome of a faithful solo re-run of one captured session (see
/// [`Campus::replay_bundle`]). Existence implies the digest proof
/// passed — an unfaithful replay is an error, not a report.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// The bundle that was replayed.
    pub bundle: ReplayBundle,
    /// Always true: a digest mismatch errors instead of reporting.
    pub digest_match: bool,
    /// Whether the replay also reproduced the campus-recorded outcome
    /// flags (failed / anomalous) — the SLO-breach behaviour, which is
    /// not entirely covered by the digest.
    pub breach_reproduced: bool,
    /// The replayed session's report (digest, bytes, timings, layers).
    pub report: SessionReport,
    /// The replayed session's full trace (sample rate forced to 1.0).
    pub trace_jsonl: String,
    /// Versioned `{"t":"weathermap","v":1,...}` JSON of the replayed
    /// session's network.
    pub weathermap: String,
    /// The links that carried cells, `(from, to)` node names in link-id
    /// order — the victim's route.
    pub route: Vec<(String, String)>,
    /// The replayed session's latency waterfall, rendered from the root
    /// span (virtual-time offsets and bars).
    pub waterfall: String,
    /// Per-layer self-time profile of the replayed trace (flame-style
    /// "top", 10 rows).
    pub profile_top: String,
}

/// Sink that keeps exactly one student's report and drops the rest.
struct CaptureSink {
    student: usize,
    report: Option<SessionReport>,
}

impl ReportSink for CaptureSink {
    fn session(&mut self, report: &SessionReport) {
        if report.student == self.student {
            self.report = Some(report.clone());
        }
    }
}

/// What one retired session hands to the merge.
struct SessionOutcome {
    report: SessionReport,
    snapshot: MetricsSnapshot,
    trace: Option<ShardTrace>,
    timeline: Timeline,
    tail: Option<SessionTail>,
}

/// A completed batch: its sessions in index order, ready to flush.
struct BatchOut {
    sessions: Vec<SessionReport>,
    traces: Vec<ShardTrace>,
    snapshot: MetricsSnapshot,
    timeline: Timeline,
    tails: Vec<SessionTail>,
}

impl BatchOut {
    fn new(window: SimDuration) -> Self {
        BatchOut {
            sessions: Vec::new(),
            traces: Vec::new(),
            snapshot: MetricsSnapshot::new(),
            timeline: Timeline::new(window),
            tails: Vec::new(),
        }
    }

    fn push(&mut self, outcome: SessionOutcome) {
        self.snapshot.merge(&outcome.snapshot);
        self.timeline.merge(&outcome.timeline);
        if let Some(t) = outcome.trace {
            self.traces.push(t);
        }
        if let Some(t) = outcome.tail {
            self.tails.push(t);
        }
        self.sessions.push(outcome.report);
    }
}

/// The streaming rollup: batches arrive in completion order, flush in
/// index order. `parked` holds only the out-of-order window (batches
/// that finished while an earlier one is still running), so its size is
/// bounded by in-flight work, not by population.
struct MergeState<'a> {
    sink: &'a mut dyn ReportSink,
    next: usize,
    parked: BTreeMap<usize, BatchOut>,
    digest: u64,
    bytes: u64,
    failed: u64,
    degraded: u64,
    metrics: MetricsSnapshot,
    timeline: Timeline,
    tails: Vec<SessionTail>,
}

impl<'a> MergeState<'a> {
    fn new(sink: &'a mut dyn ReportSink, window: SimDuration) -> Self {
        MergeState {
            sink,
            next: 0,
            parked: BTreeMap::new(),
            digest: FNV_OFFSET,
            bytes: 0,
            failed: 0,
            degraded: 0,
            metrics: MetricsSnapshot::new(),
            timeline: Timeline::new(window),
            tails: Vec::new(),
        }
    }

    fn complete(&mut self, batch: usize, out: BatchOut) {
        self.parked.insert(batch, out);
        while let Some(out) = self.parked.remove(&self.next) {
            for s in &out.sessions {
                self.digest = fnv_fold(self.digest, s.digest);
                self.bytes += s.bytes;
                self.failed += u64::from(s.failed);
                self.degraded += u64::from(s.anomalous);
                self.sink.session(s);
            }
            for t in &out.traces {
                self.sink.trace(t);
            }
            self.metrics.merge(&out.snapshot);
            self.timeline.merge(&out.timeline);
            // Tails flush in batch (== student-index) order, so the
            // retained set under the cap is thread-count invariant.
            for t in out.tails {
                if self.tails.len() < FORENSIC_TAIL_CAP {
                    self.tails.push(t);
                }
            }
            self.next += 1;
        }
    }
}

/// Per-worker queues of batch indices with stealing: a worker drains its
/// own span front-to-back (keeping the flush frontier moving) and steals
/// from the *back* of the most-loaded peer when dry, so a straggling
/// session delays one batch instead of serializing the pool.
struct BatchQueue {
    queues: Vec<Mutex<VecDeque<usize>>>,
}

impl BatchQueue {
    fn new(batches: usize, workers: usize) -> Self {
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        let per = batches / workers;
        let extra = batches % workers;
        let mut b = 0;
        for (w, q) in queues.iter_mut().enumerate() {
            let n = per + usize::from(w < extra);
            for _ in 0..n {
                q.push_back(b);
                b += 1;
            }
        }
        BatchQueue {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    fn claim(&self, me: usize) -> Option<usize> {
        if let Some(b) = self.queues[me].lock().expect("batch queue").pop_front() {
            return Some(b);
        }
        loop {
            let mut victim: Option<(usize, usize)> = None; // (len, index)
            for (i, q) in self.queues.iter().enumerate() {
                if i == me {
                    continue;
                }
                let len = q.lock().expect("batch queue").len();
                if len > 0 && victim.is_none_or(|(best, _)| len > best) {
                    victim = Some((len, i));
                }
            }
            let (_, v) = victim?;
            if let Some(b) = self.queues[v].lock().expect("batch queue").pop_back() {
                return Some(b);
            }
            // Raced with the victim draining its own queue; rescan.
        }
    }
}

/// Counting semaphore bounding live sessions (the admission window).
struct AdmissionWindow {
    permits: Mutex<usize>,
    freed: Condvar,
}

impl AdmissionWindow {
    fn new(k: usize) -> Self {
        AdmissionWindow {
            permits: Mutex::new(k.max(1)),
            freed: Condvar::new(),
        }
    }

    fn admit(&self) {
        let mut p = self.permits.lock().expect("admission window");
        while *p == 0 {
            p = self.freed.wait(p).expect("admission window");
        }
        *p -= 1;
    }

    fn retire(&self) {
        *self.permits.lock().expect("admission window") += 1;
        self.freed.notify_one();
    }
}

/// Run one student's whole session: fetch the courseware closure, then
/// fetch every media object (cold cache — each session is a fresh seat).
/// A mid-session failure (deadline expired, server gone for good) does
/// *not* abort the campus: the session retires with `failed` set, its
/// partial observables folded under [`SESSION_FAILED_MARK`]. Only a
/// build failure — a broken config — is fatal.
fn run_session(
    workload: &CampusWorkload,
    sampler: &TraceSampler,
    spec: &SessionSpec,
    config: &SystemConfig,
    tl_window: SimDuration,
    scratch: SessionScratch,
    // Called with the live system just before teardown — replay uses it
    // to harvest the weathermap and route. The campus path passes None.
    observe: Option<&mut dyn FnMut(&MitsSystem)>,
) -> Result<(SessionOutcome, SessionScratch), SystemError> {
    let start = Instant::now();
    let mut sys = MitsSystem::build_with_scratch(config, scratch)?;
    sys.load_doc(&workload.objects, &workload.media, workload.root);
    let student_id = ClientId(0);

    // Root span over the whole session: every request span nests under
    // it, and its id is the span half of this session's histogram
    // exemplars — so an exemplar in a forensic bundle resolves to a
    // concrete span in the sampled trace.
    let root = sys.tracer.root_span("campus.session", sys.now());
    sys.tracer.push_context(root);

    // Each fold checkpoint is recorded into the layer trace, so two
    // executions of the same session can be diffed layer by layer —
    // the replay faithfulness proof names the first divergent layer.
    let mut layers = DigestTrace::new();
    let mut digest = fnv_fold(FNV_OFFSET, spec.seed);
    layers.record("seed", digest);
    let mut session = SimDuration::ZERO;
    let mut error: Option<String> = None;
    match sys.fetch_courseware(student_id, workload.root) {
        Ok((objects, t)) => {
            session = t;
            digest = fnv_fold(digest, objects.len() as u64);
            layers.record("courseware", digest);
        }
        Err(e) => error = Some(e.to_string()),
    }
    if error.is_none() {
        for (i, m) in workload.media.iter().enumerate() {
            match sys.fetch_content(student_id, m.id) {
                Ok((got, t)) => {
                    session += t;
                    digest = fnv_fold(digest, got.data.len() as u64);
                    layers.record(format!("media.{i}"), digest);
                }
                Err(e) => {
                    error = Some(e.to_string());
                    break;
                }
            }
        }
    }
    let failed = error.is_some();
    if failed {
        digest = fnv_fold(digest, SESSION_FAILED_MARK);
        layers.record("failure", digest);
    }
    let end_at = sys.now();
    sys.tracer.pop_context();
    sys.tracer.end(root, end_at);
    let bytes = sys.bytes_to_client(student_id);
    digest = fnv_fold(digest, bytes);
    layers.record("bytes", digest);
    digest = fnv_fold(digest, session.as_micros());
    layers.record("session_time", digest);
    digest = fnv_fold(digest, sys.db().state_digest());
    layers.record("db_state", digest);

    // Telemetry: freeze this session's registry (stamped at the final
    // virtual instant) with the campus-level session counters the SLO
    // layer reads from the merged rollup.
    sys.export_metrics();
    let degraded = sys.client_metrics(student_id).tail_sample_signal() || failed;
    let failed_over = sys.failovers > 0;
    let anomalous = degraded || failed_over;
    sys.metrics.counter_set("campus.sessions", 1);
    sys.metrics
        .counter_set("campus.sessions_degraded", u64::from(anomalous));
    sys.metrics
        .counter_set("campus.sessions_failed", u64::from(failed));
    // A failed session's fetch-time sum only counts the fetches that
    // succeeded, which understates how long the seat was held; charge
    // it the virtual time it burned until retirement instead, so its
    // histogram sample lands in the slow tail it belongs to.
    let observed = if failed {
        end_at.since(SimTime::ZERO)
    } else {
        session
    };
    // The session-duration sample carries an exemplar: (student index
    // as trace id, root span id, retire instant). Exemplar selection is
    // a deterministic total order, so the merged histogram keeps the
    // same exemplars regardless of merge grouping.
    sys.metrics.observe_exemplar(
        "campus.session_secs",
        observed.as_secs_f64(),
        0.0,
        SESSION_SECS_HI,
        SESSION_SECS_BINS,
        spec.student as u64,
        root.as_u64(),
        end_at,
    );
    let sampled = sampler.decide(
        spec.student as u64,
        &TailSignals {
            degraded,
            failed_over,
            session,
        },
    );
    sys.metrics
        .counter_set("campus.traces_sampled", u64::from(sampled.is_some()));
    let snapshot = sys.metrics.snapshot();
    let trace = sampled.map(|reason| ShardTrace {
        student: spec.student,
        seed: spec.seed,
        reason,
        jsonl: sys.tracer.to_jsonl(),
    });

    // Fold the flight-recorder tail and the retirement into this
    // session's timeline slice; keep the raw tail as forensic evidence
    // only when the session was anomalous (tail-sampled sessions are
    // exactly the ones bundles reference).
    let flight_events = sys.flight.tail();
    let mut recorder = TimelineRecorder::new(tl_window);
    recorder.record_events(&flight_events);
    recorder.record_session(end_at, observed, anomalous, failed);
    let timeline = recorder.finish();
    let tail = anomalous.then(|| SessionTail {
        student: spec.student as u64,
        failed,
        events: flight_events,
        dropped: sys.flight.dropped(),
    });

    let report = SessionReport {
        student: spec.student,
        seed: spec.seed,
        digest,
        bytes,
        session,
        anomalous,
        failed,
        error,
        sampled,
        end: end_at,
        layers,
        wall_secs: start.elapsed().as_secs_f64(),
    };
    if let Some(observe) = observe {
        observe(&sys);
    }
    let scratch = sys.into_scratch();
    Ok((
        SessionOutcome {
            report,
            snapshot,
            trace,
            timeline,
            tail,
        },
        scratch,
    ))
}

// ---------- deprecated pre-builder API ----------

/// Legacy configuration for [`run_campus`].
#[deprecated(note = "use the Campus builder: Campus::new(students, seed).threads(n).run()")]
#[derive(Debug, Clone)]
pub struct CampusConfig {
    /// Number of independent student sessions.
    pub students: usize,
    /// Worker threads; 1 runs the sessions inline on the caller's thread.
    pub threads: usize,
    /// Base seed; student `i` derives its own seed from `(base_seed, i)`.
    pub base_seed: u64,
    /// Fraction of students whose traces are head-sampled (0.0..=1.0).
    pub trace_sample_rate: f64,
    /// Sessions simulating longer than this are tail-sampled as slow.
    pub slow_session: SimDuration,
}

#[allow(deprecated)]
impl CampusConfig {
    /// A campus with default telemetry: 5% head sampling, 30 s slow
    /// threshold.
    pub fn new(students: usize, threads: usize, base_seed: u64) -> Self {
        CampusConfig {
            students,
            threads,
            base_seed,
            trace_sample_rate: 0.05,
            slow_session: SimDuration::from_secs(30),
        }
    }

    /// Override the head-sampling fraction.
    pub fn with_trace_sample_rate(mut self, rate: f64) -> Self {
        self.trace_sample_rate = rate;
        self
    }

    /// Override the slow-session tail-sampling threshold.
    pub fn with_slow_session(mut self, d: SimDuration) -> Self {
        self.slow_session = d;
        self
    }
}

/// Legacy entry point: run the campus described by a [`CampusConfig`].
/// Delegates to the [`Campus`] builder; behaviour (digest, metrics,
/// traces, SLOs) is identical.
#[deprecated(note = "use Campus::new(students, seed).threads(n).workload(w).run()")]
#[allow(deprecated)]
pub fn run_campus(
    config: &CampusConfig,
    workload: &CampusWorkload,
) -> Result<CampusReport, SystemError> {
    Campus::new(config.students, config.base_seed)
        .threads(config.threads.max(1))
        .trace_sample_rate(config.trace_sample_rate)
        .slow_session(config.slow_session)
        .workload(workload.clone())
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mits_media::{MediaFormat, MediaId, VideoDims};
    use mits_mheg::{ClassLibrary, GenericValue};
    use mits_sim::Verdict;

    fn tiny_workload(clips: usize, clip_bytes: usize) -> CampusWorkload {
        let mut lib = ClassLibrary::new(1);
        let v = lib.value_content("v", GenericValue::Int(1));
        let root = lib.container("Course", vec![v]);
        let media = (0..clips)
            .map(|i| {
                let data: Vec<u8> = (0..clip_bytes)
                    .map(|j| ((i * 31 + j) % 251) as u8)
                    .collect();
                MediaObject::new(
                    MediaId(900 + i as u64),
                    format!("clip{i}.mpg"),
                    MediaFormat::Mpeg,
                    SimDuration::from_secs(1),
                    VideoDims::new(160, 120),
                    Bytes::from(data),
                )
            })
            .collect();
        CampusWorkload {
            objects: lib.into_objects(),
            media,
            root,
        }
    }

    fn campus(students: usize, threads: usize, seed: u64, w: &CampusWorkload) -> Campus {
        Campus::new(students, seed)
            .threads(threads)
            .workload(w.clone())
    }

    #[test]
    fn replay_of_a_healthy_student_is_faithful() {
        let w = tiny_workload(2, 4096);
        let c = campus(4, 1, 42, &w);
        let full = c.run().unwrap();
        let r = c.replay(2).unwrap();
        assert!(r.digest_match);
        assert!(r.breach_reproduced, "healthy flags must reproduce too");
        assert_eq!(r.bundle.student, 2);
        assert_eq!(r.bundle.seed, derive_seed(42, 2));
        assert!(!r.trace_jsonl.is_empty(), "replay always keeps the trace");
        assert!(r.weathermap.starts_with("{\"t\":\"weathermap\",\"v\":1,"));
        assert!(
            !r.route.is_empty(),
            "a session that moved bytes has a route"
        );
        // The replayed digest is the same fold the campus recorded.
        assert_eq!(r.report.layers.final_digest(), Some(r.report.digest));
        // Replaying every student must leave the campus digest derivable.
        let _ = full;
    }

    #[test]
    fn tampered_bundle_names_the_divergent_layer() {
        let w = tiny_workload(1, 2048);
        let c = campus(2, 1, 7, &w);
        let mut sink = CaptureSink {
            student: 1,
            report: None,
        };
        c.run_with(&mut sink).unwrap();
        let report = sink.report.unwrap();
        let mut bundle = c.extract(&report);
        // Corrupt the courseware checkpoint: the replay must hard-error
        // and name that layer, not report success or a generic mismatch.
        let mut forged = DigestTrace::new();
        for (name, d) in bundle.layers.layers() {
            forged.record(name.clone(), if name == "courseware" { d ^ 1 } else { *d });
        }
        bundle.layers = forged;
        let err = c.replay_bundle(&bundle).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unfaithful"), "{msg}");
        assert!(msg.contains("courseware"), "{msg}");
    }

    #[test]
    fn extract_slices_the_fault_schedule_to_the_session_span() {
        let w = tiny_workload(1, 2048);
        let late = FaultWindow {
            label: "late.shard0".into(),
            shard: 0,
            onset: SimTime::from_secs(3_600),
            clear: None,
        };
        let early = FaultWindow {
            label: "early.shard0".into(),
            shard: 0,
            onset: SimTime::from_millis(1),
            clear: Some(SimTime::from_millis(2)),
        };
        let c = campus(1, 1, 9, &w).fault_schedule(vec![early.clone(), late]);
        let mut sink = CaptureSink {
            student: 0,
            report: None,
        };
        c.run_with(&mut sink).unwrap();
        let report = sink.report.unwrap();
        let bundle = c.extract(&report);
        assert_eq!(
            bundle.faults,
            vec![early],
            "only windows overlapping the session span ride along"
        );
    }

    #[test]
    fn campus_digest_is_thread_count_invariant() {
        let w = tiny_workload(2, 4096);
        let serial = campus(6, 1, 42, &w).run().unwrap();
        for threads in [2, 8] {
            let parallel = campus(6, threads, 42, &w).run().unwrap();
            assert_eq!(serial.digest, parallel.digest, "threads={threads}");
            assert_eq!(serial.bytes, parallel.bytes);
        }
    }

    #[test]
    fn campus_telemetry_is_thread_count_invariant() {
        let w = tiny_workload(2, 4096);
        // High head rate so the sampled set is non-trivial.
        let serial = campus(6, 1, 42, &w).trace_sample_rate(0.5).run().unwrap();
        assert!(
            !serial.traces.is_empty(),
            "a 50% lottery over 6 students should keep something"
        );
        assert!(
            serial.traces.len() < serial.students,
            "sampling must bound the trace set"
        );
        for threads in [2, 8] {
            let parallel = campus(6, threads, 42, &w)
                .trace_sample_rate(0.5)
                .run()
                .unwrap();
            assert_eq!(
                serial.metrics.to_json(),
                parallel.metrics.to_json(),
                "merged snapshot must be byte-identical at threads={threads}"
            );
            assert_eq!(
                serial.metrics.to_text(),
                parallel.metrics.to_text(),
                "text rendering too"
            );
            assert_eq!(
                serial.traces_jsonl(),
                parallel.traces_jsonl(),
                "sampled trace set must be byte-identical at threads={threads}"
            );
            assert_eq!(serial.slo.to_json(), parallel.slo.to_json());
        }
    }

    #[test]
    fn campus_rollup_sums_counters_and_judges_slos() {
        let w = tiny_workload(1, 2048);
        let report = campus(4, 2, 9, &w).run().unwrap();
        assert_eq!(report.metrics.counter("campus.sessions"), Some(4));
        assert_eq!(report.metrics.counter("campus.sessions_degraded"), Some(0));
        assert_eq!(report.metrics.counter("campus.sessions_failed"), Some(0));
        assert_eq!(report.sessions_failed, 0);
        assert_eq!(report.sessions_anomalous, 0);
        let h = report.metrics.histogram("campus.session_secs").unwrap();
        assert_eq!(h.count(), 4, "one session sample per student");
        // Client attempts accumulate across sessions.
        let attempts = report.metrics.counter("client0.attempts").unwrap();
        assert!(attempts >= 4 * 2, "each session fetched courseware + clip");
        // Zero-fault campus: every default SLO passes.
        assert_eq!(report.slo.breaches(), 0, "{}", report.slo.to_json());
        assert!(report
            .slo
            .outcomes
            .iter()
            .all(|o| o.verdict == Verdict::Pass));
    }

    #[test]
    fn sink_streams_sessions_in_index_order() {
        struct OrderSink {
            students: Vec<usize>,
            bytes: u64,
            rollups: usize,
            rollup_bytes: u64,
        }
        impl ReportSink for OrderSink {
            fn session(&mut self, r: &SessionReport) {
                self.students.push(r.student);
                self.bytes += r.bytes;
            }
            fn rollup(&mut self, rollup: &CampusRollup) {
                self.rollups += 1;
                self.rollup_bytes = rollup.bytes;
            }
        }
        let w = tiny_workload(1, 1024);
        let mut sink = OrderSink {
            students: Vec::new(),
            bytes: 0,
            rollups: 0,
            rollup_bytes: 0,
        };
        campus(9, 4, 7, &w).batch(2).run_with(&mut sink).unwrap();
        assert_eq!(sink.students, (0..9).collect::<Vec<_>>());
        assert_eq!(sink.rollups, 1);
        assert_eq!(sink.bytes, sink.rollup_bytes, "streamed == merged");
    }

    #[test]
    fn admission_window_edges_do_not_change_results() {
        let w = tiny_workload(1, 2048);
        let base = campus(8, 4, 11, &w).run().unwrap();
        for k in [1, 8] {
            let bounded = campus(8, 4, 11, &w).max_concurrent(k).run().unwrap();
            assert_eq!(bounded.max_concurrent, k);
            assert_eq!(base.digest, bounded.digest, "max_concurrent={k}");
            assert_eq!(base.metrics.to_json(), bounded.metrics.to_json());
            assert_eq!(base.traces_jsonl(), bounded.traces_jsonl());
        }
    }

    #[test]
    fn campus_seeds_are_distinct_and_coverage_is_full() {
        struct SeedSink {
            seeds: Vec<u64>,
            bytes: Vec<u64>,
        }
        impl ReportSink for SeedSink {
            fn session(&mut self, r: &SessionReport) {
                self.seeds.push(r.seed);
                self.bytes.push(r.bytes);
            }
        }
        let w = tiny_workload(1, 1024);
        let mut sink = SeedSink {
            seeds: Vec::new(),
            bytes: Vec::new(),
        };
        campus(5, 3, 7, &w).run_with(&mut sink).unwrap();
        assert_eq!(sink.seeds.len(), 5);
        assert!(sink.bytes.iter().all(|&b| b == sink.bytes[0]));
        assert!(sink.bytes[0] > 1024, "content plus protocol overhead");
        let mut seeds = sink.seeds.clone();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 5, "derived seeds must not collide");
    }

    #[test]
    fn base_seed_changes_the_campus_digest() {
        let w = tiny_workload(1, 2048);
        let a = campus(3, 2, 1, &w).run().unwrap();
        let b = campus(3, 2, 2, &w).run().unwrap();
        assert_ne!(a.digest, b.digest, "seed must reach the digest");
    }

    #[test]
    fn missing_workload_is_an_error_not_a_panic() {
        let err = Campus::new(4, 1).run().unwrap_err();
        assert!(matches!(err, SystemError::Protocol(_)));
    }

    #[test]
    fn percentile_edge_cases_do_not_panic_or_extrapolate() {
        let empty = CampusReport::new();
        assert_eq!(empty.wall_percentile(0.99), 0.0);
        assert_eq!(empty.session_percentile(0.5), 0.0);
        // Out-of-range p clamps instead of panicking.
        let w = tiny_workload(0, 0);
        let one = campus(1, 1, 3, &w).run().unwrap();
        for p in [-3.0, 0.0, 0.5, 1.0, 7.0] {
            assert!(one.wall_percentile(p) >= 0.0, "p={p}");
            assert!(one.session_percentile(p) >= 0.0, "p={p}");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_run_campus_shim_matches_builder() {
        let w = tiny_workload(1, 2048);
        let old = run_campus(&CampusConfig::new(4, 2, 9), &w).unwrap();
        let new = campus(4, 2, 9, &w).run().unwrap();
        assert_eq!(old.digest, new.digest);
        assert_eq!(old.bytes, new.bytes);
        assert_eq!(old.metrics.to_json(), new.metrics.to_json());
        assert_eq!(old.traces_jsonl(), new.traces_jsonl());
    }

    #[test]
    fn host_cores_is_positive() {
        assert!(host_cores() >= 1);
    }

    #[test]
    fn calm_campus_has_a_timeline_but_no_forensics() {
        let w = tiny_workload(1, 2048);
        let report = campus(4, 2, 9, &w).run().unwrap();
        assert!(
            !report.timeline.is_empty(),
            "retirements must land in the timeline"
        );
        assert!(
            report.forensics.is_empty(),
            "healthy run must not produce bundles"
        );
        assert!(report.timeline_json().starts_with("{\"v\":1,"));
        assert_eq!(report.forensics_json(), "[]");
        // Session exemplars ride the merged histogram, keyed by student.
        let h = report.metrics.histogram("campus.session_secs").unwrap();
        assert!(h.exemplars().count() >= 1, "exemplars must survive merge");
        assert!(h.exemplars().all(|e| (e.trace_id as usize) < 4));
    }

    #[test]
    fn trace_headers_carry_a_schema_version() {
        let w = tiny_workload(1, 1024);
        let report = campus(6, 1, 42, &w).trace_sample_rate(1.0).run().unwrap();
        assert!(!report.traces.is_empty());
        for line in report.traces_jsonl().lines() {
            if line.starts_with("{\"t\":\"shard\"") {
                assert!(line.contains("\"v\":1,"), "unversioned header: {line}");
            }
        }
    }

    #[test]
    fn fault_storm_schedule_names_the_victim() {
        let storm = FaultStorm::new(3, 1, SimTime::from_millis(100), SimTime::from_millis(400));
        let sched = storm.schedule();
        assert_eq!(sched.len(), 1);
        assert_eq!(sched[0].label, "fault_storm.shard1");
        assert_eq!(sched[0].shard, 1);
        assert_eq!(sched[0].onset, SimTime::from_millis(100));
        assert_eq!(sched[0].clear, None, "no restart => the fault never clears");
        let mut with_restart = storm.clone();
        with_restart.restart_at = Some(SimTime::from_millis(300));
        assert_eq!(
            with_restart.schedule()[0].clear,
            Some(SimTime::from_millis(400)),
            "clear waits for both the restart and the link outage"
        );
    }
}
