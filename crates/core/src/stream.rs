//! Streamed video delivery across link profiles — experiment E-BB.
//!
//! The paper's central infrastructure claim (§1.3.3): narrowband networks
//! cannot deliver "real multimedia information"; "the advancement of
//! B-ISDN and ATM technology has provided a prospective solution ... in a
//! fast and quality manner". Here we stream a modelled MPEG course clip
//! over each candidate link and measure what a student would see: frames
//! arriving after their presentation deadlines.

use bytes::{BufMut, BytesMut};
use mits_atm::{AtmNetwork, CbrSource, LinkProfile, ServiceClass, VbrVideoSource};
use mits_sim::{OnlineStats, SimDuration, SimTime};
use std::collections::HashMap;

/// Result of one streaming run.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Frames offered by the source.
    pub frames: u64,
    /// Frames that arrived intact.
    pub delivered: u64,
    /// Frames lost (cell loss / overflow killed their PDU).
    pub lost: u64,
    /// Frames that arrived after their presentation deadline.
    pub late: u64,
    /// Lateness of late frames, seconds.
    pub lateness: OnlineStats,
    /// Cell loss ratio on the circuit.
    pub clr: f64,
    /// Mean cell transfer delay, seconds.
    pub mean_ctd: f64,
    /// Playable fraction: frames on time / frames offered.
    pub playable: f64,
}

/// Stream `duration` of video at `bits_per_sec` over `profile` with a
/// `prebuffer` startup delay before playback begins; frame `i`'s deadline
/// is `prebuffer + pts(i)`.
pub fn stream_video_over(
    profile: LinkProfile,
    duration: SimDuration,
    bits_per_sec: u64,
    prebuffer: SimDuration,
    seed: u64,
) -> StreamReport {
    let mut net = AtmNetwork::new(seed);
    let server = net.add_host("video-server");
    let switch = net.add_switch("switch");
    let student = net.add_host("student");
    net.connect(server, switch, LinkProfile::atm_oc3());
    net.connect(switch, student, profile);
    let vc = net
        .open_vc(&[server, switch, student], ServiceClass::Vbr, None)
        .expect("topology is connected");

    let source = VbrVideoSource {
        duration,
        bits_per_sec,
        seed,
    };
    let schedule = source.schedule();
    let frames = schedule.len() as u64;
    // Send each frame at its PTS, stamping the frame index into the
    // payload so arrivals can be matched to deadlines.
    let mut deadline_of: HashMap<u64, SimTime> = HashMap::new();
    // Emissions are already time-ordered; drive the network between them.
    let mut deliveries = Vec::new();
    for (i, e) in schedule.iter().enumerate() {
        let at = SimTime::ZERO + e.at;
        deliveries.extend(net.advance(at));
        let mut payload = BytesMut::with_capacity(e.bytes.max(8));
        payload.put_u64(i as u64);
        payload.resize(e.bytes.max(8), 0);
        net.send(vc, payload.freeze()).expect("vc open");
        deadline_of.insert(i as u64, SimTime::ZERO + prebuffer + e.at);
    }
    deliveries.extend(net.drain(SimTime::ZERO + duration + SimDuration::from_secs(3600)));

    let mut delivered = 0u64;
    let mut late = 0u64;
    let mut lateness = OnlineStats::new();
    for d in deliveries {
        if d.payload.len() < 8 {
            continue;
        }
        let idx = u64::from_be_bytes(d.payload[..8].try_into().expect("8 bytes"));
        delivered += 1;
        if let Some(deadline) = deadline_of.get(&idx) {
            if d.at > *deadline {
                late += 1;
                lateness.record(d.at.since(*deadline).as_secs_f64());
            }
        }
    }
    let stats = net.vc_stats(vc).expect("vc exists");
    let lost = frames.saturating_sub(delivered);
    let on_time = delivered - late;
    StreamReport {
        frames,
        delivered,
        lost,
        late,
        lateness,
        clr: stats.clr(),
        mean_ctd: stats.ctd.mean(),
        playable: if frames == 0 {
            0.0
        } else {
            on_time as f64 / frames as f64
        },
    }
}

/// Stream constant-rate audio the same way (the audio row of E-BB).
pub fn stream_audio_over(
    profile: LinkProfile,
    duration: SimDuration,
    bits_per_sec: u64,
    prebuffer: SimDuration,
    seed: u64,
) -> StreamReport {
    let mut net = AtmNetwork::new(seed);
    let server = net.add_host("audio-server");
    let student = net.add_host("student");
    net.connect(server, student, profile);
    let vc = net
        .open_vc(&[server, student], ServiceClass::Cbr, None)
        .expect("topology is connected");
    let source = CbrSource {
        rate_bps: bits_per_sec,
        pdu_bytes: 1_024,
    };
    let schedule = source.schedule(duration);
    let frames = schedule.len() as u64;
    let mut deadline_of: HashMap<u64, SimTime> = HashMap::new();
    let mut deliveries = Vec::new();
    for (i, e) in schedule.iter().enumerate() {
        let at = SimTime::ZERO + e.at;
        deliveries.extend(net.advance(at));
        let mut payload = BytesMut::with_capacity(e.bytes.max(8));
        payload.put_u64(i as u64);
        payload.resize(e.bytes.max(8), 0);
        net.send(vc, payload.freeze()).expect("vc open");
        deadline_of.insert(i as u64, at + prebuffer);
    }
    deliveries.extend(net.drain(SimTime::ZERO + duration + SimDuration::from_secs(3600)));
    let mut delivered = 0u64;
    let mut late = 0u64;
    let mut lateness = OnlineStats::new();
    for d in deliveries {
        if d.payload.len() < 8 {
            continue;
        }
        let idx = u64::from_be_bytes(d.payload[..8].try_into().expect("8 bytes"));
        delivered += 1;
        if let Some(deadline) = deadline_of.get(&idx) {
            if d.at > *deadline {
                late += 1;
                lateness.record(d.at.since(*deadline).as_secs_f64());
            }
        }
    }
    let stats = net.vc_stats(vc).expect("vc exists");
    StreamReport {
        frames,
        delivered,
        lost: frames.saturating_sub(delivered),
        late,
        lateness,
        clr: stats.clr(),
        mean_ctd: stats.ctd.mean(),
        playable: if frames == 0 {
            0.0
        } else {
            (delivered - late) as f64 / frames as f64
        },
    }
}

/// One byte-stream marker so the report can be tagged with its scenario.
pub fn profile_name(p: &LinkProfile) -> &'static str {
    match p.rate_bps {
        155_520_000 => "ATM OC-3 155M",
        6_000_000 => "shared LAN 10M",
        128_000 => "ISDN 128k",
        28_800 => "modem 28.8k",
        _ => "custom",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MPEG_RATE: u64 = 1_500_000;

    #[test]
    fn broadband_plays_mpeg_cleanly() {
        let r = stream_video_over(
            LinkProfile::atm_oc3(),
            SimDuration::from_secs(10),
            MPEG_RATE,
            SimDuration::from_secs(1),
            1,
        );
        assert_eq!(r.frames, 300);
        assert!(r.playable > 0.99, "playable {}", r.playable);
        assert_eq!(r.lost, 0);
    }

    #[test]
    fn modem_cannot_play_mpeg() {
        let r = stream_video_over(
            LinkProfile::modem_28_8k(),
            SimDuration::from_secs(10),
            MPEG_RATE,
            SimDuration::from_secs(1),
            1,
        );
        // 1.5 Mb/s into 28.8 kb/s: essentially nothing plays on time.
        assert!(r.playable < 0.05, "playable {}", r.playable);
    }

    #[test]
    fn isdn_marginal_lan_mostly_ok() {
        let isdn = stream_video_over(
            LinkProfile::isdn_128k(),
            SimDuration::from_secs(5),
            MPEG_RATE,
            SimDuration::from_secs(1),
            1,
        );
        let lan = stream_video_over(
            LinkProfile::lan_10m(),
            SimDuration::from_secs(5),
            MPEG_RATE,
            SimDuration::from_secs(1),
            1,
        );
        assert!(isdn.playable < 0.2, "ISDN playable {}", isdn.playable);
        assert!(lan.playable > 0.9, "LAN playable {}", lan.playable);
        assert!(
            lan.playable
                <= stream_video_over(
                    LinkProfile::atm_oc3(),
                    SimDuration::from_secs(5),
                    MPEG_RATE,
                    SimDuration::from_secs(1),
                    1,
                )
                .playable
                    + 1e-12
        );
    }

    #[test]
    fn audio_fits_even_isdn() {
        // WAV-rate audio ≈ 90 kb/s fits in 128 kb/s.
        let r = stream_audio_over(
            LinkProfile::isdn_128k(),
            SimDuration::from_secs(10),
            90_112,
            SimDuration::from_secs(1),
            2,
        );
        assert!(r.playable > 0.99, "playable {}", r.playable);
    }

    #[test]
    fn bigger_prebuffer_reduces_lateness() {
        let small = stream_video_over(
            LinkProfile::lan_10m(),
            SimDuration::from_secs(5),
            4_000_000, // above the LAN's effective 6 Mb/s? close to it
            SimDuration::from_millis(100),
            3,
        );
        let big = stream_video_over(
            LinkProfile::lan_10m(),
            SimDuration::from_secs(5),
            4_000_000,
            SimDuration::from_secs(3),
            3,
        );
        assert!(big.late <= small.late, "{} vs {}", big.late, small.late);
    }

    #[test]
    fn profile_names() {
        assert_eq!(profile_name(&LinkProfile::atm_oc3()), "ATM OC-3 155M");
        assert_eq!(profile_name(&LinkProfile::modem_28_8k()), "modem 28.8k");
    }
}
