//! The layered interchange model of Figure 3.2 with per-layer cost
//! accounting — experiment F3.2.
//!
//! "Basically, all the layers in the author site and the presentation
//! site are symmetrical": application / script / MHEG object / non-MHEG
//! content / communication. For one object travelling author → database
//! → user we attribute where the time goes: codec work is measured on the
//! real CPU (it is real code); transfer and queueing come from the
//! simulator; the application layer is the database service model.

use mits_atm::LinkProfile;
use mits_mheg::{decode_object, encode_object, MhegObject, WireFormat};
use mits_sim::SimDuration;

/// One row of the layer breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCost {
    /// Layer name as in Fig 3.2.
    pub layer: &'static str,
    /// Attributed cost.
    pub cost: SimDuration,
    /// How the number was obtained.
    pub method: &'static str,
}

/// Break down the cost of interchanging `object` (with `content_bytes` of
/// referenced bulk content) over `profile`.
pub fn layer_breakdown(
    object: &MhegObject,
    content_bytes: u64,
    profile: &LinkProfile,
) -> Vec<LayerCost> {
    // MHEG layer: measure real encode+decode of this object (averaged).
    const REPS: u32 = 32;
    let start = std::time::Instant::now();
    let mut wire_len = 0usize;
    for _ in 0..REPS {
        let wire = encode_object(object, WireFormat::Tlv);
        wire_len = wire.len();
        let back = decode_object(&wire, WireFormat::Tlv).expect("round trip");
        std::hint::black_box(back);
    }
    let codec = SimDuration::from_micros((start.elapsed().as_micros() as u64 / REPS as u64).max(1));

    // Application layer: request handling at the server (service model
    // fixed cost, both directions).
    let application = SimDuration::from_micros(400);

    // Script layer: the prototype deferred scripts (§6.2); zero unless the
    // object is a script.
    let script = if matches!(object.body, mits_mheg::ObjectBody::Script(_)) {
        SimDuration::from_micros(50)
    } else {
        SimDuration::ZERO
    };

    // Content layer: bulk media serialization at line rate.
    let content = profile.raw_transfer_time(content_bytes);

    // Communication layer: the scenario object's own transfer (cells +
    // AAL5 + propagation) — cell overhead inflates bytes by 53/48.
    let object_cells_bytes = (wire_len as u64).div_ceil(48) * 53;
    let communication = profile.raw_transfer_time(object_cells_bytes) + profile.prop_delay * 2;

    vec![
        LayerCost {
            layer: "application (db service)",
            cost: application,
            method: "service model",
        },
        LayerCost {
            layer: "script",
            cost: script,
            method: "deferred (§6.2)",
        },
        LayerCost {
            layer: "MHEG object (encode+decode)",
            cost: codec,
            method: "measured on CPU",
        },
        LayerCost {
            layer: "non-MHEG content",
            cost: content,
            method: "line rate × bytes",
        },
        LayerCost {
            layer: "communication (cells+prop)",
            cost: communication,
            method: "simulated",
        },
    ]
}

/// Total across layers.
pub fn total_cost(rows: &[LayerCost]) -> SimDuration {
    rows.iter().fold(SimDuration::ZERO, |a, r| a + r.cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mits_mheg::{ClassLibrary, GenericValue};

    fn sample() -> MhegObject {
        let mut lib = ClassLibrary::new(1);
        let id = lib.value_content("sample", GenericValue::Str("hello".into()));
        lib.get(id).unwrap().clone()
    }

    #[test]
    fn five_layers_reported() {
        let rows = layer_breakdown(&sample(), 100_000, &LinkProfile::atm_oc3());
        assert_eq!(rows.len(), 5);
        let names: Vec<&str> = rows.iter().map(|r| r.layer).collect();
        assert!(names.iter().any(|n| n.contains("MHEG")));
        assert!(names.iter().any(|n| n.contains("content")));
        assert!(names.iter().any(|n| n.contains("communication")));
    }

    #[test]
    fn content_dominates_on_slow_links_for_big_media() {
        let rows = layer_breakdown(&sample(), 1_000_000, &LinkProfile::modem_28_8k());
        let content = rows.iter().find(|r| r.layer.contains("content")).unwrap();
        let codec = rows.iter().find(|r| r.layer.contains("MHEG")).unwrap();
        assert!(
            content.cost > codec.cost * 100,
            "content {} codec {}",
            content.cost,
            codec.cost
        );
    }

    #[test]
    fn codec_cost_positive_and_total_adds_up() {
        let rows = layer_breakdown(&sample(), 0, &LinkProfile::atm_oc3());
        let codec = rows.iter().find(|r| r.layer.contains("MHEG")).unwrap();
        assert!(codec.cost > SimDuration::ZERO);
        assert_eq!(
            total_cost(&rows),
            rows.iter().fold(SimDuration::ZERO, |a, r| a + r.cost)
        );
    }

    #[test]
    fn script_layer_charged_for_scripts() {
        let mut lib = ClassLibrary::new(2);
        let id = lib.script("s", "mits-expr", "score > 60");
        let script_obj = lib.get(id).unwrap().clone();
        let rows = layer_breakdown(&script_obj, 0, &LinkProfile::atm_oc3());
        let script = rows.iter().find(|r| r.layer == "script").unwrap();
        assert!(script.cost > SimDuration::ZERO);
        let rows = layer_breakdown(&sample(), 0, &LinkProfile::atm_oc3());
        assert_eq!(
            rows.iter().find(|r| r.layer == "script").unwrap().cost,
            SimDuration::ZERO
        );
    }
}
