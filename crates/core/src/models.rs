//! Delivery-model comparison (E-MODEL) and the content-storage ablation
//! (E-REUSE).
//!
//! §1.3 grades the three TeleLearning infrastructures: broadcast is
//! accessible but passive and schedule-bound; CD-ROM is interactive but
//! static and slow to update; the network model is both accessible and
//! interactive. §3.4.2 and §3.1.2.2 then claim two design wins for the
//! chosen architecture: storing content *separately* from scenario, and
//! *reusing* model objects at the client. Both claims are quantified
//! here.

use crate::cod::CodSession;
use crate::system::{ClientId, MitsSystem, SystemConfig, SystemError};
use mits_atm::LinkProfile;
use mits_media::MediaObject;
use mits_mheg::{ContentData, MhegObject, ObjectBody};
use mits_sim::{SimDuration, SimRng};
use std::collections::HashMap;

/// Metrics for one delivery model (E-MODEL).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelMetrics {
    /// Model name.
    pub model: &'static str,
    /// Expected time from "student wants the lecture" to content playing.
    pub time_to_content: SimDuration,
    /// Round-trip latency of an interaction (None = not interactive).
    pub interaction: Option<SimDuration>,
    /// Content staleness bound, days (how old can material be).
    pub freshness_days: u32,
    /// Can the student control pace/order?
    pub learner_controlled: bool,
}

/// Compare broadcast, CD-ROM/PC and network COD under common assumptions:
/// the desired lecture is rebroadcast every `broadcast_period`; a CD-ROM
/// order ships in `shipping`; a COD fetch takes `cod_fetch` (measure it
/// with [`crate::cod`] and pass it in, or use a nominal value).
pub fn compare_delivery_models(
    broadcast_period: SimDuration,
    shipping: SimDuration,
    cod_fetch: SimDuration,
    seed: u64,
) -> Vec<ModelMetrics> {
    // Broadcast: desire times are uniform over the schedule period →
    // expected wait = period/2 (verified by sampling for the table).
    let mut rng = SimRng::seed_from_u64(seed ^ 0xB20A_DCA5);
    let n = 10_000;
    let mut total = 0.0;
    for _ in 0..n {
        let phase = rng.f64() * broadcast_period.as_secs_f64();
        total += broadcast_period.as_secs_f64() - phase;
    }
    let broadcast_wait = SimDuration::from_secs_f64(total / n as f64);

    vec![
        ModelMetrics {
            model: "broadcast TV",
            time_to_content: broadcast_wait,
            interaction: None, // telephone call-in is the SIDL experiment
            freshness_days: 0, // live material
            learner_controlled: false,
        },
        ModelMetrics {
            model: "CD-ROM/PC",
            time_to_content: shipping,
            interaction: Some(SimDuration::from_millis(10)), // local disc
            freshness_days: 180,                             // pressing + distribution cycle
            learner_controlled: true,
        },
        ModelMetrics {
            model: "network COD (MITS)",
            time_to_content: cod_fetch,
            interaction: Some(SimDuration::from_millis(5)), // engine-local +
            // facilitator round trip measured separately (E-SIDL)
            freshness_days: 0, // database updated "at anytime" (§3.2)
            learner_controlled: true,
        },
    ]
}

/// Content-delivery policy for E-REUSE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentPolicy {
    /// MITS: content referenced, fetched on demand, cached at the client.
    SeparateCached,
    /// Content referenced, fetched on demand, no client cache.
    SeparateUncached,
    /// Content embedded inside the interchanged objects (§3.4.2's
    /// rejected alternative).
    Embedded,
}

impl ContentPolicy {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ContentPolicy::SeparateCached => "separate + client cache (MITS)",
            ContentPolicy::SeparateUncached => "separate, no cache",
            ContentPolicy::Embedded => "content embedded in objects",
        }
    }
}

/// Result of one ablation run.
#[derive(Debug, Clone)]
pub struct ReuseReport {
    /// Policy.
    pub policy: ContentPolicy,
    /// Bytes delivered to the student across all sessions.
    pub bytes: u64,
    /// Total virtual time spent fetching.
    pub fetch_time: SimDuration,
}

/// Transform a compiled object set so every referenced content is
/// embedded inline (the E-REUSE "embedded" arm).
pub fn embed_content(objects: &[MhegObject], media: &[MediaObject]) -> Vec<MhegObject> {
    let by_id: HashMap<_, _> = media.iter().map(|m| (m.id, m)).collect();
    objects
        .iter()
        .map(|obj| {
            let mut obj = obj.clone();
            let content = match &mut obj.body {
                ObjectBody::Content(c) => Some(c),
                ObjectBody::MultiplexedContent { base, .. } => Some(base),
                _ => None,
            };
            if let Some(c) = content {
                if let ContentData::Referenced(id) = &c.data {
                    if let Some(m) = by_id.get(id) {
                        c.data = ContentData::Inline(m.data.clone());
                    }
                }
            }
            obj
        })
        .collect()
}

/// Run the 2-session reuse ablation for one policy over `profile`.
///
/// The course and media must share content across scenes for the cache to
/// matter (the canonical course in the bench reuses one video in three
/// scenes).
pub fn run_reuse_policy(
    policy: ContentPolicy,
    objects: &[MhegObject],
    media: &[MediaObject],
    root: mits_mheg::MhegId,
    course_name: &str,
    profile: LinkProfile,
    sessions: usize,
) -> Result<ReuseReport, SystemError> {
    let mut config = SystemConfig::broadband(1).with_access(profile);
    if policy == ContentPolicy::SeparateUncached {
        config.client_cache_bytes = 1; // effectively no cache
    }
    let mut sys = MitsSystem::build(&config)?;
    let (objs, media_to_load): (Vec<MhegObject>, Vec<MediaObject>) = match policy {
        ContentPolicy::Embedded => (embed_content(objects, media), Vec::new()),
        _ => (objects.to_vec(), media.to_vec()),
    };
    sys.load_directly(objs, media_to_load);

    let mut fetch_time = SimDuration::ZERO;
    for _ in 0..sessions {
        let mut session = CodSession::open(&mut sys, ClientId(0), root, course_name)?;
        session.start()?;
        session.auto_play(SimDuration::from_secs(60))?;
        fetch_time += session.report.startup() + session.report.total_stall();
    }
    Ok(ReuseReport {
        policy,
        bytes: sys.bytes_to_client(ClientId(0)),
        fetch_time,
    })
}

/// Run the full 3-policy ablation.
pub fn reuse_ablation(
    objects: &[MhegObject],
    media: &[MediaObject],
    root: mits_mheg::MhegId,
    course_name: &str,
    profile: LinkProfile,
    sessions: usize,
) -> Result<Vec<ReuseReport>, SystemError> {
    [
        ContentPolicy::SeparateCached,
        ContentPolicy::SeparateUncached,
        ContentPolicy::Embedded,
    ]
    .into_iter()
    .map(|p| run_reuse_policy(p, objects, media, root, course_name, profile, sessions))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mits_author::{
        compile_imd, ElementKind, ImDocument, Scene, Section, Subsection, TimelineEntry,
    };
    use mits_media::{CaptureSpec, MediaFormat, ProductionCenter, VideoDims};

    /// Three scenes reusing one video clip plus a unique image each.
    fn reuse_course() -> (
        Vec<MhegObject>,
        Vec<MediaObject>,
        mits_mheg::MhegId,
        &'static str,
    ) {
        let mut pc = ProductionCenter::new(9);
        let shared = pc.capture(&CaptureSpec::video(
            "jingle.mpg",
            MediaFormat::Mpeg,
            SimDuration::from_millis(400),
            VideoDims::new(160, 120),
        ));
        let mut scenes = Vec::new();
        for i in 0..3 {
            let img = pc.capture(&CaptureSpec::image(
                format!("fig{i}.gif"),
                MediaFormat::Gif,
                VideoDims::new(200, 150),
            ));
            scenes.push(
                Scene::new(&format!("scene{i}"))
                    .element("jingle", ElementKind::Media((&shared).into()))
                    .element("fig", ElementKind::Media((&img).into()))
                    .entry(TimelineEntry::at_start("jingle"))
                    .entry(
                        TimelineEntry::at_start("fig").for_duration(SimDuration::from_millis(400)),
                    ),
            );
        }
        let mut doc = ImDocument::new("Reuse Course");
        doc.sections.push(Section {
            title: "s".into(),
            subsections: vec![Subsection {
                title: "ss".into(),
                scenes,
            }],
        });
        let compiled = compile_imd(70, &doc);
        (
            compiled.objects,
            pc.catalogue().to_vec(),
            compiled.root,
            "Reuse Course",
        )
    }

    #[test]
    fn model_comparison_shapes() {
        let rows = compare_delivery_models(
            SimDuration::from_secs(7 * 24 * 3600), // weekly broadcast
            SimDuration::from_secs(3 * 24 * 3600), // 3-day shipping
            SimDuration::from_millis(500),         // COD fetch
            1,
        );
        assert_eq!(rows.len(), 3);
        let bc = &rows[0];
        let cd = &rows[1];
        let cod = &rows[2];
        // Broadcast wait ≈ half a week.
        let half_week = 3.5 * 24.0 * 3600.0;
        assert!((bc.time_to_content.as_secs_f64() - half_week).abs() / half_week < 0.05);
        assert!(bc.interaction.is_none() && !bc.learner_controlled);
        // COD beats both by orders of magnitude on access time.
        assert!(cod.time_to_content.as_secs_f64() * 1000.0 < cd.time_to_content.as_secs_f64());
        assert!(cod.learner_controlled && cod.freshness_days == 0);
        assert!(cd.freshness_days > 0, "CD-ROM content goes stale");
    }

    #[test]
    fn embed_content_inlines_referenced_media() {
        let (objects, media, _, _) = reuse_course();
        let embedded = embed_content(&objects, &media);
        let inline_bytes: usize = embedded
            .iter()
            .filter_map(|o| match &o.body {
                ObjectBody::Content(c) => Some(c.data.inline_len()),
                _ => None,
            })
            .sum();
        let media_bytes: usize = media.iter().map(|m| m.data.len()).sum();
        // Shared video embedded 3× + each image once ⇒ more inline bytes
        // than the deduplicated store holds.
        assert!(
            inline_bytes > media_bytes,
            "{inline_bytes} vs {media_bytes}"
        );
    }

    #[test]
    fn reuse_ablation_ordering() {
        let (objects, media, root, name) = reuse_course();
        let reports =
            reuse_ablation(&objects, &media, root, name, LinkProfile::atm_oc3(), 2).unwrap();
        let by_policy: HashMap<ContentPolicy, u64> =
            reports.iter().map(|r| (r.policy, r.bytes)).collect();
        let cached = by_policy[&ContentPolicy::SeparateCached];
        let uncached = by_policy[&ContentPolicy::SeparateUncached];
        let embedded = by_policy[&ContentPolicy::Embedded];
        // The MITS policy moves the least data by a wide margin; both
        // alternatives re-ship the shared video every time it is used
        // (uncached re-fetches it; embedded duplicates it inside the
        // scenario shipment, re-sent every session).
        assert!(
            2 * cached < uncached,
            "cached {cached} ≪ uncached {uncached}"
        );
        assert!(
            2 * cached < embedded,
            "cached {cached} ≪ embedded {embedded}"
        );
    }
}
