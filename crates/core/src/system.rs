//! The distributed system: topology, transport, server loop, and the
//! client-facing service calls (Figs 3.1, 3.4, 3.5).
//!
//! One [`MitsSystem`] owns the ATM network, the courseware database
//! server, one author endpoint, and N student endpoints. Every service
//! call is a real protocol exchange: encoded request frames ride the
//! reliable transport over AAL5 cells through the switch to the server
//! host, the server "retrieves objects in the database according to the
//! information provided by the client" with a modelled service time, and
//! the response rides back — all on one deterministic virtual clock.

use bytes::Bytes;
use mits_atm::{
    AtmNetwork, CrashSchedule, FaultKind, FaultPlan, LinkProfile, NetError, NetScratch, NodeId,
    ReliableChannel, ServiceClass, TransportEvent, VcId,
};
use mits_db::{
    merge_doc_ids, merge_doc_lists, peek_req_id, peek_response_trace, read_snapshot, wal,
    ClientAction, ClientEvent, DbClient, DbClientMetrics, DbError, DbServer, EdgeCache,
    KeywordTree, RecoveryReport, Request, Response, RetryPolicy, Route, ServiceModel, ShardRouter,
    SharedLogDevice,
};
use mits_media::{MediaId, MediaObject};
use mits_mheg::{MhegId, MhegObject};
use mits_sim::{FlightKind, FlightRecorder, MetricsRegistry, SimDuration, SimTime, SpanId, Tracer};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Identifies one student endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub usize);

/// Topology and behaviour parameters.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Access link profile for student hosts.
    pub access_link: LinkProfile,
    /// Backbone profile (database and author to the switch).
    pub backbone: LinkProfile,
    /// Number of student endpoints.
    pub clients: usize,
    /// Deterministic seed.
    pub seed: u64,
    /// Client-side cache budget in bytes.
    pub client_cache_bytes: usize,
    /// Deadline / retry / backoff policy for every client request. The
    /// default never retries, matching the clean-network prototype.
    pub retry: RetryPolicy,
    /// Faults injected into the network (losses, bursts, jitter, link
    /// downtime). Empty by default — and an empty plan is bit-identical
    /// to a network without fault injection.
    pub fault_plan: FaultPlan,
    /// Server queue depth past which requests are shed with
    /// `Unavailable` instead of queuing unboundedly.
    pub server_queue_limit: Option<usize>,
    /// Run a hot-standby replica database server: the primary ships WAL
    /// frames to it over the backbone and clients fail over to it when
    /// the primary stops answering.
    pub replica: bool,
    /// Scheduled server crashes and restarts (target 0 = primary,
    /// 1 = replica).
    pub crashes: CrashSchedule,
    /// Checkpoint cadence: every so often each live server folds its
    /// WAL into a snapshot and truncates the log.
    pub checkpoint_every: Option<SimDuration>,
    /// Shard the courseware store across this many primary(/replica)
    /// groups behind a consistent-hash ring. 1 (the default) is the
    /// classic single-store deployment, byte-identical to before
    /// sharding existed. With [`SystemConfig::replica`] set, *every*
    /// shard gets its own hot standby.
    pub shards: usize,
    /// Campus-edge cache budget in bytes. 0 (the default) disables the
    /// edge tier; otherwise media fetched from the ring is kept at the
    /// campus edge with epoch-fenced invalidation.
    pub edge_cache_bytes: usize,
    /// Scheduled link outages taking a whole shard group off the
    /// network: `(shard, from, until)` downs every link between the
    /// shard's hosts and the switch for the window.
    pub shard_outages: Vec<(usize, SimTime, SimTime)>,
    /// Capacity of the always-on flight-recorder ring. The default
    /// ([`mits_sim::FLIGHT_RING_CAP`]) bounds campus memory; replay
    /// raises it to keep every anomaly event. The ring never feeds the
    /// session digest, so the cap is digest-neutral by construction.
    pub flight_ring: usize,
}

impl SystemConfig {
    /// The paper's reference deployment: OC-3 everywhere, a handful of
    /// multimedia PCs.
    pub fn broadband(clients: usize) -> Self {
        SystemConfig {
            access_link: LinkProfile::atm_oc3(),
            backbone: LinkProfile::atm_oc3(),
            clients,
            seed: 1996,
            client_cache_bytes: 16 << 20,
            retry: RetryPolicy::no_retry(),
            fault_plan: FaultPlan::none(),
            server_queue_limit: None,
            replica: false,
            crashes: CrashSchedule::none(),
            checkpoint_every: None,
            shards: 1,
            edge_cache_bytes: 0,
            shard_outages: Vec::new(),
            flight_ring: mits_sim::FLIGHT_RING_CAP,
        }
    }

    /// Same deployment with a narrowband access technology (E-BB).
    pub fn with_access(mut self, profile: LinkProfile) -> Self {
        self.access_link = profile;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Inject faults into the network.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Shed server load past `limit` queued requests.
    pub fn with_server_queue_limit(mut self, limit: usize) -> Self {
        self.server_queue_limit = Some(limit);
        self
    }

    /// Add a hot-standby replica database server.
    pub fn with_replica(mut self) -> Self {
        self.replica = true;
        self
    }

    /// Schedule a crash of server `target` at `at`.
    pub fn with_crash(mut self, at: SimTime, target: u32) -> Self {
        self.crashes = std::mem::take(&mut self.crashes).with_crash(at, target);
        self
    }

    /// Schedule a restart of server `target` at `at`.
    pub fn with_restart(mut self, at: SimTime, target: u32) -> Self {
        self.crashes = std::mem::take(&mut self.crashes).with_restart(at, target);
        self
    }

    /// Checkpoint every `every` of virtual time.
    pub fn with_checkpoint_every(mut self, every: SimDuration) -> Self {
        self.checkpoint_every = Some(every);
        self
    }

    /// Partition the store across `shards` consistent-hashed groups.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Put an epoch-fenced edge cache of `bytes` in front of the ring.
    pub fn with_edge_cache(mut self, bytes: usize) -> Self {
        self.edge_cache_bytes = bytes;
        self
    }

    /// Down every link between shard `shard`'s hosts and the switch for
    /// `[from, until)` — a correlated shard-wide network outage.
    pub fn with_shard_outage(mut self, shard: usize, from: SimTime, until: SimTime) -> Self {
        self.shard_outages.push((shard, from, until));
        self
    }

    /// Schedule a crash of shard `shard`'s server in `role` (0 =
    /// primary, 1 = replica) at `at`.
    pub fn with_shard_crash(self, at: SimTime, shard: usize, role: usize) -> Self {
        let group_size = 1 + usize::from(self.replica);
        self.with_crash(at, (shard * group_size + role) as u32)
    }

    /// Schedule a restart of shard `shard`'s server in `role` at `at`.
    pub fn with_shard_restart(self, at: SimTime, shard: usize, role: usize) -> Self {
        let group_size = 1 + usize::from(self.replica);
        self.with_restart(at, (shard * group_size + role) as u32)
    }

    /// Size the flight-recorder ring (clamped to at least 1). Use
    /// `usize::MAX` for an effectively unbounded ring during replay.
    pub fn with_flight_ring(mut self, cap: usize) -> Self {
        self.flight_ring = cap;
        self
    }
}

/// Errors from system service calls.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemError {
    /// The database returned an error response.
    Db(DbError),
    /// No response arrived before the deadline.
    Timeout,
    /// Network-level failure (VC setup etc.).
    Net(NetError),
    /// Unexpected response variant for the request.
    Protocol(String),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Db(e) => write!(f, "database: {e}"),
            SystemError::Timeout => write!(f, "request timed out"),
            SystemError::Net(e) => write!(f, "network: {e}"),
            SystemError::Protocol(s) => write!(f, "protocol: {s}"),
        }
    }
}

impl std::error::Error for SystemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SystemError::Db(e) => Some(e),
            SystemError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DbError> for SystemError {
    fn from(e: DbError) -> Self {
        SystemError::Db(e)
    }
}

impl From<NetError> for SystemError {
    fn from(e: NetError) -> Self {
        SystemError::Net(e)
    }
}

struct Endpoint {
    host: NodeId,
    profile: LinkProfile,
    /// One reliable channel per database server.
    chans: Vec<ReliableChannel>,
    /// Which server this endpoint currently talks to, per shard group
    /// (failover state — entries are *server indices*, initially each
    /// group's primary).
    active: Vec<usize>,
    /// Shard each in-flight request was routed to, so retries follow
    /// that shard's failover state and never leak to another group.
    req_shard: HashMap<u64, usize>,
    db_client: DbClient,
    inbox: Vec<(u64, Response)>,
    /// Every downlink VC that ever carried data to this endpoint
    /// (restarted servers open fresh VCs; byte accounting spans them).
    down_vcs: Vec<VcId>,
}

/// One database server process: its host, store, per-endpoint transport,
/// response queues, and the log devices that survive its crashes.
struct ServerNode {
    host: NodeId,
    db: DbServer,
    /// Server side of each endpoint's channel pair.
    chans: Vec<ReliableChannel>,
    /// Responses queued per endpoint, ready at their service time.
    ready: Vec<VecDeque<(SimTime, Bytes)>>,
    /// Single service centre: requests queue behind each other (F3.5
    /// contention) — and behind recovery replay after a restart.
    busy_until: SimTime,
    up: bool,
    wal_dev: SharedLogDevice,
    snap_dev: SharedLogDevice,
    /// Replication channel to the peer server, when one exists.
    rep_chan: Option<ReliableChannel>,
}

/// The assembled MITS installation.
pub struct MitsSystem {
    /// The network (public for experiment instrumentation).
    pub net: AtmNetwork,
    switch: NodeId,
    backbone: LinkProfile,
    /// Shard groups in order: shard 0's primary(, replica), shard 1's
    /// primary(, replica), … Server index = shard × group size + role.
    servers: Vec<ServerNode>,
    endpoints: Vec<Endpoint>, // clients then author (last)
    /// Routes single-key requests by ring position; catalogue queries
    /// scatter/gather.
    router: ShardRouter,
    /// Servers per shard group (1, or 2 with a replica).
    group_size: usize,
    /// The campus-edge media cache, when configured.
    edge: Option<EdgeCache>,
    /// Scatter/gather queries issued (shards > 1 only).
    pub scatter_queries: u64,
    /// Scatter/gather queries that returned degraded (partial) results
    /// because at least one shard was unreachable.
    pub scatter_partial: u64,
    /// Scatter legs dispatched, per shard (shards > 1 only).
    pub scatter_legs: Vec<u64>,
    /// Scatter legs whose shard never answered (deadline backstop or
    /// send failure), per shard.
    pub scatter_leg_errors: Vec<u64>,
    crashes: CrashSchedule,
    crash_idx: usize,
    checkpoint_every: Option<SimDuration>,
    next_checkpoint: Option<SimTime>,
    queue_limit: Option<usize>,
    /// Total requests that crossed the network.
    pub requests_sent: u64,
    /// Times any endpoint switched servers after losing an attempt.
    pub failovers: u64,
    /// What the most recent server restart replayed.
    pub last_recovery: Option<RecoveryReport>,
    /// Deterministic span tracer shared with every endpoint's client.
    /// Request spans propagate over the wire protocol's trace field, so
    /// uplink/serve/downlink hop spans nest under the client request.
    pub tracer: Tracer,
    /// Registry every layer exports into via [`MitsSystem::export_metrics`].
    pub metrics: MetricsRegistry,
    /// Always-on bounded ring of structured anomaly events (fault
    /// onset/clear, retries, failovers, fences, sheds, invalidations)
    /// shared with every endpoint's client and the edge cache. Unlike
    /// the tracer it is never sampled away — campus forensics reads its
    /// tail when a session retires.
    pub flight: FlightRecorder,
    /// When each queued response becomes ready, keyed by (endpoint,
    /// req_id) — consumed on delivery to stamp the downlink hop span.
    resp_meta: BTreeMap<(usize, u64), SimTime>,
}

/// Reusable allocation capacity carried from one retired [`MitsSystem`]
/// to the next one a campus worker admits. Today this is the network's
/// recycled containers (timer heap, cell slab, delivery buffer, VC and
/// topology tables — see [`mits_atm::NetScratch`]); the wrapper exists so
/// further layers can join without touching the campus runner.
#[derive(Default)]
pub struct SessionScratch {
    net: NetScratch,
}

impl MitsSystem {
    /// Build the installation described by `config`.
    pub fn build(config: &SystemConfig) -> Result<Self, SystemError> {
        Self::build_with_scratch(config, SessionScratch::default())
    }

    /// Retire this system and harvest reusable allocation capacity for
    /// the next [`MitsSystem::build_with_scratch`].
    pub fn into_scratch(self) -> SessionScratch {
        SessionScratch {
            net: self.net.into_scratch(),
        }
    }

    /// [`MitsSystem::build`], but reusing a retired system's allocations.
    /// Bit-identical behaviour; only container capacity is inherited.
    pub fn build_with_scratch(
        config: &SystemConfig,
        scratch: SessionScratch,
    ) -> Result<Self, SystemError> {
        let mut net = AtmNetwork::with_scratch(config.seed, scratch.net);
        net.set_fault_plan(config.fault_plan.clone());
        let switch = net.add_switch("campus-switch");
        let shards = config.shards.max(1);
        let group_size = 1 + usize::from(config.replica);
        let mut server_hosts = Vec::with_capacity(shards * group_size);
        for d in 0..shards {
            // The single-shard deployment keeps its historical host
            // names so traces and metrics stay byte-identical.
            let name = if shards == 1 {
                "courseware-db".to_string()
            } else {
                format!("courseware-db-s{d}")
            };
            let h = net.add_host(&name);
            net.connect(h, switch, config.backbone);
            server_hosts.push(h);
            if config.replica {
                let name = if shards == 1 {
                    "courseware-db-replica".to_string()
                } else {
                    format!("courseware-db-s{d}-replica")
                };
                let r = net.add_host(&name);
                net.connect(r, switch, config.backbone);
                server_hosts.push(r);
            }
        }
        if !config.shard_outages.is_empty() {
            // Translate shard-wide outages into per-link down windows on
            // every link between the victim group's hosts and the
            // switch, folded over whatever plan was already configured.
            let mut plan = config.fault_plan.clone();
            for &(shard, from, until) in &config.shard_outages {
                if shard >= shards {
                    continue;
                }
                for role in 0..group_size {
                    let h = server_hosts[shard * group_size + role];
                    for (a, b) in [(h, switch), (switch, h)] {
                        let base = plan.for_link(a, b).cloned().unwrap_or_default();
                        plan = plan.with_link(a, b, base.with_down(from, until));
                    }
                }
            }
            net.set_fault_plan(plan);
        }
        let author_host = net.add_host("author-site");
        net.connect(author_host, switch, config.backbone);
        let mut peer_hosts = Vec::with_capacity(config.clients + 1);
        for i in 0..config.clients {
            let h = net.add_host(&format!("student-{i}"));
            net.connect(h, switch, config.access_link);
            peer_hosts.push((h, config.access_link));
        }
        peer_hosts.push((author_host, config.backbone));

        let mut servers: Vec<ServerNode> = server_hosts
            .into_iter()
            .map(|host| {
                let wal_dev = SharedLogDevice::new();
                let snap_dev = SharedLogDevice::new();
                let db = match config.server_queue_limit {
                    Some(limit) => DbServer::default().with_overload_threshold(limit),
                    None => DbServer::default(),
                }
                .with_durability(Box::new(wal_dev.clone()), Box::new(snap_dev.clone()));
                ServerNode {
                    host,
                    db,
                    chans: Vec::new(),
                    ready: Vec::new(),
                    busy_until: SimTime::ZERO,
                    up: true,
                    wal_dev,
                    snap_dev,
                    rep_chan: None,
                }
            })
            .collect();
        if group_size > 1 {
            for d in 0..shards {
                servers[d * group_size].db.set_shipping(true);
            }
        }

        let tracer = Tracer::new();
        let flight = FlightRecorder::new(config.flight_ring);
        let mut endpoints = Vec::new();
        for (i, (host, profile)) in peer_hosts.into_iter().enumerate() {
            let timeout = Self::arq_timeout(&profile);
            let mut chans = Vec::new();
            let mut down_vcs = Vec::new();
            // Window of 2 segments: enough to pipeline the link while
            // keeping the burst inside realistic switch buffers (a 16-seg
            // burst at backbone speed would overrun a narrowband port's
            // queue and melt down in retransmissions).
            for s in &mut servers {
                let up = net.open_vc(&[host, switch, s.host], ServiceClass::Ubr, None)?;
                let down = net.open_vc(&[s.host, switch, host], ServiceClass::Ubr, None)?;
                chans.push(ReliableChannel::new(up, down, 2, timeout));
                s.chans.push(ReliableChannel::new(down, up, 2, timeout));
                s.ready.push(VecDeque::new());
                down_vcs.push(down);
            }
            let mut db_client = DbClient::with_policy(
                config.client_cache_bytes,
                config.retry,
                config.seed ^ (0xC11E_0000 + i as u64),
            );
            db_client.set_tracer(tracer.clone());
            db_client.set_flight_recorder(flight.clone());
            endpoints.push(Endpoint {
                host,
                profile,
                chans,
                active: (0..shards).map(|d| d * group_size).collect(),
                req_shard: HashMap::new(),
                db_client,
                inbox: Vec::new(),
                down_vcs,
            });
        }
        if group_size > 1 {
            let timeout = Self::arq_timeout(&config.backbone);
            for d in 0..shards {
                let p = d * group_size;
                let (a, b) = (servers[p].host, servers[p + 1].host);
                let up = net.open_vc(&[a, switch, b], ServiceClass::Ubr, None)?;
                let down = net.open_vc(&[b, switch, a], ServiceClass::Ubr, None)?;
                servers[p].rep_chan = Some(ReliableChannel::new(up, down, 2, timeout));
                servers[p + 1].rep_chan = Some(ReliableChannel::new(down, up, 2, timeout));
            }
        }

        Ok(MitsSystem {
            net,
            switch,
            backbone: config.backbone,
            servers,
            endpoints,
            router: ShardRouter::new(shards),
            group_size,
            edge: (config.edge_cache_bytes > 0).then(|| {
                let mut e = EdgeCache::new(config.edge_cache_bytes, shards);
                e.set_flight_recorder(flight.clone());
                e
            }),
            scatter_queries: 0,
            scatter_partial: 0,
            scatter_legs: vec![0; shards],
            scatter_leg_errors: vec![0; shards],
            crashes: config.crashes.clone(),
            crash_idx: 0,
            checkpoint_every: config.checkpoint_every,
            next_checkpoint: config.checkpoint_every.map(|e| SimTime::ZERO + e),
            queue_limit: config.server_queue_limit,
            requests_sent: 0,
            failovers: 0,
            last_recovery: None,
            tracer,
            metrics: MetricsRegistry::new(),
            flight,
            resp_meta: BTreeMap::new(),
        })
    }

    /// The primary database server (public for direct loading in benches
    /// that don't measure publishing, and for counter assertions).
    pub fn db(&self) -> &DbServer {
        &self.servers[0].db
    }

    /// A database server by index (0 = primary, 1 = replica).
    pub fn db_at(&self, index: usize) -> &DbServer {
        &self.servers[index].db
    }

    /// How many database servers the installation runs.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Is server `index` currently up?
    pub fn server_up(&self, index: usize) -> bool {
        self.servers[index].up
    }

    /// Which server a client endpoint currently talks to on shard 0 —
    /// the whole store when unsharded.
    pub fn active_server(&self, client: ClientId) -> usize {
        self.endpoints[client.0].active[0]
    }

    /// Which server a client endpoint currently talks to for `shard`.
    pub fn active_server_for_shard(&self, client: ClientId, shard: usize) -> usize {
        self.endpoints[client.0].active[shard]
    }

    /// How many shard groups partition the store.
    pub fn shards(&self) -> usize {
        self.router.shards()
    }

    /// Server index of shard `shard`'s `role` (0 = primary, 1 = replica).
    pub fn server_index(&self, shard: usize, role: usize) -> usize {
        shard * self.group_size + role
    }

    /// The shard owning a document root (or object) id.
    pub fn shard_of_object(&self, id: MhegId) -> usize {
        self.router.shard_for_object(id)
    }

    /// The shard owning a media id.
    pub fn shard_of_media(&self, id: MediaId) -> usize {
        self.router.shard_for_media(id)
    }

    /// The campus-edge cache, when one is configured.
    pub fn edge_cache(&self) -> Option<&EdgeCache> {
        self.edge.as_ref()
    }

    /// ARQ timeout sized to the link: several max-segment serializations
    /// plus round-trip propagation.
    fn arq_timeout(profile: &LinkProfile) -> SimDuration {
        let seg = profile.raw_transfer_time((mits_atm::transport::MSS + 512) as u64);
        seg * 4 + profile.prop_delay * 8 + SimDuration::from_millis(20)
    }

    /// The author endpoint index.
    fn author_index(&self) -> usize {
        self.endpoints.len() - 1
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Host of a client endpoint.
    pub fn client_host(&self, client: ClientId) -> NodeId {
        self.endpoints[client.0].host
    }

    /// The campus switch every endpoint hangs off — handy for targeting
    /// per-link fault plans at a specific access loop.
    pub fn switch(&self) -> NodeId {
        self.switch
    }

    /// Bytes delivered to a peer on its downlink VCs so far (summed over
    /// every VC that ever carried data to it — restarts open fresh ones).
    pub fn bytes_to_peer(&self, index: usize) -> u64 {
        self.endpoints[index]
            .down_vcs
            .iter()
            .filter_map(|vc| self.net.vc_stats(*vc))
            .map(|s| s.bytes_delivered)
            .sum()
    }

    /// Bytes delivered downlink to a client.
    pub fn bytes_to_client(&self, client: ClientId) -> u64 {
        self.bytes_to_peer(client.0)
    }

    /// Client cache statistics (hits, misses).
    pub fn client_cache_stats(&self, client: ClientId) -> (u64, u64) {
        let c = &self.endpoints[client.0].db_client.cache;
        (c.hits, c.misses)
    }

    /// The client's attempt/retry/timeout counters and per-operation
    /// latency histograms.
    pub fn client_metrics(&self, client: ClientId) -> &DbClientMetrics {
        &self.endpoints[client.0].db_client.metrics
    }

    /// Snapshot every layer's counters into [`MitsSystem::metrics`]:
    /// per-link and per-VC network statistics, per-server queue/WAL/
    /// checkpoint counters, per-endpoint retry/latency metrics, and the
    /// system-level totals. Call it whenever a consistent snapshot is
    /// wanted — exports are idempotent overwrites, so repeated calls
    /// just refresh the registry.
    pub fn export_metrics(&self) {
        // Stamp gauges with the virtual instant of this export, so that
        // merged campus snapshots can resolve gauge conflicts by
        // "latest virtual time wins".
        self.metrics.set_clock(self.now());
        self.net.export_metrics(&self.metrics);
        for (i, s) in self.servers.iter().enumerate() {
            s.db.export_metrics(&self.metrics, &format!("db.server{i}"));
        }
        let author = self.author_index();
        for (i, e) in self.endpoints.iter().enumerate() {
            let prefix = if i == author {
                "author".to_string()
            } else {
                format!("client{i}")
            };
            e.db_client.metrics.export_metrics(&self.metrics, &prefix);
            let (hits, misses) = (e.db_client.cache.hits, e.db_client.cache.misses);
            self.metrics
                .counter_set(&format!("{prefix}.cache.hits"), hits);
            self.metrics
                .counter_set(&format!("{prefix}.cache.misses"), misses);
        }
        self.metrics
            .counter_set("system.requests_sent", self.requests_sent);
        self.metrics.counter_set("system.failovers", self.failovers);
        // Sharding/edge metrics only exist when the features are on, so
        // default-deployment snapshots stay byte-identical.
        if self.router.shards() > 1 {
            self.metrics
                .counter_set("system.scatter_queries", self.scatter_queries);
            self.metrics
                .counter_set("system.scatter_partial", self.scatter_partial);
            for (d, (&legs, &errs)) in self
                .scatter_legs
                .iter()
                .zip(&self.scatter_leg_errors)
                .enumerate()
            {
                self.metrics
                    .counter_set(&format!("system.shard{d}.scatter_legs"), legs);
                self.metrics
                    .counter_set(&format!("system.shard{d}.scatter_leg_errors"), errs);
            }
        }
        if let Some(edge) = &self.edge {
            edge.export_metrics(&self.metrics, "edge");
        }
        // Flight-ring truncation is visible, not silent: a non-zero
        // count means the tail forensics read is missing older events.
        self.metrics
            .counter_set("system.flight.dropped_events", self.flight.dropped());
    }

    // ---------- the pump ----------

    /// Earliest instant a *system-level* timer fires — transport
    /// timeouts, client retry wakeups, queued responses, crashes,
    /// checkpoints — excluding the network's internal cell events, which
    /// the pump batches through [`AtmNetwork::advance_until_delivery`].
    fn earliest_system_timer(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut fold = |t: Option<SimTime>| {
            if let Some(t) = t {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        for e in &self.endpoints {
            for chan in &e.chans {
                fold(chan.next_timeout());
            }
            // Retry machinery: attempt timeouts, backoffs, deadlines.
            fold(e.db_client.next_wakeup());
        }
        for s in &self.servers {
            if !s.up {
                continue;
            }
            for chan in &s.chans {
                fold(chan.next_timeout());
            }
            if let Some(ch) = &s.rep_chan {
                fold(ch.next_timeout());
            }
            for q in &s.ready {
                fold(q.front().map(|(t, _)| *t));
            }
        }
        // Scheduled crashes/restarts and checkpoint cadence.
        fold(self.crashes.events().get(self.crash_idx).map(|e| e.at));
        fold(self.next_checkpoint);
        next
    }

    fn flush_server_ready(&mut self) -> Result<(), SystemError> {
        let now = self.net.now();
        for s in 0..self.servers.len() {
            if !self.servers[s].up {
                continue;
            }
            for i in 0..self.servers[s].ready.len() {
                while self.servers[s].ready[i]
                    .front()
                    .is_some_and(|(t, _)| *t <= now)
                {
                    let (_, frame) = self.servers[s].ready[i].pop_front().expect("checked");
                    self.servers[s].chans[i].send_message(&mut self.net, &frame)?;
                }
            }
        }
        Ok(())
    }

    /// Ship each primary's journaled frames to its shard's replica. With
    /// the replica down the frames are dropped — it resyncs from the
    /// primary's devices when it restarts.
    fn ship_replication(&mut self) -> Result<(), SystemError> {
        if self.group_size < 2 {
            return Ok(());
        }
        for d in 0..self.router.shards() {
            let p = d * self.group_size;
            if !self.servers[p].up {
                continue;
            }
            let frames = self.servers[p].db.take_outbox();
            if frames.is_empty() || !self.servers[p + 1].up {
                continue;
            }
            for f in frames {
                if let Some(ch) = self.servers[p].rep_chan.as_mut() {
                    ch.send_message(&mut self.net, &f)?;
                }
            }
        }
        Ok(())
    }

    /// Execute every crash/restart whose time has come.
    fn run_crash_events(&mut self) -> Result<(), SystemError> {
        let now = self.net.now();
        while self
            .crashes
            .events()
            .get(self.crash_idx)
            .is_some_and(|e| e.at <= now)
        {
            let ev = self.crashes.events()[self.crash_idx];
            self.crash_idx += 1;
            let target = ev.target as usize;
            if target >= self.servers.len() {
                continue;
            }
            match ev.kind {
                FaultKind::ServerCrash => self.crash_server(target),
                FaultKind::ServerRestart => self.restart_server(target)?,
            }
        }
        Ok(())
    }

    /// Kill a server: volatile state (queued responses, ARQ windows) is
    /// gone; only its log devices survive. A surviving peer is promoted
    /// to a strictly higher epoch so the dead server's in-flight
    /// responses are recognisably stale.
    fn crash_server(&mut self, target: usize) {
        if !self.servers[target].up {
            return;
        }
        self.tracer.event_with(
            None,
            "server.crash",
            self.net.now(),
            &[("server", target.to_string())],
        );
        self.flight.record(
            self.net.now(),
            FlightKind::FaultOnset,
            (target / self.group_size) as u64,
            target as u64,
        );
        self.servers[target].up = false;
        for q in &mut self.servers[target].ready {
            q.clear();
        }
        // Epoch promotion is group-scoped: only the dead server's shard
        // fences, other shards' epochs (and caches) are untouched.
        let (lo, hi) = self.group_range(target);
        let max_epoch = self.servers[lo..hi]
            .iter()
            .map(|s| s.db.epoch())
            .max()
            .unwrap_or(0);
        for i in lo..hi {
            if i != target && self.servers[i].up {
                self.servers[i].db.set_epoch(max_epoch + 1);
                break;
            }
        }
    }

    /// The `[lo, hi)` server-index range of the shard group containing
    /// server `target`.
    fn group_range(&self, target: usize) -> (usize, usize) {
        let lo = (target / self.group_size) * self.group_size;
        (lo, lo + self.group_size)
    }

    /// Bring a server back: recover from its surviving devices, resync
    /// anything a live peer journaled meanwhile, adopt an epoch above
    /// every one answered under so far, and rebuild transport state on
    /// both ends (the dead process's VC bindings died with it). The
    /// server is busy replaying until the modelled recovery cost elapses.
    fn restart_server(&mut self, target: usize) -> Result<(), SystemError> {
        if self.servers[target].up {
            return Ok(());
        }
        let now = self.net.now();
        let (db, report) = DbServer::recover(
            ServiceModel::default(),
            self.queue_limit,
            Box::new(self.servers[target].wal_dev.clone()),
            Box::new(self.servers[target].snap_dev.clone()),
        );
        // Resync from a live peer's devices — the peer is the shard
        // group's other member; another shard's store holds a different
        // keyspace and must not leak in. Apply its snapshot records
        // (idempotent) and re-journal its WAL tail, preserving sequence
        // numbers. Both reads are charged to recovery latency.
        let (lo, hi) = self.group_range(target);
        let peer_state = self
            .servers
            .iter()
            .enumerate()
            .take(hi)
            .skip(lo)
            .find(|(i, s)| *i != target && s.up)
            .map(|(_, s)| (s.snap_dev.snapshot(), s.wal_dev.snapshot()));
        let mut resync_bytes = 0u64;
        if let Some((snap, wal_bytes)) = peer_state {
            resync_bytes = (snap.len() + wal_bytes.len()) as u64;
            let (_, recs, _) = read_snapshot(&snap);
            for rec in &recs {
                db.apply_record(rec);
            }
            let (frames, _) = wal::read_frames(&wal_bytes);
            for (seq, rec) in &frames {
                let frame = wal::encode_frame(*seq, &rec.encode());
                let _ = db.apply_shipped(&frame);
            }
            // Fold the resynced state into this server's own snapshot so
            // its devices are self-contained again.
            db.checkpoint();
        }
        let max_epoch = self.servers[lo..hi]
            .iter()
            .map(|s| s.db.epoch())
            .max()
            .unwrap_or(0);
        db.set_epoch(max_epoch + 1);
        db.set_shipping(target == lo && self.group_size > 1);
        let replayed = report.replayed_bytes() + resync_bytes;
        self.servers[target].db = db;
        self.servers[target].up = true;
        let busy_until = now + ServiceModel::default().cost(replayed as usize);
        self.servers[target].busy_until = busy_until;
        // The recovery itself is a root span: WAL replay plus (when a
        // peer was live) the resync that re-journals its tail.
        let rec = self
            .tracer
            .root_span(&format!("server{target}.recover"), now);
        self.tracer
            .attr_u64(rec, "epoch", self.servers[target].db.epoch());
        let replay = self.tracer.child(rec, "wal.replay", now);
        self.tracer
            .attr_u64(replay, "bytes", report.replayed_bytes());
        self.tracer.end(replay, busy_until);
        if resync_bytes > 0 {
            let rs = self.tracer.child(rec, "replica.resync", now);
            self.tracer.attr_u64(rs, "bytes", resync_bytes);
            self.tracer.end(rs, busy_until);
        }
        self.tracer.end(rec, busy_until);
        self.flight.record(
            busy_until,
            FlightKind::FaultClear,
            (target / self.group_size) as u64,
            target as u64,
        );
        self.last_recovery = Some(report);
        self.reopen_server_transport(target)?;
        // Failback: with this shard's primary up again, clients return
        // to it.
        let group = target / self.group_size;
        if self.servers[lo].up {
            for e in &mut self.endpoints {
                e.active[group] = lo;
            }
        }
        Ok(())
    }

    /// Fresh VC pairs and reliable channels between a restarted server
    /// and every endpoint (and the peer server) — on *both* ends, so no
    /// ARQ window wedges on sequence numbers the dead process forgot.
    fn reopen_server_transport(&mut self, target: usize) -> Result<(), SystemError> {
        let s_host = self.servers[target].host;
        for i in 0..self.endpoints.len() {
            let host = self.endpoints[i].host;
            let timeout = Self::arq_timeout(&self.endpoints[i].profile);
            let up = self
                .net
                .open_vc(&[host, self.switch, s_host], ServiceClass::Ubr, None)?;
            let down = self
                .net
                .open_vc(&[s_host, self.switch, host], ServiceClass::Ubr, None)?;
            self.endpoints[i].chans[target] = ReliableChannel::new(up, down, 2, timeout);
            self.servers[target].chans[i] = ReliableChannel::new(down, up, 2, timeout);
            self.endpoints[i].down_vcs.push(down);
        }
        if self.group_size > 1 {
            let timeout = Self::arq_timeout(&self.backbone);
            let (lo, _) = self.group_range(target);
            let (a, b) = (self.servers[lo].host, self.servers[lo + 1].host);
            let up = self
                .net
                .open_vc(&[a, self.switch, b], ServiceClass::Ubr, None)?;
            let down = self
                .net
                .open_vc(&[b, self.switch, a], ServiceClass::Ubr, None)?;
            self.servers[lo].rep_chan = Some(ReliableChannel::new(up, down, 2, timeout));
            self.servers[lo + 1].rep_chan = Some(ReliableChannel::new(down, up, 2, timeout));
        }
        Ok(())
    }

    /// Fold WALs into snapshots on the configured cadence.
    fn run_checkpoints(&mut self) {
        let Some(every) = self.checkpoint_every else {
            return;
        };
        let now = self.net.now();
        let mut next = self.next_checkpoint.unwrap_or(SimTime::ZERO + every);
        while next <= now {
            for s in &mut self.servers {
                if s.up {
                    s.db.checkpoint();
                }
            }
            next += every;
        }
        self.next_checkpoint = Some(next);
    }

    /// Route a decoded client event into the endpoint's inbox.
    fn deliver_event(&mut self, index: usize, event: ClientEvent) {
        match event {
            ClientEvent::Completed { env, .. } => {
                // Propagate the accepted epoch into the edge cache's
                // per-shard floor: the first post-failover completion
                // fences every entry the deposed primary filled.
                if let Some(shard) = self.endpoints[index].req_shard.remove(&env.req_id) {
                    if let Some(edge) = &mut self.edge {
                        let floor = self.endpoints[index].db_client.epoch_floor(shard as u64);
                        let now = self.net.now();
                        edge.observe_epoch(shard, floor, now);
                    }
                }
                self.endpoints[index].inbox.push((env.req_id, env.body));
            }
            ClientEvent::Failed { req_id, error } => {
                self.endpoints[index].req_shard.remove(&req_id);
                self.endpoints[index]
                    .inbox
                    .push((req_id, Response::Err(error)));
            }
            // A resend is already scheduled / the frame matched nothing:
            // the pump's poll pass picks it up.
            ClientEvent::RetryScheduled { .. } | ClientEvent::Ignored => {}
        }
    }

    /// Run every endpoint's retry machinery: re-transmit frames whose
    /// backoff elapsed, surface requests that ran out of budget. An
    /// endpoint whose attempt died outright (timeout, no response) fails
    /// over — within the shard group the quiet request was routed to —
    /// before re-issuing. A crash on one shard never rotates another.
    fn poll_clients(&mut self) -> Result<(), SystemError> {
        let now = self.net.now();
        for i in 0..self.endpoints.len() {
            let actions = self.endpoints[i].db_client.poll(now);
            if self.group_size > 1 && !self.endpoints[i].db_client.timed_out().is_empty() {
                let mut quiet: Vec<usize> = self.endpoints[i]
                    .db_client
                    .timed_out()
                    .iter()
                    .map(|id| self.endpoints[i].req_shard.get(id).copied().unwrap_or(0))
                    .collect();
                quiet.sort_unstable();
                quiet.dedup();
                for shard in quiet {
                    self.rotate_shard(i, shard, now);
                }
            }
            for action in actions {
                match action {
                    ClientAction::Resend { req_id, frame } => {
                        let shard = self.endpoints[i]
                            .req_shard
                            .get(&req_id)
                            .copied()
                            .unwrap_or(0);
                        let active = self.endpoints[i].active[shard];
                        self.endpoints[i].chans[active].send_message(&mut self.net, &frame)?;
                    }
                    ClientAction::Expired { req_id, error, .. } => {
                        self.endpoints[i].req_shard.remove(&req_id);
                        self.endpoints[i].inbox.push((req_id, Response::Err(error)));
                    }
                }
            }
        }
        Ok(())
    }

    /// Rotate endpoint `i`'s active server for `shard` to the next live
    /// member of that shard's group.
    fn rotate_shard(&mut self, i: usize, shard: usize, now: SimTime) {
        let lo = shard * self.group_size;
        let cur = self.endpoints[i].active[shard];
        let cur_role = cur - lo;
        for k in 1..=self.group_size {
            let cand = lo + (cur_role + k) % self.group_size;
            if self.servers[cand].up {
                if cand != cur {
                    self.endpoints[i].active[shard] = cand;
                    self.failovers += 1;
                    self.flight
                        .record(now, FlightKind::Failover, shard as u64, cand as u64);
                    self.tracer.event_with(
                        None,
                        "client.failover",
                        now,
                        &[
                            ("endpoint", i.to_string()),
                            ("from", cur.to_string()),
                            ("to", cand.to_string()),
                        ],
                    );
                }
                break;
            }
        }
    }

    /// Advance the whole system to `deadline`, processing everything due.
    pub fn pump_until(&mut self, deadline: SimTime) -> Result<(), SystemError> {
        loop {
            self.pump_step(deadline)?;
            if self.net.now() >= deadline {
                self.run_crash_events()?;
                self.poll_clients()?;
                return Ok(());
            }
        }
    }

    /// One pump step: run everything due now, then advance the clock to
    /// the next instant anything observable can happen — a PDU delivery,
    /// a system timer, or `deadline` — and process it. Cell-level events
    /// between those instants are batched inside the network, so the
    /// per-cell cost is a heap operation, not a full system sweep.
    fn pump_step(&mut self, deadline: SimTime) -> Result<(), SystemError> {
        {
            self.run_crash_events()?;
            self.run_checkpoints();
            self.ship_replication()?;
            self.flush_server_ready()?;
            self.poll_clients()?;
            let next = self.earliest_system_timer();
            let step_to = match next {
                Some(t) if t <= deadline => t.max(self.net.now()),
                _ => deadline,
            };
            let deliveries = self.net.advance_until_delivery(step_to);
            for d in &deliveries {
                // Server side. Cells addressed to a down server die with
                // it — the process that owned the VC no longer exists.
                for s in 0..self.servers.len() {
                    if !self.servers[s].up {
                        continue;
                    }
                    for i in 0..self.servers[s].chans.len() {
                        if self.servers[s].chans[i].in_vc() != d.vc {
                            continue;
                        }
                        let events = self.servers[s].chans[i].on_delivery(&mut self.net, d)?;
                        for ev in events {
                            if let TransportEvent::Message(frame) = ev {
                                self.serve(s, i, &frame)?;
                            }
                        }
                    }
                    // Replication receive: the replica journals and
                    // applies frames the primary shipped.
                    if let Some(mut ch) = self.servers[s].rep_chan.take() {
                        let events = ch.on_delivery(&mut self.net, d)?;
                        self.servers[s].rep_chan = Some(ch);
                        for ev in events {
                            if let TransportEvent::Message(frame) = ev {
                                let _ = self.servers[s].db.apply_shipped(&frame);
                            }
                        }
                    }
                }
                // Client side.
                for i in 0..self.endpoints.len() {
                    for c in 0..self.endpoints[i].chans.len() {
                        if self.endpoints[i].chans[c].in_vc() != d.vc {
                            continue;
                        }
                        let events = self.endpoints[i].chans[c].on_delivery(&mut self.net, d)?;
                        for ev in events {
                            if let TransportEvent::Message(frame) = ev {
                                let now = self.net.now();
                                // Downlink hop span: from the response's
                                // ready time (recorded at serve) to now.
                                if let Some(parent) =
                                    peek_response_trace(&frame).and_then(SpanId::from_wire)
                                {
                                    if let Some(ready_at) = peek_req_id(&frame)
                                        .and_then(|id| self.resp_meta.remove(&(i, id)))
                                    {
                                        let hop =
                                            self.tracer.child(parent, "net.downlink", ready_at);
                                        self.tracer.attr_u64(hop, "bytes", frame.len() as u64);
                                        self.tracer.end(hop, now);
                                    }
                                }
                                let event = self.endpoints[i].db_client.on_frame(&frame, now);
                                self.deliver_event(i, event);
                            }
                        }
                    }
                }
            }
            for e in &mut self.endpoints {
                for chan in &mut e.chans {
                    chan.on_tick(&mut self.net)?;
                }
            }
            for s in &mut self.servers {
                if !s.up {
                    continue;
                }
                for chan in &mut s.chans {
                    chan.on_tick(&mut self.net)?;
                }
                if let Some(ch) = s.rep_chan.as_mut() {
                    ch.on_tick(&mut self.net)?;
                }
            }
        }
        Ok(())
    }

    /// Server request handling: decode, dispatch, queue the response
    /// after the modelled service time. Requests arriving while the
    /// backlog is past the configured overload threshold are shed with a
    /// cheap `Unavailable` that bypasses the service queue. Every
    /// response is stamped with the server's failover epoch.
    fn serve(&mut self, server: usize, peer: usize, frame: &Bytes) -> Result<(), SystemError> {
        let env = Request::decode_shared(frame)?;
        let now = self.net.now();
        let kind = env.body.kind();
        let node = &mut self.servers[server];
        let depth = node
            .ready
            .iter()
            .flat_map(|q| q.iter())
            .filter(|(t, _)| *t > now)
            .count();
        let shed = node.db.overload_threshold().is_some_and(|l| depth >= l);
        if shed {
            self.flight.record(
                now,
                FlightKind::Shed,
                (server / self.group_size) as u64,
                depth as u64,
            );
        }
        let wal_before = node.db.wal_device_len();
        let (resp, cost) = node.db.handle_at_depth(&env.body, depth);
        let wal_journaled = node.db.wal_device_len().saturating_sub(wal_before);
        let ready_at = if shed {
            // Rejection is fast-path: it does not occupy the service centre.
            now + cost
        } else {
            // Single service centre: the request starts when the server
            // frees — which after a restart includes recovery replay.
            let start = node.busy_until.max(now);
            node.busy_until = start + cost;
            node.busy_until
        };
        let epoch = node.db.epoch();
        let resp_frame = resp.encode_with_epoch_traced(env.req_id, epoch, env.trace);
        node.ready[peer].push_back((ready_at, resp_frame));
        // Hop + service spans nest under the client's request span, which
        // rode in on the wire's trace field.
        if let Some(parent) = SpanId::from_wire(env.trace) {
            let sent_at = self.endpoints[peer]
                .db_client
                .pending(env.req_id)
                .map_or(now, |p| p.last_issued);
            let hop = self.tracer.child(parent, "net.uplink", sent_at);
            self.tracer.attr_u64(hop, "bytes", frame.len() as u64);
            self.tracer.end(hop, now);
            let sv = self
                .tracer
                .child(parent, &format!("server{server}.serve {kind}"), now);
            self.tracer.attr_u64(sv, "queue_depth", depth as u64);
            self.tracer
                .attr(sv, "shed", if shed { "true" } else { "false" });
            self.tracer.attr_u64(sv, "epoch", epoch);
            if wal_journaled > 0 {
                self.tracer
                    .attr_u64(sv, "wal_bytes_journaled", wal_journaled as u64);
            }
            self.tracer.end(sv, ready_at);
        }
        self.resp_meta.insert((peer, env.req_id), ready_at);
        Ok(())
    }

    // ---------- blocking service calls ----------

    /// Send a request from endpoint `index` and pump until its response
    /// arrives (or `timeout` elapses). Returns the response and elapsed
    /// virtual time. Single-key requests route by ring position;
    /// scatter-routed requests are handled by the facades before they
    /// reach here (shard 0 is the whole store when unsharded).
    fn call(
        &mut self,
        index: usize,
        req: Request,
        timeout: SimDuration,
    ) -> Result<(Response, SimDuration), SystemError> {
        let shard = match self.router.route(&req) {
            Route::Shard(s) => s,
            Route::Scatter => 0,
        };
        self.call_on_shard(index, req, shard, timeout)
    }

    /// [`MitsSystem::call`] pinned to one shard group.
    fn call_on_shard(
        &mut self,
        index: usize,
        req: Request,
        shard: usize,
        timeout: SimDuration,
    ) -> Result<(Response, SimDuration), SystemError> {
        let started = self.net.now();
        let (req_id, frame) = self.endpoints[index].db_client.request_at(req, started);
        self.endpoints[index]
            .db_client
            .set_request_domain(req_id, shard as u64);
        self.endpoints[index].req_shard.insert(req_id, shard);
        self.requests_sent += 1;
        let active = self.endpoints[index].active[shard];
        self.endpoints[index].chans[active].send_message(&mut self.net, &frame)?;
        let deadline = started + timeout;
        loop {
            // Check inbox.
            if let Some(pos) = self.endpoints[index]
                .inbox
                .iter()
                .position(|(id, _)| *id == req_id)
            {
                let (_, resp) = self.endpoints[index].inbox.swap_remove(pos);
                let elapsed = self.net.now().since(started);
                return match resp {
                    Response::Err(e) => Err(SystemError::Db(e)),
                    other => Ok((other, elapsed)),
                };
            }
            if self.net.now() >= deadline {
                return Err(SystemError::Timeout);
            }
            self.pump_step(deadline)?;
        }
    }

    /// Issue `req` to every shard concurrently and gather all legs. A
    /// leg answered by a down shard fails through the client's retry
    /// deadline (or, at worst, this call's `timeout`) — partial results
    /// degrade, they never hang. Returns one `Result` per shard, in
    /// shard order, plus elapsed virtual time.
    fn call_scatter(
        &mut self,
        index: usize,
        req: &Request,
        timeout: SimDuration,
    ) -> Result<(Vec<Result<Response, DbError>>, SimDuration), SystemError> {
        let started = self.net.now();
        let shards = self.router.shards();
        self.scatter_queries += 1;
        let mut ids = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (req_id, frame) = self.endpoints[index]
                .db_client
                .request_at(req.clone(), started);
            self.endpoints[index]
                .db_client
                .set_request_domain(req_id, shard as u64);
            self.endpoints[index].req_shard.insert(req_id, shard);
            self.requests_sent += 1;
            let active = self.endpoints[index].active[shard];
            self.endpoints[index].chans[active].send_message(&mut self.net, &frame)?;
            self.scatter_legs[shard] += 1;
            ids.push(req_id);
        }
        let deadline = started + timeout;
        let mut results: Vec<Option<Result<Response, DbError>>> = vec![None; shards];
        loop {
            for (k, id) in ids.iter().enumerate() {
                if results[k].is_some() {
                    continue;
                }
                if let Some(pos) = self.endpoints[index]
                    .inbox
                    .iter()
                    .position(|(rid, _)| rid == id)
                {
                    let (_, resp) = self.endpoints[index].inbox.swap_remove(pos);
                    results[k] = Some(match resp {
                        Response::Err(e) => Err(e),
                        other => Ok(other),
                    });
                }
            }
            if results.iter().all(Option::is_some) {
                break;
            }
            if self.net.now() >= deadline {
                for r in results.iter_mut() {
                    if r.is_none() {
                        *r = Some(Err(DbError::Unavailable(
                            "shard unreachable at scatter deadline".to_string(),
                        )));
                    }
                }
                break;
            }
            self.pump_step(deadline)?;
        }
        let results: Vec<_> = results.into_iter().map(|r| r.expect("filled")).collect();
        for (shard, r) in results.iter().enumerate() {
            if r.is_err() {
                self.scatter_leg_errors[shard] += 1;
            }
        }
        if results.iter().any(Result::is_err) && results.iter().any(Result::is_ok) {
            self.scatter_partial += 1;
        }
        Ok((results, self.net.now().since(started)))
    }

    /// Default call timeout: generous, scaled for narrowband links.
    fn default_timeout() -> SimDuration {
        SimDuration::from_secs(3600)
    }

    /// Author publishes a courseware: every object and media item crosses
    /// the network to the database. Returns elapsed virtual time.
    pub fn publish(
        &mut self,
        objects: &[MhegObject],
        media: &[MediaObject],
    ) -> Result<SimDuration, SystemError> {
        let started = self.net.now();
        let author = self.author_index();
        for obj in objects {
            let (resp, _) = self.call(
                author,
                Request::PutObject {
                    object: obj.clone(),
                },
                Self::default_timeout(),
            )?;
            if resp != Response::Ack {
                return Err(SystemError::Protocol("expected Ack".into()));
            }
        }
        for m in media {
            let (resp, _) = self.call(
                author,
                Request::PutContent { media: m.clone() },
                Self::default_timeout(),
            )?;
            if resp != Response::Ack {
                return Err(SystemError::Protocol("expected Ack".into()));
            }
        }
        Ok(self.net.now().since(started))
    }

    /// Load content without the network (bench setup shortcut). Every
    /// server is loaded identically — the journals agree record for
    /// record, so nothing needs shipping.
    pub fn load_directly(&mut self, objects: Vec<MhegObject>, media: Vec<MediaObject>) {
        self.load_shared(&objects, &media);
    }

    /// [`MitsSystem::load_directly`] over borrowed slices: the campus
    /// runner loads one shared workload into thousands of sessions, so
    /// cloning happens once per server here instead of once per call at
    /// every call site.
    pub fn load_shared(&mut self, objects: &[MhegObject], media: &[MediaObject]) {
        for s in &self.servers {
            s.db.load_objects(objects.iter().cloned());
            s.db.load_media(media.iter().cloned());
        }
        let _ = self.servers[0].db.take_outbox();
    }

    /// Load one document's closure and media respecting the ring: the
    /// closure lands on the root's shard (both roles, so journals agree
    /// without shipping), each medium on its own id's shard. On a single
    /// shard this is exactly [`MitsSystem::load_shared`].
    pub fn load_doc(&mut self, objects: &[MhegObject], media: &[MediaObject], root: MhegId) {
        if self.router.shards() <= 1 {
            self.load_shared(objects, media);
            return;
        }
        let lo = self.router.shard_for_object(root) * self.group_size;
        for s in &self.servers[lo..lo + self.group_size] {
            s.db.load_objects(objects.iter().cloned());
        }
        for m in media {
            let lo = self.router.shard_for_media(m.id) * self.group_size;
            for s in &self.servers[lo..lo + self.group_size] {
                s.db.load_media(std::iter::once(m.clone()));
            }
        }
        for d in 0..self.router.shards() {
            let _ = self.servers[d * self.group_size].db.take_outbox();
        }
    }

    // ---------- the paper's query facade (§5.3.2) ----------

    /// `Get_List_Doc()`: the catalogue of courseware documents. On a
    /// sharded store the catalogue is scatter/gathered; unreachable
    /// shards degrade the list to the reachable shards' entries.
    pub fn get_list_doc(
        &mut self,
        client: ClientId,
    ) -> Result<(Vec<(MhegId, String)>, SimDuration), SystemError> {
        if self.router.shards() > 1 {
            let (parts, t) =
                self.call_scatter(client.0, &Request::ListDocs, Self::default_timeout())?;
            let mut lists = Vec::new();
            let mut last_err = None;
            for r in parts {
                match r {
                    Ok(resp) => lists.push(resp.into_doc_list()?),
                    Err(e) => last_err = Some(e),
                }
            }
            if lists.is_empty() {
                if let Some(e) = last_err {
                    return Err(SystemError::Db(e));
                }
            }
            return Ok((merge_doc_lists(lists), t));
        }
        let (resp, t) = self.call(client.0, Request::ListDocs, Self::default_timeout())?;
        Ok((resp.into_doc_list()?, t))
    }

    /// `Get_Selected_Doc(name)`: a document's full object closure by
    /// title. A name alone does not reveal its root's shard, so on a
    /// sharded store the lookup scatters and the first shard holding the
    /// document wins.
    pub fn get_selected_doc(
        &mut self,
        client: ClientId,
        name: &str,
    ) -> Result<(Vec<MhegObject>, SimDuration), SystemError> {
        let req = Request::GetDoc {
            name: name.to_string(),
        };
        if self.router.shards() > 1 {
            let (parts, t) = self.call_scatter(client.0, &req, Self::default_timeout())?;
            let mut err: Option<DbError> = None;
            for r in parts {
                match r {
                    Ok(resp) => return Ok((resp.into_objects()?, t)),
                    // NotFound from a shard just means "not mine"; a
                    // harder error (unreachable shard) is only surfaced
                    // when no shard has the document.
                    Err(DbError::NotFound(e)) => {
                        err.get_or_insert(DbError::NotFound(e));
                    }
                    Err(e) => err = Some(e),
                }
            }
            return Err(SystemError::Db(
                err.unwrap_or_else(|| DbError::NotFound(name.to_string())),
            ));
        }
        let (resp, t) = self.call(client.0, req, Self::default_timeout())?;
        Ok((resp.into_objects()?, t))
    }

    /// `GetKeywordTree()`: the keyword taxonomy for library browsing.
    /// On a sharded store each shard holds its own documents' keyword
    /// entries; the trees are scatter/gathered and merged, degrading to
    /// the reachable shards' taxonomy when one is down.
    pub fn get_keyword_tree(
        &mut self,
        client: ClientId,
    ) -> Result<(KeywordTree, SimDuration), SystemError> {
        if self.router.shards() > 1 {
            let (parts, t) =
                self.call_scatter(client.0, &Request::GetKeywordTree, Self::default_timeout())?;
            let mut merged = KeywordTree::new();
            let mut any_ok = false;
            let mut last_err = None;
            for r in parts {
                match r {
                    Ok(resp) => {
                        merged.merge_from(&resp.into_keyword_tree()?);
                        any_ok = true;
                    }
                    Err(e) => last_err = Some(e),
                }
            }
            if !any_ok {
                if let Some(e) = last_err {
                    return Err(SystemError::Db(e));
                }
            }
            return Ok((merged, t));
        }
        let (resp, t) = self.call(client.0, Request::GetKeywordTree, Self::default_timeout())?;
        Ok((resp.into_keyword_tree()?, t))
    }

    /// `GetDocByKeyword(keyword)`: documents under a keyword, including
    /// its whole subtree.
    pub fn get_doc_by_keyword(
        &mut self,
        client: ClientId,
        keyword: &str,
    ) -> Result<(Vec<MhegId>, SimDuration), SystemError> {
        self.keyword_query(client, keyword, true)
    }

    fn keyword_query(
        &mut self,
        client: ClientId,
        keyword: &str,
        subtree: bool,
    ) -> Result<(Vec<MhegId>, SimDuration), SystemError> {
        let req = Request::QueryKeyword {
            keyword: keyword.to_string(),
            subtree,
        };
        if self.router.shards() > 1 {
            let (parts, t) = self.call_scatter(client.0, &req, Self::default_timeout())?;
            let mut lists = Vec::new();
            let mut last_err = None;
            for r in parts {
                match r {
                    Ok(resp) => lists.push(resp.into_doc_ids()?),
                    Err(e) => last_err = Some(e),
                }
            }
            if lists.is_empty() {
                if let Some(e) = last_err {
                    return Err(SystemError::Db(e));
                }
            }
            return Ok((merge_doc_ids(lists), t));
        }
        let (resp, t) = self.call(client.0, req, Self::default_timeout())?;
        Ok((resp.into_doc_ids()?, t))
    }

    // ---------- deprecated pre-facade names ----------

    /// `Get_List_Doc` from a client.
    #[deprecated(note = "use get_list_doc (paper facade)")]
    pub fn list_docs(
        &mut self,
        client: ClientId,
    ) -> Result<(Vec<(MhegId, String)>, SimDuration), SystemError> {
        self.get_list_doc(client)
    }

    /// Fetch a courseware's full object closure from a client.
    pub fn fetch_courseware(
        &mut self,
        client: ClientId,
        root: MhegId,
    ) -> Result<(Vec<MhegObject>, SimDuration), SystemError> {
        match self.call(
            client.0,
            Request::GetCourseware { root },
            Self::default_timeout(),
        )? {
            (Response::Objects(objs), t) => Ok((objs, t)),
            _ => Err(SystemError::Protocol("expected Objects".into())),
        }
    }

    /// Fetch a document by name (`Get_Selected_Doc`).
    #[deprecated(note = "use get_selected_doc (paper facade)")]
    pub fn fetch_doc(
        &mut self,
        client: ClientId,
        name: &str,
    ) -> Result<(Vec<MhegObject>, SimDuration), SystemError> {
        self.get_selected_doc(client, name)
    }

    /// Fetch bulk content, consulting the client cache, then the campus
    /// edge cache (when configured), then the owning shard's origin
    /// servers. Origin responses fill the edge stamped with the epoch
    /// the client accepted them under, so a later failover fences them.
    pub fn fetch_content(
        &mut self,
        client: ClientId,
        media: MediaId,
    ) -> Result<(MediaObject, SimDuration), SystemError> {
        if let Some(m) = self.endpoints[client.0].db_client.cache.get_content(media) {
            return Ok((m, SimDuration::ZERO));
        }
        let now = self.net.now();
        if let Some(edge) = &mut self.edge {
            if let Some(m) = edge.get(media, now) {
                // Served at the campus edge: the origin shard is never
                // touched. The client keeps its own copy like any fetch.
                self.endpoints[client.0].db_client.cache.put_content(&m);
                return Ok((m, SimDuration::ZERO));
            }
            edge.note_origin();
        }
        let shard = self.router.shard_for_media(media);
        let (resp, t) = self.call_on_shard(
            client.0,
            Request::GetContent { media },
            shard,
            Self::default_timeout(),
        )?;
        let m = resp.into_content()?;
        if let Some(edge) = &mut self.edge {
            let epoch = self.endpoints[client.0].db_client.epoch_floor(shard as u64);
            let now = self.net.now();
            edge.observe_epoch(shard, epoch, now);
            edge.fill(media, shard, epoch, &m);
        }
        Ok((m, t))
    }

    /// Keyword query from a client.
    #[deprecated(note = "use get_doc_by_keyword (paper facade; subtree match)")]
    pub fn query_keyword(
        &mut self,
        client: ClientId,
        keyword: &str,
        subtree: bool,
    ) -> Result<(Vec<MhegId>, SimDuration), SystemError> {
        self.keyword_query(client, keyword, subtree)
    }

    /// Fetch the keyword tree (library browsing).
    #[deprecated(note = "use get_keyword_tree (paper facade)")]
    pub fn fetch_keyword_tree(
        &mut self,
        client: ClientId,
    ) -> Result<(KeywordTree, SimDuration), SystemError> {
        self.get_keyword_tree(client)
    }

    /// Issue the same request from many clients *concurrently* and wait
    /// for every response — the F3.5 contention workload. Returns each
    /// client's response latency.
    pub fn concurrent_fetch_courseware(
        &mut self,
        clients: &[ClientId],
        root: MhegId,
    ) -> Result<Vec<SimDuration>, SystemError> {
        let started = self.net.now();
        let mut ids = Vec::with_capacity(clients.len());
        let shard = self.router.shard_for_object(root);
        for c in clients {
            let (req_id, frame) = self.endpoints[c.0]
                .db_client
                .request_at(Request::GetCourseware { root }, started);
            self.endpoints[c.0]
                .db_client
                .set_request_domain(req_id, shard as u64);
            self.endpoints[c.0].req_shard.insert(req_id, shard);
            self.requests_sent += 1;
            let active = self.endpoints[c.0].active[shard];
            self.endpoints[c.0].chans[active].send_message(&mut self.net, &frame)?;
            ids.push(req_id);
        }
        let deadline = started + Self::default_timeout();
        let mut latencies = vec![None; clients.len()];
        while latencies.iter().any(Option::is_none) {
            if self.net.now() >= deadline {
                return Err(SystemError::Timeout);
            }
            self.pump_step(deadline)?;
            for (i, c) in clients.iter().enumerate() {
                if latencies[i].is_some() {
                    continue;
                }
                if let Some(pos) = self.endpoints[c.0]
                    .inbox
                    .iter()
                    .position(|(id, _)| *id == ids[i])
                {
                    let (_, resp) = self.endpoints[c.0].inbox.swap_remove(pos);
                    if let Response::Err(e) = resp {
                        return Err(SystemError::Db(e));
                    }
                    latencies[i] = Some(self.net.now().since(started));
                }
            }
        }
        Ok(latencies
            .into_iter()
            .map(|l| l.expect("all filled"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mits_author::{
        compile_imd, ElementKind, ImDocument, Scene, Section, Subsection, TimelineEntry,
    };
    use mits_media::{CaptureSpec, MediaFormat, ProductionCenter};

    fn tiny_course() -> (Vec<MhegObject>, Vec<MediaObject>, MhegId) {
        let mut pc = ProductionCenter::new(7);
        let clip = pc.capture(&CaptureSpec::video(
            "intro.mpg",
            MediaFormat::Mpeg,
            SimDuration::from_millis(200),
            mits_media::VideoDims::new(64, 64),
        ));
        let mut doc = ImDocument::new("Tiny Course");
        doc.keywords = vec!["telecom/atm".into()];
        doc.sections.push(Section {
            title: "s".into(),
            subsections: vec![Subsection {
                title: "ss".into(),
                scenes: vec![Scene::new("only")
                    .element("v", ElementKind::Media((&clip).into()))
                    .entry(TimelineEntry::at_start("v"))],
            }],
        });
        let compiled = compile_imd(50, &doc);
        (compiled.objects, vec![clip], compiled.root)
    }

    #[test]
    fn publish_then_list_then_fetch() {
        let (objects, media, root) = tiny_course();
        let mut sys = MitsSystem::build(&SystemConfig::broadband(2)).unwrap();
        let publish_time = sys.publish(&objects, &media).unwrap();
        assert!(
            publish_time > SimDuration::ZERO,
            "publishing crossed the network"
        );
        let (docs, _) = sys.get_list_doc(ClientId(0)).unwrap();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].0, root);
        assert_eq!(docs[0].1, "Tiny Course");
        let (objs, fetch_time) = sys.fetch_courseware(ClientId(0), root).unwrap();
        assert_eq!(objs.len(), objects.len());
        assert!(fetch_time > SimDuration::ZERO);
    }

    #[test]
    fn fetch_content_uses_cache_second_time() {
        let (objects, media, _) = tiny_course();
        let id = media[0].id;
        let mut sys = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
        sys.load_directly(objects, media);
        let (m1, t1) = sys.fetch_content(ClientId(0), id).unwrap();
        assert!(t1 > SimDuration::ZERO);
        assert!(m1.verify(), "content intact across the network");
        let (_, t2) = sys.fetch_content(ClientId(0), id).unwrap();
        assert_eq!(t2, SimDuration::ZERO, "cache hit skips the network");
        let (hits, _) = sys.client_cache_stats(ClientId(0));
        assert!(hits >= 1);
    }

    #[test]
    fn missing_doc_is_db_error() {
        let mut sys = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
        let err = sys
            .get_selected_doc(ClientId(0), "nothing here")
            .unwrap_err();
        assert!(matches!(err, SystemError::Db(DbError::NotFound(_))));
    }

    #[test]
    fn keyword_queries_over_network() {
        let (objects, media, root) = tiny_course();
        let mut sys = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
        sys.publish(&objects, &media).unwrap();
        let (ids, _) = sys.get_doc_by_keyword(ClientId(0), "telecom").unwrap();
        assert_eq!(ids, vec![root]);
        let (tree, _) = sys.get_keyword_tree(ClientId(0)).unwrap();
        assert_eq!(tree.lookup("telecom/atm"), vec![root]);
        // The deprecated names still answer, via the facade.
        #[allow(deprecated)]
        let (ids, _) = sys
            .query_keyword(ClientId(0), "telecom/atm", false)
            .unwrap();
        assert_eq!(ids, vec![root]);
    }

    #[test]
    fn narrowband_fetch_is_slower() {
        let (objects, media, root) = tiny_course();
        let mut elapsed = Vec::new();
        for profile in [LinkProfile::atm_oc3(), LinkProfile::isdn_128k()] {
            let mut sys =
                MitsSystem::build(&SystemConfig::broadband(1).with_access(profile)).unwrap();
            sys.load_directly(objects.clone(), media.clone());
            let (_, t) = sys.fetch_courseware(ClientId(0), root).unwrap();
            let (_, tc) = sys.fetch_content(ClientId(0), media[0].id).unwrap();
            elapsed.push(t + tc);
        }
        assert!(
            elapsed[1].as_secs_f64() > 20.0 * elapsed[0].as_secs_f64(),
            "ISDN {} vs OC-3 {}",
            elapsed[1],
            elapsed[0]
        );
    }

    #[test]
    fn two_clients_independent_caches() {
        let (objects, media, _) = tiny_course();
        let id = media[0].id;
        let mut sys = MitsSystem::build(&SystemConfig::broadband(2)).unwrap();
        sys.load_directly(objects, media);
        sys.fetch_content(ClientId(0), id).unwrap();
        // Client 1 still pays the network.
        let (_, t) = sys.fetch_content(ClientId(1), id).unwrap();
        assert!(t > SimDuration::ZERO);
    }

    #[test]
    fn zero_loss_path_is_unchanged_by_fault_plumbing() {
        // An explicit empty plan + no-retry policy must reproduce the
        // default configuration cell for cell.
        let (objects, media, root) = tiny_course();
        let mut elapsed = Vec::new();
        for cfg in [
            SystemConfig::broadband(1),
            SystemConfig::broadband(1)
                .with_fault_plan(mits_atm::FaultPlan::none())
                .with_retry(RetryPolicy::no_retry()),
        ] {
            let mut sys = MitsSystem::build(&cfg).unwrap();
            sys.load_directly(objects.clone(), media.clone());
            let (_, t) = sys.fetch_courseware(ClientId(0), root).unwrap();
            elapsed.push((t, sys.bytes_to_client(ClientId(0))));
        }
        assert_eq!(elapsed[0], elapsed[1]);
    }

    #[test]
    fn lossy_uplink_completes_with_deterministic_retries() {
        // 35% cell loss on the student's access uplink: request frames
        // and transport ACKs die often enough that the ARQ and, when a
        // whole attempt window dies, the client-level retry machinery
        // have to work. Only small frames cross the faulted direction,
        // so a burst of queries pushes enough cells through it for the
        // loss process to bite. Everything is seeded, so two identical
        // runs must agree cell for cell.
        let run = || {
            let (objects, media, root) = tiny_course();
            let cfg = SystemConfig::broadband(1)
                .with_retry(RetryPolicy::interactive().with_deadline(SimDuration::from_secs(60)));
            let mut sys = MitsSystem::build(&cfg).unwrap();
            let plan = mits_atm::FaultPlan::none().with_link(
                sys.client_host(ClientId(0)),
                sys.switch(),
                mits_atm::LinkFaults::loss(0.35),
            );
            sys.net.set_fault_plan(plan);
            sys.load_directly(objects.clone(), media.clone());
            let c = ClientId(0);
            for _ in 0..10 {
                let (docs, _) = sys.get_list_doc(c).unwrap();
                assert_eq!(docs.len(), 1);
            }
            let (objs, t) = sys.fetch_courseware(c, root).unwrap();
            assert_eq!(objs.len(), objects.len());
            let (ids, _) = sys.get_doc_by_keyword(c, "telecom").unwrap();
            assert_eq!(ids, vec![root]);
            let (m0, _) = sys.fetch_content(c, media[0].id).unwrap();
            assert!(m0.verify(), "content survives the lossy uplink intact");
            let m = sys.client_metrics(c).clone();
            assert_eq!(m.completed, 13);
            assert!(m.attempts >= 13);
            let fs = sys.net.fault_stats();
            (
                t,
                m.attempts,
                m.retries,
                m.timeouts,
                fs.total_losses(),
                fs.faulted_cells,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seeded fault schedule must replay exactly");
        assert!(a.4 > 0, "the plan actually destroyed cells: {a:?}");
    }

    #[test]
    fn link_down_window_forces_client_retry() {
        let (objects, media, root) = tiny_course();
        let mut sys = {
            let cfg = SystemConfig::broadband(1)
                .with_retry(RetryPolicy::interactive().with_deadline(SimDuration::from_secs(120)));
            let mut sys = MitsSystem::build(&cfg).unwrap();
            sys.load_directly(objects.clone(), media.clone());
            sys
        };
        // Warm the clock, then kill every link for 2 s right as the
        // request goes out: attempt 1 dies, the retry machinery must
        // carry the fetch across the outage.
        sys.pump_until(SimTime::from_millis(100)).unwrap();
        let outage = mits_atm::LinkFaults::default()
            .with_down(SimTime::from_millis(100), SimTime::from_millis(2100));
        sys.net.set_fault_plan(mits_atm::FaultPlan::uniform(outage));
        let (objs, t) = sys.fetch_courseware(ClientId(0), root).unwrap();
        assert_eq!(objs.len(), objects.len());
        assert!(
            t >= SimDuration::from_secs(2),
            "the fetch had to outlive the outage, took {t}"
        );
        let m = sys.client_metrics(ClientId(0));
        assert!(
            m.retries >= 1 || m.timeouts >= 1,
            "outage must show up in the client metrics: {m:?}"
        );
        assert!(sys.net.fault_stats().downtime_losses > 0);
    }

    #[test]
    fn crash_restart_recovers_journaled_state() {
        let (objects, media, root) = tiny_course();
        // Crash-free twin: what the store should look like.
        let mut clean = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
        clean.publish(&objects, &media).unwrap();
        clean.pump_until(SimTime::from_secs(30)).unwrap();
        let want = clean.db().state_digest();

        let cfg = SystemConfig::broadband(1)
            .with_retry(RetryPolicy::interactive().with_deadline(SimDuration::from_secs(120)))
            .with_crash(SimTime::from_secs(10), 0)
            .with_restart(SimTime::from_secs(12), 0);
        let mut sys = MitsSystem::build(&cfg).unwrap();
        sys.publish(&objects, &media).unwrap();
        assert!(sys.now() < SimTime::from_secs(10), "published before crash");
        sys.pump_until(SimTime::from_secs(11)).unwrap();
        assert!(!sys.server_up(0), "crashed on schedule");
        sys.pump_until(SimTime::from_secs(30)).unwrap();
        assert!(sys.server_up(0), "restarted on schedule");
        let report = sys.last_recovery.as_ref().expect("a recovery ran");
        assert!(report.replayed_bytes() > 0);
        assert_eq!(sys.db().state_digest(), want, "recovered store matches");
        // And it serves again.
        let (objs, _) = sys.fetch_courseware(ClientId(0), root).unwrap();
        assert_eq!(objs.len(), objects.len());
    }

    #[test]
    fn failover_to_replica_and_back() {
        let (objects, media, root) = tiny_course();
        let cfg = SystemConfig::broadband(1)
            .with_replica()
            .with_retry(RetryPolicy::interactive().with_deadline(SimDuration::from_secs(60)))
            .with_crash(SimTime::from_secs(5), 0)
            .with_restart(SimTime::from_secs(40), 0);
        let mut sys = MitsSystem::build(&cfg).unwrap();
        assert_eq!(sys.server_count(), 2);
        sys.load_directly(objects.clone(), media.clone());
        // Warm fetch against the primary.
        let (docs, _) = sys.get_list_doc(ClientId(0)).unwrap();
        assert_eq!(docs.len(), 1);
        // Step past the crash; the next call must fail over to the
        // replica and still answer inside the client deadline.
        sys.pump_until(SimTime::from_secs(6)).unwrap();
        assert!(!sys.server_up(0));
        let (objs, t) = sys.fetch_courseware(ClientId(0), root).unwrap();
        assert_eq!(objs.len(), objects.len());
        assert!(t < SimDuration::from_secs(60), "inside the deadline: {t}");
        assert!(sys.failovers > 0, "the flip was recorded");
        assert_eq!(sys.active_server(ClientId(0)), 1, "talking to the replica");
        // After the restart, clients fail back to the primary.
        sys.pump_until(SimTime::from_secs(41)).unwrap();
        assert!(sys.server_up(0));
        assert_eq!(sys.active_server(ClientId(0)), 0, "failed back");
        let (docs, _) = sys.get_list_doc(ClientId(0)).unwrap();
        assert_eq!(docs.len(), 1);
    }

    #[test]
    fn replica_tracks_published_mutations() {
        let (objects, media, _) = tiny_course();
        let mut sys = MitsSystem::build(&SystemConfig::broadband(1).with_replica()).unwrap();
        sys.publish(&objects, &media).unwrap();
        // Let the replication channel drain.
        let t = sys.now() + SimDuration::from_secs(5);
        sys.pump_until(t).unwrap();
        assert_eq!(
            sys.db_at(0).state_digest(),
            sys.db_at(1).state_digest(),
            "replica mirrors the primary byte for byte"
        );
    }

    #[test]
    fn checkpoint_cadence_truncates_the_wal() {
        let (objects, media, _) = tiny_course();
        let cfg = SystemConfig::broadband(1).with_checkpoint_every(SimDuration::from_secs(2));
        let mut sys = MitsSystem::build(&cfg).unwrap();
        sys.publish(&objects, &media).unwrap();
        let wal_before = sys.db().wal_device_len();
        assert!(wal_before > 0, "publishing journaled");
        let t = sys.now() + SimDuration::from_secs(5);
        sys.pump_until(t).unwrap();
        assert_eq!(sys.db().wal_device_len(), 0, "cadence folded the log");
    }

    #[test]
    fn overloaded_server_sheds_and_clients_back_off() {
        let (objects, media, root) = tiny_course();
        let cfg = SystemConfig::broadband(6)
            .with_server_queue_limit(2)
            .with_retry(RetryPolicy::interactive().with_deadline(SimDuration::from_secs(120)));
        let mut sys = MitsSystem::build(&cfg).unwrap();
        sys.load_directly(objects.clone(), media.clone());
        let clients: Vec<ClientId> = (0..6).map(ClientId).collect();
        let latencies = sys.concurrent_fetch_courseware(&clients, root).unwrap();
        assert_eq!(latencies.len(), 6);
        assert!(
            *sys.db().requests_shed.read() > 0,
            "six concurrent fetches must trip a queue limit of 2"
        );
        let total_retries: u64 = clients.iter().map(|c| sys.client_metrics(*c).retries).sum();
        assert!(total_retries > 0, "shed requests are retried after backoff");
    }
}
