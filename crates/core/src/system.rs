//! The distributed system: topology, transport, server loop, and the
//! client-facing service calls (Figs 3.1, 3.4, 3.5).
//!
//! One [`MitsSystem`] owns the ATM network, the courseware database
//! server, one author endpoint, and N student endpoints. Every service
//! call is a real protocol exchange: encoded request frames ride the
//! reliable transport over AAL5 cells through the switch to the server
//! host, the server "retrieves objects in the database according to the
//! information provided by the client" with a modelled service time, and
//! the response rides back — all on one deterministic virtual clock.

use bytes::Bytes;
use mits_atm::{
    AtmNetwork, FaultPlan, LinkProfile, NetError, NodeId, ReliableChannel, ServiceClass,
    TransportEvent, VcId,
};
use mits_db::{
    ClientAction, ClientEvent, DbClient, DbClientMetrics, DbError, DbServer, KeywordTree, Request,
    Response, RetryPolicy,
};
use mits_media::{MediaId, MediaObject};
use mits_mheg::{MhegId, MhegObject};
use mits_sim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Identifies one student endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub usize);

/// Topology and behaviour parameters.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Access link profile for student hosts.
    pub access_link: LinkProfile,
    /// Backbone profile (database and author to the switch).
    pub backbone: LinkProfile,
    /// Number of student endpoints.
    pub clients: usize,
    /// Deterministic seed.
    pub seed: u64,
    /// Client-side cache budget in bytes.
    pub client_cache_bytes: usize,
    /// Deadline / retry / backoff policy for every client request. The
    /// default never retries, matching the clean-network prototype.
    pub retry: RetryPolicy,
    /// Faults injected into the network (losses, bursts, jitter, link
    /// downtime). Empty by default — and an empty plan is bit-identical
    /// to a network without fault injection.
    pub fault_plan: FaultPlan,
    /// Server queue depth past which requests are shed with
    /// `Unavailable` instead of queuing unboundedly.
    pub server_queue_limit: Option<usize>,
}

impl SystemConfig {
    /// The paper's reference deployment: OC-3 everywhere, a handful of
    /// multimedia PCs.
    pub fn broadband(clients: usize) -> Self {
        SystemConfig {
            access_link: LinkProfile::atm_oc3(),
            backbone: LinkProfile::atm_oc3(),
            clients,
            seed: 1996,
            client_cache_bytes: 16 << 20,
            retry: RetryPolicy::no_retry(),
            fault_plan: FaultPlan::none(),
            server_queue_limit: None,
        }
    }

    /// Same deployment with a narrowband access technology (E-BB).
    pub fn with_access(mut self, profile: LinkProfile) -> Self {
        self.access_link = profile;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Inject faults into the network.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Shed server load past `limit` queued requests.
    pub fn with_server_queue_limit(mut self, limit: usize) -> Self {
        self.server_queue_limit = Some(limit);
        self
    }
}

/// Errors from system service calls.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemError {
    /// The database returned an error response.
    Db(DbError),
    /// No response arrived before the deadline.
    Timeout,
    /// Network-level failure (VC setup etc.).
    Net(NetError),
    /// Unexpected response variant for the request.
    Protocol(String),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Db(e) => write!(f, "database: {e}"),
            SystemError::Timeout => write!(f, "request timed out"),
            SystemError::Net(e) => write!(f, "network: {e}"),
            SystemError::Protocol(s) => write!(f, "protocol: {s}"),
        }
    }
}

impl std::error::Error for SystemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SystemError::Db(e) => Some(e),
            SystemError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DbError> for SystemError {
    fn from(e: DbError) -> Self {
        SystemError::Db(e)
    }
}

impl From<NetError> for SystemError {
    fn from(e: NetError) -> Self {
        SystemError::Net(e)
    }
}

struct Endpoint {
    host: NodeId,
    chan: ReliableChannel,
    db_client: DbClient,
    inbox: Vec<(u64, Response)>,
}

/// The assembled MITS installation.
pub struct MitsSystem {
    /// The network (public for experiment instrumentation).
    pub net: AtmNetwork,
    /// The courseware database server (public for direct loading in
    /// benches that don't measure publishing).
    pub db: DbServer,
    switch: NodeId,
    endpoints: Vec<Endpoint>, // clients then author (last)
    server_chans: Vec<ReliableChannel>,
    server_ready: Vec<VecDeque<(SimTime, Bytes)>>,
    data_vcs: Vec<(VcId, VcId)>, // (peer→db, db→peer) per endpoint
    /// The server is a single service centre: requests queue behind each
    /// other (F3.5 contention).
    server_busy_until: SimTime,
    /// Total requests that crossed the network.
    pub requests_sent: u64,
}

impl MitsSystem {
    /// Build the installation described by `config`.
    pub fn build(config: &SystemConfig) -> Result<Self, SystemError> {
        let mut net = AtmNetwork::new(config.seed);
        net.set_fault_plan(config.fault_plan.clone());
        let switch = net.add_switch("campus-switch");
        let db_host = net.add_host("courseware-db");
        net.connect(db_host, switch, config.backbone);
        let author_host = net.add_host("author-site");
        net.connect(author_host, switch, config.backbone);
        let mut peer_hosts = Vec::with_capacity(config.clients + 1);
        for i in 0..config.clients {
            let h = net.add_host(&format!("student-{i}"));
            net.connect(h, switch, config.access_link);
            peer_hosts.push((h, config.access_link));
        }
        peer_hosts.push((author_host, config.backbone));

        let mut endpoints = Vec::new();
        let mut server_chans = Vec::new();
        let mut server_ready = Vec::new();
        let mut data_vcs = Vec::new();
        for (i, (host, profile)) in peer_hosts.into_iter().enumerate() {
            let up = net.open_vc(&[host, switch, db_host], ServiceClass::Ubr, None)?;
            let down = net.open_vc(&[db_host, switch, host], ServiceClass::Ubr, None)?;
            let timeout = Self::arq_timeout(&profile);
            // Window of 2 segments: enough to pipeline the link while
            // keeping the burst inside realistic switch buffers (a 16-seg
            // burst at backbone speed would overrun a narrowband port's
            // queue and melt down in retransmissions).
            endpoints.push(Endpoint {
                host,
                chan: ReliableChannel::new(up, down, 2, timeout),
                db_client: DbClient::with_policy(
                    config.client_cache_bytes,
                    config.retry,
                    config.seed ^ (0xC11E_0000 + i as u64),
                ),
                inbox: Vec::new(),
            });
            server_chans.push(ReliableChannel::new(down, up, 2, timeout));
            server_ready.push(VecDeque::new());
            data_vcs.push((up, down));
        }

        let db = match config.server_queue_limit {
            Some(limit) => DbServer::default().with_overload_threshold(limit),
            None => DbServer::default(),
        };
        Ok(MitsSystem {
            net,
            db,
            switch,
            endpoints,
            server_chans,
            server_ready,
            data_vcs,
            server_busy_until: SimTime::ZERO,
            requests_sent: 0,
        })
    }

    /// ARQ timeout sized to the link: several max-segment serializations
    /// plus round-trip propagation.
    fn arq_timeout(profile: &LinkProfile) -> SimDuration {
        let seg = profile.raw_transfer_time((mits_atm::transport::MSS + 512) as u64);
        seg * 4 + profile.prop_delay * 8 + SimDuration::from_millis(20)
    }

    /// The author endpoint index.
    fn author_index(&self) -> usize {
        self.endpoints.len() - 1
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Host of a client endpoint.
    pub fn client_host(&self, client: ClientId) -> NodeId {
        self.endpoints[client.0].host
    }

    /// The campus switch every endpoint hangs off — handy for targeting
    /// per-link fault plans at a specific access loop.
    pub fn switch(&self) -> NodeId {
        self.switch
    }

    /// Bytes delivered to a peer on its downlink VC so far.
    pub fn bytes_to_peer(&self, index: usize) -> u64 {
        self.net
            .vc_stats(self.data_vcs[index].1)
            .map(|s| s.bytes_delivered)
            .unwrap_or(0)
    }

    /// Bytes delivered downlink to a client.
    pub fn bytes_to_client(&self, client: ClientId) -> u64 {
        self.bytes_to_peer(client.0)
    }

    /// Client cache statistics (hits, misses).
    pub fn client_cache_stats(&self, client: ClientId) -> (u64, u64) {
        let c = &self.endpoints[client.0].db_client.cache;
        (c.hits, c.misses)
    }

    /// The client's attempt/retry/timeout counters and per-operation
    /// latency histograms.
    pub fn client_metrics(&self, client: ClientId) -> &DbClientMetrics {
        &self.endpoints[client.0].db_client.metrics
    }

    // ---------- the pump ----------

    fn earliest_wakeup(&self) -> Option<SimTime> {
        let mut next = self.net.next_event_time();
        for chan in self
            .endpoints
            .iter()
            .map(|e| &e.chan)
            .chain(self.server_chans.iter())
        {
            if let Some(t) = chan.next_timeout() {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        }
        for q in &self.server_ready {
            if let Some((t, _)) = q.front() {
                next = Some(next.map_or(*t, |n| n.min(*t)));
            }
        }
        // Retry machinery: attempt timeouts, backoff expiries, deadlines.
        for e in &self.endpoints {
            if let Some(t) = e.db_client.next_wakeup() {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        }
        next
    }

    fn flush_server_ready(&mut self) -> Result<(), SystemError> {
        let now = self.net.now();
        for i in 0..self.server_ready.len() {
            while self.server_ready[i].front().is_some_and(|(t, _)| *t <= now) {
                let (_, frame) = self.server_ready[i].pop_front().expect("checked");
                self.server_chans[i].send_message(&mut self.net, &frame)?;
            }
        }
        Ok(())
    }

    /// Route a decoded client event into the endpoint's inbox.
    fn deliver_event(&mut self, index: usize, event: ClientEvent) {
        match event {
            ClientEvent::Completed { env, .. } => {
                self.endpoints[index].inbox.push((env.req_id, env.body));
            }
            ClientEvent::Failed { req_id, error } => {
                self.endpoints[index]
                    .inbox
                    .push((req_id, Response::Err(error)));
            }
            // A resend is already scheduled / the frame matched nothing:
            // the pump's poll pass picks it up.
            ClientEvent::RetryScheduled { .. } | ClientEvent::Ignored => {}
        }
    }

    /// Run every endpoint's retry machinery: re-transmit frames whose
    /// backoff elapsed, surface requests that ran out of budget.
    fn poll_clients(&mut self) -> Result<(), SystemError> {
        let now = self.net.now();
        for i in 0..self.endpoints.len() {
            for action in self.endpoints[i].db_client.poll(now) {
                match action {
                    ClientAction::Resend { frame, .. } => {
                        self.endpoints[i].chan.send_message(&mut self.net, &frame)?;
                    }
                    ClientAction::Expired { req_id, error, .. } => {
                        self.endpoints[i].inbox.push((req_id, Response::Err(error)));
                    }
                }
            }
        }
        Ok(())
    }

    /// Advance the whole system to `deadline`, processing everything due.
    pub fn pump_until(&mut self, deadline: SimTime) -> Result<(), SystemError> {
        loop {
            self.flush_server_ready()?;
            self.poll_clients()?;
            let next = self.earliest_wakeup();
            let step_to = match next {
                Some(t) if t <= deadline => t,
                _ => deadline,
            };
            let deliveries = self.net.advance(step_to);
            for d in &deliveries {
                // Server side.
                for i in 0..self.server_chans.len() {
                    let events = self.server_chans[i].on_delivery(&mut self.net, d)?;
                    for ev in events {
                        if let TransportEvent::Message(frame) = ev {
                            self.serve(i, &frame)?;
                        }
                    }
                }
                // Client side.
                for i in 0..self.endpoints.len() {
                    let events = self.endpoints[i].chan.on_delivery(&mut self.net, d)?;
                    for ev in events {
                        if let TransportEvent::Message(frame) = ev {
                            let now = self.net.now();
                            let event = self.endpoints[i].db_client.on_frame(&frame, now);
                            self.deliver_event(i, event);
                        }
                    }
                }
            }
            for chan in self
                .endpoints
                .iter_mut()
                .map(|e| &mut e.chan)
                .chain(self.server_chans.iter_mut())
            {
                chan.on_tick(&mut self.net)?;
            }
            if self.net.now() >= deadline {
                self.poll_clients()?;
                return Ok(());
            }
        }
    }

    /// Server request handling: decode, dispatch, queue the response
    /// after the modelled service time. Requests arriving while the
    /// backlog is past the configured overload threshold are shed with a
    /// cheap `Unavailable` that bypasses the service queue.
    fn serve(&mut self, peer: usize, frame: &[u8]) -> Result<(), SystemError> {
        let env = Request::decode(frame)?;
        let now = self.net.now();
        let depth = self
            .server_ready
            .iter()
            .flat_map(|q| q.iter())
            .filter(|(t, _)| *t > now)
            .count();
        let shed = self.db.overload_threshold().is_some_and(|l| depth >= l);
        let (resp, cost) = self.db.handle_at_depth(&env.body, depth);
        let ready_at = if shed {
            // Rejection is fast-path: it does not occupy the service centre.
            now + cost
        } else {
            // Single service centre: the request starts when the server frees.
            let start = self.server_busy_until.max(now);
            self.server_busy_until = start + cost;
            self.server_busy_until
        };
        let resp_frame = resp.encode(env.req_id);
        self.server_ready[peer].push_back((ready_at, resp_frame));
        Ok(())
    }

    // ---------- blocking service calls ----------

    /// Send a request from endpoint `index` and pump until its response
    /// arrives (or `timeout` elapses). Returns the response and elapsed
    /// virtual time.
    fn call(
        &mut self,
        index: usize,
        req: Request,
        timeout: SimDuration,
    ) -> Result<(Response, SimDuration), SystemError> {
        let started = self.net.now();
        let (req_id, frame) = self.endpoints[index].db_client.request_at(req, started);
        self.requests_sent += 1;
        self.endpoints[index]
            .chan
            .send_message(&mut self.net, &frame)?;
        let deadline = started + timeout;
        loop {
            // Check inbox.
            if let Some(pos) = self.endpoints[index]
                .inbox
                .iter()
                .position(|(id, _)| *id == req_id)
            {
                let (_, resp) = self.endpoints[index].inbox.swap_remove(pos);
                let elapsed = self.net.now().since(started);
                return match resp {
                    Response::Err(e) => Err(SystemError::Db(e)),
                    other => Ok((other, elapsed)),
                };
            }
            if self.net.now() >= deadline {
                return Err(SystemError::Timeout);
            }
            let step = self
                .earliest_wakeup()
                .unwrap_or(deadline)
                .min(deadline)
                .max(self.net.now() + SimDuration::from_micros(1));
            self.pump_until(step)?;
        }
    }

    /// Default call timeout: generous, scaled for narrowband links.
    fn default_timeout() -> SimDuration {
        SimDuration::from_secs(3600)
    }

    /// Author publishes a courseware: every object and media item crosses
    /// the network to the database. Returns elapsed virtual time.
    pub fn publish(
        &mut self,
        objects: &[MhegObject],
        media: &[MediaObject],
    ) -> Result<SimDuration, SystemError> {
        let started = self.net.now();
        let author = self.author_index();
        for obj in objects {
            let (resp, _) = self.call(
                author,
                Request::PutObject {
                    object: obj.clone(),
                },
                Self::default_timeout(),
            )?;
            if resp != Response::Ack {
                return Err(SystemError::Protocol("expected Ack".into()));
            }
        }
        for m in media {
            let (resp, _) = self.call(
                author,
                Request::PutContent { media: m.clone() },
                Self::default_timeout(),
            )?;
            if resp != Response::Ack {
                return Err(SystemError::Protocol("expected Ack".into()));
            }
        }
        Ok(self.net.now().since(started))
    }

    /// Load content without the network (bench setup shortcut).
    pub fn load_directly(&mut self, objects: Vec<MhegObject>, media: Vec<MediaObject>) {
        self.db.load_objects(objects);
        self.db.load_media(media);
    }

    // ---------- the paper's query facade (§5.3.2) ----------

    /// `Get_List_Doc()`: the catalogue of courseware documents.
    pub fn get_list_doc(
        &mut self,
        client: ClientId,
    ) -> Result<(Vec<(MhegId, String)>, SimDuration), SystemError> {
        let (resp, t) = self.call(client.0, Request::ListDocs, Self::default_timeout())?;
        Ok((resp.into_doc_list()?, t))
    }

    /// `Get_Selected_Doc(name)`: a document's full object closure by
    /// title.
    pub fn get_selected_doc(
        &mut self,
        client: ClientId,
        name: &str,
    ) -> Result<(Vec<MhegObject>, SimDuration), SystemError> {
        let (resp, t) = self.call(
            client.0,
            Request::GetDoc {
                name: name.to_string(),
            },
            Self::default_timeout(),
        )?;
        Ok((resp.into_objects()?, t))
    }

    /// `GetKeywordTree()`: the keyword taxonomy for library browsing.
    pub fn get_keyword_tree(
        &mut self,
        client: ClientId,
    ) -> Result<(KeywordTree, SimDuration), SystemError> {
        let (resp, t) = self.call(client.0, Request::GetKeywordTree, Self::default_timeout())?;
        Ok((resp.into_keyword_tree()?, t))
    }

    /// `GetDocByKeyword(keyword)`: documents under a keyword, including
    /// its whole subtree.
    pub fn get_doc_by_keyword(
        &mut self,
        client: ClientId,
        keyword: &str,
    ) -> Result<(Vec<MhegId>, SimDuration), SystemError> {
        self.keyword_query(client, keyword, true)
    }

    fn keyword_query(
        &mut self,
        client: ClientId,
        keyword: &str,
        subtree: bool,
    ) -> Result<(Vec<MhegId>, SimDuration), SystemError> {
        let (resp, t) = self.call(
            client.0,
            Request::QueryKeyword {
                keyword: keyword.to_string(),
                subtree,
            },
            Self::default_timeout(),
        )?;
        Ok((resp.into_doc_ids()?, t))
    }

    // ---------- deprecated pre-facade names ----------

    /// `Get_List_Doc` from a client.
    #[deprecated(note = "use get_list_doc (paper facade)")]
    pub fn list_docs(
        &mut self,
        client: ClientId,
    ) -> Result<(Vec<(MhegId, String)>, SimDuration), SystemError> {
        self.get_list_doc(client)
    }

    /// Fetch a courseware's full object closure from a client.
    pub fn fetch_courseware(
        &mut self,
        client: ClientId,
        root: MhegId,
    ) -> Result<(Vec<MhegObject>, SimDuration), SystemError> {
        match self.call(
            client.0,
            Request::GetCourseware { root },
            Self::default_timeout(),
        )? {
            (Response::Objects(objs), t) => Ok((objs, t)),
            _ => Err(SystemError::Protocol("expected Objects".into())),
        }
    }

    /// Fetch a document by name (`Get_Selected_Doc`).
    #[deprecated(note = "use get_selected_doc (paper facade)")]
    pub fn fetch_doc(
        &mut self,
        client: ClientId,
        name: &str,
    ) -> Result<(Vec<MhegObject>, SimDuration), SystemError> {
        self.get_selected_doc(client, name)
    }

    /// Fetch bulk content, consulting the client cache first.
    pub fn fetch_content(
        &mut self,
        client: ClientId,
        media: MediaId,
    ) -> Result<(MediaObject, SimDuration), SystemError> {
        if let Some(m) = self.endpoints[client.0].db_client.cache.get_content(media) {
            return Ok((m, SimDuration::ZERO));
        }
        let (resp, t) = self.call(
            client.0,
            Request::GetContent { media },
            Self::default_timeout(),
        )?;
        Ok((resp.into_content()?, t))
    }

    /// Keyword query from a client.
    #[deprecated(note = "use get_doc_by_keyword (paper facade; subtree match)")]
    pub fn query_keyword(
        &mut self,
        client: ClientId,
        keyword: &str,
        subtree: bool,
    ) -> Result<(Vec<MhegId>, SimDuration), SystemError> {
        self.keyword_query(client, keyword, subtree)
    }

    /// Fetch the keyword tree (library browsing).
    #[deprecated(note = "use get_keyword_tree (paper facade)")]
    pub fn fetch_keyword_tree(
        &mut self,
        client: ClientId,
    ) -> Result<(KeywordTree, SimDuration), SystemError> {
        self.get_keyword_tree(client)
    }

    /// Issue the same request from many clients *concurrently* and wait
    /// for every response — the F3.5 contention workload. Returns each
    /// client's response latency.
    pub fn concurrent_fetch_courseware(
        &mut self,
        clients: &[ClientId],
        root: MhegId,
    ) -> Result<Vec<SimDuration>, SystemError> {
        let started = self.net.now();
        let mut ids = Vec::with_capacity(clients.len());
        for c in clients {
            let (req_id, frame) = self.endpoints[c.0]
                .db_client
                .request_at(Request::GetCourseware { root }, started);
            self.requests_sent += 1;
            self.endpoints[c.0]
                .chan
                .send_message(&mut self.net, &frame)?;
            ids.push(req_id);
        }
        let deadline = started + Self::default_timeout();
        let mut latencies = vec![None; clients.len()];
        while latencies.iter().any(Option::is_none) {
            if self.net.now() >= deadline {
                return Err(SystemError::Timeout);
            }
            let step = self
                .earliest_wakeup()
                .unwrap_or(deadline)
                .min(deadline)
                .max(self.net.now() + SimDuration::from_micros(1));
            self.pump_until(step)?;
            for (i, c) in clients.iter().enumerate() {
                if latencies[i].is_some() {
                    continue;
                }
                if let Some(pos) = self.endpoints[c.0]
                    .inbox
                    .iter()
                    .position(|(id, _)| *id == ids[i])
                {
                    let (_, resp) = self.endpoints[c.0].inbox.swap_remove(pos);
                    if let Response::Err(e) = resp {
                        return Err(SystemError::Db(e));
                    }
                    latencies[i] = Some(self.net.now().since(started));
                }
            }
        }
        Ok(latencies
            .into_iter()
            .map(|l| l.expect("all filled"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mits_author::{
        compile_imd, ElementKind, ImDocument, Scene, Section, Subsection, TimelineEntry,
    };
    use mits_media::{CaptureSpec, MediaFormat, ProductionCenter};

    fn tiny_course() -> (Vec<MhegObject>, Vec<MediaObject>, MhegId) {
        let mut pc = ProductionCenter::new(7);
        let clip = pc.capture(&CaptureSpec::video(
            "intro.mpg",
            MediaFormat::Mpeg,
            SimDuration::from_millis(200),
            mits_media::VideoDims::new(64, 64),
        ));
        let mut doc = ImDocument::new("Tiny Course");
        doc.keywords = vec!["telecom/atm".into()];
        doc.sections.push(Section {
            title: "s".into(),
            subsections: vec![Subsection {
                title: "ss".into(),
                scenes: vec![Scene::new("only")
                    .element("v", ElementKind::Media((&clip).into()))
                    .entry(TimelineEntry::at_start("v"))],
            }],
        });
        let compiled = compile_imd(50, &doc);
        (compiled.objects, vec![clip], compiled.root)
    }

    #[test]
    fn publish_then_list_then_fetch() {
        let (objects, media, root) = tiny_course();
        let mut sys = MitsSystem::build(&SystemConfig::broadband(2)).unwrap();
        let publish_time = sys.publish(&objects, &media).unwrap();
        assert!(
            publish_time > SimDuration::ZERO,
            "publishing crossed the network"
        );
        let (docs, _) = sys.get_list_doc(ClientId(0)).unwrap();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].0, root);
        assert_eq!(docs[0].1, "Tiny Course");
        let (objs, fetch_time) = sys.fetch_courseware(ClientId(0), root).unwrap();
        assert_eq!(objs.len(), objects.len());
        assert!(fetch_time > SimDuration::ZERO);
    }

    #[test]
    fn fetch_content_uses_cache_second_time() {
        let (objects, media, _) = tiny_course();
        let id = media[0].id;
        let mut sys = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
        sys.load_directly(objects, media);
        let (m1, t1) = sys.fetch_content(ClientId(0), id).unwrap();
        assert!(t1 > SimDuration::ZERO);
        assert!(m1.verify(), "content intact across the network");
        let (_, t2) = sys.fetch_content(ClientId(0), id).unwrap();
        assert_eq!(t2, SimDuration::ZERO, "cache hit skips the network");
        let (hits, _) = sys.client_cache_stats(ClientId(0));
        assert!(hits >= 1);
    }

    #[test]
    fn missing_doc_is_db_error() {
        let mut sys = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
        let err = sys
            .get_selected_doc(ClientId(0), "nothing here")
            .unwrap_err();
        assert!(matches!(err, SystemError::Db(DbError::NotFound(_))));
    }

    #[test]
    fn keyword_queries_over_network() {
        let (objects, media, root) = tiny_course();
        let mut sys = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
        sys.publish(&objects, &media).unwrap();
        let (ids, _) = sys.get_doc_by_keyword(ClientId(0), "telecom").unwrap();
        assert_eq!(ids, vec![root]);
        let (tree, _) = sys.get_keyword_tree(ClientId(0)).unwrap();
        assert_eq!(tree.lookup("telecom/atm"), vec![root]);
        // The deprecated names still answer, via the facade.
        #[allow(deprecated)]
        let (ids, _) = sys
            .query_keyword(ClientId(0), "telecom/atm", false)
            .unwrap();
        assert_eq!(ids, vec![root]);
    }

    #[test]
    fn narrowband_fetch_is_slower() {
        let (objects, media, root) = tiny_course();
        let mut elapsed = Vec::new();
        for profile in [LinkProfile::atm_oc3(), LinkProfile::isdn_128k()] {
            let mut sys =
                MitsSystem::build(&SystemConfig::broadband(1).with_access(profile)).unwrap();
            sys.load_directly(objects.clone(), media.clone());
            let (_, t) = sys.fetch_courseware(ClientId(0), root).unwrap();
            let (_, tc) = sys.fetch_content(ClientId(0), media[0].id).unwrap();
            elapsed.push(t + tc);
        }
        assert!(
            elapsed[1].as_secs_f64() > 20.0 * elapsed[0].as_secs_f64(),
            "ISDN {} vs OC-3 {}",
            elapsed[1],
            elapsed[0]
        );
    }

    #[test]
    fn two_clients_independent_caches() {
        let (objects, media, _) = tiny_course();
        let id = media[0].id;
        let mut sys = MitsSystem::build(&SystemConfig::broadband(2)).unwrap();
        sys.load_directly(objects, media);
        sys.fetch_content(ClientId(0), id).unwrap();
        // Client 1 still pays the network.
        let (_, t) = sys.fetch_content(ClientId(1), id).unwrap();
        assert!(t > SimDuration::ZERO);
    }

    #[test]
    fn zero_loss_path_is_unchanged_by_fault_plumbing() {
        // An explicit empty plan + no-retry policy must reproduce the
        // default configuration cell for cell.
        let (objects, media, root) = tiny_course();
        let mut elapsed = Vec::new();
        for cfg in [
            SystemConfig::broadband(1),
            SystemConfig::broadband(1)
                .with_fault_plan(mits_atm::FaultPlan::none())
                .with_retry(RetryPolicy::no_retry()),
        ] {
            let mut sys = MitsSystem::build(&cfg).unwrap();
            sys.load_directly(objects.clone(), media.clone());
            let (_, t) = sys.fetch_courseware(ClientId(0), root).unwrap();
            elapsed.push((t, sys.bytes_to_client(ClientId(0))));
        }
        assert_eq!(elapsed[0], elapsed[1]);
    }

    #[test]
    fn lossy_uplink_completes_with_deterministic_retries() {
        // 35% cell loss on the student's access uplink: request frames
        // and transport ACKs die often enough that the ARQ and, when a
        // whole attempt window dies, the client-level retry machinery
        // have to work. Only small frames cross the faulted direction,
        // so a burst of queries pushes enough cells through it for the
        // loss process to bite. Everything is seeded, so two identical
        // runs must agree cell for cell.
        let run = || {
            let (objects, media, root) = tiny_course();
            let cfg = SystemConfig::broadband(1)
                .with_retry(RetryPolicy::interactive().with_deadline(SimDuration::from_secs(60)));
            let mut sys = MitsSystem::build(&cfg).unwrap();
            let plan = mits_atm::FaultPlan::none().with_link(
                sys.client_host(ClientId(0)),
                sys.switch(),
                mits_atm::LinkFaults::loss(0.35),
            );
            sys.net.set_fault_plan(plan);
            sys.load_directly(objects.clone(), media.clone());
            let c = ClientId(0);
            for _ in 0..10 {
                let (docs, _) = sys.get_list_doc(c).unwrap();
                assert_eq!(docs.len(), 1);
            }
            let (objs, t) = sys.fetch_courseware(c, root).unwrap();
            assert_eq!(objs.len(), objects.len());
            let (ids, _) = sys.get_doc_by_keyword(c, "telecom").unwrap();
            assert_eq!(ids, vec![root]);
            let (m0, _) = sys.fetch_content(c, media[0].id).unwrap();
            assert!(m0.verify(), "content survives the lossy uplink intact");
            let m = sys.client_metrics(c).clone();
            assert_eq!(m.completed, 13);
            assert!(m.attempts >= 13);
            let fs = sys.net.fault_stats();
            (
                t,
                m.attempts,
                m.retries,
                m.timeouts,
                fs.total_losses(),
                fs.faulted_cells,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seeded fault schedule must replay exactly");
        assert!(a.4 > 0, "the plan actually destroyed cells: {a:?}");
    }

    #[test]
    fn link_down_window_forces_client_retry() {
        let (objects, media, root) = tiny_course();
        let mut sys = {
            let cfg = SystemConfig::broadband(1)
                .with_retry(RetryPolicy::interactive().with_deadline(SimDuration::from_secs(120)));
            let mut sys = MitsSystem::build(&cfg).unwrap();
            sys.load_directly(objects.clone(), media.clone());
            sys
        };
        // Warm the clock, then kill every link for 2 s right as the
        // request goes out: attempt 1 dies, the retry machinery must
        // carry the fetch across the outage.
        sys.pump_until(SimTime::from_millis(100)).unwrap();
        let outage = mits_atm::LinkFaults::default()
            .with_down(SimTime::from_millis(100), SimTime::from_millis(2100));
        sys.net.set_fault_plan(mits_atm::FaultPlan::uniform(outage));
        let (objs, t) = sys.fetch_courseware(ClientId(0), root).unwrap();
        assert_eq!(objs.len(), objects.len());
        assert!(
            t >= SimDuration::from_secs(2),
            "the fetch had to outlive the outage, took {t}"
        );
        let m = sys.client_metrics(ClientId(0));
        assert!(
            m.retries >= 1 || m.timeouts >= 1,
            "outage must show up in the client metrics: {m:?}"
        );
        assert!(sys.net.fault_stats().downtime_losses > 0);
    }

    #[test]
    fn overloaded_server_sheds_and_clients_back_off() {
        let (objects, media, root) = tiny_course();
        let cfg = SystemConfig::broadband(6)
            .with_server_queue_limit(2)
            .with_retry(RetryPolicy::interactive().with_deadline(SimDuration::from_secs(120)));
        let mut sys = MitsSystem::build(&cfg).unwrap();
        sys.load_directly(objects.clone(), media.clone());
        let clients: Vec<ClientId> = (0..6).map(ClientId).collect();
        let latencies = sys.concurrent_fetch_courseware(&clients, root).unwrap();
        assert_eq!(latencies.len(), 6);
        assert!(
            *sys.db.requests_shed.read() > 0,
            "six concurrent fetches must trip a queue limit of 2"
        );
        let total_retries: u64 = clients.iter().map(|c| sys.client_metrics(*c).retries).sum();
        assert!(total_retries > 0, "shed requests are retried after backoff");
    }
}
