//! # MITS — a Broadband Multimedia TeleLearning System
//!
//! A full reproduction, in Rust, of the system described in *"A Broadband
//! Multimedia TeleLearning System"* (HPDC 1996; thesis version: *Design
//! and Implementation of a Broadband Multimedia TeleLearning System*,
//! R. Wang, University of Ottawa).
//!
//! This facade re-exports the whole stack under one roof:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`sim`] | `mits-sim` | discrete-event kernel, RNG, statistics |
//! | [`media`] | `mits-media` | media formats, synthetic codecs, production center, MCI |
//! | [`mheg`] | `mits-mheg` | MHEG object system: classes, codecs, engine |
//! | [`atm`] | `mits-atm` | ATM network simulator + narrowband baselines |
//! | [`db`] | `mits-db` | courseware database: stores, index, protocol |
//! | [`author`] | `mits-author` | document models, teaching architectures, compiler |
//! | [`school`] | `mits-school` | TeleSchool: records, facilitation, exercises |
//! | [`navigator`] | `mits-navigator` | screens, presentation, library, bookmarks |
//! | [`core`] | `mits-core` | the assembled distributed Course-On-Demand system |
//!
//! ## Quickstart
//!
//! ```
//! use mits::author::{compile_imd, ElementKind, ImDocument, Scene, Section, Subsection, TimelineEntry};
//! use mits::core::{ClientId, CodSession, MitsSystem, SystemConfig};
//! use mits::media::{CaptureSpec, MediaFormat, ProductionCenter, VideoDims};
//! use mits::sim::SimDuration;
//!
//! // 1. Produce media.
//! let mut studio = ProductionCenter::new(42);
//! let clip = studio.capture(&CaptureSpec::video(
//!     "welcome.mpg", MediaFormat::Mpeg,
//!     SimDuration::from_millis(500), VideoDims::new(320, 240)));
//!
//! // 2. Author and compile a course.
//! let mut doc = ImDocument::new("Hello Course");
//! doc.sections.push(Section { title: "s".into(), subsections: vec![Subsection {
//!     title: "ss".into(),
//!     scenes: vec![Scene::new("only")
//!         .element("v", ElementKind::Media((&clip).into()))
//!         .entry(TimelineEntry::at_start("v"))],
//! }]});
//! let compiled = compile_imd(1, &doc);
//!
//! // 3. Deploy and take the course over the simulated ATM network.
//! let mut system = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
//! system.publish(&compiled.objects, studio.catalogue()).unwrap();
//! let mut session = CodSession::open(&mut system, ClientId(0), compiled.root, "Hello Course").unwrap();
//! session.start().unwrap();
//! session.auto_play(SimDuration::from_secs(5)).unwrap();
//! assert!(session.report.completed);
//! ```

pub use mits_atm as atm;
pub use mits_author as author;
pub use mits_core as core;
pub use mits_db as db;
pub use mits_media as media;
pub use mits_mheg as mheg;
pub use mits_navigator as navigator;
pub use mits_school as school;
pub use mits_sim as sim;
