//! Regenerate every table and figure of the MITS evaluation
//! (`DESIGN.md` §4, recorded in `EXPERIMENTS.md`).
//!
//! Usage:
//!   cargo run -p mits-bench --bin tables            # all experiments
//!   cargo run -p mits-bench --bin tables -- --exp e_bb
//!   cargo run -p mits-bench --bin tables -- --exp campus   # scale run,
//!       writes BENCH_campus.json (override path with MITS_CAMPUS_OUT;
//!       size with MITS_CAMPUS_STUDENTS / MITS_CAMPUS_THREADS)
//!   cargo run -p mits-bench --bin tables -- --exp slo      # campus SLO
//!       verdicts (size with MITS_SLO_STUDENTS / MITS_SLO_THREADS;
//!       MITS_SLO_OUT writes the verdict JSON to a file)
//!   cargo run -p mits-bench --bin tables -- --exp shards   # fault-storm
//!       survival gate + edge-cached flash crowd, writes
//!       BENCH_shards.json (override with MITS_SHARDS_OUT; size with
//!       MITS_SHARDS / MITS_SHARDS_STUDENTS / MITS_SHARDS_VICTIM)
//!   cargo run -p mits-bench --bin tables -- --exp forensics # storm
//!       campaign incident bundles + timeline render, writes
//!       BENCH_forensics.json (override with MITS_FORENSICS_OUT; size
//!       with MITS_FORENSICS_STUDENTS / MITS_FORENSICS_SHARDS)
//!   cargo run -p mits-bench --bin tables -- --exp media     # media-path
//!       stage throughput (CRC kernels, AAL5, cell trains vs per-cell,
//!       end-to-end fetch), writes BENCH_media.json (override with
//!       MITS_MEDIA_OUT)

use bytes::Bytes;
use mits_atm::{FaultPlan, LinkFaults, LinkProfile};
use mits_author::compile_hyperdoc;
use mits_bench::{atm_course, one_of_each_class, reuse_course};
use mits_core::models::{compare_delivery_models, reuse_ablation};
use mits_core::stack::layer_breakdown;
use mits_core::stream::{profile_name, stream_audio_over, stream_video_over};
use mits_core::{
    host_cores, Campus, CampusReport, CampusRollup, CampusWorkload, ClientId, CodSession,
    MitsSystem, ReportSink, SessionReport, ShardTrace, SystemConfig,
};
use mits_db::RetryPolicy;
use mits_media::codec::{
    CodecModel, AVI_BITS_PER_SEC, MIDI_BYTES_PER_MIN, MPEG_BITS_PER_SEC, WAV_BYTES_PER_SEC,
};
use mits_media::{MediaFormat, MediaId, MediaObject, VideoDims};
use mits_mheg::{encode_object, MhegEngine, PresentationEvent, WireFormat};
use mits_navigator::PresentationSession;
use mits_school::{simulate_facilitation, FacilitationModel};
use mits_sim::{SimDuration, SimTime};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let filter = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let want = |name: &str| filter.as_deref().is_none_or(|f| f == name);

    if want("t5_1") {
        t5_1();
    }
    if want("f2_4") {
        f2_4();
    }
    if want("f2_6") {
        f2_6();
    }
    if want("f2_9") {
        f2_9();
    }
    if want("f3_2") {
        f3_2();
    }
    if want("f3_5") {
        f3_5();
    }
    if want("f4_3") {
        f4_3();
    }
    if want("f4_4") {
        f4_4();
    }
    if want("f5_x") {
        f5_x();
    }
    if want("e_bb") {
        e_bb();
    }
    if want("e_sidl") {
        e_sidl();
    }
    if want("e_model") {
        e_model();
    }
    if want("e_reuse") {
        e_reuse();
    }
    if want("obs") {
        obs();
    }
    // Scale experiments: opt-in only — campus reports host wall-clock
    // numbers, which would make the default (deterministic) output
    // machine-dependent, and slo runs a whole campus.
    if filter.as_deref() == Some("campus") {
        campus();
    }
    if filter.as_deref() == Some("slo") {
        slo();
    }
    if filter.as_deref() == Some("shards") {
        shards();
    }
    if filter.as_deref() == Some("forensics") {
        forensics();
    }
    if filter.as_deref() == Some("replay") {
        replay();
    }
    if filter.as_deref() == Some("media") {
        media();
    }
}

fn header(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// Table 5.1 + §5.2.2 prose: media formats and measured storage densities.
fn t5_1() {
    header("T5.1", "multimedia file formats and storage densities");
    println!(
        "{:<14} {:<6} {:<8} {:>18} {:>22}",
        "format", "ext", "kind", "model rate", "measured density"
    );
    let minute = SimDuration::from_secs(60);
    for f in MediaFormat::ALL {
        let model = CodecModel::for_format(f);
        let rate = model
            .nominal_bit_rate()
            .map(|r| format!("{:.1} kb/s", r as f64 / 1e3))
            .unwrap_or_else(|| "static".into());
        let density = match f {
            MediaFormat::Wav => {
                let per_sec = model.coded_size(SimDuration::from_secs(1), VideoDims::default());
                format!("{:.1} KB per second", per_sec as f64 / 1024.0)
            }
            MediaFormat::Midi => {
                let per_min = model.coded_size(minute, VideoDims::default());
                format!("{:.1} KB per minute", per_min as f64 / 1024.0)
            }
            MediaFormat::Mpeg | MediaFormat::Avi => {
                let per_min = model.coded_size(minute, VideoDims::new(320, 240));
                format!("{:.1} MB per minute", per_min as f64 / 1048576.0)
            }
            MediaFormat::Gif | MediaFormat::Jpeg => {
                let sz = model.coded_size(SimDuration::ZERO, VideoDims::new(640, 480));
                format!("{:.1} KB per 640x480", sz as f64 / 1024.0)
            }
            _ => "n/a".into(),
        };
        println!(
            "{:<14} .{:<5} {:<8} {:>18} {:>22}",
            f.to_string(),
            f.extension(),
            format!("{:?}", f.kind()),
            rate,
            density
        );
    }
    println!(
        "paper calibration: WAV 11 KB/s = {} B/s model; MIDI 5 KB/min = {} B/min; \
         MPEG {} b/s; AVI {} b/s",
        WAV_BYTES_PER_SEC, MIDI_BYTES_PER_MIN, MPEG_BITS_PER_SEC, AVI_BITS_PER_SEC
    );
}

/// Figure 2.4: the object life cycle — encode(a) → decode(b) → new(c).
fn f2_4() {
    header("F2.4", "MHEG object life cycle: form (a) → (b) → (c)");
    let objects = one_of_each_class(24);
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>8}",
        "class", "wire B", "enc+dec µs", "new(c) µs", "rt?"
    );
    for obj in &objects {
        let reps = 200u32;
        let t0 = std::time::Instant::now();
        let mut wire_len = 0;
        for _ in 0..reps {
            let wire = encode_object(obj, WireFormat::Tlv);
            wire_len = wire.len();
            std::hint::black_box(
                mits_mheg::decode_object(&wire, WireFormat::Tlv).expect("round trip"),
            );
        }
        let codec_us = t0.elapsed().as_micros() as f64 / reps as f64;
        // Form (c): measure `new` on model classes.
        let (new_us, has_rt) = if obj.is_model() {
            let t1 = std::time::Instant::now();
            let mut count = 0u32;
            for _ in 0..reps {
                let mut eng = MhegEngine::new();
                for o in &objects {
                    eng.ingest(o.clone());
                }
                eng.new_rt(obj.id).expect("model object");
                count += 1;
            }
            (t1.elapsed().as_micros() as f64 / count as f64, true)
        } else {
            (0.0, false)
        };
        println!(
            "{:<22} {:>10} {:>12.1} {:>12.1} {:>8}",
            obj.class().to_string(),
            wire_len,
            codec_us,
            new_us,
            if has_rt { "yes" } else { "-" }
        );
    }
}

/// Figure 2.6: the four synchronization mechanisms — scheduled vs actual.
fn f2_6() {
    header(
        "F2.6",
        "synchronization mechanisms: scheduled vs actual start times",
    );
    use mits_media::{CaptureSpec, ProductionCenter};
    use mits_mheg::action::{ActionEntry, ElementaryAction, TargetRef};
    use mits_mheg::sync::{AtomicRelation, SyncMechanism, SyncSpec};
    use mits_mheg::ClassLibrary;

    let mut studio = ProductionCenter::new(26);
    let a_media = studio.capture(&CaptureSpec::audio(
        "a.wav",
        MediaFormat::Wav,
        SimDuration::from_secs(2),
    ));
    let b_media = studio.capture(&CaptureSpec::audio(
        "b.wav",
        MediaFormat::Wav,
        SimDuration::from_secs(2),
    ));

    type SyncCase = (&'static str, SyncMechanism, Vec<(&'static str, u64)>);
    let cases: Vec<SyncCase> = vec![
        (
            "atomic parallel",
            SyncMechanism::Atomic {
                a: TargetRef::Model(mits_mheg::MhegId::new(0, 0)), // patched below
                b: TargetRef::Model(mits_mheg::MhegId::new(0, 0)),
                relation: AtomicRelation::Parallel,
            },
            vec![("a", 0), ("b", 0)],
        ),
        (
            "atomic serial",
            SyncMechanism::Atomic {
                a: TargetRef::Model(mits_mheg::MhegId::new(0, 0)),
                b: TargetRef::Model(mits_mheg::MhegId::new(0, 0)),
                relation: AtomicRelation::Serial,
            },
            vec![("a", 0), ("b", 2_000_000)],
        ),
        (
            "elementary T1=0.5s T2=1.5s",
            SyncMechanism::Elementary {
                a: TargetRef::Model(mits_mheg::MhegId::new(0, 0)),
                t1: SimDuration::from_millis(500),
                b: TargetRef::Model(mits_mheg::MhegId::new(0, 0)),
                t2: SimDuration::from_millis(1500),
            },
            vec![("a", 500_000), ("b", 1_500_000)],
        ),
        (
            "chained a→b",
            SyncMechanism::Chained { sequence: vec![] },
            vec![("a", 0), ("b", 2_000_000)],
        ),
    ];

    println!(
        "{:<28} {:<8} {:>14} {:>14} {:>8}",
        "mechanism", "object", "scheduled µs", "actual µs", "skew µs"
    );
    for (name, mech, expected) in cases {
        let mut lib = ClassLibrary::new(260);
        let a = lib.media_content(&a_media, (0, 0));
        let b = lib.media_content(&b_media, (0, 0));
        let mech = match mech {
            SyncMechanism::Atomic { relation, .. } => SyncMechanism::Atomic {
                a: TargetRef::Model(a),
                b: TargetRef::Model(b),
                relation,
            },
            SyncMechanism::Elementary { t1, t2, .. } => SyncMechanism::Elementary {
                a: TargetRef::Model(a),
                t1,
                b: TargetRef::Model(b),
                t2,
            },
            SyncMechanism::Chained { .. } => SyncMechanism::Chained {
                sequence: vec![TargetRef::Model(a), TargetRef::Model(b)],
            },
            other => other,
        };
        let scene = lib.composite("scene", vec![a, b], vec![], vec![SyncSpec::new(mech)]);
        let mut eng = MhegEngine::new();
        for o in lib.into_objects() {
            eng.ingest(o);
        }
        eng.new_rt(scene).unwrap();
        eng.apply_entry(&ActionEntry::now(
            TargetRef::Model(scene),
            vec![ElementaryAction::Run],
        ))
        .unwrap();
        eng.advance(SimTime::from_secs(10)).unwrap();
        let a_rt = eng.rt_of_model(a);
        let b_rt = eng.rt_of_model(b);
        let events = eng.take_events();
        for (label, model_rt, (_, scheduled)) in
            [("a", a_rt, expected[0]), ("b", b_rt, expected[1])]
        {
            let actual = events.iter().find_map(|e| match e {
                PresentationEvent::Started { rt, at } if Some(*rt) == model_rt => {
                    Some(at.as_micros())
                }
                _ => None,
            });
            match actual {
                Some(at) => println!(
                    "{:<28} {:<8} {:>14} {:>14} {:>8}",
                    name,
                    label,
                    scheduled,
                    at,
                    at as i64 - scheduled as i64
                ),
                None => println!("{name:<28} {label:<8} {scheduled:>14} {:>14}", "never"),
            }
        }
    }
    // Cyclic separately: repetition instants.
    let mut lib = mits_mheg::ClassLibrary::new(261);
    let a = lib.media_content(&a_media, (0, 0));
    let scene = lib.composite(
        "loop",
        vec![a],
        vec![],
        vec![SyncSpec::new(SyncMechanism::Cyclic {
            target: TargetRef::Model(a),
            period: SimDuration::from_secs(3),
            repetitions: Some(3),
        })],
    );
    let mut eng = MhegEngine::new();
    for o in lib.into_objects() {
        eng.ingest(o);
    }
    eng.new_rt(scene).unwrap();
    eng.apply_entry(&ActionEntry::now(
        TargetRef::Model(scene),
        vec![ElementaryAction::Run],
    ))
    .unwrap();
    eng.advance(SimTime::from_secs(20)).unwrap();
    let starts: Vec<u64> = eng
        .take_events()
        .iter()
        .filter_map(|e| match e {
            PresentationEvent::Started { rt, at } if Some(*rt) == eng.rt_of_model(a) => {
                Some(at.as_micros())
            }
            _ => None,
        })
        .collect();
    println!("cyclic period=3s reps=3          starts at µs: {starts:?} (scheduled 0, 3e6, 6e6)");
}

/// Figure 2.9: interchange codecs — size and speed, TLV vs SGML.
fn f2_9() {
    header("F2.9", "interchange codecs: TLV (ASN.1 role) vs SGML");
    let objects = one_of_each_class(29);
    println!(
        "{:<22} {:>9} {:>9} {:>8} {:>12} {:>12}",
        "class", "TLV B", "SGML B", "ratio", "TLV µs", "SGML µs"
    );
    for obj in &objects {
        let tlv = encode_object(obj, WireFormat::Tlv);
        let sgml = encode_object(obj, WireFormat::Sgml);
        let reps = 200;
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            std::hint::black_box(mits_mheg::decode_object(
                &encode_object(obj, WireFormat::Tlv),
                WireFormat::Tlv,
            ))
            .unwrap();
        }
        let tlv_us = t0.elapsed().as_micros() as f64 / reps as f64;
        let t1 = std::time::Instant::now();
        for _ in 0..reps {
            std::hint::black_box(mits_mheg::decode_object(
                &encode_object(obj, WireFormat::Sgml),
                WireFormat::Sgml,
            ))
            .unwrap();
        }
        let sgml_us = t1.elapsed().as_micros() as f64 / reps as f64;
        println!(
            "{:<22} {:>9} {:>9} {:>8.2} {:>12.1} {:>12.1}",
            obj.class().to_string(),
            tlv.len(),
            sgml.len(),
            sgml.len() as f64 / tlv.len() as f64,
            tlv_us,
            sgml_us
        );
    }
}

/// Figure 3.2: per-layer cost of one object interchange.
fn f3_2() {
    header("F3.2", "layered interchange model: where the time goes");
    let (compiled, media, _) = atm_course(32);
    let container = compiled
        .objects
        .iter()
        .find(|o| o.id == compiled.root)
        .expect("container exists");
    let content_bytes: u64 = media.iter().map(|m| m.data.len() as u64).sum();
    for profile in [LinkProfile::atm_oc3(), LinkProfile::isdn_128k()] {
        println!("-- access link: {} --", profile_name(&profile));
        let rows = layer_breakdown(container, content_bytes, &profile);
        for r in &rows {
            println!(
                "  {:<32} {:>14} ({})",
                r.layer,
                r.cost.to_string(),
                r.method
            );
        }
    }
}

/// Figure 3.5: client-server scalability sweep — all clients fetch the
/// courseware *simultaneously*; the single server and shared backbone
/// serialize them.
fn f3_5() {
    header(
        "F3.5",
        "client-server model: fetch latency vs concurrent clients",
    );
    let (compiled, media, _) = atm_course(35);
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>12}",
        "clients", "mean latency", "min", "max", "server reqs"
    );
    for &n in &[1usize, 2, 4, 8, 16, 32] {
        let mut sys = MitsSystem::build(&SystemConfig::broadband(n)).unwrap();
        sys.load_directly(compiled.objects.clone(), media.clone());
        let clients: Vec<ClientId> = (0..n).map(ClientId).collect();
        let latencies = sys
            .concurrent_fetch_courseware(&clients, compiled.root)
            .unwrap();
        let mean: f64 = latencies.iter().map(|d| d.as_secs_f64()).sum::<f64>() / n as f64;
        let min = latencies.iter().min().unwrap();
        let max = latencies.iter().max().unwrap();
        println!(
            "{:<10} {:>12.2}ms {:>14} {:>14} {:>12}",
            n,
            mean * 1e3,
            min.to_string(),
            max.to_string(),
            *sys.db().requests_served.read()
        );
    }
}

/// Figure 4.3: hypermedia navigation trace.
fn f4_3() {
    header("F4.3", "hypermedia document model: navigation trace");
    let doc = mits_author::HyperDocument::figure_4_3_example();
    let compiled = compile_hyperdoc(43, &doc);
    let mut p =
        PresentationSession::load(compiled.objects.clone(), "Fig 4.3 navigation example").unwrap();
    p.start().unwrap();
    let script = [
        ("(start)", None),
        ("Test Your Knowledge", Some("Test Your Knowledge")),
        ("48 bytes (wrong)", Some("48 bytes")),
        ("Try again", Some("Try again")),
        ("53 bytes (right)", Some("53 bytes")),
        ("Continue", Some("Continue")),
    ];
    println!("{:<26} {:>6} {:<20}", "action", "page", "page title");
    for (label, click) in script {
        if let Some(c) = click {
            p.click(c).unwrap();
        }
        let unit = p.current_unit().unwrap();
        println!("{:<26} {:>6} {:<20}", label, unit, compiled.units[unit].0);
    }
}

/// Figure 4.4: the interactive multimedia document timeline.
fn f4_4() {
    header(
        "F4.4",
        "interactive multimedia document: timeline with preemption",
    );
    let (compiled, media, name) = atm_course(44);
    let mut sys = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
    sys.load_directly(compiled.objects.clone(), media);
    let mut session = CodSession::open(&mut sys, ClientId(0), compiled.root, name).unwrap();
    session.start().unwrap();
    println!("t=0.0s  scene1 starts; visible: {:?}", names(&session));
    session.play(SimDuration::from_secs(1)).unwrap();
    session.click("show image now").unwrap();
    println!(
        "t=1.0s  choice1 clicked (before t2=4s): {:?}",
        names(&session)
    );
    session.play(SimDuration::from_millis(500)).unwrap();
    session.click("stop").unwrap();
    println!(
        "t=1.5s  stop clicked → audio1/text1/image1 stopped, unit {:?}",
        session.current_unit()
    );
    session.auto_play(SimDuration::from_secs(10)).unwrap();
    println!(
        "course completed={} startup={} stalls={}",
        session.report.completed,
        session.report.startup(),
        session.report.stalls.len()
    );
}

fn names(session: &CodSession<'_>) -> Vec<String> {
    session
        .presentation()
        .visible()
        .into_iter()
        .map(|v| v.name)
        .collect()
}

/// Figures 5.3–5.7: the sample learning session step trace.
fn f5_x() {
    header("F5.3-5.7", "sample learning session step trace");
    use mits_navigator::{NavigatorUi, UiEvent, UiOutcome};
    use mits_school::{Course, CourseCode, StudentRegistry};
    let (compiled, media, name) = atm_course(55);
    let mut school = StudentRegistry::new();
    school.add_program("Telecommunications");
    school
        .add_course(Course {
            code: CourseCode("TEL101".into()),
            name: name.into(),
            program: "Telecommunications".into(),
            planned_sessions: 3,
            courseware: Some(compiled.root),
        })
        .unwrap();
    let mut sys = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
    sys.load_directly(compiled.objects.clone(), media);
    let mut ui = NavigatorUi::new();
    ui.handle(UiEvent::ClickRegister, &mut school);
    ui.handle(
        UiEvent::SubmitGeneralInfo {
            name: "Sample Student".into(),
            address: "Ottawa".into(),
            email: "s@uottawa.ca".into(),
        },
        &mut school,
    );
    ui.handle(
        UiEvent::SelectCourse(CourseCode("TEL101".into())),
        &mut school,
    );
    let UiOutcome::Registered(number) = ui.handle(UiEvent::FinishRegistration, &mut school) else {
        panic!()
    };
    ui.handle(
        UiEvent::OpenClassroom(CourseCode("TEL101".into())),
        &mut school,
    );
    let mut session = CodSession::open(&mut sys, ClientId(0), compiled.root, name).unwrap();
    session.start().unwrap();
    session.play(SimDuration::from_secs(1)).unwrap();
    let stop_unit = session.current_unit().unwrap() as u32;
    school
        .record_session(number, &CourseCode("TEL101".into()), Some(stop_unit))
        .unwrap();
    ui.handle(UiEvent::Back, &mut school);
    ui.handle(UiEvent::OpenAdministration, &mut school);
    ui.handle(
        UiEvent::SubmitProfile {
            address: Some("75 Laurier Ave E".into()),
            email: None,
        },
        &mut school,
    );
    ui.handle(UiEvent::OpenLibrary, &mut school);
    ui.handle(UiEvent::Back, &mut school);
    ui.handle(UiEvent::Exit, &mut school);
    for (i, line) in ui.log.iter().enumerate() {
        println!("{i:>3}. {line}");
    }
    println!(
        "resume position saved: unit {:?}",
        school
            .resume_position(number, &CourseCode("TEL101".into()))
            .unwrap()
    );
}

/// E-BB: courseware streaming over the four infrastructures.
fn e_bb() {
    header(
        "E-BB",
        "broadband vs narrowband: streamed MPEG course clip (30 s, 1.5 Mb/s, 1 s prebuffer)",
    );
    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>10} {:>12} {:>10}",
        "link", "frames", "lost", "late", "playable", "mean CTD ms", "CLR"
    );
    let profiles = [
        LinkProfile::atm_oc3(),
        LinkProfile::lan_10m(),
        LinkProfile::isdn_128k(),
        LinkProfile::modem_28_8k(),
    ];
    for p in profiles {
        let r = stream_video_over(
            p,
            SimDuration::from_secs(30),
            1_500_000,
            SimDuration::from_secs(1),
            1996,
        );
        println!(
            "{:<18} {:>8} {:>8} {:>8} {:>9.1}% {:>12.3} {:>10.2e}",
            profile_name(&p),
            r.frames,
            r.lost,
            r.late,
            r.playable * 100.0,
            r.mean_ctd * 1e3,
            r.clr
        );
    }
    println!("\naudio row (WAV-rate 90 kb/s, 1 s prebuffer):");
    for p in [LinkProfile::isdn_128k(), LinkProfile::modem_28_8k()] {
        let r = stream_audio_over(
            p,
            SimDuration::from_secs(30),
            90_112,
            SimDuration::from_secs(1),
            1996,
        );
        println!(
            "{:<18} playable {:>6.1}%  (audio fits ISDN but not a modem)",
            profile_name(&p),
            r.playable * 100.0
        );
    }
}

/// E-SIDL: facilitation waiting times.
fn e_sidl() {
    header("E-SIDL", "on-demand facilitation vs SIDL telephone queue");
    let arrival = SimDuration::from_secs(1200);
    let service = SimDuration::from_secs(120);
    let n = 2000;
    println!("load: one question per {arrival}, {service} answers, n={n}");
    println!(
        "{:<36} {:>12} {:>12} {:>10}",
        "model", "mean wait", "p95", "answered"
    );
    let models: [(&str, FacilitationModel); 3] = [
        (
            "MITS on-line, 2 facilitators",
            FacilitationModel::MitsOnline { facilitators: 2 },
        ),
        (
            "MITS on-line, 4 facilitators",
            FacilitationModel::MitsOnline { facilitators: 4 },
        ),
        (
            "SIDL 3 lines, 1 h/day broadcast",
            FacilitationModel::SidlBroadcast {
                lines: 3,
                window: SimDuration::from_secs(3600),
                period: SimDuration::from_secs(24 * 3600),
            },
        ),
    ];
    for (name, model) in models {
        let r = simulate_facilitation(model, arrival, service, n, 1996);
        println!(
            "{:<36} {:>11.0}s {:>11.0}s {:>10}",
            name,
            r.wait.mean(),
            r.histogram.quantile(0.95).unwrap_or(0.0),
            r.answered
        );
    }
}

/// E-MODEL: the three delivery infrastructures.
fn e_model() {
    header("E-MODEL", "broadcast vs CD-ROM vs network COD");
    // Measure the real COD fetch on the broadband system.
    let (compiled, media, name) = atm_course(57);
    let mut sys = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
    sys.load_directly(compiled.objects.clone(), media);
    let mut session = CodSession::open(&mut sys, ClientId(0), compiled.root, name).unwrap();
    session.start().unwrap();
    let cod_fetch = session.report.startup();
    let rows = compare_delivery_models(
        SimDuration::from_secs(7 * 24 * 3600),
        SimDuration::from_secs(3 * 24 * 3600),
        cod_fetch,
        1996,
    );
    println!(
        "{:<22} {:>18} {:>14} {:>12} {:>10}",
        "model", "time to content", "interaction", "staleness", "learner-led"
    );
    for r in rows {
        println!(
            "{:<22} {:>18} {:>14} {:>9} d {:>10}",
            r.model,
            r.time_to_content.to_string(),
            r.interaction
                .map(|d| d.to_string())
                .unwrap_or_else(|| "none".into()),
            r.freshness_days,
            if r.learner_controlled { "yes" } else { "no" }
        );
    }
}

/// OBS: the observability subsystem — one lossy Course-On-Demand
/// session's latency waterfall, and the metrics every layer registered.
fn obs() {
    header("OBS", "CodSession latency waterfall + metrics registry");
    let (compiled, media, name) = atm_course(61);
    let cfg = SystemConfig::broadband(1)
        .with_retry(RetryPolicy::interactive().with_deadline(SimDuration::from_secs(60)));
    let mut sys = MitsSystem::build(&cfg).unwrap();
    let student = sys.client_host(ClientId(0));
    sys.net.set_fault_plan(FaultPlan::none().with_link(
        student,
        sys.switch(),
        LinkFaults::loss(0.20),
    ));
    sys.load_directly(compiled.objects.clone(), media);
    let mut session = CodSession::open(&mut sys, ClientId(0), compiled.root, name).unwrap();
    session.start().unwrap();
    session.auto_play(SimDuration::from_secs(10)).unwrap();
    session.finish();
    let root = session.root_span();
    drop(session);
    println!("-- waterfall (offset, duration, span) --");
    print!("{}", sys.tracer.waterfall(root));
    println!("-- profile (self-time fold of the span tree) --");
    print!("{}", mits_sim::profile_tracer(&sys.tracer).render_top(10));
    println!("-- metrics --");
    print!("{}", sys.metrics.to_text());
}

/// E-REUSE: the content-storage ablation.
fn e_reuse() {
    header(
        "E-REUSE",
        "separate content + reuse vs embedded content (2 sessions, shared media)",
    );
    let (compiled, media, name) = reuse_course(58);
    let reports = reuse_ablation(
        &compiled.objects,
        &media,
        compiled.root,
        name,
        LinkProfile::atm_oc3(),
        2,
    )
    .unwrap();
    println!(
        "{:<34} {:>14} {:>14}",
        "policy", "bytes to user", "fetch time"
    );
    let baseline = reports[0].bytes.max(1);
    for r in &reports {
        println!(
            "{:<34} {:>14} {:>14}   ({:.2}x)",
            r.policy.name(),
            r.bytes,
            r.fetch_time.to_string(),
            r.bytes as f64 / baseline as f64
        );
    }
}

/// Seed-tree throughput of the 200 KB fetch microbench (KB/s), measured
/// with `fetch_microbench` below on the pre-zero-copy code at the same
/// commit this experiment was introduced. Kept as the "before" figure in
/// `BENCH_campus.json` so the speedup is visible without rebuilding the
/// old tree.
const FETCH200K_KBPS_SEED: f64 = 27_104.7;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A campus courseware: one tiny scenario closure plus `clips` MPEG
/// objects of `clip_bytes` each — the "content objects of large size"
/// (§3.4.2) that dominate the wire.
fn campus_workload(clips: usize, clip_bytes: usize) -> CampusWorkload {
    use mits_mheg::{ClassLibrary, GenericValue};
    let mut lib = ClassLibrary::new(1);
    let v = lib.value_content("v", GenericValue::Int(1));
    let root = lib.container("Course", vec![v]);
    let media = (0..clips)
        .map(|i| {
            let data: Vec<u8> = (0..clip_bytes)
                .map(|j| ((i * 31 + j * 7) % 251) as u8)
                .collect();
            MediaObject::new(
                MediaId(1000 + i as u64),
                format!("clip{i}.mpg"),
                MediaFormat::Mpeg,
                SimDuration::from_secs(1),
                VideoDims::new(320, 240),
                Bytes::from(data),
            )
        })
        .collect();
    CampusWorkload {
        objects: lib.into_objects(),
        media,
        root,
    }
}

/// Wall-clock throughput of single-seat 200 KB media fetches through the
/// full client → ATM → server → ATM → client stack. Returns KB/s.
fn fetch_microbench() -> f64 {
    let w = campus_workload(32, 200 * 1024);
    let mut sys = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
    sys.load_directly(w.objects, w.media);
    // Warmup fetch excluded from timing (first fetch pays setup costs).
    let _ = sys.fetch_content(ClientId(0), MediaId(1000)).unwrap();
    let t0 = std::time::Instant::now();
    let mut total = 0usize;
    for i in 1..32u64 {
        let (m, _) = sys.fetch_content(ClientId(0), MediaId(1000 + i)).unwrap();
        total += m.data.len();
    }
    total as f64 / 1024.0 / t0.elapsed().as_secs_f64()
}

/// Wall-clock throughput of `f` in MB/s: warm up once, then repeat for
/// ~200 ms of wall time.
fn stage_mbps(bytes_per_iter: usize, mut f: impl FnMut()) -> f64 {
    f();
    let t0 = std::time::Instant::now();
    let mut iters = 0usize;
    while t0.elapsed() < std::time::Duration::from_millis(200) {
        f();
        iters += 1;
    }
    (bytes_per_iter * iters) as f64 / t0.elapsed().as_secs_f64() / 1e6
}

/// Throughput of a 200 KB PDU crossing host → switch → host on OC-3,
/// with the cell-train fast path either engaged or forced off.
fn net_stage_mbps(per_cell: bool) -> f64 {
    use mits_atm::{AtmNetwork, ServiceClass};
    const BYTES: usize = 200 * 1024;
    let payload = Bytes::from(vec![7u8; BYTES]);
    let mut scratch = mits_atm::NetScratch::default();
    stage_mbps(BYTES, || {
        let mut net = AtmNetwork::with_scratch(1, std::mem::take(&mut scratch));
        if per_cell {
            net.force_per_cell();
        }
        let a = net.add_host("A");
        let s = net.add_switch("S");
        let b = net.add_host("B");
        net.connect(a, s, LinkProfile::atm_oc3());
        net.connect(s, b, LinkProfile::atm_oc3());
        let vc = net.open_vc(&[a, s, b], ServiceClass::Ubr, None).unwrap();
        net.send(vc, payload.clone()).unwrap();
        let d = net.drain(SimTime::from_secs(60));
        assert_eq!(d.len(), 1, "200 KB PDU must cross");
        scratch = net.into_scratch();
    })
}

/// MEDIA: per-stage throughput of the media path — the CRC kernels, AAL5
/// segmentation/reassembly, the cell-train network fast path against the
/// per-cell scheduler, and the end-to-end 200 KB fetch. Writes
/// `BENCH_media.json` so `check.sh` can validate the stage names the
/// flame profiler attributes time to.
fn media() {
    use mits_atm::aal5;
    header("MEDIA", "media-path stage throughput");
    let out = std::env::var("MITS_MEDIA_OUT").unwrap_or_else(|_| "BENCH_media.json".into());
    let buf: Vec<u8> = (0..1 << 20).map(|i| (i * 31 % 251) as u8).collect();
    let crc_slice8 = stage_mbps(buf.len(), || {
        std::hint::black_box(aal5::crc32_slice8(std::hint::black_box(&buf)));
    });
    let crc_slice16 = stage_mbps(buf.len(), || {
        std::hint::black_box(aal5::crc32_slice16(std::hint::black_box(&buf)));
    });
    // The dispatching entry point: the SIMD path when the host supports
    // it (and its self-check passed), slice-by-16 otherwise.
    let crc_dispatch = stage_mbps(buf.len(), || {
        std::hint::black_box(aal5::crc32(std::hint::black_box(&buf)));
    });
    let segment = {
        let payload = vec![3u8; 200 * 1024];
        let mut pool = Vec::new();
        stage_mbps(payload.len(), || {
            std::hint::black_box(aal5::segment_run_pooled(&payload, &mut pool));
        })
    };
    let reassemble = {
        let payload = vec![3u8; 200 * 1024];
        let run = aal5::segment_run(&payload);
        stage_mbps(payload.len(), || {
            std::hint::black_box(aal5::reassemble_run(&run.payload).unwrap());
        })
    };
    let net_train = net_stage_mbps(false);
    let net_per_cell = net_stage_mbps(true);
    let fetch_kbps = fetch_microbench();
    let json = format!(
        "{{\n  \"experiment\": \"media\",\n  \"crc_hw_accelerated\": {},\n  \"crc_slice8_mbps\": {:.1},\n  \"crc_slice16_mbps\": {:.1},\n  \"crc_dispatch_mbps\": {:.1},\n  \"segment_mbps\": {:.1},\n  \"reassemble_mbps\": {:.1},\n  \"net_train_mbps\": {:.1},\n  \"net_per_cell_mbps\": {:.1},\n  \"train_speedup\": {:.2},\n  \"fetch200k_kbps\": {:.1}\n}}\n",
        aal5::crc32_is_hw_accelerated(),
        crc_slice8,
        crc_slice16,
        crc_dispatch,
        segment,
        reassemble,
        net_train,
        net_per_cell,
        net_train / net_per_cell.max(1e-9),
        fetch_kbps,
    );
    std::fs::write(&out, &json).expect("write BENCH_media.json");
    print!("{json}");
    println!("wrote {out}");
}

/// Resident-set high-water mark of this process, in MB (0.0 when
/// `/proc` is unavailable).
fn peak_rss_mb() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<f64>().ok())
        })
        .map(|kb| kb / 1024.0)
        .unwrap_or(0.0)
}

/// The bench's [`ReportSink`]: folds the streaming campus output into a
/// [`CampusReport`] and writes `BENCH_campus.json` from the rollup
/// callback — the JSON is produced by the stream, not plucked out of a
/// buffered report afterwards.
struct BenchJsonSink {
    report: CampusReport,
    out: String,
    clips: usize,
    clip_bytes: usize,
    serial: CampusReport,
    fetch_kbps: f64,
    host_cores: usize,
}

impl ReportSink for BenchJsonSink {
    fn session(&mut self, report: &SessionReport) {
        self.report.session(report);
    }

    fn trace(&mut self, trace: &ShardTrace) {
        self.report.trace(trace);
    }

    fn rollup(&mut self, rollup: &CampusRollup) {
        self.report.rollup(rollup);
        let speedup = self.serial.wall_secs / rollup.wall_secs.max(1e-9);
        let json = format!(
            "{{\n  \"experiment\": \"campus\",\n  \"students\": {},\n  \"threads\": {},\n  \"host_cores\": {},\n  \"max_concurrent\": {},\n  \"peak_rss_mb\": {:.1},\n  \"base_seed\": 42,\n  \"clips_per_student\": {},\n  \"clip_bytes\": {},\n  \"digest\": \"0x{:016x}\",\n  \"digest_match_1_vs_n_threads\": {},\n  \"metrics_match_1_vs_n_threads\": {},\n  \"traces_sampled\": {},\n  \"slo_breaches\": {},\n  \"bytes_simulated\": {},\n  \"wall_secs_1_thread\": {:.4},\n  \"wall_secs_n_threads\": {:.4},\n  \"speedup_n_over_1\": {:.3},\n  \"students_per_sec\": {:.2},\n  \"bytes_per_sec\": {:.1},\n  \"session_ms_p50\": {:.3},\n  \"session_ms_p99\": {:.3},\n  \"shard_wall_ms_p50\": {:.3},\n  \"shard_wall_ms_p99\": {:.3},\n  \"fetch200k_kbps_seed\": {:.1},\n  \"fetch200k_kbps_now\": {:.1},\n  \"fetch200k_speedup\": {:.2}\n}}\n",
            rollup.students,
            rollup.threads,
            self.host_cores,
            rollup.max_concurrent,
            peak_rss_mb(),
            self.clips,
            self.clip_bytes,
            rollup.digest,
            self.serial.digest == rollup.digest,
            self.serial.metrics.to_json() == rollup.metrics.to_json(),
            self.report.traces.len(),
            rollup.slo.breaches(),
            rollup.bytes,
            self.serial.wall_secs,
            rollup.wall_secs,
            speedup,
            rollup.students as f64 / rollup.wall_secs.max(1e-9),
            rollup.bytes as f64 / rollup.wall_secs.max(1e-9),
            self.report.session_percentile(0.50) * 1e3,
            self.report.session_percentile(0.99) * 1e3,
            self.report.wall_percentile(0.50) * 1e3,
            self.report.wall_percentile(0.99) * 1e3,
            FETCH200K_KBPS_SEED,
            self.fetch_kbps,
            self.fetch_kbps / FETCH200K_KBPS_SEED
        );
        std::fs::write(&self.out, json).expect("write campus bench json");
    }
}

fn campus() {
    header(
        "CAMPUS",
        "memory-bounded campus: streaming session lifecycle over work-stealing shards",
    );
    let cores = host_cores();
    let students = env_usize("MITS_CAMPUS_STUDENTS", 10_000);
    // On a single-core host the parallel leg still runs 2 threads so the
    // determinism claim ("1 vs N") is exercised for real.
    let threads = env_usize("MITS_CAMPUS_THREADS", cores.max(2));
    let clips = env_usize("MITS_CAMPUS_CLIPS", 2);
    let clip_bytes = env_usize("MITS_CAMPUS_CLIP_BYTES", 64 * 1024);
    let max_concurrent = env_usize("MITS_CAMPUS_MAX_CONCURRENT", 0);
    // Flight-recorder ring cap; 0 keeps the library default. The ring
    // never reaches the digest, so this is safe to vary per run.
    let flight_ring = env_usize("MITS_FLIGHT_RING", 0);
    let out = std::env::var("MITS_CAMPUS_OUT").unwrap_or_else(|_| "BENCH_campus.json".into());

    let fetch_kbps = fetch_microbench();
    println!(
        "200KB fetch:  {FETCH200K_KBPS_SEED:.1} KB/s seed -> {:.1} KB/s now ({:.2}x)",
        fetch_kbps,
        fetch_kbps / FETCH200K_KBPS_SEED
    );

    let workload = campus_workload(clips, clip_bytes);
    let serial = Campus::new(students, 42)
        .threads(1)
        .max_concurrent(max_concurrent)
        .flight_ring(flight_ring)
        .workload(workload.clone())
        .run()
        .unwrap();
    let mut sink = BenchJsonSink {
        report: CampusReport::new(),
        out: out.clone(),
        clips,
        clip_bytes,
        serial,
        fetch_kbps,
        host_cores: cores,
    };
    Campus::new(students, 42)
        .threads(threads)
        .max_concurrent(max_concurrent)
        .flight_ring(flight_ring)
        .workload(workload)
        .run_with(&mut sink)
        .unwrap();
    let (serial, parallel) = (&sink.serial, &sink.report);
    assert_eq!(
        serial.digest, parallel.digest,
        "campus digest must not depend on thread count"
    );
    assert_eq!(
        serial.metrics.to_json(),
        parallel.metrics.to_json(),
        "merged metrics rollup must not depend on thread count"
    );

    let speedup = serial.wall_secs / parallel.wall_secs.max(1e-9);
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>10}",
        "run", "threads", "wall", "students/s", "MB/s"
    );
    for r in [serial, parallel] {
        println!(
            "{:<22} {:>10} {:>10.3}s {:>12.1} {:>10.1}",
            format!("{} students", r.students),
            r.threads,
            r.wall_secs,
            r.students_per_sec(),
            r.bytes_per_sec() / (1024.0 * 1024.0)
        );
    }
    println!(
        "digest 0x{:016x} identical on 1 and {} threads; {speedup:.2}x on {} core(s); \
         window {}; peak RSS {:.1} MB",
        parallel.digest,
        parallel.threads,
        cores,
        parallel.max_concurrent,
        peak_rss_mb()
    );
    println!("wrote {out}");
}

/// SLO: run a small campus, judge the merged metrics rollup against the
/// default objectives, and emit the machine-readable verdicts. Opt-in
/// (`--exp slo`). The last stdout line is the verdict JSON; set
/// `MITS_SLO_OUT` to also write it to a file for CI parsing.
fn slo() {
    header(
        "SLO",
        "campus objectives judged on the merged metrics rollup",
    );
    let students = env_usize("MITS_SLO_STUDENTS", 16);
    let threads = env_usize("MITS_SLO_THREADS", 4);
    let clips = env_usize("MITS_SLO_CLIPS", 2);
    let workload = campus_workload(clips, 64 * 1024);
    let report = Campus::new(students, 42)
        .threads(threads)
        .workload(workload)
        .run()
        .unwrap();
    println!(
        "{:<22} {:>12} {:>10} {:>10}  verdict",
        "objective", "observed", "warn", "breach"
    );
    for o in &report.slo.outcomes {
        println!(
            "{:<22} {:>12.6} {:>10.3} {:>10.3}  {}",
            o.name,
            o.observed,
            o.warn,
            o.breach,
            o.verdict.as_str()
        );
    }
    println!(
        "traces sampled: {} of {} students ({} anomalous)",
        report.traces.len(),
        report.students,
        report.sessions_anomalous
    );
    let json = report.slo.to_json();
    if let Ok(out) = std::env::var("MITS_SLO_OUT") {
        std::fs::write(&out, format!("{json}\n")).expect("write slo json");
        println!("wrote {out}");
    }
    println!("{json}");
}

/// SHARDS: the partitioned store's survival gate. Runs a seeded fault
/// storm (victim shard's primary + replica crash mid-session behind a
/// shard-wide link outage) against its storm-free twin and checks the
/// blast radius — only victim-keyed sessions degrade, healthy sessions
/// stay byte-identical — plus seed determinism and the storm SLOs.
/// Then measures a hot-document flash crowd with and without the
/// campus-edge cache to bound origin load. Opt-in (`--exp shards`);
/// writes `BENCH_shards.json` (override with `MITS_SHARDS_OUT`).
fn shards() {
    use mits_core::{fault_storm_slos, sharded_workloads, FaultStorm};

    header(
        "SHARDS",
        "partitioned store: fault-storm blast radius + edge-cached flash crowd",
    );
    let shards = env_usize("MITS_SHARDS", 3).max(2);
    let students = env_usize("MITS_SHARDS_STUDENTS", 9);
    let victim = env_usize("MITS_SHARDS_VICTIM", 1) % shards;
    let clip_bytes = env_usize("MITS_SHARDS_CLIP_BYTES", 300_000);
    let flash_clients = env_usize("MITS_SHARDS_FLASH_CLIENTS", 8);
    let seed = env_usize("MITS_SHARDS_SEED", 42) as u64;
    let out = std::env::var("MITS_SHARDS_OUT").unwrap_or_else(|_| "BENCH_shards.json".into());

    let workloads = sharded_workloads(shards, 2, clip_bytes);
    let storm = FaultStorm::new(
        shards,
        victim,
        SimTime::from_millis(2),
        SimTime::from_secs(120),
    );
    // Every session is keyed to workloads[student % shards]; the storm's
    // failure budget is exactly the victim residue class's share.
    let on_victim = (0..students).filter(|s| s % shards == victim).count();

    /// Per-session outcomes in student order plus the rollup verdicts.
    #[derive(Default)]
    struct StormSink {
        outcomes: Vec<(usize, u64, bool)>,
        breaches: usize,
        digest: u64,
        metrics_json: String,
        slo_json: String,
    }
    impl ReportSink for StormSink {
        fn session(&mut self, r: &SessionReport) {
            self.outcomes
                .push((r.student, r.digest, r.failed || r.anomalous));
        }
        fn rollup(&mut self, rollup: &CampusRollup) {
            self.breaches = rollup.slo.breaches();
            self.digest = rollup.digest;
            self.metrics_json = rollup.metrics.to_json();
            self.slo_json = rollup.slo.to_json();
        }
    }

    let run = |seed: u64, stormy: bool| {
        let s = storm.clone();
        let mut sink = StormSink::default();
        Campus::new(students, seed)
            .threads(2)
            .workloads(workloads.clone())
            .slos(fault_storm_slos(on_victim as f64 / students as f64))
            .configure_sessions(move |_, base| {
                if stormy {
                    s.apply(base)
                } else {
                    s.apply_calm(base)
                }
            })
            .run_with(&mut sink)
            .unwrap();
        sink
    };
    let hit = run(seed, true);
    let replay = run(seed, true);
    let twin = run(seed, false);

    let mut degraded_on_victim = 0usize;
    let mut healthy_clean = true;
    let mut healthy_digest_match = true;
    for (&(s, d, bad), &(_, td, _)) in hit.outcomes.iter().zip(&twin.outcomes) {
        if s % shards == victim {
            degraded_on_victim += usize::from(bad);
        } else {
            healthy_clean &= !bad;
            healthy_digest_match &= d == td;
        }
    }
    let storm_deterministic =
        hit.digest == replay.digest && hit.metrics_json == replay.metrics_json;
    let slo_breaches = hit.breaches + twin.breaches;

    println!(
        "storm seed {seed}: {degraded_on_victim}/{on_victim} victim sessions degraded; \
         healthy clean {healthy_clean}, digests match twin {healthy_digest_match}, \
         deterministic {storm_deterministic}, SLO breaches {slo_breaches}"
    );
    println!("{}", hit.slo_json);

    // The flash crowd: every client fetches the same hot clip. With the
    // edge tier the origin serves it once; without, every client pays.
    let flash = |edge_bytes: usize| {
        let cfg = SystemConfig::broadband(flash_clients)
            .with_shards(shards)
            .with_edge_cache(edge_bytes);
        let mut sys = MitsSystem::build(&cfg).unwrap();
        for w in &workloads {
            sys.load_doc(&w.objects, &w.media, w.root);
        }
        let hot = workloads[0].media[0].id;
        for c in 0..flash_clients {
            sys.fetch_content(ClientId(c), hot).unwrap();
        }
        sys
    };
    let warm = flash(4 << 20);
    let cold = flash(0);
    let edge = warm.edge_cache().expect("edge tier configured");
    let cache_hit_rate = edge.hits as f64 / edge.lookups().max(1) as f64;
    let origin_bound_ok = edge.origin_requests <= edge.misses + edge.invalidations;
    println!(
        "flash crowd of {flash_clients}: origin {} -> {} requests with the edge \
         ({:.1}% hit rate; bound origin <= misses + invalidations: {origin_bound_ok})",
        cold.requests_sent,
        edge.origin_requests,
        cache_hit_rate * 100.0
    );

    let json = format!(
        "{{\n  \"experiment\": \"shards\",\n  \"shards\": {shards},\n  \"victim_shard\": {victim},\n  \"students\": {students},\n  \"sessions_on_victim\": {on_victim},\n  \"degraded_on_victim\": {degraded_on_victim},\n  \"healthy_clean\": {healthy_clean},\n  \"healthy_digest_match\": {healthy_digest_match},\n  \"storm_deterministic\": {storm_deterministic},\n  \"slo_breaches\": {slo_breaches},\n  \"flash_clients\": {flash_clients},\n  \"origin_no_cache\": {},\n  \"origin_with_cache\": {},\n  \"cache_hit_rate\": {cache_hit_rate:.4},\n  \"origin_bound_ok\": {origin_bound_ok},\n  \"edge_hits\": {},\n  \"edge_misses\": {},\n  \"edge_invalidations\": {}\n}}\n",
        cold.requests_sent,
        edge.origin_requests,
        edge.hits,
        edge.misses,
        edge.invalidations
    );
    std::fs::write(&out, json).expect("write shards bench json");
    println!("wrote {out}");
}

/// FORENSICS: the flight-recorder + breach-forensics gate. Replays the
/// seeded fault storm with its schedule declared to the campus, checks
/// that the campaign auto-produces incident bundles whose causal chain
/// names the injected fault, that bundles and timeline are byte-
/// identical across thread counts, that every exemplar a bundle cites
/// resolves to a sampled trace, and that the calm twin produces zero
/// bundles. Opt-in (`--exp forensics`); writes `BENCH_forensics.json`
/// (override with `MITS_FORENSICS_OUT`).
fn forensics() {
    use mits_core::{fault_storm_slos, sharded_workloads, FaultStorm};

    header(
        "FORENSICS",
        "flight recorder + breach forensics: storm campaign incident bundles",
    );
    let shards = env_usize("MITS_FORENSICS_SHARDS", 3).max(2);
    let students = env_usize("MITS_FORENSICS_STUDENTS", 9);
    let victim = env_usize("MITS_FORENSICS_VICTIM", 1) % shards;
    let clip_bytes = env_usize("MITS_FORENSICS_CLIP_BYTES", 300_000);
    let seed = env_usize("MITS_FORENSICS_SEED", 42) as u64;
    let out = std::env::var("MITS_FORENSICS_OUT").unwrap_or_else(|_| "BENCH_forensics.json".into());

    let workloads = sharded_workloads(shards, 2, clip_bytes);
    let storm = FaultStorm::new(
        shards,
        victim,
        SimTime::from_millis(2),
        SimTime::from_secs(120),
    );
    let on_victim = (0..students).filter(|s| s % shards == victim).count();

    let run = |threads: usize, stormy: bool| {
        let s = storm.clone();
        let mut c = Campus::new(students, seed)
            .threads(threads)
            .workloads(workloads.clone())
            .slos(fault_storm_slos(on_victim as f64 / students as f64))
            .configure_sessions(move |_, base| {
                if stormy {
                    s.apply(base)
                } else {
                    s.apply_calm(base)
                }
            });
        if stormy {
            c = c.fault_schedule(storm.schedule());
        }
        c.run().unwrap()
    };
    let hit = run(2, true);
    let serial = run(1, true);
    let calm = run(2, false);

    let bundles_json = hit.forensics_json();
    let timeline_json = hit.timeline_json();
    let forensics_match =
        bundles_json == serial.forensics_json() && timeline_json == serial.timeline_json();
    let chain_names_victim = !hit.forensics.is_empty()
        && hit.forensics.iter().all(|b| {
            b.chain
                .first()
                .is_some_and(|l| l.stage == "fault" && l.label.contains(&format!("shard{victim}")))
        });
    // Every exemplar a bundle cites must resolve to a sampled trace
    // (anomalous sessions are tail-sampled, so this closes the loop
    // from histogram bucket to concrete span tree).
    let sampled: Vec<u64> = hit.traces.iter().map(|t| t.student as u64).collect();
    let exemplars_resolvable = hit
        .forensics
        .iter()
        .flat_map(|b| &b.exemplars)
        .all(|e| sampled.contains(&e.trace_id));

    print!(
        "{}",
        mits_sim::forensics::render_report(&hit.timeline, &hit.forensics)
    );
    println!(
        "storm bundles {} (calm twin {}); chain names victim: {chain_names_victim}; \
         exemplar traces resolvable: {exemplars_resolvable}; \
         1-vs-2-thread bundles identical: {forensics_match}",
        hit.forensics.len(),
        calm.forensics.len(),
    );

    let json = format!(
        "{{\n  \"experiment\": \"forensics\",\n  \"shards\": {shards},\n  \"victim_shard\": {victim},\n  \"students\": {students},\n  \"seed\": {seed},\n  \"storm_bundles\": {},\n  \"calm_bundles\": {},\n  \"forensics_match_1_vs_n_threads\": {forensics_match},\n  \"chain_names_victim\": {chain_names_victim},\n  \"exemplar_trace_resolvable\": {exemplars_resolvable},\n  \"timeline\": {timeline_json},\n  \"bundles\": {bundles_json}\n}}\n",
        hit.forensics.len(),
        calm.forensics.len(),
    );
    std::fs::write(&out, json).expect("write forensics bench json");
    println!("wrote {out}");
}

/// Replay observatory (ISSUE 10): run the same fault-storm campaign as
/// `--exp forensics`, take the victim session's ready-to-run replay
/// handle from the incident bundle, and re-run that one session
/// standalone with instrumentation forced to maximum. Faithfulness is
/// the hard gate — the replayed digest must equal the campus digest
/// layer by layer — and the per-hop weathermap covers the victim's
/// route. Opt-in (`--exp replay`); writes `BENCH_replay.json`
/// (override with `MITS_REPLAY_OUT`).
fn replay() {
    use mits_core::{fault_storm_slos, sharded_workloads, FaultStorm};

    header(
        "REPLAY",
        "extract-and-replay the storm victim with max instrumentation",
    );
    let shards = env_usize("MITS_FORENSICS_SHARDS", 3).max(2);
    let students = env_usize("MITS_FORENSICS_STUDENTS", 9);
    let victim = env_usize("MITS_FORENSICS_VICTIM", 1) % shards;
    let clip_bytes = env_usize("MITS_FORENSICS_CLIP_BYTES", 300_000);
    let seed = env_usize("MITS_FORENSICS_SEED", 42) as u64;
    let flight_ring = env_usize("MITS_FLIGHT_RING", 0);
    let out = std::env::var("MITS_REPLAY_OUT").unwrap_or_else(|_| "BENCH_replay.json".into());

    let workloads = sharded_workloads(shards, 2, clip_bytes);
    let storm = FaultStorm::new(
        shards,
        victim,
        SimTime::from_millis(2),
        SimTime::from_secs(120),
    );
    let on_victim = (0..students).filter(|s| s % shards == victim).count();

    let campus = || {
        let s = storm.clone();
        Campus::new(students, seed)
            .threads(2)
            .flight_ring(flight_ring)
            .workloads(workloads.clone())
            .slos(fault_storm_slos(on_victim as f64 / students as f64))
            .configure_sessions(move |_, base| s.apply(base))
            .fault_schedule(storm.schedule())
    };

    // Run the storm campaign once; the session to replay comes from an
    // incident bundle's replay handle, closing the forensics loop.
    let campaign = campus().run().unwrap();
    let (student, handle_seed) = campaign
        .forensics
        .iter()
        .flat_map(|b| &b.replays)
        .next()
        .copied()
        .map(|(s, h)| (s as usize, h))
        .unwrap_or_else(|| {
            (
                (0..students)
                    .find(|s| s % shards == victim)
                    .unwrap_or(victim),
                0,
            )
        });

    let r = campus().replay(student).expect("replay the storm victim");
    let handle_agrees = handle_seed == 0 || handle_seed == r.bundle.seed;

    print!("{}", r.waterfall);
    print!("{}", r.profile_top);
    println!(
        "replayed student {student} (seed {:#018x}): digest_match {}, breach_reproduced {}, \
         handle agrees: {handle_agrees}, route hops {}",
        r.bundle.seed,
        r.digest_match,
        r.breach_reproduced,
        r.route.len(),
    );

    let route_json = r
        .route
        .iter()
        .map(|(from, to)| format!("{{\"from\":\"{from}\",\"to\":\"{to}\"}}"))
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\n  \"experiment\": \"replay\",\n  \"shards\": {shards},\n  \"victim_shard\": {victim},\n  \"students\": {students},\n  \"seed\": {seed},\n  \"student\": {student},\n  \"session_seed\": {},\n  \"digest\": {},\n  \"digest_match\": {},\n  \"breach_reproduced\": {},\n  \"handle_agrees\": {handle_agrees},\n  \"bundle\": {},\n  \"route\": [{route_json}],\n  \"weathermap\": {}\n}}\n",
        r.bundle.seed,
        r.bundle.digest,
        r.digest_match,
        r.breach_reproduced,
        r.bundle.to_json(),
        r.weathermap,
    );
    std::fs::write(&out, json).expect("write replay bench json");
    println!("wrote {out}");
}
