//! Shared fixtures for the MITS benchmark harness.
//!
//! Every bench and every `tables` experiment builds its workload from
//! these constructors so results are comparable across runs and targets.

use mits_author::{
    compile_imd, Behavior, BehaviorAction, BehaviorCondition, CompiledCourseware, ElementKind,
    ImDocument, Scene, Section, Subsection, TimelineEntry,
};
use mits_media::{CaptureSpec, MediaFormat, MediaObject, ProductionCenter, VideoDims};
use mits_mheg::MhegObject;
use mits_sim::SimDuration;

/// The canonical "ATM Technology" course of Figure 4.4: one interactive
/// scene (audio + text + image + choice + stop) and one video scene.
pub fn atm_course(seed: u64) -> (CompiledCourseware, Vec<MediaObject>, &'static str) {
    let mut studio = ProductionCenter::new(seed);
    let audio1 = studio.capture(&CaptureSpec::audio(
        "audio1.wav",
        MediaFormat::Wav,
        SimDuration::from_secs(4),
    ));
    let image1 = studio.capture(&CaptureSpec::image(
        "image1.gif",
        MediaFormat::Gif,
        VideoDims::new(320, 240),
    ));
    let lecture = studio.capture(&CaptureSpec::video(
        "atm-switching.mpg",
        MediaFormat::Mpeg,
        SimDuration::from_secs(3),
        VideoDims::new(320, 240),
    ));
    let mut doc = ImDocument::new("ATM Technology");
    doc.keywords = vec!["telecom/atm".into()];
    doc.sections.push(Section {
        title: "ATM basics".into(),
        subsections: vec![Subsection {
            title: "Cells".into(),
            scenes: vec![
                Scene::new("scene1")
                    .element("audio1", ElementKind::Media((&audio1).into()))
                    .element(
                        "text1",
                        ElementKind::Caption("ATM multiplexes cells.".into()),
                    )
                    .element("image1", ElementKind::Media((&image1).into()))
                    .element("choice1", ElementKind::Button("show image now".into()))
                    .element("stop", ElementKind::Button("stop".into()))
                    .entry(TimelineEntry::at_start("audio1"))
                    .entry(TimelineEntry::at_start("text1").for_duration(SimDuration::from_secs(4)))
                    .entry(TimelineEntry::at_start("choice1").at(10, 200))
                    .entry(TimelineEntry::at_start("stop").at(120, 200))
                    .behavior(Behavior::when(
                        BehaviorCondition::Clicked("choice1".into()),
                        vec![
                            BehaviorAction::Stop("text1".into()),
                            BehaviorAction::Start("image1".into()),
                        ],
                    ))
                    .behavior(Behavior::when(
                        BehaviorCondition::Finished("text1".into()),
                        vec![BehaviorAction::Start("image1".into())],
                    ))
                    .behavior(Behavior::when(
                        BehaviorCondition::Clicked("stop".into()),
                        vec![
                            BehaviorAction::Stop("audio1".into()),
                            BehaviorAction::Stop("text1".into()),
                            BehaviorAction::Stop("image1".into()),
                            BehaviorAction::NextScene,
                        ],
                    )),
                Scene::new("scene2")
                    .element("video", ElementKind::Media((&lecture).into()))
                    .entry(TimelineEntry::at_start("video")),
            ],
        }],
    });
    (
        compile_imd(1000, &doc),
        studio.catalogue().to_vec(),
        "ATM Technology",
    )
}

/// The E-REUSE course: three scenes sharing one video jingle plus a
/// unique image per scene.
pub fn reuse_course(seed: u64) -> (CompiledCourseware, Vec<MediaObject>, &'static str) {
    let mut studio = ProductionCenter::new(seed);
    let shared = studio.capture(&CaptureSpec::video(
        "jingle.mpg",
        MediaFormat::Mpeg,
        SimDuration::from_millis(400),
        VideoDims::new(160, 120),
    ));
    let mut scenes = Vec::new();
    for i in 0..3 {
        let img = studio.capture(&CaptureSpec::image(
            format!("fig{i}.gif"),
            MediaFormat::Gif,
            VideoDims::new(200, 150),
        ));
        scenes.push(
            Scene::new(&format!("scene{i}"))
                .element("jingle", ElementKind::Media((&shared).into()))
                .element("fig", ElementKind::Media((&img).into()))
                .entry(TimelineEntry::at_start("jingle"))
                .entry(
                    TimelineEntry::at_start("fig")
                        .at(200, 0)
                        .for_duration(SimDuration::from_millis(400)),
                ),
        );
    }
    let mut doc = ImDocument::new("Reuse Course");
    doc.sections.push(Section {
        title: "s".into(),
        subsections: vec![Subsection {
            title: "ss".into(),
            scenes,
        }],
    });
    (
        compile_imd(2000, &doc),
        studio.catalogue().to_vec(),
        "Reuse Course",
    )
}

/// One representative object of each concrete MHEG class, for codec and
/// life-cycle benches.
pub fn one_of_each_class(seed: u64) -> Vec<MhegObject> {
    use mits_mheg::action::{ActionEntry, ElementaryAction, TargetRef};
    use mits_mheg::link::Condition;
    use mits_mheg::object::StreamDesc;
    use mits_mheg::sync::{AtomicRelation, SyncMechanism, SyncSpec};
    use mits_mheg::{ClassLibrary, GenericValue};

    let mut studio = ProductionCenter::new(seed);
    let clip = studio.capture(&CaptureSpec::video(
        "bench.mpg",
        MediaFormat::Mpeg,
        SimDuration::from_secs(2),
        VideoDims::new(320, 240),
    ));
    let mut lib = ClassLibrary::new(3000);
    let content = lib.media_content(&clip, (0, 0));
    let mux = lib.multiplexed_content(
        &clip,
        vec![
            StreamDesc {
                stream_id: 1,
                format: MediaFormat::Mpeg,
                enabled: true,
            },
            StreamDesc {
                stream_id: 2,
                format: MediaFormat::Wav,
                enabled: true,
            },
        ],
    );
    let button = lib.value_content("btn", GenericValue::Bool(false));
    let composite = lib.composite(
        "scene",
        vec![content, button],
        vec![ActionEntry::now(
            TargetRef::Model(content),
            vec![ElementaryAction::Run],
        )],
        vec![SyncSpec::new(SyncMechanism::Atomic {
            a: TargetRef::Model(content),
            b: TargetRef::Model(button),
            relation: AtomicRelation::Parallel,
        })],
    );
    let action = lib.action(
        "stop-all",
        vec![ActionEntry::now(
            TargetRef::Model(content),
            vec![
                ElementaryAction::Stop,
                ElementaryAction::SetVisibility(false),
            ],
        )],
    );
    lib.link_to_action(
        "on-click",
        Condition::selected(TargetRef::Model(button)),
        vec![],
        action,
    );
    lib.script("quiz", "mits-expr", "score > 60 && attempts < 3");
    lib.descriptor_for_media(content, &clip);
    let ids: Vec<_> = lib.objects().iter().map(|o| o.id).collect();
    lib.container("shipment", ids);
    let _ = (mux, composite);
    lib.into_objects()
}
