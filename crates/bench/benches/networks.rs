//! E-BB: cell-level delivery across the four link profiles, and raw
//! switch forwarding throughput.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mits_atm::{AtmNetwork, LinkProfile, ServiceClass};
use mits_core::stream::{profile_name, stream_video_over};
use mits_sim::{SimDuration, SimTime};

fn bench_networks(c: &mut Criterion) {
    let mut group = c.benchmark_group("networks");
    group.sample_size(10);

    // Streamed video run per profile (short clip for bench time).
    for p in [
        LinkProfile::atm_oc3(),
        LinkProfile::lan_10m(),
        LinkProfile::isdn_128k(),
    ] {
        group.bench_with_input(
            BenchmarkId::new("stream_5s_mpeg", profile_name(&p)),
            &p,
            |b, p| {
                b.iter(|| {
                    stream_video_over(
                        *p,
                        SimDuration::from_secs(5),
                        1_500_000,
                        SimDuration::from_secs(1),
                        1,
                    )
                })
            },
        );
    }

    // Raw forwarding: 1 MB through a two-hop OC-3 path.
    group.throughput(Throughput::Bytes(1 << 20));
    group.bench_function("forward_1MB_two_hops_oc3", |b| {
        b.iter(|| {
            let mut net = AtmNetwork::new(1);
            let a = net.add_host("a");
            let s = net.add_switch("s");
            let d = net.add_host("d");
            net.connect(a, s, LinkProfile::atm_oc3());
            net.connect(s, d, LinkProfile::atm_oc3());
            let vc = net.open_vc(&[a, s, d], ServiceClass::Ubr, None).unwrap();
            net.send(vc, Bytes::from(vec![0u8; 1 << 20])).unwrap();
            let deliveries = net.drain(SimTime::from_secs(10));
            assert_eq!(deliveries.len(), 1);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_networks);
criterion_main!(benches);
