//! F2.9: interchange codec throughput — TLV vs SGML encode/decode for
//! every MHEG class.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mits_bench::one_of_each_class;
use mits_mheg::{decode_object, encode_object, WireFormat};

fn bench_codecs(c: &mut Criterion) {
    let objects = one_of_each_class(1);
    let mut group = c.benchmark_group("mheg_codec");
    group.sample_size(30);
    for (idx, obj) in objects.iter().enumerate() {
        let class = format!("{}-{}", idx, obj.class());
        for (fmt, name) in [(WireFormat::Tlv, "tlv"), (WireFormat::Sgml, "sgml")] {
            group.bench_with_input(
                BenchmarkId::new(format!("encode_{name}"), &class),
                obj,
                |b, obj| b.iter(|| encode_object(std::hint::black_box(obj), fmt)),
            );
            let wire = encode_object(obj, fmt);
            group.bench_with_input(
                BenchmarkId::new(format!("decode_{name}"), &class),
                &wire,
                |b, wire| b.iter(|| decode_object(std::hint::black_box(wire), fmt).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
