//! F3.5: the client-server model under growing client counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mits_bench::atm_course;
use mits_core::{ClientId, MitsSystem, SystemConfig};

fn bench_client_server(c: &mut Criterion) {
    let (compiled, media, _) = atm_course(35);
    let mut group = c.benchmark_group("client_server");
    group.sample_size(10);
    for &n in &[1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("batch_fetch", n), &n, |b, &n| {
            b.iter(|| {
                let mut sys = MitsSystem::build(&SystemConfig::broadband(n)).unwrap();
                sys.load_directly(compiled.objects.clone(), media.clone());
                for cidx in 0..n {
                    sys.fetch_courseware(ClientId(cidx), compiled.root).unwrap();
                }
                sys.now()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_client_server);
criterion_main!(benches);
