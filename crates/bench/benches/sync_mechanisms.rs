//! F2.6: engine cost of each synchronization mechanism — run a composite
//! using the mechanism to completion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mits_media::{CaptureSpec, MediaFormat, ProductionCenter};
use mits_mheg::action::{ActionEntry, ElementaryAction, TargetRef};
use mits_mheg::sync::{AtomicRelation, SyncMechanism, SyncSpec};
use mits_mheg::{ClassLibrary, MhegEngine};
use mits_sim::{SimDuration, SimTime};

fn run_mechanism(make: impl Fn(TargetRef, TargetRef) -> SyncMechanism) -> u64 {
    let mut studio = ProductionCenter::new(3);
    let m1 = studio.capture(&CaptureSpec::audio(
        "a.wav",
        MediaFormat::Wav,
        SimDuration::from_secs(1),
    ));
    let m2 = studio.capture(&CaptureSpec::audio(
        "b.wav",
        MediaFormat::Wav,
        SimDuration::from_secs(1),
    ));
    let mut lib = ClassLibrary::new(1);
    let a = lib.media_content(&m1, (0, 0));
    let b = lib.media_content(&m2, (0, 0));
    let scene = lib.composite(
        "s",
        vec![a, b],
        vec![],
        vec![SyncSpec::new(make(
            TargetRef::Model(a),
            TargetRef::Model(b),
        ))],
    );
    let mut eng = MhegEngine::new();
    for o in lib.into_objects() {
        eng.ingest(o);
    }
    eng.new_rt(scene).unwrap();
    eng.apply_entry(&ActionEntry::now(
        TargetRef::Model(scene),
        vec![ElementaryAction::Run],
    ))
    .unwrap();
    eng.advance(SimTime::from_secs(30)).unwrap();
    eng.stats.events_emitted
}

fn bench_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_mechanisms");
    group.sample_size(40);
    type MechanismCtor = fn(TargetRef, TargetRef) -> SyncMechanism;
    let cases: Vec<(&str, MechanismCtor)> = vec![
        ("atomic_parallel", |a, b| SyncMechanism::Atomic {
            a,
            b,
            relation: AtomicRelation::Parallel,
        }),
        ("atomic_serial", |a, b| SyncMechanism::Atomic {
            a,
            b,
            relation: AtomicRelation::Serial,
        }),
        ("elementary", |a, b| SyncMechanism::Elementary {
            a,
            t1: SimDuration::from_millis(100),
            b,
            t2: SimDuration::from_millis(700),
        }),
        ("cyclic_x4", |a, _| SyncMechanism::Cyclic {
            target: a,
            period: SimDuration::from_secs(2),
            repetitions: Some(4),
        }),
        ("chained", |a, b| SyncMechanism::Chained {
            sequence: vec![a, b],
        }),
    ];
    for (name, make) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &make, |bench, make| {
            bench.iter(|| run_mechanism(make))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sync);
criterion_main!(benches);
