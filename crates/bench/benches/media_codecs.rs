//! T5.1: synthetic media generation at the paper-calibrated densities,
//! plus the MPEG frame model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mits_media::codec::{CodecModel, FrameStream, MPEG_BITS_PER_SEC};
use mits_media::{MediaFormat, VideoDims};
use mits_sim::SimDuration;

fn bench_media(c: &mut Criterion) {
    let mut group = c.benchmark_group("media_codecs");
    group.sample_size(20);
    let dur = SimDuration::from_secs(5);
    let dims = VideoDims::new(320, 240);
    for f in [
        MediaFormat::Mpeg,
        MediaFormat::Avi,
        MediaFormat::Wav,
        MediaFormat::Midi,
    ] {
        let model = CodecModel::for_format(f);
        let size = model.coded_size(dur, dims).max(model.static_size(1000));
        group.throughput(Throughput::Bytes(size));
        group.bench_with_input(
            BenchmarkId::new("generate_5s", f.to_string()),
            &model,
            |b, model| b.iter(|| model.generate_payload(dur, dims, 42)),
        );
    }
    group.bench_function("frame_stream_60s", |b| {
        b.iter(|| {
            FrameStream::new(SimDuration::from_secs(60), MPEG_BITS_PER_SEC, 7)
                .map(|f| f.size as u64)
                .sum::<u64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_media);
criterion_main!(benches);
