//! F2.4: the object life cycle — interchange decode (a→b), run-time
//! creation (b→c), and descriptor negotiation on/off (the "minimal
//! resources" ablation of §3.1.2.2).

use criterion::{criterion_group, criterion_main, Criterion};
use mits_bench::one_of_each_class;
use mits_mheg::{
    encode_object, MhegEngine, Negotiation, ResourceNeed, SystemCapabilities, WireFormat,
};

fn bench_lifecycle(c: &mut Criterion) {
    let objects = one_of_each_class(2);
    let wires: Vec<_> = objects
        .iter()
        .map(|o| encode_object(o, WireFormat::Tlv))
        .collect();
    let mut group = c.benchmark_group("mheg_lifecycle");
    group.sample_size(30);

    group.bench_function("ingest_wire_full_set", |b| {
        b.iter(|| {
            let mut eng = MhegEngine::new();
            for w in &wires {
                eng.ingest_wire(std::hint::black_box(w), WireFormat::Tlv)
                    .unwrap();
            }
            eng
        })
    });

    let composite = objects
        .iter()
        .find(|o| o.class() == mits_mheg::ClassKind::Composite)
        .expect("fixture has a composite");
    group.bench_function("new_rt_composite_recursive", |b| {
        let mut eng = MhegEngine::new();
        for o in &objects {
            eng.ingest(o.clone());
        }
        b.iter(|| {
            let rt = eng.new_rt(composite.id).unwrap();
            eng.delete_rt(rt).unwrap();
        })
    });

    // Descriptor negotiation ablation: prepare with vs without checking.
    let caps = SystemCapabilities::multimedia_pc(155_520_000);
    let needs = vec![
        ResourceNeed::Decoder(mits_media::MediaFormat::Mpeg),
        ResourceNeed::Bandwidth(1_500_000),
        ResourceNeed::AudioOutput,
    ];
    group.bench_function("prepare_with_negotiation", |b| {
        b.iter(|| {
            let n = Negotiation::run(std::hint::black_box(&needs), &caps);
            assert!(n.accepted());
            n
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lifecycle);
criterion_main!(benches);
