//! F3.3/F3.4: the full courseware pipeline production → storage →
//! presentation, end to end over the simulated network.

use criterion::{criterion_group, criterion_main, Criterion};
use mits_bench::atm_course;
use mits_core::{ClientId, CodSession, MitsSystem, SystemConfig};
use mits_sim::SimDuration;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    group.bench_function("publish_course_over_network", |b| {
        let (compiled, media, _) = atm_course(1);
        b.iter(|| {
            let mut sys = MitsSystem::build(&SystemConfig::broadband(0)).unwrap();
            sys.publish(&compiled.objects, &media).unwrap()
        })
    });

    group.bench_function("full_cod_session", |b| {
        let (compiled, media, name) = atm_course(2);
        b.iter(|| {
            let mut sys = MitsSystem::build(&SystemConfig::broadband(1)).unwrap();
            sys.load_directly(compiled.objects.clone(), media.clone());
            let mut session = CodSession::open(&mut sys, ClientId(0), compiled.root, name).unwrap();
            session.start().unwrap();
            session.play(SimDuration::from_secs(1)).unwrap();
            session.click("stop").unwrap();
            session.auto_play(SimDuration::from_secs(10)).unwrap();
            assert!(session.report.completed);
            session.report.bytes_transferred
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
