//! E-REUSE: the content-delivery policy ablation as a bench — wall time
//! of the full two-session run per policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mits_atm::LinkProfile;
use mits_bench::reuse_course;
use mits_core::models::{run_reuse_policy, ContentPolicy};

fn bench_reuse(c: &mut Criterion) {
    let (compiled, media, name) = reuse_course(4);
    let mut group = c.benchmark_group("reuse_ablation");
    group.sample_size(10);
    for policy in [
        ContentPolicy::SeparateCached,
        ContentPolicy::SeparateUncached,
        ContentPolicy::Embedded,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    run_reuse_policy(
                        policy,
                        &compiled.objects,
                        &media,
                        compiled.root,
                        name,
                        LinkProfile::atm_oc3(),
                        2,
                    )
                    .unwrap()
                    .bytes
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reuse);
criterion_main!(benches);
