//! Per-stage media-path benches: the AAL5 kernels (CRC-32, segmentation,
//! reassembly) and raw switch advance, isolated so a regression in one
//! stage shows up on its own line instead of hiding inside an end-to-end
//! number. Stage names carry the `net.` prefix the flame profiler
//! (`tables --exp obs`) uses to attribute time to the atm layer.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mits_atm::aal5::{cells_for, crc32, crc32_slice16, crc32_slice8, reassemble_run, segment_run};
use mits_atm::{reassemble, segment, AtmNetwork, LinkProfile, ServiceClass};
use mits_sim::SimTime;

/// One video-scale PDU: 64 KiB, the order of a clip chunk on the wire.
const PDU: usize = 64 * 1024;

fn bench_media_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("media_path");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(PDU as u64));

    let payload = vec![0xA5u8; PDU];

    // Stage 1: the CRC-32 kernel alone — it runs over every PDU twice
    // (segment + reassemble), so this is the hot inner loop. Each
    // implementation tier gets its own line so a dispatch change (SIMD
    // lane lost, table rebuilt) shows up against its fallbacks.
    group.bench_function("net.aal5.crc32_64KiB", |b| {
        b.iter(|| crc32(criterion::black_box(&payload)))
    });
    group.bench_function("net.aal5.crc32_slice8_64KiB", |b| {
        b.iter(|| crc32_slice8(criterion::black_box(&payload)))
    });
    group.bench_function("net.aal5.crc32_slice16_64KiB", |b| {
        b.iter(|| crc32_slice16(criterion::black_box(&payload)))
    });

    // Stage 2: segmentation (copy + trailer + CRC + cell views).
    group.bench_function("net.aal5.segment_64KiB", |b| {
        b.iter(|| segment(0, 100, 0, criterion::black_box(&payload)))
    });

    // Stage 3: reassembly (gather + length/CRC validation), from cells
    // prepared outside the timed loop.
    let cells = segment(0, 100, 0, &payload);
    assert_eq!(cells.len(), cells_for(PDU));
    group.bench_function("net.aal5.reassemble_64KiB", |b| {
        b.iter(|| reassemble(criterion::black_box(&cells)).unwrap())
    });

    // Stage 3b: the run-descriptor pipeline the train path rides —
    // segment once into a contiguous run image, reassemble from it
    // without materializing cells.
    group.bench_function("net.aal5.segment_run_64KiB", |b| {
        b.iter(|| segment_run(criterion::black_box(&payload)))
    });
    let run = segment_run(&payload);
    group.bench_function("net.aal5.reassemble_run_64KiB", |b| {
        b.iter(|| reassemble_run(criterion::black_box(&run.payload)).unwrap())
    });

    // Stage 4: switch advance — one PDU through a two-hop OC-3 path.
    // With trains engaged the event loop sees one run per hop; pinned
    // per-cell it pays 2n events per hop. Both lines are kept so the
    // batched/exact ratio is visible in the bench history.
    for (name, per_cell) in [
        ("net.switch.advance_64KiB_two_hops_oc3", false),
        ("net.switch.advance_64KiB_two_hops_oc3_per_cell", true),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut net = AtmNetwork::new(1);
                if per_cell {
                    net.force_per_cell();
                }
                let a = net.add_host("a");
                let s = net.add_switch("s");
                let d = net.add_host("d");
                net.connect(a, s, LinkProfile::atm_oc3());
                net.connect(s, d, LinkProfile::atm_oc3());
                let vc = net.open_vc(&[a, s, d], ServiceClass::Ubr, None).unwrap();
                net.send(vc, Bytes::from(payload.clone())).unwrap();
                let deliveries = net.drain(SimTime::from_secs(10));
                assert_eq!(deliveries.len(), 1);
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_media_path);
criterion_main!(benches);
