//! F4.4: engine-local scenario playback rate — how fast the MHEG engine
//! interprets a compiled course (no network).

use criterion::{criterion_group, criterion_main, Criterion};
use mits_author::compile_hyperdoc;
use mits_bench::atm_course;
use mits_navigator::PresentationSession;
use mits_sim::SimTime;

fn bench_playback(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_playback");
    group.sample_size(30);

    let (compiled, _, name) = atm_course(3);
    group.bench_function("imd_course_to_completion", |b| {
        b.iter(|| {
            let mut p = PresentationSession::load(compiled.objects.clone(), name).unwrap();
            p.start().unwrap();
            p.advance(SimTime::from_secs(30)).unwrap();
            p.click("stop").ok();
            p.advance(SimTime::from_secs(60)).unwrap();
            assert!(p.completed());
            p.engine_stats().events_emitted
        })
    });

    let doc = mits_author::HyperDocument::figure_4_3_example();
    let hyper = compile_hyperdoc(90, &doc);
    group.bench_function("hyperdoc_navigation_sequence", |b| {
        b.iter(|| {
            let mut p =
                PresentationSession::load(hyper.objects.clone(), "Fig 4.3 navigation example")
                    .unwrap();
            p.start().unwrap();
            p.click("Test Your Knowledge").unwrap();
            p.click("48 bytes").unwrap();
            p.click("Try again").unwrap();
            p.click("53 bytes").unwrap();
            p.click("Continue").unwrap();
            p.current_unit()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_playback);
criterion_main!(benches);
