//! Property tests for the simulation kernel: event ordering, statistics
//! merge equivalence, histogram conservation, token-bucket conformance.

use mits_sim::{
    Histogram, OnlineStats, SimDuration, SimTime, Simulation, TimeWeighted, TokenBucket,
};
use proptest::prelude::*;

fn stats_approx_eq(a: &OnlineStats, b: &OnlineStats) -> bool {
    a.count() == b.count()
        && (a.mean() - b.mean()).abs() < 1e-6 * (1.0 + b.mean().abs())
        && (a.variance() - b.variance()).abs() < 1e-3 * (1.0 + b.variance())
        && a.min() == b.min()
        && a.max() == b.max()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Events always execute in non-decreasing time order, regardless of
    /// insertion order, with FIFO tie-breaks.
    #[test]
    fn events_execute_in_time_order(times in prop::collection::vec(0u64..1_000, 1..100)) {
        let mut sim = Simulation::new(Vec::<u64>::new());
        for &t in &times {
            sim.schedule(SimTime::from_micros(t), move |w: &mut Vec<u64>, _| w.push(t));
        }
        sim.run();
        let executed = sim.world();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(executed, &sorted);
    }

    /// run_until never executes an event past the deadline, and a
    /// follow-up run executes exactly the rest.
    #[test]
    fn run_until_partitions_events(
        times in prop::collection::vec(0u64..1_000, 1..60),
        deadline in 0u64..1_000,
    ) {
        let mut sim = Simulation::new(Vec::<u64>::new());
        for &t in &times {
            sim.schedule(SimTime::from_micros(t), move |w: &mut Vec<u64>, _| w.push(t));
        }
        sim.run_until(SimTime::from_micros(deadline));
        let early = sim.world().clone();
        prop_assert!(early.iter().all(|&t| t <= deadline));
        sim.run();
        prop_assert_eq!(sim.world().len(), times.len());
    }

    /// Merging split statistics equals computing them whole.
    #[test]
    fn stats_merge_equivalence(
        xs in prop::collection::vec(-1e6f64..1e6, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..split] {
            a.record(x);
        }
        for &x in &xs[split..] {
            b.record(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-4 * (1.0 + whole.variance()));
        prop_assert_eq!(a.min(), whole.min());
        prop_assert_eq!(a.max(), whole.max());
    }

    /// Histograms conserve counts: bins + underflow + overflow == total.
    #[test]
    fn histogram_conserves_mass(xs in prop::collection::vec(-100f64..200.0, 0..300)) {
        let mut h = Histogram::new(0.0, 100.0, 20);
        for &x in &xs {
            h.record(x);
        }
        let binned: u64 = h.bins().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
        if !xs.is_empty() {
            let med = h.median().unwrap();
            prop_assert!((0.0..=100.0).contains(&med));
        }
    }

    /// OnlineStats::merge is associative (up to floating-point noise):
    /// (a ∪ b) ∪ c agrees with a ∪ (b ∪ c).
    #[test]
    fn online_stats_merge_is_associative(
        xs in prop::collection::vec(-1e6f64..1e6, 0..60),
        ys in prop::collection::vec(-1e6f64..1e6, 0..60),
        zs in prop::collection::vec(-1e6f64..1e6, 0..60),
    ) {
        let collect = |v: &[f64]| {
            let mut s = OnlineStats::new();
            for &x in v {
                s.record(x);
            }
            s
        };
        let (a, b, c) = (collect(&xs), collect(&ys), collect(&zs));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert!(
            stats_approx_eq(&left, &right),
            "left {:?} right {:?}",
            left,
            right
        );
    }

    /// Histogram::merge is exactly associative — bins are integer counts.
    #[test]
    fn histogram_merge_is_associative(
        xs in prop::collection::vec(-50f64..150.0, 0..60),
        ys in prop::collection::vec(-50f64..150.0, 0..60),
        zs in prop::collection::vec(-50f64..150.0, 0..60),
    ) {
        let collect = |v: &[f64]| {
            let mut h = Histogram::new(0.0, 100.0, 20);
            for &x in v {
                h.record(x);
            }
            h
        };
        let (a, b, c) = (collect(&xs), collect(&ys), collect(&zs));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left.bins(), right.bins());
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.underflow(), right.underflow());
        prop_assert_eq!(left.overflow(), right.overflow());
    }

    /// TimeWeighted::set with out-of-order timestamps never panics and
    /// keeps mean_until finite and inside the observed value range.
    #[test]
    fn time_weighted_tolerates_out_of_order_sets(
        points in prop::collection::vec((0u64..10_000, 0f64..100.0), 1..80),
        until_extra in 0u64..10_000,
    ) {
        let mut tw = TimeWeighted::new();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut max_t = 0u64;
        for &(t, v) in &points {
            tw.set(SimTime::from_micros(t), v);
            lo = lo.min(v);
            hi = hi.max(v);
            max_t = max_t.max(t);
        }
        let until = SimTime::from_micros(max_t + until_extra);
        let mean = tw.mean_until(until);
        prop_assert!(mean.is_finite(), "mean {}", mean);
        prop_assert!(
            mean >= lo - 1e-9 && mean <= hi + 1e-9,
            "mean {} outside [{}, {}]",
            mean,
            lo,
            hi
        );
        prop_assert!(tw.max() >= hi);
    }

    /// A token bucket never admits more than rate*t + depth tokens over
    /// any interval (the GCRA conformance bound).
    #[test]
    fn token_bucket_conformance_bound(
        rate in 1.0f64..10_000.0,
        depth in 1.0f64..100.0,
        arrivals in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let mut tb = TokenBucket::new(rate, depth);
        let mut t = SimTime::ZERO;
        let mut admitted = 0u64;
        for &gap in &arrivals {
            t += SimDuration::from_micros(gap);
            if tb.try_take(t, 1.0) {
                admitted += 1;
            }
        }
        let elapsed = t.as_secs_f64();
        let bound = rate * elapsed + depth + 1.0;
        prop_assert!(
            (admitted as f64) <= bound,
            "admitted {} > bound {}",
            admitted,
            bound
        );
    }
}
