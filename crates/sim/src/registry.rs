//! A unified metrics registry: named counters, gauges and histograms
//! that every layer of the MITS stack registers into.
//!
//! Before this existed each layer kept private ad-hoc counters
//! (`DbClientMetrics`, `FaultStats`, `CodReport`, ...). The registry
//! gives them one namespace — dotted, lowercase names such as
//! `atm.link.client0->switch.drops` or `db.server0.wal.bytes_journaled`
//! — and two deterministic exporters: an aligned text snapshot for the
//! bench tables and a JSON object for machine consumption. Names are
//! stored in a `BTreeMap`, so export order is sorted and byte-stable.
//!
//! Counters are monotonic `u64`s, gauges are instantaneous `f64`s, and
//! histograms reuse [`Histogram`] from the stats module (exported as
//! count plus p50/p99). There is no background aggregation thread —
//! the simulation is single-threaded and layers either update metrics
//! in place or snapshot their internal stats into the registry at
//! export time.

use crate::stats::Histogram;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// One named metric's value.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Instantaneous measurement.
    Gauge(f64),
    /// Distribution of samples.
    Histogram(Histogram),
}

/// A shared, cloneable registry of named metrics. Clones view the same
/// underlying map, so each layer can hold its own handle.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    map: Arc<Mutex<BTreeMap<String, MetricValue>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `by` to the counter `name`, creating it at zero first. If
    /// `name` exists with a different type it becomes a counter.
    pub fn inc(&self, name: &str, by: u64) {
        let mut map = self.map.lock();
        let v = match map.get(name) {
            Some(MetricValue::Counter(c)) => c + by,
            _ => by,
        };
        map.insert(name.to_string(), MetricValue::Counter(v));
    }

    /// Set the counter `name` to an absolute value (for layers that
    /// already maintain their own totals and snapshot them at export).
    pub fn counter_set(&self, name: &str, value: u64) {
        self.map
            .lock()
            .insert(name.to_string(), MetricValue::Counter(value));
    }

    /// Set the gauge `name`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.map
            .lock()
            .insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Record one sample into the histogram `name`, creating it with
    /// range `[lo, hi)` and `bins` buckets if absent. An existing
    /// non-histogram entry is replaced.
    pub fn observe(&self, name: &str, x: f64, lo: f64, hi: f64, bins: usize) {
        let mut map = self.map.lock();
        match map.get_mut(name) {
            Some(MetricValue::Histogram(h)) => h.record(x),
            _ => {
                let mut h = Histogram::new(lo, hi, bins);
                h.record(x);
                map.insert(name.to_string(), MetricValue::Histogram(h));
            }
        }
    }

    /// Store a snapshot of an externally maintained histogram under
    /// `name` (replacing any previous snapshot).
    pub fn record_histogram(&self, name: &str, h: &Histogram) {
        self.map
            .lock()
            .insert(name.to_string(), MetricValue::Histogram(h.clone()));
    }

    /// Current value of the counter `name`, if it is a counter.
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        match self.map.lock().get(name) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Current value of the gauge `name`, if it is a gauge.
    pub fn get_gauge(&self, name: &str) -> Option<f64> {
        match self.map.lock().get(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }

    /// All metric names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.map.lock().keys().cloned().collect()
    }

    /// Aligned text snapshot, one metric per line, names sorted.
    /// Histograms render as `count=N p50=X p99=Y`.
    pub fn to_text(&self) -> String {
        let map = self.map.lock();
        let width = map.keys().map(|k| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, v) in map.iter() {
            let _ = write!(out, "{name:<width$}  ");
            match v {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{g:.6}");
                }
                MetricValue::Histogram(h) => {
                    let p50 = h.quantile(0.50).unwrap_or(0.0);
                    let p99 = h.quantile(0.99).unwrap_or(0.0);
                    let _ = writeln!(out, "count={} p50={:.3} p99={:.3}", h.count(), p50, p99);
                }
            }
        }
        out
    }

    /// JSON object snapshot (hand-written; names sorted). Counters are
    /// integers, gauges floats, histograms
    /// `{"count":N,"p50":X,"p99":Y}`.
    pub fn to_json(&self) -> String {
        let map = self.map.lock();
        let mut out = String::from("{");
        for (i, (name, v)) in map.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", crate::trace::json_escape(name));
            match v {
                MetricValue::Counter(c) => {
                    let _ = write!(out, "{c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = write!(out, "{g:.6}");
                }
                MetricValue::Histogram(h) => {
                    let p50 = h.quantile(0.50).unwrap_or(0.0);
                    let p99 = h.quantile(0.99).unwrap_or(0.0);
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"p50\":{:.3},\"p99\":{:.3}}}",
                        h.count(),
                        p50,
                        p99
                    );
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_set() {
        let reg = MetricsRegistry::new();
        reg.inc("a.count", 2);
        reg.inc("a.count", 3);
        assert_eq!(reg.get_counter("a.count"), Some(5));
        reg.counter_set("a.count", 1);
        assert_eq!(reg.get_counter("a.count"), Some(1));
        assert_eq!(reg.get_counter("missing"), None);
    }

    #[test]
    fn clones_share_state() {
        let reg = MetricsRegistry::new();
        let other = reg.clone();
        other.inc("shared", 7);
        assert_eq!(reg.get_counter("shared"), Some(7));
    }

    #[test]
    fn text_export_is_sorted_and_aligned() {
        let reg = MetricsRegistry::new();
        reg.gauge_set("zz.util", 0.25);
        reg.inc("aa.count", 4);
        reg.observe("mm.lat", 1.0, 0.0, 10.0, 10);
        reg.observe("mm.lat", 2.0, 0.0, 10.0, 10);
        let text = reg.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("aa.count"));
        assert!(lines[1].starts_with("mm.lat"));
        assert!(lines[2].starts_with("zz.util"));
        assert!(lines[1].contains("count=2"));
        let a = reg.to_text();
        let b = reg.to_text();
        assert_eq!(a, b);
    }

    #[test]
    fn json_export_has_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.inc("c", 3);
        reg.gauge_set("g", 0.5);
        reg.observe("h", 1.0, 0.0, 2.0, 4);
        let json = reg.to_json();
        assert_eq!(
            json,
            "{\"c\":3,\"g\":0.500000,\"h\":{\"count\":1,\"p50\":1.500,\"p99\":1.500}}"
        );
    }
}
