//! A unified metrics registry: named counters, gauges and histograms
//! that every layer of the MITS stack registers into.
//!
//! Before this existed each layer kept private ad-hoc counters
//! (`DbClientMetrics`, `FaultStats`, `CodReport`, ...). The registry
//! gives them one namespace — dotted, lowercase names such as
//! `atm.link.client0->switch.drops` or `db.server0.wal.bytes_journaled`
//! — and two deterministic exporters: an aligned text snapshot for the
//! bench tables and a JSON object for machine consumption. Names are
//! stored in a `BTreeMap`, so export order is sorted and byte-stable.
//!
//! Counters are monotonic `u64`s, gauges are instantaneous `f64`s, and
//! histograms reuse [`Histogram`] from the stats module (exported as
//! count plus p50/p99). There is no background aggregation thread —
//! the simulation is single-threaded and layers either update metrics
//! in place or snapshot their internal stats into the registry at
//! export time.
//!
//! For campus-scale runs, a registry can be frozen into a
//! [`MetricsSnapshot`] and snapshots from independent shards merged into
//! one rollup: counters add, histograms merge bin for bin, and gauges
//! take the value with the latest virtual timestamp (stamped from the
//! registry clock set via [`MetricsRegistry::set_clock`]). Merging in
//! shard-index order makes the rollup byte-identical regardless of how
//! many worker threads ran the shards.

use crate::stats::{Exemplar, Histogram};
use crate::time::SimTime;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// One named metric's value.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Instantaneous measurement.
    Gauge(f64),
    /// Distribution of samples.
    Histogram(Histogram),
}

#[derive(Default)]
struct RegistryInner {
    map: BTreeMap<String, MetricValue>,
    /// Virtual set-time per gauge (absent entries were stamped at the
    /// clock's default, `SimTime::ZERO`).
    gauge_at: BTreeMap<String, SimTime>,
    /// Stamp applied to gauge writes; layers that export at a known
    /// virtual instant call [`MetricsRegistry::set_clock`] first.
    clock: SimTime,
}

/// A shared, cloneable registry of named metrics. Clones view the same
/// underlying map, so each layer can hold its own handle.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Set the virtual timestamp stamped onto subsequent gauge writes.
    /// Snapshot merges resolve gauge conflicts by "latest stamp wins",
    /// so exporters should set the clock to the simulation's `now`
    /// before refreshing their gauges.
    pub fn set_clock(&self, now: SimTime) {
        self.inner.lock().clock = now;
    }

    /// Add `by` to the counter `name`, creating it at zero first. If
    /// `name` exists with a different type it becomes a counter.
    pub fn inc(&self, name: &str, by: u64) {
        let mut inner = self.inner.lock();
        let v = match inner.map.get(name) {
            Some(MetricValue::Counter(c)) => c + by,
            _ => by,
        };
        inner.map.insert(name.to_string(), MetricValue::Counter(v));
    }

    /// Set the counter `name` to an absolute value (for layers that
    /// already maintain their own totals and snapshot them at export).
    pub fn counter_set(&self, name: &str, value: u64) {
        self.inner
            .lock()
            .map
            .insert(name.to_string(), MetricValue::Counter(value));
    }

    /// Set the gauge `name`, stamped with the registry clock.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock();
        let at = inner.clock;
        inner
            .map
            .insert(name.to_string(), MetricValue::Gauge(value));
        inner.gauge_at.insert(name.to_string(), at);
    }

    /// Record one sample into the histogram `name`, creating it with
    /// range `[lo, hi)` and `bins` buckets if absent. An existing
    /// non-histogram entry is replaced.
    pub fn observe(&self, name: &str, x: f64, lo: f64, hi: f64, bins: usize) {
        let mut inner = self.inner.lock();
        match inner.map.get_mut(name) {
            Some(MetricValue::Histogram(h)) => h.record(x),
            _ => {
                let mut h = Histogram::new(lo, hi, bins);
                h.record(x);
                inner
                    .map
                    .insert(name.to_string(), MetricValue::Histogram(h));
            }
        }
    }

    /// Like [`MetricsRegistry::observe`], but also offer an
    /// [`Exemplar`] linking the sample back to its trace: the bucket
    /// the sample lands in keeps the exemplar with the largest value
    /// (deterministic tie-break), so merged snapshots agree on
    /// exemplars byte-for-byte regardless of merge order.
    #[allow(clippy::too_many_arguments)]
    pub fn observe_exemplar(
        &self,
        name: &str,
        x: f64,
        lo: f64,
        hi: f64,
        bins: usize,
        trace_id: u64,
        span_id: u64,
        at: SimTime,
    ) {
        let ex = Exemplar {
            value: x,
            trace_id,
            span_id,
            at,
        };
        let mut inner = self.inner.lock();
        match inner.map.get_mut(name) {
            Some(MetricValue::Histogram(h)) => h.record_exemplar(x, ex),
            _ => {
                let mut h = Histogram::new(lo, hi, bins);
                h.record_exemplar(x, ex);
                inner
                    .map
                    .insert(name.to_string(), MetricValue::Histogram(h));
            }
        }
    }

    /// Store a snapshot of an externally maintained histogram under
    /// `name` (replacing any previous snapshot).
    pub fn record_histogram(&self, name: &str, h: &Histogram) {
        self.inner
            .lock()
            .map
            .insert(name.to_string(), MetricValue::Histogram(h.clone()));
    }

    /// Current value of the counter `name`, if it is a counter.
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        match self.inner.lock().map.get(name) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Current value of the gauge `name`, if it is a gauge.
    pub fn get_gauge(&self, name: &str) -> Option<f64> {
        match self.inner.lock().map.get(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().map.is_empty()
    }

    /// All metric names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.inner.lock().map.keys().cloned().collect()
    }

    /// Freeze the registry into an owned, mergeable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        let entries = inner
            .map
            .iter()
            .map(|(name, v)| {
                let e = match v {
                    MetricValue::Counter(c) => SnapshotValue::Counter(*c),
                    MetricValue::Gauge(g) => SnapshotValue::Gauge {
                        at: inner.gauge_at.get(name).copied().unwrap_or(SimTime::ZERO),
                        value: *g,
                    },
                    MetricValue::Histogram(h) => SnapshotValue::Histogram(h.clone()),
                };
                (name.clone(), e)
            })
            .collect();
        MetricsSnapshot { entries }
    }

    /// Aligned text snapshot, one metric per line, names sorted.
    /// Histograms render as `count=N p50=X p99=Y`.
    pub fn to_text(&self) -> String {
        self.snapshot().to_text()
    }

    /// JSON object snapshot (hand-written; names sorted). Counters are
    /// integers, gauges floats, histograms
    /// `{"count":N,"p50":X,"p99":Y}`.
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// One entry of a frozen [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub enum SnapshotValue {
    /// Monotonic count — merges by addition.
    Counter(u64),
    /// Instantaneous measurement — merges by latest virtual stamp
    /// (ties resolved in favour of the merged-in value, which in a
    /// campus rollup walking shards in index order means the highest
    /// shard index).
    Gauge {
        /// Virtual instant the gauge was last set.
        at: SimTime,
        /// The measurement.
        value: f64,
    },
    /// Distribution — merges bin for bin ([`Histogram::merge`]).
    Histogram(Histogram),
}

/// An owned, mergeable freeze of a [`MetricsRegistry`]. The campus
/// runner collects one per shard and folds them, in shard-index order,
/// into the rollup reported for the whole student population.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, SnapshotValue>,
}

impl MetricsSnapshot {
    /// An empty snapshot (the identity for [`MetricsSnapshot::merge`]).
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&SnapshotValue> {
        self.entries.get(name)
    }

    /// Counter value under `name`, if it is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(SnapshotValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Gauge value under `name`, if it is a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.entries.get(name) {
            Some(SnapshotValue::Gauge { value, .. }) => Some(*value),
            _ => None,
        }
    }

    /// Histogram under `name`, if it is a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.entries.get(name) {
            Some(SnapshotValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// All metric names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Merge `other` into this snapshot: counters add, histograms merge,
    /// gauges keep the later virtual stamp (`other` wins ties). A name
    /// present on only one side is kept as-is; a name whose kind differs
    /// between the two sides takes `other`'s entry (last writer wins,
    /// mirroring the registry's own type-coercion rule).
    ///
    /// The operation is associative, so folding shard snapshots in index
    /// order yields the same rollup regardless of how the shards were
    /// scheduled across worker threads.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, theirs) in &other.entries {
            match (self.entries.get_mut(name), theirs) {
                (Some(SnapshotValue::Counter(a)), SnapshotValue::Counter(b)) => *a += b,
                (
                    Some(SnapshotValue::Gauge { at, value }),
                    SnapshotValue::Gauge {
                        at: at_b,
                        value: value_b,
                    },
                ) => {
                    if *at_b >= *at {
                        *at = *at_b;
                        *value = *value_b;
                    }
                }
                (Some(SnapshotValue::Histogram(a)), SnapshotValue::Histogram(b)) => a.merge(b),
                (entry, theirs) => {
                    let theirs = theirs.clone();
                    match entry {
                        Some(e) => *e = theirs,
                        None => {
                            self.entries.insert(name.clone(), theirs);
                        }
                    }
                }
            }
        }
    }

    /// Aligned text rendering, one metric per line, names sorted.
    pub fn to_text(&self) -> String {
        let width = self.entries.keys().map(|k| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, v) in &self.entries {
            let _ = write!(out, "{name:<width$}  ");
            match v {
                SnapshotValue::Counter(c) => {
                    let _ = writeln!(out, "{c}");
                }
                SnapshotValue::Gauge { value, .. } => {
                    let _ = writeln!(out, "{value:.6}");
                }
                SnapshotValue::Histogram(h) => {
                    let p50 = h.quantile(0.50).unwrap_or(0.0);
                    let p99 = h.quantile(0.99).unwrap_or(0.0);
                    let _ = writeln!(out, "count={} p50={:.3} p99={:.3}", h.count(), p50, p99);
                }
            }
        }
        out
    }

    /// JSON object rendering (names sorted; byte-stable). Counters are
    /// integers, gauges floats (non-finite values render as `null` to
    /// keep the document valid JSON), histograms
    /// `{"count":N,"p50":X,"p99":Y}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", crate::trace::json_escape(name));
            match v {
                SnapshotValue::Counter(c) => {
                    let _ = write!(out, "{c}");
                }
                SnapshotValue::Gauge { value, .. } => write_json_f64(&mut out, *value),
                SnapshotValue::Histogram(h) => {
                    let p50 = h.quantile(0.50).unwrap_or(0.0);
                    let p99 = h.quantile(0.99).unwrap_or(0.0);
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"p50\":{:.3},\"p99\":{:.3}}}",
                        h.count(),
                        p50,
                        p99
                    );
                }
            }
        }
        out.push('}');
        out
    }
}

/// Write an `f64` as a valid JSON value: fixed six-decimal notation for
/// finite values, `null` for NaN/infinities (JSON has no spelling for
/// them, and a bare `inf` would corrupt the whole document).
pub(crate) fn write_json_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x:.6}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_set() {
        let reg = MetricsRegistry::new();
        reg.inc("a.count", 2);
        reg.inc("a.count", 3);
        assert_eq!(reg.get_counter("a.count"), Some(5));
        reg.counter_set("a.count", 1);
        assert_eq!(reg.get_counter("a.count"), Some(1));
        assert_eq!(reg.get_counter("missing"), None);
    }

    #[test]
    fn clones_share_state() {
        let reg = MetricsRegistry::new();
        let other = reg.clone();
        other.inc("shared", 7);
        assert_eq!(reg.get_counter("shared"), Some(7));
    }

    #[test]
    fn text_export_is_sorted_and_aligned() {
        let reg = MetricsRegistry::new();
        reg.gauge_set("zz.util", 0.25);
        reg.inc("aa.count", 4);
        reg.observe("mm.lat", 1.0, 0.0, 10.0, 10);
        reg.observe("mm.lat", 2.0, 0.0, 10.0, 10);
        let text = reg.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("aa.count"));
        assert!(lines[1].starts_with("mm.lat"));
        assert!(lines[2].starts_with("zz.util"));
        assert!(lines[1].contains("count=2"));
        let a = reg.to_text();
        let b = reg.to_text();
        assert_eq!(a, b);
    }

    #[test]
    fn json_export_has_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.inc("c", 3);
        reg.gauge_set("g", 0.5);
        reg.observe("h", 1.0, 0.0, 2.0, 4);
        let json = reg.to_json();
        assert_eq!(
            json,
            "{\"c\":3,\"g\":0.500000,\"h\":{\"count\":1,\"p50\":1.500,\"p99\":1.500}}"
        );
    }

    #[test]
    fn non_finite_gauges_render_as_null() {
        let reg = MetricsRegistry::new();
        reg.gauge_set("bad.ratio", f64::NAN);
        reg.gauge_set("bad.rate", f64::INFINITY);
        assert_eq!(reg.to_json(), "{\"bad.rate\":null,\"bad.ratio\":null}");
    }

    #[test]
    fn snapshot_merge_counters_add_histograms_fold() {
        let a = MetricsRegistry::new();
        a.inc("reqs", 3);
        a.observe("lat", 1.0, 0.0, 10.0, 10);
        let b = MetricsRegistry::new();
        b.inc("reqs", 4);
        b.observe("lat", 9.0, 0.0, 10.0, 10);
        b.inc("only_b", 1);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("reqs"), Some(7));
        assert_eq!(merged.counter("only_b"), Some(1));
        assert_eq!(merged.histogram("lat").unwrap().count(), 2);
    }

    #[test]
    fn snapshot_merge_gauges_take_latest_stamp() {
        let a = MetricsRegistry::new();
        a.set_clock(SimTime::from_secs(10));
        a.gauge_set("depth", 5.0);
        let b = MetricsRegistry::new();
        b.set_clock(SimTime::from_secs(3));
        b.gauge_set("depth", 9.0);
        // a is later: merging b into a keeps a's value...
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.gauge("depth"), Some(5.0));
        // ...and merging a into b adopts a's value.
        let mut m = b.snapshot();
        m.merge(&a.snapshot());
        assert_eq!(m.gauge("depth"), Some(5.0));
        // Equal stamps: the merged-in side wins (last writer).
        let c = MetricsRegistry::new();
        c.set_clock(SimTime::from_secs(10));
        c.gauge_set("depth", 7.0);
        let mut m = a.snapshot();
        m.merge(&c.snapshot());
        assert_eq!(m.gauge("depth"), Some(7.0));
    }

    #[test]
    fn snapshot_merge_is_associative() {
        let make = |clock: u64, n: u64| {
            let r = MetricsRegistry::new();
            r.set_clock(SimTime::from_secs(clock));
            r.inc("c", n);
            r.gauge_set("g", n as f64);
            r.observe("h", n as f64, 0.0, 10.0, 5);
            r.snapshot()
        };
        let (a, b, c) = (make(1, 1), make(3, 2), make(2, 3));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.to_json(), right.to_json());
        assert_eq!(left.counter("c"), Some(6));
        assert_eq!(left.gauge("g"), Some(2.0), "latest stamp (t=3) wins");
    }

    #[test]
    fn registry_renderers_match_snapshot_renderers() {
        let reg = MetricsRegistry::new();
        reg.inc("a", 1);
        reg.gauge_set("b", 2.0);
        assert_eq!(reg.to_text(), reg.snapshot().to_text());
        assert_eq!(reg.to_json(), reg.snapshot().to_json());
    }
}
