//! Virtual time for the MITS simulation.
//!
//! Time is measured in integer microseconds since simulation start. An ATM
//! cell at 155.52 Mb/s lasts ≈2.73 µs, so microsecond resolution is adequate
//! for cell-level modelling while `u64` gives ~584 000 years of range —
//! enough for any TeleLearning semester.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time (microseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The instant the simulation starts.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }
    /// Construct from fractional seconds (rounds to nearest microsecond).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative SimTime");
        SimTime((s * 1e6).round() as u64)
    }

    /// Raw microseconds since start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }
    /// Milliseconds since start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }
    /// Seconds since start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`. Saturates at zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration (None on overflow).
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }
    /// Construct from fractional seconds (rounds to nearest microsecond).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative SimDuration");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Duration needed to serialise `bits` at `bits_per_sec` (ceiling).
    ///
    /// This is *the* formula of the ATM layer: cell time = 424 bits / rate.
    pub fn for_bits(bits: u64, bits_per_sec: u64) -> Self {
        assert!(bits_per_sec > 0, "zero link rate");
        // ceil(bits * 1e6 / rate) without overflow for realistic rates
        let us = (bits as u128 * 1_000_000u128).div_ceil(bits_per_sec as u128);
        SimDuration(us as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }
    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }
    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// True if zero-length.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scale by a non-negative float (rounding to the microsecond,
    /// saturating on overflow). Used for jittered backoff intervals.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor >= 0.0, "negative duration scale");
        let us = (self.0 as f64 * factor).round();
        if us >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(us as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}µs", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn arithmetic_round_trip() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(4);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        assert_eq!(t.since(t + d), SimDuration::ZERO, "since saturates");
    }

    #[test]
    fn for_bits_matches_atm_cell_time() {
        // One ATM cell = 53 bytes = 424 bits at 155.52 Mb/s ≈ 2.73 µs → ceil 3
        let d = SimDuration::for_bits(424, 155_520_000);
        assert_eq!(d.as_micros(), 3);
        // At 1 Mb/s, 1000 bits takes exactly 1000 µs.
        assert_eq!(SimDuration::for_bits(1_000, 1_000_000).as_micros(), 1_000);
    }

    #[test]
    fn for_bits_ceils() {
        // 1 bit at 1 Gb/s is < 1 µs but must not be zero, or the ATM layer
        // could livelock scheduling zero-length transmissions.
        assert_eq!(SimDuration::for_bits(1, 1_000_000_000).as_micros(), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12µs");
        assert_eq!(format!("{}", SimDuration::from_micros(1_500)), "1.500ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn secs_f64_round_trip() {
        let d = SimDuration::from_secs_f64(0.123456);
        assert_eq!(d.as_micros(), 123_456);
        assert!((d.as_secs_f64() - 0.123456).abs() < 1e-9);
    }

    #[test]
    fn checked_add_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_micros(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_micros(5)),
            Some(SimTime::from_micros(5))
        );
    }
}
