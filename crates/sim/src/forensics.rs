//! Always-on flight recorder and breach forensics.
//!
//! All telemetry before this module was end-of-run: one merged
//! [`MetricsSnapshot`](crate::registry::MetricsSnapshot), sampled
//! traces, and a pass/fail SLO verdict — no notion of *when* a
//! degradation happened or *which* fault caused it. This module adds
//! the two missing pieces:
//!
//! * [`FlightRecorder`] — a bounded ring buffer of compact structured
//!   events (fault onset/clear, retry, timeout, stale epoch, failover,
//!   epoch fence, shed, edge invalidation) that every session carries,
//!   sampled or not. Recording is a mutex lock and a ring push, so it
//!   is cheap enough to be always-on; the ring bounds memory no matter
//!   how pathological the session.
//! * [`ForensicBundle`] — a machine-readable incident report generated
//!   when an SLO breaches or a session retires failed. The generator
//!   walks the windowed [`Timeline`](crate::timeline::Timeline) to
//!   find the breach window, pulls the flight-recorder tails and
//!   exemplar-linked samples overlapping it, aligns them against the
//!   injected fault schedule ([`FaultWindow`]), and emits a suspected
//!   cause chain: fault event → retries/failovers → degraded sessions.
//!
//! Everything here is stamped with virtual time only, so bundles and
//! timelines are byte-identical across thread counts and admission
//! windows, exactly like the metrics rollup.

use crate::registry::write_json_f64;
use crate::slo::{SloReport, Verdict};
use crate::stats::Exemplar;
use crate::time::SimTime;
use crate::timeline::Timeline;
use crate::trace::json_escape;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Arc;

/// Default ring capacity of a [`FlightRecorder`]. Sixty-four events
/// comfortably cover the anomalous tail of a session (a storm session
/// sees a couple of fault onsets, a handful of retries and one or two
/// failovers) while bounding the recorder at ~2 KiB.
pub const FLIGHT_RING_CAP: usize = 64;

/// The kinds of structured events a [`FlightRecorder`] captures. The
/// set is deliberately closed and small: each kind is a fixed-size
/// counter slot in the timeline, and forensics reasons about them by
/// kind, not by free-form label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlightKind {
    /// A server crash was observed (fault injection fired).
    FaultOnset,
    /// A crashed server finished recovery and rejoined.
    FaultClear,
    /// A client re-issued a request (backoff expired or shed retry).
    Retry,
    /// A client attempt died quiet (per-attempt timeout).
    Timeout,
    /// A response from a deposed primary was fenced by epoch.
    StaleEpoch,
    /// A client endpoint rotated away from a quiet shard.
    Failover,
    /// An epoch floor advanced (client- or edge-side fence raise).
    EpochFence,
    /// A server rejected a request under queue overload.
    Shed,
    /// A fenced edge-cache entry was evicted on access.
    EdgeInvalidation,
}

impl FlightKind {
    /// Every kind, in canonical (timeline slot) order.
    pub const ALL: [FlightKind; 9] = [
        FlightKind::FaultOnset,
        FlightKind::FaultClear,
        FlightKind::Retry,
        FlightKind::Timeout,
        FlightKind::StaleEpoch,
        FlightKind::Failover,
        FlightKind::EpochFence,
        FlightKind::Shed,
        FlightKind::EdgeInvalidation,
    ];

    /// Slot index of this kind in [`FlightKind::ALL`].
    pub fn index(self) -> usize {
        match self {
            FlightKind::FaultOnset => 0,
            FlightKind::FaultClear => 1,
            FlightKind::Retry => 2,
            FlightKind::Timeout => 3,
            FlightKind::StaleEpoch => 4,
            FlightKind::Failover => 5,
            FlightKind::EpochFence => 6,
            FlightKind::Shed => 7,
            FlightKind::EdgeInvalidation => 8,
        }
    }

    /// Stable lowercase name used in JSON exports.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::FaultOnset => "fault_onset",
            FlightKind::FaultClear => "fault_clear",
            FlightKind::Retry => "retry",
            FlightKind::Timeout => "timeout",
            FlightKind::StaleEpoch => "stale_epoch",
            FlightKind::Failover => "failover",
            FlightKind::EpochFence => "epoch_fence",
            FlightKind::Shed => "shed",
            FlightKind::EdgeInvalidation => "edge_invalidation",
        }
    }
}

/// Number of [`FlightKind`] slots (timeline counter width).
pub const FLIGHT_KINDS: usize = FlightKind::ALL.len();

/// One recorded flight event. `a` and `b` are kind-specific details
/// (shard index, server index, epoch, attempt count, queue depth...);
/// they are opaque to the recorder and rendered verbatim in JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Virtual instant the event fired.
    pub at: SimTime,
    /// What happened.
    pub kind: FlightKind,
    /// First kind-specific detail (conventionally the shard or server).
    pub a: u64,
    /// Second kind-specific detail (conventionally epoch/attempt/depth).
    pub b: u64,
}

impl FlightEvent {
    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"at_us\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
            self.at.as_micros(),
            self.kind.as_str(),
            self.a,
            self.b
        );
    }
}

#[derive(Default)]
struct FlightInner {
    ring: VecDeque<FlightEvent>,
    cap: usize,
    dropped: u64,
    totals: [u64; FLIGHT_KINDS],
}

/// A shared, cloneable bounded ring of recent [`FlightEvent`]s. Clones
/// view the same ring, so each layer (client, edge cache, system) can
/// hold its own handle — the same sharing shape as
/// [`Tracer`](crate::trace::Tracer) and
/// [`MetricsRegistry`](crate::registry::MetricsRegistry).
///
/// Unlike the tracer, the recorder is *always on*: it never samples,
/// and the ring cap keeps both cost and memory bounded. Kind totals
/// are kept even for events the ring has already dropped.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<FlightInner>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(FLIGHT_RING_CAP)
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock();
        f.debug_struct("FlightRecorder")
            .field("len", &g.ring.len())
            .field("cap", &g.cap)
            .field("dropped", &g.dropped)
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder whose ring holds at most `cap` events (`cap` is
    /// clamped to at least 1).
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            inner: Arc::new(Mutex::new(FlightInner {
                ring: VecDeque::new(),
                cap: cap.max(1),
                dropped: 0,
                totals: [0; FLIGHT_KINDS],
            })),
        }
    }

    /// Record one event. When the ring is full the oldest event is
    /// dropped (and counted in [`FlightRecorder::dropped`]); kind
    /// totals are never lost.
    pub fn record(&self, at: SimTime, kind: FlightKind, a: u64, b: u64) {
        let mut g = self.inner.lock();
        g.totals[kind.index()] += 1;
        if g.ring.len() == g.cap {
            g.ring.pop_front();
            g.dropped += 1;
        }
        g.ring.push_back(FlightEvent { at, kind, a, b });
    }

    /// Events currently retained, oldest first.
    pub fn tail(&self) -> Vec<FlightEvent> {
        self.inner.lock().ring.iter().copied().collect()
    }

    /// Total events recorded for `kind`, including dropped ones.
    pub fn total(&self, kind: FlightKind) -> u64 {
        self.inner.lock().totals[kind.index()]
    }

    /// All kind totals, in [`FlightKind::ALL`] order.
    pub fn totals(&self) -> [u64; FLIGHT_KINDS] {
        self.inner.lock().totals
    }

    /// Events lost to ring overflow.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().ring.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().ring.is_empty()
    }
}

/// The flight-recorder tail of one retired session, kept as forensic
/// evidence. The campus runner retains tails only for degraded or
/// failed sessions (and caps how many it keeps), so memory stays
/// bounded by the anomaly count, not the population.
#[derive(Debug, Clone)]
pub struct SessionTail {
    /// Student index (doubles as the exemplar trace id).
    pub student: u64,
    /// Whether the session retired failed.
    pub failed: bool,
    /// Retained events, oldest first.
    pub events: Vec<FlightEvent>,
    /// Events the session's ring dropped before retirement.
    pub dropped: u64,
}

impl SessionTail {
    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"student\":{},\"failed\":{},\"dropped\":{},\"events\":[",
            self.student, self.failed, self.dropped
        );
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            e.write_json(out);
        }
        out.push_str("]}");
    }
}

/// One entry of an injected fault schedule: what the harness broke,
/// where, and when. Forensics aligns breach windows against these to
/// name a suspected cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultWindow {
    /// Human-readable fault label, e.g. `fault_storm.shard1`.
    pub label: String,
    /// Shard the fault targets.
    pub shard: u64,
    /// Virtual instant the fault fires.
    pub onset: SimTime,
    /// Virtual instant the fault clears, if it ever does.
    pub clear: Option<SimTime>,
}

impl FaultWindow {
    pub(crate) fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"label\":\"{}\",\"shard\":{},\"onset_us\":{}",
            json_escape(&self.label),
            self.shard,
            self.onset.as_micros()
        );
        match self.clear {
            Some(t) => {
                let _ = write!(out, ",\"clear_us\":{}}}", t.as_micros());
            }
            None => out.push_str(",\"clear_us\":null}"),
        }
    }

    /// Whether this fault is plausibly active somewhere in
    /// `[start, end)` (onset before the window closes, clear — if any —
    /// after it opens).
    pub fn overlaps(&self, start: SimTime, end: SimTime) -> bool {
        self.onset < end && self.clear.is_none_or(|c| c > start)
    }
}

/// One link of a suspected-cause chain, ordered cause → effect.
#[derive(Debug, Clone)]
pub struct ChainLink {
    /// Stage name: `fault`, `retries`, `failovers` or `degraded_sessions`.
    pub stage: &'static str,
    /// Human-readable description of the link.
    pub label: String,
    /// Virtual instant the stage first manifested.
    pub at: SimTime,
    /// How many events/sessions the stage covers in the breach window.
    pub count: u64,
}

impl ChainLink {
    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"stage\":\"{}\",\"label\":\"{}\",\"at_us\":{},\"count\":{}}}",
            self.stage,
            json_escape(&self.label),
            self.at.as_micros(),
            self.count
        );
    }
}

/// Maximum session tails embedded per bundle (the full tail set is
/// still bounded upstream by the campus runner).
const BUNDLE_TAIL_CAP: usize = 8;

/// Maximum exemplars embedded per bundle.
const BUNDLE_EXEMPLAR_CAP: usize = 8;

/// A machine-readable incident report for one breach: the breach
/// window, the suspected injected fault, the causal chain, and the
/// evidence (affected students, exemplar-linked samples, flight
/// recorder tails).
#[derive(Debug, Clone)]
pub struct ForensicBundle {
    /// Why the bundle exists: `sessions_failed` or `slo_breach:<name>`.
    pub reason: String,
    /// Breach window start (inclusive), virtual time.
    pub window_start: SimTime,
    /// Breach window end (exclusive), virtual time.
    pub window_end: SimTime,
    /// The injected fault the window aligns with, if any.
    pub suspect: Option<FaultWindow>,
    /// Suspected-cause chain, cause first.
    pub chain: Vec<ChainLink>,
    /// Affected students (sorted, deduplicated).
    pub students: Vec<u64>,
    /// Exemplar samples of affected students inside the window.
    pub exemplars: Vec<Exemplar>,
    /// Flight-recorder tails of affected sessions (capped).
    pub tails: Vec<SessionTail>,
    /// Ready-to-run replay handles, one `(student, derived seed)` pair
    /// per affected student — feed either half to `Campus::replay` to
    /// re-run the victim solo at full instrumentation.
    pub replays: Vec<(u64, u64)>,
}

impl ForensicBundle {
    /// Render the bundle as one JSON object (hand-written, byte-stable).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"reason\":\"{}\",\"window\":{{\"start_us\":{},\"end_us\":{}}},\"suspect\":",
            json_escape(&self.reason),
            self.window_start.as_micros(),
            self.window_end.as_micros()
        );
        match &self.suspect {
            Some(f) => f.write_json(&mut out),
            None => out.push_str("null"),
        }
        out.push_str(",\"chain\":[");
        for (i, link) in self.chain.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            link.write_json(&mut out);
        }
        out.push_str("],\"students\":[");
        for (i, s) in self.students.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{s}");
        }
        out.push_str("],\"exemplars\":[");
        for (i, e) in self.exemplars.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"value\":",);
            write_json_f64(&mut out, e.value);
            let _ = write!(
                out,
                ",\"trace\":{},\"span\":{},\"at_us\":{}}}",
                e.trace_id,
                e.span_id,
                e.at.as_micros()
            );
        }
        out.push_str("],\"tails\":[");
        for (i, t) in self.tails.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            t.write_json(&mut out);
        }
        out.push_str("],\"replay\":[");
        for (i, (student, seed)) in self.replays.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"student\":{student},\"seed\":{seed}}}");
        }
        out.push_str("]}");
        out
    }
}

/// Render a slice of bundles as one JSON array (byte-stable).
pub fn bundles_json(bundles: &[ForensicBundle]) -> String {
    let mut out = String::from("[");
    for (i, b) in bundles.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&b.to_json());
    }
    out.push(']');
    out
}

/// Everything the bundle generator walks: the merged timeline, the
/// retained session tails, the injected fault schedule, the SLO report
/// and the exemplar table of the session-duration histogram.
pub struct ForensicInput<'a> {
    /// Campus-merged windowed timeline.
    pub timeline: &'a Timeline,
    /// Flight-recorder tails of degraded/failed sessions.
    pub tails: &'a [SessionTail],
    /// Injected fault schedule (empty when the run was calm).
    pub schedule: &'a [FaultWindow],
    /// End-of-run SLO verdicts, if SLOs were configured.
    pub slo: Option<&'a SloReport>,
    /// Exemplars of the session-duration histogram.
    pub exemplars: &'a [Exemplar],
    /// Total sessions that retired failed.
    pub sessions_failed: u64,
    /// Total sessions that retired degraded (failures included).
    pub sessions_degraded: u64,
    /// The campus base seed, so bundles can embed `(student, seed)`
    /// replay handles via [`crate::replay::derive_seed`].
    pub base_seed: u64,
}

/// Generate one bundle per incident: one if any session retired
/// failed, plus one per breached SLO. A healthy run — no failures, no
/// breaches — produces no bundles, so the calm twin of a storm
/// campaign stays empty.
pub fn generate(input: &ForensicInput) -> Vec<ForensicBundle> {
    let mut bundles = Vec::new();
    if input.sessions_failed > 0 {
        bundles.push(build_bundle(input, "sessions_failed".to_string()));
    }
    if let Some(slo) = input.slo {
        for o in &slo.outcomes {
            if o.verdict == Verdict::Breach {
                bundles.push(build_bundle(input, format!("slo_breach:{}", o.name)));
            }
        }
    }
    bundles
}

fn build_bundle(input: &ForensicInput, reason: String) -> ForensicBundle {
    let tl = input.timeline;
    let (window_start, window_end) = tl
        .anomaly_span()
        .unwrap_or_else(|| tl.full_span().unwrap_or((SimTime::ZERO, SimTime::ZERO)));

    // Align the breach window against the injected schedule: the
    // earliest-onset fault active anywhere inside the window.
    let suspect = input
        .schedule
        .iter()
        .filter(|f| f.overlaps(window_start, window_end))
        .min_by_key(|f| f.onset)
        .cloned();

    let mut chain = Vec::new();
    if let Some(f) = &suspect {
        let onsets = tl.sum_kind_in(FlightKind::FaultOnset, window_start, window_end);
        chain.push(ChainLink {
            stage: "fault",
            label: format!("{} (shard {})", f.label, f.shard),
            at: f.onset,
            count: onsets.max(1),
        });
    }
    let retries = tl.sum_kind_in(FlightKind::Retry, window_start, window_end)
        + tl.sum_kind_in(FlightKind::Timeout, window_start, window_end);
    if retries > 0 {
        let at = tl
            .first_at_of(FlightKind::Retry, window_start, window_end)
            .or_else(|| tl.first_at_of(FlightKind::Timeout, window_start, window_end))
            .unwrap_or(window_start);
        chain.push(ChainLink {
            stage: "retries",
            label: "client retries and attempt timeouts".to_string(),
            at,
            count: retries,
        });
    }
    let failovers = tl.sum_kind_in(FlightKind::Failover, window_start, window_end);
    if failovers > 0 {
        let at = tl
            .first_at_of(FlightKind::Failover, window_start, window_end)
            .unwrap_or(window_start);
        chain.push(ChainLink {
            stage: "failovers",
            label: "endpoints rotated off the quiet shard".to_string(),
            at,
            count: failovers,
        });
    }
    let (degraded, first_degraded) = tl.degraded_in(window_start, window_end);
    if degraded > 0 {
        chain.push(ChainLink {
            stage: "degraded_sessions",
            label: "sessions retired degraded or failed".to_string(),
            at: first_degraded.unwrap_or(window_start),
            count: degraded,
        });
    }

    let mut students: Vec<u64> = input.tails.iter().map(|t| t.student).collect();
    students.sort_unstable();
    students.dedup();

    // Exemplars: only samples of affected students inside the breach
    // window — those sessions are tail-sampled, so every exemplar trace
    // id here is resolvable against the sampled traces.
    let exemplars: Vec<Exemplar> = input
        .exemplars
        .iter()
        .filter(|e| {
            e.at >= window_start && e.at < window_end && students.binary_search(&e.trace_id).is_ok()
        })
        .take(BUNDLE_EXEMPLAR_CAP)
        .copied()
        .collect();

    let tails: Vec<SessionTail> = input.tails.iter().take(BUNDLE_TAIL_CAP).cloned().collect();

    // Every affected student gets a ready-to-run replay handle: the
    // (student, derived seed) pair is all `Campus::replay` needs.
    let replays: Vec<(u64, u64)> = students
        .iter()
        .map(|&s| (s, crate::replay::derive_seed(input.base_seed, s)))
        .collect();

    ForensicBundle {
        reason,
        window_start,
        window_end,
        suspect,
        chain,
        students,
        exemplars,
        tails,
        replays,
    }
}

/// Render the timeline plus bundles as a human-readable incident
/// report (used by `tables --exp forensics`).
pub fn render_report(timeline: &Timeline, bundles: &[ForensicBundle]) -> String {
    let mut out = timeline.render();
    if bundles.is_empty() {
        out.push_str("\nno forensic bundles: run was healthy\n");
        return out;
    }
    for b in bundles {
        let _ = writeln!(
            out,
            "\nincident: {} [{:.3}s, {:.3}s)",
            b.reason,
            b.window_start.as_secs_f64(),
            b.window_end.as_secs_f64()
        );
        match &b.suspect {
            Some(f) => {
                let _ = writeln!(
                    out,
                    "  suspect: {} (shard {}) onset {:.3}s",
                    f.label,
                    f.shard,
                    f.onset.as_secs_f64()
                );
            }
            None => {
                let _ = writeln!(out, "  suspect: none (no schedule entry overlaps)");
            }
        }
        for link in &b.chain {
            let _ = writeln!(
                out,
                "    -> {:<18} t={:>8.3}s count={:<6} {}",
                link.stage,
                link.at.as_secs_f64(),
                link.count,
                link.label
            );
        }
        let _ = writeln!(
            out,
            "  students: {:?}  exemplars: {}  tails: {}",
            b.students,
            b.exemplars.len(),
            b.tails.len()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use crate::timeline::TimelineRecorder;

    fn ev(at_s: u64, kind: FlightKind) -> FlightEvent {
        FlightEvent {
            at: SimTime::from_secs(at_s),
            kind,
            a: 1,
            b: 0,
        }
    }

    #[test]
    fn ring_bounds_and_totals_survive_overflow() {
        let rec = FlightRecorder::new(4);
        for i in 0..10 {
            rec.record(SimTime::from_secs(i), FlightKind::Retry, i, 0);
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 6);
        assert_eq!(rec.total(FlightKind::Retry), 10);
        let tail = rec.tail();
        assert_eq!(tail[0].a, 6, "oldest retained is the 7th event");
        assert_eq!(tail[3].a, 9);
    }

    #[test]
    fn clones_share_one_ring() {
        let rec = FlightRecorder::default();
        let other = rec.clone();
        other.record(SimTime::ZERO, FlightKind::Shed, 0, 3);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.total(FlightKind::Shed), 1);
    }

    #[test]
    fn healthy_run_produces_no_bundles() {
        let mut tr = TimelineRecorder::new(SimDuration::from_millis(250));
        tr.record_session(
            SimTime::from_secs(1),
            SimDuration::from_millis(900),
            false,
            false,
        );
        let tl = tr.finish();
        let bundles = generate(&ForensicInput {
            timeline: &tl,
            tails: &[],
            schedule: &[],
            slo: None,
            exemplars: &[],
            sessions_failed: 0,
            sessions_degraded: 0,
            base_seed: 42,
        });
        assert!(bundles.is_empty());
    }

    #[test]
    fn failed_session_bundle_names_the_overlapping_fault() {
        let mut tr = TimelineRecorder::new(SimDuration::from_secs(1));
        tr.record_event(&ev(10, FlightKind::FaultOnset));
        tr.record_event(&ev(11, FlightKind::Retry));
        tr.record_event(&ev(12, FlightKind::Failover));
        tr.record_session(
            SimTime::from_secs(14),
            SimDuration::from_secs(14),
            true,
            true,
        );
        let tl = tr.finish();
        let schedule = vec![FaultWindow {
            label: "fault_storm.shard1".to_string(),
            shard: 1,
            onset: SimTime::from_secs(10),
            clear: None,
        }];
        let tails = vec![SessionTail {
            student: 7,
            failed: true,
            events: vec![ev(11, FlightKind::Retry)],
            dropped: 0,
        }];
        let bundles = generate(&ForensicInput {
            timeline: &tl,
            tails: &tails,
            schedule: &schedule,
            slo: None,
            exemplars: &[],
            sessions_failed: 1,
            sessions_degraded: 1,
            base_seed: 42,
        });
        assert_eq!(bundles.len(), 1);
        let b = &bundles[0];
        assert_eq!(b.reason, "sessions_failed");
        let suspect = b.suspect.as_ref().expect("fault aligned");
        assert_eq!(suspect.shard, 1);
        assert_eq!(b.chain[0].stage, "fault");
        assert!(b.chain[0].label.contains("fault_storm.shard1"));
        assert!(b.chain.iter().any(|l| l.stage == "retries"));
        assert!(b.chain.iter().any(|l| l.stage == "failovers"));
        assert!(b.chain.iter().any(|l| l.stage == "degraded_sessions"));
        assert_eq!(b.students, vec![7]);
        assert_eq!(
            b.replays,
            vec![(7, crate::replay::derive_seed(42, 7))],
            "each affected student carries a ready-to-run replay handle"
        );
        assert!(b.window_start <= SimTime::from_secs(10));
        let json = b.to_json();
        assert!(json.contains("\"reason\":\"sessions_failed\""));
        assert!(json.contains("fault_storm.shard1"));
        assert!(json.contains(&format!(
            "\"replay\":[{{\"student\":7,\"seed\":{}}}]",
            crate::replay::derive_seed(42, 7)
        )));
    }

    #[test]
    fn bundle_json_is_deterministic() {
        let make = || {
            let mut tr = TimelineRecorder::new(SimDuration::from_secs(1));
            tr.record_event(&ev(3, FlightKind::Timeout));
            tr.record_session(SimTime::from_secs(5), SimDuration::from_secs(5), true, true);
            let tl = tr.finish();
            let bundles = generate(&ForensicInput {
                timeline: &tl,
                tails: &[],
                schedule: &[],
                slo: None,
                exemplars: &[],
                sessions_failed: 1,
                sessions_degraded: 1,
                base_seed: 42,
            });
            bundles_json(&bundles)
        };
        assert_eq!(make(), make());
    }
}
