//! Deterministic, splittable random streams.
//!
//! Every MITS experiment must be reproducible: the same seed must generate
//! the same synthetic media, the same interarrival times and the same
//! student behaviour on every run, or `EXPERIMENTS.md` could not record
//! stable numbers. [`SimRng`] wraps a counter-based generator (SplitMix64
//! seeded xoshiro-style core) so each subsystem can derive an independent
//! stream from a master seed without correlation.

use rand::RngCore;

/// A small, fast, deterministic PRNG (xoshiro256** core, SplitMix64 seeding).
///
/// Implemented by hand rather than relying on `rand::StdRng` so the bit
/// stream is pinned forever — `StdRng` documents that its algorithm may
/// change between `rand` versions, which would silently change every
/// experiment in this repository.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One SplitMix64 step as a pure function: mix `x` into a decorrelated
/// 64-bit value. This is the finalizer behind per-shard seed derivation
/// and per-student trace-sampling decisions — both need a stateless,
/// stable hash of `(base, index)` rather than a stream.
pub fn splitmix64_mix(x: u64) -> u64 {
    let mut state = x;
    splitmix64(&mut state)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child stream labelled by `stream`.
    ///
    /// Children with different labels are statistically independent; the
    /// same (seed, label) pair always yields the same stream.
    pub fn split(&self, stream: u64) -> SimRng {
        // Mix the label into a fresh seed derived from our state.
        let mut sm = self.s[0] ^ self.s[2] ^ stream.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit value (xoshiro256**).
    pub fn next_raw(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in [0, 1).
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, n). `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift rejection-free method (slight bias < 2^-64, fine
        // for simulation workloads).
        ((self.next_raw() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in [lo, hi] inclusive.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// arrival processes — question arrivals at the facilitator, request
    /// interarrivals at the courseware server).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = 1.0 - self.f64(); // in (0, 1], avoids ln(0)
        -mean * u.ln()
    }

    /// Normally distributed value (Box–Muller) — used for jittered media
    /// frame sizes.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Pareto-distributed value (heavy-tailed document sizes).
    pub fn pareto(&mut self, scale: f64, shape: f64) -> f64 {
        debug_assert!(scale > 0.0 && shape > 0.0);
        let u = 1.0 - self.f64();
        scale / u.powf(1.0 / shape)
    }

    /// Fill a byte buffer with pseudo-random data (synthetic media payloads).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Choose a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

/// `rand` compatibility so `SimRng` can drive `rand`-based samplers
/// (`proptest` strategies, `rand::seq` shuffles) when convenient.
impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        SimRng::fill_bytes(self, dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        SimRng::fill_bytes(self, dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_raw() == b.next_raw()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_and_stable() {
        let root = SimRng::seed_from_u64(7);
        let mut c1 = root.split(1);
        let mut c1_again = root.split(1);
        let mut c2 = root.split(2);
        assert_eq!(c1.next_raw(), c1_again.next_raw(), "same label same stream");
        assert_ne!(c1.next_raw(), c2.next_raw(), "labels decorrelate");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = SimRng::seed_from_u64(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            // each bin expects 10 000; allow ±10 %
            assert!((9_000..11_000).contains(&c), "bin count {c} out of range");
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = SimRng::seed_from_u64(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SimRng::seed_from_u64(17);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "filled something");
        // Same seed reproduces the same bytes.
        let mut r2 = SimRng::seed_from_u64(17);
        let mut buf2 = [0u8; 13];
        r2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut r = SimRng::seed_from_u64(19);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn pareto_exceeds_scale() {
        let mut r = SimRng::seed_from_u64(23);
        for _ in 0..1000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }
}
