//! Queueing primitives: bounded FIFO with drop accounting and a token
//! bucket (GCRA-equivalent leaky bucket) used for ATM traffic policing and
//! shaping, and for the facilitator telephone-line model.

use crate::stats::RatioCounter;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// What a [`BoundedQueue`] does when full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropPolicy {
    /// Reject the arriving item (tail drop) — ATM output buffers.
    DropTail,
    /// Evict the oldest item to make room (head drop) — live media buffers
    /// where stale frames are worthless.
    DropHead,
}

/// A bounded FIFO queue that counts drops — the core of every switch port,
/// server accept queue, and telephone hold queue in the reproduction.
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    policy: DropPolicy,
    /// Offered/accepted accounting: `hits` = drops, `total` = arrivals.
    pub drops: RatioCounter,
    high_water: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, policy: DropPolicy) -> Self {
        assert!(capacity > 0, "zero-capacity queue");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            policy,
            drops: RatioCounter::default(),
            high_water: 0,
        }
    }

    /// Offer an item. Returns the item that was dropped, if any
    /// (the offered one under [`DropPolicy::DropTail`], the oldest under
    /// [`DropPolicy::DropHead`]).
    pub fn offer(&mut self, item: T) -> Option<T> {
        let dropped = if self.items.len() >= self.capacity {
            match self.policy {
                DropPolicy::DropTail => {
                    self.drops.record(true);
                    return Some(item);
                }
                DropPolicy::DropHead => self.items.pop_front(),
            }
        } else {
            None
        };
        if dropped.is_some() {
            // A head drop is two ledger entries: one loss for the evicted
            // item and one accepted arrival for the item taking its place.
            self.drops.record(true);
            self.drops.record(false);
        } else {
            self.drops.record(false);
        }
        self.items.push_back(item);
        self.high_water = self.high_water.max(self.items.len());
        dropped
    }

    /// Dequeue the oldest item.
    pub fn take(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peek at the oldest item.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest occupancy ever reached.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Iterate over queued items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

/// A token bucket: tokens accrue at `rate` per second up to `depth`;
/// conforming traffic spends tokens. This is the Generic Cell Rate
/// Algorithm in its leaky-bucket formulation, used both for ATM usage
/// parameter control (policing) and for source shaping.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: f64,
    depth: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec` tokens/s, holding at most
    /// `depth` tokens, initially full.
    ///
    /// # Panics
    /// Panics on non-positive rate or depth.
    pub fn new(rate_per_sec: f64, depth: f64) -> Self {
        assert!(rate_per_sec > 0.0, "non-positive rate");
        assert!(depth > 0.0, "non-positive depth");
        TokenBucket {
            rate_per_sec,
            depth,
            tokens: depth,
            last: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.depth);
        self.last = now;
    }

    /// Try to spend `cost` tokens at time `now`. Returns true when the
    /// traffic conforms (tokens were available and are now spent).
    pub fn try_take(&mut self, now: SimTime, cost: f64) -> bool {
        self.refill(now);
        if self.tokens >= cost {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }

    /// How long from `now` until `cost` tokens will be available (zero if
    /// already available). Used by shapers to schedule the next emission.
    pub fn time_until(&mut self, now: SimTime, cost: f64) -> SimDuration {
        self.refill(now);
        if self.tokens >= cost {
            SimDuration::ZERO
        } else {
            let deficit = cost - self.tokens;
            SimDuration::from_secs_f64(deficit / self.rate_per_sec)
        }
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_drop_rejects_arrival() {
        let mut q = BoundedQueue::new(2, DropPolicy::DropTail);
        assert!(q.offer(1).is_none());
        assert!(q.offer(2).is_none());
        assert_eq!(q.offer(3), Some(3), "arriving item bounced");
        assert_eq!(q.len(), 2);
        assert_eq!(q.take(), Some(1));
        assert_eq!(q.drops.hits, 1);
        assert_eq!(q.drops.total, 3);
    }

    #[test]
    fn head_drop_evicts_oldest() {
        let mut q = BoundedQueue::new(2, DropPolicy::DropHead);
        q.offer(1);
        q.offer(2);
        assert_eq!(q.offer(3), Some(1), "oldest evicted");
        assert_eq!(q.take(), Some(2));
        assert_eq!(q.take(), Some(3));
        assert_eq!(q.drops.hits, 1);
        // Three arrivals all accepted plus one eviction: four ledger
        // entries, one of them a loss.
        assert_eq!(q.drops.total, 4);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut q = BoundedQueue::new(10, DropPolicy::DropTail);
        for i in 0..7 {
            q.offer(i);
        }
        for _ in 0..5 {
            q.take();
        }
        assert_eq!(q.high_water(), 7);
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        let _ = BoundedQueue::<u8>::new(0, DropPolicy::DropTail);
    }

    #[test]
    fn token_bucket_conformance() {
        // 10 tokens/s, depth 1: one token available every 100 ms.
        let mut tb = TokenBucket::new(10.0, 1.0);
        let t0 = SimTime::ZERO;
        assert!(tb.try_take(t0, 1.0), "bucket starts full");
        assert!(!tb.try_take(t0, 1.0), "immediately empty");
        let wait = tb.time_until(t0, 1.0);
        assert_eq!(wait.as_millis(), 100);
        let t1 = t0 + wait;
        assert!(tb.try_take(t1, 1.0), "conforms after refill interval");
    }

    #[test]
    fn token_bucket_burst_up_to_depth() {
        let mut tb = TokenBucket::new(1.0, 5.0);
        let t = SimTime::from_secs(100); // long idle ⇒ full bucket, capped at depth
        for _ in 0..5 {
            assert!(tb.try_take(t, 1.0));
        }
        assert!(!tb.try_take(t, 1.0), "burst limited by depth");
    }

    #[test]
    fn token_bucket_available_caps_at_depth() {
        let mut tb = TokenBucket::new(100.0, 3.0);
        assert!((tb.available(SimTime::from_secs(10)) - 3.0).abs() < 1e-9);
    }
}
